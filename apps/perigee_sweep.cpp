// Unified sweep driver: runs any named figure or scenario grid (or a custom
// cartesian grid over algorithm / n / rounds / hash model / validation scale
// / relay / churn rate / heterogeneity profile / withholding fraction /
// transmission model) end-to-end on the parallel SweepRunner and writes
// BENCH_<name>.json.
//
//   perigee_sweep --figure fig3a --jobs 8
//   perigee_sweep --figure congestion --seeds 2 --jobs 0
//   perigee_sweep --algorithms random,perigee-subset,ideal
//       --nodes 200,400 --churn 0,0.05 --seeds 3 --jobs 4 --json grid.json
//   perigee_sweep --transmission delay,queue --hetero off,bandwidth
//
// The sweep runs as a crash-safe service: every completed (cell, seed) job
// is checkpointed (disable with --checkpoint-dir none), an interrupted run
// restarts with --resume, and a grid can be split across k coordination-free
// processes and folded back together:
//
//   perigee_sweep --figure fig4a --resume               # pick up where left
//   perigee_sweep --figure fig4a --shard 0/2            # process A
//   perigee_sweep --figure fig4a --shard 1/2            # process B
//   perigee_sweep --figure fig4a \
//       --merge BENCH_fig4a.shard0of2.json,BENCH_fig4a.shard1of2.json
//
// Results are bit-identical at any --jobs value, resumed or not, sharded or
// not; see src/runner/sweep.hpp.
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/curves.hpp"
#include "obs/meta.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/checkpoint.hpp"
#include "runner/json.hpp"
#include "runner/sweep.hpp"
#include "scenario/scenario.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace perigee;

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// stoull/stod abort the process on garbage; a CLI wants a clean error.
std::optional<double> parse_number(const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

struct Figure {
  const char* name;
  const char* what;
  runner::SweepSpec (*make)();
};

runner::SweepSpec fig3a() {
  runner::SweepSpec spec;
  spec.name = "fig3a";
  spec.base.net.n = 1000;
  spec.base.rounds = 50;
  spec.algorithms = {
      core::Algorithm::Random,         core::Algorithm::Geographic,
      core::Algorithm::Kademlia,       core::Algorithm::PerigeeVanilla,
      core::Algorithm::PerigeeUcb,     core::Algorithm::PerigeeSubset,
      core::Algorithm::Ideal,
  };
  return spec;
}

runner::SweepSpec fig3b() {
  runner::SweepSpec spec = fig3a();
  spec.name = "fig3b";
  spec.base.net.n = 600;
  spec.base.rounds = 40;
  spec.base.hash_model = mining::HashPowerModel::Exponential;
  return spec;
}

runner::SweepSpec fig4a() {
  runner::SweepSpec spec;
  spec.name = "fig4a";
  spec.base.net.n = 600;
  spec.base.rounds = 40;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::PerigeeSubset,
                     core::Algorithm::Ideal};
  spec.validation_scales = {0.1, 0.5, 1.0, 5.0, 10.0};
  return spec;
}

runner::SweepSpec fig4b() {
  runner::SweepSpec spec;
  spec.name = "fig4b";
  spec.base.net.n = 600;
  spec.base.rounds = 30;
  spec.base.hash_model = mining::HashPowerModel::Pools;
  spec.base.pool_latency_scale = 0.1;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::Geographic,
                     core::Algorithm::PerigeeSubset, core::Algorithm::Ideal};
  return spec;
}

runner::SweepSpec fig4c() {
  runner::SweepSpec spec;
  spec.name = "fig4c";
  spec.base.net.n = 600;
  spec.base.rounds = 30;
  spec.base.relay = true;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::Geographic,
                     core::Algorithm::PerigeeSubset, core::Algorithm::Ideal};
  return spec;
}

// Scenario grids (src/scenario): the conditions the paper's §6 leaves open,
// as first-class sweep axes. Sized so `--seeds 2` finishes CI-fast while the
// regime effects are still visible.

// Node churn: per-round leave/rejoin fractions from none to aggressive.
// Static baselines live through the same schedule but only rejoiners redial,
// so the grid shows Perigee's exploration-driven self-healing.
runner::SweepSpec churn_grid() {
  runner::SweepSpec spec;
  spec.name = "churn";
  spec.base.net.n = 200;
  spec.base.rounds = 12;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::PerigeeSubset,
                     core::Algorithm::Ideal};
  spec.churn_rates = {0.0, 0.02, 0.05};
  return spec;
}

// Heterogeneous node capabilities (PODS-style tiers): bandwidth-only,
// validation-only, and the full datacenter mix with concentrated hash power.
runner::SweepSpec hetero_grid() {
  runner::SweepSpec spec;
  spec.name = "hetero";
  spec.base.net.n = 200;
  spec.base.rounds = 12;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::PerigeeSubset,
                     core::Algorithm::Ideal};
  spec.hetero_profiles = {
      scenario::HeteroProfile::Off, scenario::HeteroProfile::Bandwidth,
      scenario::HeteroProfile::Validation, scenario::HeteroProfile::Datacenter};
  return spec;
}

// Adversarial withholding: sweep the fraction of never-forwarding nodes.
// Perigee's scoring disconnects them (§1 incentive compatibility); the
// random baseline keeps relaying into dead ends.
runner::SweepSpec adversary_grid() {
  runner::SweepSpec spec;
  spec.name = "adversary";
  spec.base.net.n = 200;
  spec.base.rounds = 12;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::PerigeeSubset};
  spec.withhold_fractions = {0.0, 0.05, 0.10, 0.20};
  return spec;
}

// Bandwidth congestion: delay-only vs the queued egress engine, with and
// without the two-tier bandwidth mix. Under "queue" + "bandwidth" the slow
// tier's token buckets throttle block serialization, so the grid shows how
// much of Perigee's advantage survives when links saturate (the analytic
// per-hop block term stays off under queue — the engine owns transmission;
// see docs/TRANSMISSION_MODEL.md).
runner::SweepSpec congestion_grid() {
  runner::SweepSpec spec;
  spec.name = "congestion";
  spec.base.net.n = 200;
  spec.base.rounds = 12;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::PerigeeSubset};
  spec.transmission_models = {scenario::TransmissionModel::Delay,
                              scenario::TransmissionModel::Queue};
  spec.hetero_profiles = {scenario::HeteroProfile::Off,
                          scenario::HeteroProfile::Bandwidth};
  return spec;
}

// CI-sized smoke grid: every adaptive variant on a small network.
runner::SweepSpec baseline() {
  runner::SweepSpec spec;
  spec.name = "baseline";
  spec.base.net.n = 200;
  spec.base.rounds = 10;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::PerigeeVanilla,
                     core::Algorithm::PerigeeUcb, core::Algorithm::PerigeeSubset,
                     core::Algorithm::Ideal};
  return spec;
}

constexpr Figure kFigures[] = {
    {"fig3a", "uniform hash power, all algorithms (n=1000)", fig3a},
    {"fig3b", "exponential hash power (n=600)", fig3b},
    {"fig4a", "validation-delay scale sweep", fig4a},
    {"fig4b", "mining pools with fast pool links", fig4b},
    {"fig4c", "fast relay overlay present", fig4c},
    {"churn", "node churn rate sweep (scenario)", churn_grid},
    {"hetero", "heterogeneous capability tiers (scenario)", hetero_grid},
    {"adversary", "withholding-fraction sweep (scenario)", adversary_grid},
    {"congestion", "delay vs queued egress engine (scenario)", congestion_grid},
    {"baseline", "CI-sized smoke grid (n=200)", baseline},
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_string("figure", "", "named grid (see --list)");
  flags.add_bool("list", false, "list named figure grids and exit");
  flags.add_string("name", "", "override sweep name (output file stem)");
  flags.add_string("algorithms", "",
                   "CSV algorithm axis, e.g. random,perigee-subset,ideal");
  flags.add_string("nodes", "", "CSV network-size axis");
  flags.add_string("rounds", "", "CSV learning-round axis");
  flags.add_string("hash", "", "CSV hash-model axis: uniform,exponential,pools");
  flags.add_string("vscales", "", "CSV validation-scale axis");
  flags.add_string("relay", "", "CSV relay axis: on,off");
  flags.add_string("churn", "", "CSV per-round churn-rate axis, e.g. 0,0.02");
  flags.add_string("hetero", "",
                   "CSV heterogeneity axis: off,bandwidth,validation,"
                   "datacenter");
  flags.add_string("withhold", "",
                   "CSV withholding-fraction axis, e.g. 0,0.1,0.2");
  flags.add_string("transmission", "",
                   "CSV transmission-model axis: delay (pure propagation) "
                   "and/or queue (token-bucket egress engine)");
  flags.add_int("seeds", 0, "repetitions per cell (0 = keep preset/default)");
  flags.add_int("seed", 1, "base seed");
  flags.add_double("coverage", 0.90, "hash-power coverage for lambda");
  flags.add_int("jobs", 0, "worker threads (0 = all hardware threads)");
  flags.add_string("json", "", "output path (default BENCH_<name>.json)");
  flags.add_string("checkpoint-dir", "",
                   "directory for per-job crash-safe checkpoints (default "
                   "<output path>.ckpt; 'none' disables checkpointing)");
  flags.add_bool("resume", false,
                 "load completed (cell, seed) jobs from the checkpoint "
                 "directory and run only the rest; the final JSON is "
                 "byte-identical to an uninterrupted run");
  flags.add_string("shard", "",
                   "i/k: run only shard i of a k-way split of the grid "
                   "(jobs round-robin by index; no coordination between "
                   "shard processes) and write "
                   "BENCH_<name>.shard<i>of<k>.json for --merge");
  flags.add_string("merge", "",
                   "CSV of k shard files to fold into the final "
                   "BENCH_<name>.json (runs no jobs; pass the same grid "
                   "flags as the shard runs — a fingerprint mismatch "
                   "aborts). Byte-identical to a single-process run");
  flags.add_bool("reuse-builds", true,
                 "build each distinct (topology axes, seed) scenario once "
                 "and clone it across cells that differ only in policy "
                 "axes (byte-identical either way; =false rebuilds per "
                 "cell)");
  flags.add_string("trace", "",
                   "write a Chrome trace_event JSON (chrome://tracing, "
                   "Perfetto, scripts/summarize_trace.py) of the sweep to "
                   "this path; requires a PERIGEE_TELEMETRY build");
  flags.add_bool("metrics", false,
                 "print the merged telemetry counter/histogram table to "
                 "stderr after the sweep");
  flags.add_bool("print-meta", false,
                 "print this binary's run metadata (build type, compiler, "
                 "git sha, ...) as JSON and exit");
  flags.add_bool("incremental-csr", true,
                 "patch CSR snapshots from the topology mutation journal "
                 "between rounds (--incremental-csr=false forces full "
                 "recompiles; results are byte-identical either way)");
  flags.add_string("engine", "batched",
                   "block-batch relaxation backend: 'batched' (parallel "
                   "across sources) or 'parallel-delta' (delta-stepping "
                   "teams within each source; byte-identical outputs)");
  if (!flags.parse(argc, argv)) return 1;

  if (flags.get_bool("list")) {
    for (const auto& figure : kFigures) {
      std::cout << figure.name << "\t" << figure.what << "\n";
    }
    return 0;
  }

  if (flags.get_bool("print-meta")) {
    const obs::RunMeta meta = obs::capture_run_meta();
    runner::JsonWriter writer(std::cout);
    writer.begin_object();
    obs::write_run_meta_fields(writer, meta);
    writer.end_object();
    std::cout << "\n";
    return 0;
  }

  const std::string& trace_path = flags.get_string("trace");
  if (!trace_path.empty()) {
    if (!obs::Tracer::instance().start(trace_path)) {
      std::cerr << "--trace requires a PERIGEE_TELEMETRY=ON build "
                   "(telemetry_compiled="
                << (obs::telemetry_compiled() ? "true" : "false") << ")\n";
      return 1;
    }
  }

  runner::SweepSpec spec;
  const std::string& figure_name = flags.get_string("figure");
  if (!figure_name.empty()) {
    bool found = false;
    for (const auto& figure : kFigures) {
      if (figure_name == figure.name) {
        spec = figure.make();
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "unknown figure '" << figure_name << "' (try --list)\n";
      return 1;
    }
  }
  // Default repetitions, applied after any figure preset so both preset and
  // custom grids get multi-seed curves unless --seeds overrides.
  spec.seeds = 2;

  // Axis overrides from flags.
  if (const auto& names = flags.get_string("algorithms"); !names.empty()) {
    spec.algorithms.clear();
    for (const auto& name : split_csv(names)) {
      const auto algorithm = core::algorithm_from_name(name);
      if (!algorithm) {
        std::cerr << "unknown algorithm '" << name << "'; known:";
        for (const auto a : core::all_algorithms()) {
          std::cerr << ' ' << core::algorithm_name(a);
        }
        std::cerr << "\n";
        return 1;
      }
      spec.algorithms.push_back(*algorithm);
    }
  }
  if (const auto& csv = flags.get_string("nodes"); !csv.empty()) {
    spec.nodes.clear();
    for (const auto& item : split_csv(csv)) {
      const auto v = parse_number(item);
      if (!v || *v < 2 || *v != static_cast<std::size_t>(*v)) {
        std::cerr << "bad --nodes value '" << item << "'\n";
        return 1;
      }
      spec.nodes.push_back(static_cast<std::size_t>(*v));
    }
  }
  if (const auto& csv = flags.get_string("rounds"); !csv.empty()) {
    spec.rounds.clear();
    for (const auto& item : split_csv(csv)) {
      const auto v = parse_number(item);
      if (!v || *v < 0 || *v != static_cast<int>(*v)) {
        std::cerr << "bad --rounds value '" << item << "'\n";
        return 1;
      }
      spec.rounds.push_back(static_cast<int>(*v));
    }
  }
  if (const auto& csv = flags.get_string("hash"); !csv.empty()) {
    spec.hash_models.clear();
    for (const auto& item : split_csv(csv)) {
      const auto model = mining::hash_model_from_name(item);
      if (!model) {
        std::cerr << "unknown hash model '" << item
                  << "' (uniform, exponential, pools)\n";
        return 1;
      }
      spec.hash_models.push_back(*model);
    }
  }
  if (const auto& csv = flags.get_string("vscales"); !csv.empty()) {
    spec.validation_scales.clear();
    for (const auto& item : split_csv(csv)) {
      const auto v = parse_number(item);
      if (!v || *v <= 0) {
        std::cerr << "bad --vscales value '" << item << "'\n";
        return 1;
      }
      spec.validation_scales.push_back(*v);
    }
  }
  if (const auto& csv = flags.get_string("relay"); !csv.empty()) {
    spec.relay.clear();
    for (const auto& item : split_csv(csv)) {
      if (item != "on" && item != "off") {
        std::cerr << "relay axis values are 'on' and 'off'\n";
        return 1;
      }
      spec.relay.push_back(item == "on");
    }
  }
  if (const auto& csv = flags.get_string("churn"); !csv.empty()) {
    spec.churn_rates.clear();
    for (const auto& item : split_csv(csv)) {
      const auto v = parse_number(item);
      if (!v || *v < 0 || *v > 1) {
        std::cerr << "bad --churn value '" << item << "' (want [0, 1])\n";
        return 1;
      }
      spec.churn_rates.push_back(*v);
    }
  }
  if (const auto& csv = flags.get_string("hetero"); !csv.empty()) {
    spec.hetero_profiles.clear();
    for (const auto& item : split_csv(csv)) {
      const auto profile = scenario::hetero_profile_from_name(item);
      if (!profile) {
        std::cerr << "unknown hetero profile '" << item
                  << "' (off, bandwidth, validation, datacenter)\n";
        return 1;
      }
      spec.hetero_profiles.push_back(*profile);
    }
  }
  if (const auto& csv = flags.get_string("withhold"); !csv.empty()) {
    spec.withhold_fractions.clear();
    for (const auto& item : split_csv(csv)) {
      const auto v = parse_number(item);
      if (!v || *v < 0 || *v >= 1) {
        std::cerr << "bad --withhold value '" << item << "' (want [0, 1))\n";
        return 1;
      }
      spec.withhold_fractions.push_back(*v);
    }
  }
  if (const auto& csv = flags.get_string("transmission"); !csv.empty()) {
    spec.transmission_models.clear();
    for (const auto& item : split_csv(csv)) {
      const auto model = scenario::transmission_model_from_name(item);
      if (!model) {
        std::cerr << "unknown transmission model '" << item
                  << "' (delay, queue)\n";
        return 1;
      }
      spec.transmission_models.push_back(*model);
    }
  }
  if (const auto seeds = static_cast<int>(flags.get_int("seeds")); seeds > 0) {
    spec.seeds = seeds;
  }
  spec.base.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  spec.base.coverage = flags.get_double("coverage");
  // Wall-clock A/B switch, not a grid axis: cell results and the JSON are
  // byte-identical at either setting.
  spec.base.incremental_csr = flags.get_bool("incremental-csr");
  if (const auto engine =
          sim::relax_engine_from_name(flags.get_string("engine"));
      engine.has_value()) {
    spec.base.relax_engine = *engine;
  } else {
    std::cerr << "unknown --engine '" << flags.get_string("engine")
              << "' (use batched or parallel-delta)\n";
    return 1;
  }
  if (const auto& name = flags.get_string("name"); !name.empty()) {
    spec.name = name;
  }

  // --merge: fold k shard outputs into the final file. No jobs run; the
  // merged JSON is byte-identical to a single-process run of the same grid.
  if (const auto& csv = flags.get_string("merge"); !csv.empty()) {
    const std::vector<std::string> shard_paths = split_csv(csv);
    runner::SweepResult merged;
    try {
      merged = runner::merge_shards(spec, shard_paths);
    } catch (const std::exception& e) {
      std::cerr << "merge failed: " << e.what() << "\n";
      return 1;
    }
    const obs::RunMeta meta = obs::capture_run_meta();
    std::string path = flags.get_string("json");
    if (path.empty()) path = runner::default_json_path(spec);
    if (!runner::write_json_file(path, spec, merged, &meta)) {
      std::cerr << "cannot write " << path
                << " (shard files are untouched; rerun --merge after fixing "
                   "the destination)\n";
      return 1;
    }
    std::cerr << "merged " << shard_paths.size() << " shards into " << path
              << "\n";
    return 0;
  }

  int shard_index = 0;
  int shard_count = 1;
  if (const auto& text = flags.get_string("shard"); !text.empty()) {
    const std::size_t slash = text.find('/');
    const auto i = slash == std::string::npos
                       ? std::nullopt
                       : parse_number(text.substr(0, slash));
    const auto k = slash == std::string::npos
                       ? std::nullopt
                       : parse_number(text.substr(slash + 1));
    if (!i || !k || *k < 1 || *i < 0 || *i >= *k ||
        *i != static_cast<int>(*i) || *k != static_cast<int>(*k)) {
      std::cerr << "bad --shard '" << text << "' (want i/k with 0 <= i < k)\n";
      return 1;
    }
    shard_index = static_cast<int>(*i);
    shard_count = static_cast<int>(*k);
  }

  // The output path anchors the default checkpoint directory, so shard
  // processes sharing a working directory never collide.
  std::string path = flags.get_string("json");
  if (path.empty()) {
    path = shard_count > 1
               ? runner::default_shard_path(spec, shard_index, shard_count)
               : runner::default_json_path(spec);
  }

  runner::SweepOptions options;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  options.resume = flags.get_bool("resume");
  options.reuse_builds = flags.get_bool("reuse-builds");
  options.checkpoint_dir = flags.get_string("checkpoint-dir");
  if (options.checkpoint_dir.empty()) options.checkpoint_dir = path + ".ckpt";
  if (options.checkpoint_dir == "none") options.checkpoint_dir.clear();
  if (options.resume && options.checkpoint_dir.empty()) {
    std::cerr << "--resume needs a checkpoint directory\n";
    return 1;
  }

  const runner::SweepRunner sweep_runner(
      static_cast<int>(flags.get_int("jobs")));
  const std::size_t cell_count = runner::expand_grid(spec).size();
  std::cerr << "sweep '" << spec.name << "': " << cell_count << " cells x "
            << spec.seeds << " seeds on " << sweep_runner.workers()
            << " workers";
  if (shard_count > 1) {
    std::cerr << " (shard " << shard_index << "/" << shard_count << ")";
  }
  std::cerr << "\n";

  // The runner reports completions from worker threads concurrently;
  // ProgressPrinter serializes the stream writes (a bare cerr << "\r..."
  // here used to interleave partial lines under load).
  runner::ProgressPrinter progress(std::cerr, "jobs ");
  runner::SweepResult result;
  runner::ShardFile shard;
  try {
    if (shard_count > 1) {
      shard.shard_index = shard_index;
      shard.shard_count = shard_count;
      shard.slots = sweep_runner.run_slots(spec, options, std::ref(progress));
    } else {
      result = sweep_runner.run(spec, options, std::ref(progress));
    }
    progress.finish();
  } catch (const std::exception& e) {
    progress.finish();
    std::cerr << "sweep failed: " << e.what() << "\n";
    return 1;
  }

  if (shard_count > 1) {
    if (!runner::write_shard_file(path, runner::grid_fingerprint(spec),
                                  shard)) {
      std::cerr << "cannot write " << path << "\n";
      if (!options.checkpoint_dir.empty()) {
        std::cerr << "completed jobs are checkpointed in "
                  << options.checkpoint_dir
                  << "; rerun with --resume to re-emit without recomputing\n";
      }
      return 1;
    }
    std::cerr << "wrote " << path << " (" << shard.slots.size()
              << " of " << cell_count * static_cast<std::size_t>(spec.seeds)
              << " jobs; merge all " << shard_count
              << " shard files with --merge)\n";
    // The shard file now holds everything the checkpoints held.
    if (!options.checkpoint_dir.empty()) {
      runner::CheckpointStore(options.checkpoint_dir, "").remove_all();
    }
    return 0;
  }

  // Terminal summary: sorted-λ means at the paper's error-bar indices.
  if (!result.cells.empty()) {
    const std::size_t n = result.cells.front().curve.mean.size();
    std::vector<std::string> header = {"cell"};
    for (const std::size_t idx : metrics::errorbar_indices(n)) {
      header.push_back("node " + std::to_string(idx));
    }
    header.push_back("mean");
    util::Table table(header);
    for (const auto& cell : result.cells) {
      std::vector<std::string> row = {cell.cell.label};
      if (cell.curve.mean.size() == n) {
        for (const std::size_t idx : metrics::errorbar_indices(n)) {
          row.push_back(util::fmt(cell.curve.mean[idx]));
        }
      } else {
        // Mixed-n grids: per-cell indices differ, show the mean only.
        for (std::size_t i = 0; i < metrics::errorbar_indices(n).size(); ++i) {
          row.push_back("-");
        }
      }
      row.push_back(util::fmt(metrics::curve_mean(cell.curve)));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  // Provenance rides in a separate top-level `meta` member; the curve cells
  // above it stay byte-identical across telemetry settings and --jobs (CI
  // strips `meta` before diffing).
  const obs::RunMeta meta = obs::capture_run_meta();
  if (!runner::write_json_file(path, spec, result, &meta)) {
    // An unwritable destination must not discard hours of computed cells:
    // the per-job checkpoints survive, so a --resume rerun re-emits the
    // identical file from disk without recomputing anything.
    std::cerr << "cannot write " << path << "\n";
    if (!options.checkpoint_dir.empty()) {
      std::cerr << "completed jobs are checkpointed in "
                << options.checkpoint_dir
                << "; fix the destination and rerun with --resume to re-emit "
                   "without recomputing\n";
    }
    return 1;
  }
  std::cerr << "wrote " << path << "\n";
  // The result file now holds everything the checkpoints held.
  if (!options.checkpoint_dir.empty()) {
    runner::CheckpointStore(options.checkpoint_dir, "").remove_all();
  }

  if (!trace_path.empty()) {
    if (!obs::Tracer::instance().finish()) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    std::cerr << "wrote " << trace_path << "\n";
  }
  if (flags.get_bool("metrics")) {
    const obs::MetricsSnapshot snapshot = obs::Registry::instance().scrape();
    std::cerr << "telemetry counters"
              << (obs::telemetry_compiled() ? ":" : " (compiled out):")
              << "\n";
    for (const auto& [name, value] : snapshot.counters) {
      std::cerr << "  " << name << " = " << value << "\n";
    }
    for (const auto& [name, hist] : snapshot.histograms) {
      std::cerr << "  " << name << " count=" << hist.count
                << " sum=" << hist.sum << "\n";
    }
  }
  return 0;
}
