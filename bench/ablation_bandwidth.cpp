// Ablation: bandwidth heterogeneity (§3.3's measurement discussion). With
// 1 MB blocks and node bandwidths log-uniform in [3, 186] Mbit/s, the
// transmission term dominates low-bandwidth links. Perigee's timestamps
// automatically fold bandwidth in — no explicit bandwidth probing — so it
// should keep (and even grow) its advantage, while geography-based selection
// remains bandwidth-blind.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 40, 2);
  flags.add_double("block_kb", 1000.0, "block size in KB");
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);

  std::vector<bench::NamedCurve> json_curves;
  for (const bool heterogeneous : {false, true}) {
    core::ExperimentConfig config = bench::config_from_flags(flags);
    config.net.heterogeneous_bandwidth = heterogeneous;
    config.net.block_size_kb = heterogeneous ? flags.get_double("block_kb")
                                             : 0.0;

    util::print_banner(
        std::cout, heterogeneous
                       ? "Ablation - 1MB blocks, bandwidth 3-186 Mbit/s"
                       : "Ablation - baseline (small blocks, uniform bw)");
    util::Table table({"algorithm", "median lambda90", "vs random"});
    metrics::Curve random;
    for (const auto algorithm :
         {core::Algorithm::Random, core::Algorithm::Geographic,
          core::Algorithm::PerigeeSubset}) {
      config.algorithm = algorithm;
      const auto result = core::run_multi_seed(config, seeds, jobs);
      if (algorithm == core::Algorithm::Random) random = result.curve;
      json_curves.push_back(
          {std::string(heterogeneous ? "hetero " : "baseline ") +
               std::string(core::algorithm_name(algorithm)),
           result.curve});
      const std::size_t mid = result.curve.mean.size() / 2;
      table.add_row(
          {std::string(core::algorithm_name(algorithm)),
           util::fmt(result.curve.mean[mid]),
           util::fmt(
               100.0 * metrics::improvement_at(result.curve, random, mid), 1) +
               "%"});
      std::cerr << "done: " << core::algorithm_name(algorithm) << "\n";
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: with 1MB blocks the transmission term "
               "(worst-of-pair bandwidth) dominates every hop, compressing "
               "all gains — but Perigee, whose timestamps fold bandwidth in "
               "automatically, retains roughly twice the advantage of the "
               "bandwidth-blind geographic policy.\n";
  if (!bench::write_json_if_requested(flags, "Ablation - bandwidth heterogeneity",
                                 json_curves)) return 1;
  return 0;
}
