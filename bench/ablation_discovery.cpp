// Ablation: partial views (addrMan). The paper's evaluation assumes every
// node knows all peer addresses; real deployments bootstrap a bounded
// address book and refresh it by gossip. Sweep the book capacity and check
// how much of Perigee's advantage survives.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 40, 2);
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);

  // Full-knowledge baselines for context.
  core::ExperimentConfig base = bench::config_from_flags(flags);
  base.algorithm = core::Algorithm::Random;
  const auto random = core::run_multi_seed(base, seeds, jobs);
  base.algorithm = core::Algorithm::PerigeeSubset;
  const auto full_view = core::run_multi_seed(base, seeds, jobs);
  const std::size_t mid = random.curve.mean.size() / 2;

  util::print_banner(std::cout,
                     "Ablation - peer discovery with bounded address books "
                     "(perigee-subset)");
  util::Table table({"address book", "median lambda90", "vs random"});
  std::vector<bench::NamedCurve> json_curves = {
      {"random", random.curve}, {"full knowledge", full_view.curve}};
  table.add_row({"(random baseline)", util::fmt(random.curve.mean[mid]),
                 "0.0%"});
  table.add_row(
      {"full knowledge", util::fmt(full_view.curve.mean[mid]),
       util::fmt(
           100.0 * metrics::improvement_at(full_view.curve, random.curve, mid),
           1) +
           "%"});
  for (std::size_t capacity : {10u, 25u, 50u, 100u, 200u}) {
    core::ExperimentConfig config = bench::config_from_flags(flags);
    config.algorithm = core::Algorithm::PerigeeSubset;
    config.partial_view = true;
    config.addrman_capacity = capacity;
    config.addrman_bootstrap = std::min<std::size_t>(capacity / 2 + 1, 30);
    const auto result = core::run_multi_seed(config, seeds, jobs);
    json_curves.push_back(
        {"capacity=" + std::to_string(capacity), result.curve});
    table.add_row(
        {std::to_string(capacity) + " addrs",
         util::fmt(result.curve.mean[mid]),
         util::fmt(100.0 * metrics::improvement_at(result.curve, random.curve,
                                                   mid),
                   1) +
             "%"});
    std::cerr << "done: capacity=" << capacity << "\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: even small address books recover the "
               "full-knowledge advantage — per-round ADDR gossip keeps "
               "refreshing the candidate pool, so exploration only needs "
               "*some* randomness, not a global view. The \"every node "
               "knows all IPs\" assumption of the paper's evaluation is "
               "thus harmless.\n";
  if (!bench::write_json_if_requested(flags, "Ablation - peer discovery",
                                 json_curves)) return 1;
  return 0;
}
