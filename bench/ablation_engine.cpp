// Ablation: does the fast-engine abstraction change Perigee's outcome?
// Train Perigee-Subset (a) on the fast engine's delivery times and (b) on
// message-level INV timestamps from the gossip engine, then evaluate both
// learned topologies with the same metric.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 400, 25, 2);
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);

  core::ExperimentConfig config = bench::config_from_flags(flags);
  config.algorithm = core::Algorithm::Random;
  const auto random = core::run_multi_seed(config, seeds, jobs);
  const std::size_t mid = random.curve.mean.size() / 2;

  util::print_banner(std::cout,
                     "Ablation - learning engine (perigee-subset)");
  util::Table table({"observation source", "median lambda90", "vs random"});
  std::vector<bench::NamedCurve> json_curves = {{"random", random.curve}};
  table.add_row({"(random baseline)", util::fmt(random.curve.mean[mid]),
                 "0.0%"});
  for (const bool message_level : {false, true}) {
    config.algorithm = core::Algorithm::PerigeeSubset;
    config.message_level = message_level;
    const auto result = core::run_multi_seed(config, seeds, jobs);
    json_curves.push_back(
        {message_level ? "gossip" : "fast", result.curve});
    table.add_row(
        {message_level ? "gossip INV timestamps" : "fast engine deliveries",
         util::fmt(result.curve.mean[mid]),
         util::fmt(100.0 * metrics::improvement_at(result.curve, random.curve,
                                                   mid),
                   1) +
             "%"});
    std::cerr << "done: message_level=" << message_level << "\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: both observation sources rank neighbors by "
               "the same signal, so the learned improvements agree closely - "
               "validating the fast abstraction used by the figure benches.\n";
  if (!bench::write_json_if_requested(flags, "Ablation - learning engine",
                                 json_curves)) return 1;
  return 0;
}
