// Ablation: the exploration/exploitation balance of Algorithm 1. ev random
// dials per round, keeping dout fixed at 8 (so keep = 8 - ev). ev = 0 means
// pure exploitation (can get stuck with the initial random peers); large ev
// keeps too much of the degree budget random.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 40, 2);
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);

  util::print_banner(
      std::cout, "Ablation - exploration slots ev (perigee-subset, dout = 8)");
  util::Table table({"ev", "keep", "median lambda90", "mean lambda90"});
  std::vector<bench::NamedCurve> json_curves;
  for (int explore : {0, 1, 2, 4}) {
    core::ExperimentConfig config = bench::config_from_flags(flags);
    config.algorithm = core::Algorithm::PerigeeSubset;
    config.params.explore = explore;
    config.params.keep = config.limits.out_cap - explore;
    const auto result = core::run_multi_seed(config, seeds, jobs);
    json_curves.push_back({"ev=" + std::to_string(explore), result.curve});
    const std::size_t mid = result.curve.mean.size() / 2;
    table.add_row({std::to_string(explore),
                   std::to_string(config.params.keep),
                   util::fmt(result.curve.mean[mid]),
                   util::fmt(metrics::curve_mean(result.curve))});
    std::cerr << "done: ev=" << explore << "\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: a small positive ev (the paper uses 2) "
               "beats both extremes.\n";
  if (!bench::write_json_if_requested(flags, "Ablation - exploration slots",
                                 json_curves)) return 1;
  return 0;
}
