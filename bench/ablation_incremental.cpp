// Ablation: incremental deployment (§1.2). A fraction of nodes runs
// Perigee-Subset while the rest keeps static random neighbors. Adopters
// should see better delays than holdouts at every adoption level — the
// protocol needs no flag day.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 40, 1);
  if (!flags.parse(argc, argv)) return 1;

  util::print_banner(std::cout,
                     "Ablation - incremental deployment of perigee-subset");
  util::Table table({"adopters", "adopter mean lambda90",
                     "holdout mean lambda90", "adopter advantage"});
  for (double fraction : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    core::ExperimentConfig config = bench::config_from_flags(flags);
    const auto result = core::run_incremental(config, fraction);
    const double adopters = util::mean(result.lambda_adopters);
    const double holdouts = util::mean(result.lambda_others);
    table.add_row({util::fmt(100.0 * fraction, 0) + "%", util::fmt(adopters),
                   util::fmt(holdouts),
                   util::fmt(100.0 * (1.0 - adopters / holdouts), 1) + "%"});
    std::cerr << "done: fraction=" << fraction << "\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: a positive adopter advantage at every "
               "adoption level - following Perigee pays off unilaterally.\n";
  return 0;
}
