// Ablation: incremental deployment (§1.2). A fraction of nodes runs
// Perigee-Subset while the rest keeps static random neighbors. Adopters
// should see better delays than holdouts at every adoption level — the
// protocol needs no flag day.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 40, 1);
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);

  util::print_banner(std::cout,
                     "Ablation - incremental deployment of perigee-subset");
  util::Table table({"adopters", "adopter mean lambda90",
                     "holdout mean lambda90", "adopter advantage"});
  std::vector<bench::NamedCurve> json_curves;
  for (double fraction : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    core::ExperimentConfig config = bench::config_from_flags(flags);
    const auto result =
        core::run_incremental_multi_seed(config, fraction, seeds, jobs);
    const double adopters = metrics::curve_mean(result.adopters);
    const double holdouts = metrics::curve_mean(result.others);
    table.add_row({util::fmt(100.0 * fraction, 0) + "%", util::fmt(adopters),
                   util::fmt(holdouts),
                   util::fmt(100.0 * (1.0 - adopters / holdouts), 1) + "%"});
    const std::string prefix = "f=" + util::fmt(fraction, 2) + " ";
    json_curves.push_back({prefix + "adopters", result.adopters});
    json_curves.push_back({prefix + "holdouts", result.others});
    std::cerr << "done: fraction=" << fraction << "\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: a positive adopter advantage at every "
               "adoption level - following Perigee pays off unilaterally.\n";
  if (!bench::write_json_if_requested(flags, "Ablation - incremental deployment",
                                 json_curves)) return 1;
  return 0;
}
