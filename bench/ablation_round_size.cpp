// Ablation: blocks per round |B| (§4.2.2's noise-vs-convergence trade-off).
// The total block budget is held constant, so small rounds mean many noisy
// updates and large rounds mean few well-estimated ones.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 40, 2);  // budget = 40 * 100 blocks
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);
  const int budget =
      static_cast<int>(flags.get_int("rounds")) * net::kDefaultBlocksPerRound;

  std::vector<bench::NamedCurve> json_curves;
  for (const auto algorithm :
       {core::Algorithm::PerigeeVanilla, core::Algorithm::PerigeeSubset}) {
    util::print_banner(std::cout,
                       std::string("Ablation - round size |B| (") +
                           std::string(core::algorithm_name(algorithm)) +
                           ", fixed budget " + std::to_string(budget) +
                           " blocks)");
    util::Table table({"|B|", "rounds", "median lambda90", "mean lambda90"});
    for (int blocks : {10, 50, 100, 200}) {
      core::ExperimentConfig config = bench::config_from_flags(flags);
      config.algorithm = algorithm;
      config.blocks_per_round = blocks;
      config.rounds = budget / blocks;
      const auto result = core::run_multi_seed(config, seeds, jobs);
      json_curves.push_back({std::string(core::algorithm_name(algorithm)) +
                                 " |B|=" + std::to_string(blocks),
                             result.curve});
      const std::size_t mid = result.curve.mean.size() / 2;
      table.add_row({std::to_string(blocks), std::to_string(config.rounds),
                     util::fmt(result.curve.mean[mid]),
                     util::fmt(metrics::curve_mean(result.curve))});
      std::cerr << "done: |B|=" << blocks << "\n";
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: very small |B| scores on noisy "
               "percentiles and churns good neighbors; very large |B| "
               "converges in too few updates. The paper's |B| = 100 sits "
               "near the sweet spot.\n";
  if (!bench::write_json_if_requested(flags, "Ablation - round size", json_curves)) return 1;
  return 0;
}
