// Ablation: UCB's confidence constant c (Eq. 3-4). Small c evicts neighbors
// on noise; huge c never separates the confidence intervals and the
// topology stays frozen at the random start.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 500, 30, 1);
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);

  // Random baseline for context.
  core::ExperimentConfig base = bench::config_from_flags(flags);
  base.algorithm = core::Algorithm::Random;
  const auto random = core::run_multi_seed(base, seeds, jobs);
  const std::size_t mid = random.curve.mean.size() / 2;

  util::print_banner(std::cout, "Ablation - UCB confidence constant c (ms)");
  util::Table table({"c", "median lambda90", "vs random"});
  std::vector<bench::NamedCurve> json_curves = {{"random", random.curve}};
  table.add_row({"(random)", util::fmt(random.curve.mean[mid]), "0.0%"});
  for (double c : {30.0, 100.0, 300.0, 1000.0, 3000.0}) {
    core::ExperimentConfig config = bench::config_from_flags(flags);
    config.algorithm = core::Algorithm::PerigeeUcb;
    config.params.ucb_c = c;
    const auto result = core::run_multi_seed(config, seeds, jobs);
    json_curves.push_back({"c=" + util::fmt(c, 0), result.curve});
    table.add_row(
        {util::fmt(c, 0), util::fmt(result.curve.mean[mid]),
         util::fmt(100.0 * metrics::improvement_at(result.curve, random.curve,
                                                   mid),
                   1) +
             "%"});
    std::cerr << "done: c=" << c << "\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: intermediate c wins; c -> infinity "
               "degenerates to the (frozen) random topology.\n";
  if (!bench::write_json_if_requested(flags, "Ablation - UCB confidence constant",
                                 json_curves)) return 1;
  return 0;
}
