// Explicit-measurement baselines vs Perigee (§1's robustness argument).
// Coordinate-greedy estimates Vivaldi coordinates from latency probes and
// dials the nearest peers by estimate; the k-nearest oracle uses true
// latencies (an infeasible upper bound for any coordinate scheme). Both see
// only propagation latency — Perigee's timestamp scoring additionally folds
// in validation speed, bandwidth and hash-power placement, and needs no
// spoofable probe machinery.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 40, 2);
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);

  core::ExperimentConfig config = bench::config_from_flags(flags);

  const std::pair<core::Algorithm, const char*> algorithms[] = {
      {core::Algorithm::Random, "random"},
      {core::Algorithm::Geographic, "geographic"},
      {core::Algorithm::CoordinateGreedy, "coordinate-greedy (vivaldi)"},
      {core::Algorithm::KNearestOracle, "k-nearest (true-latency oracle)"},
      {core::Algorithm::PerigeeSubset, "perigee-subset"},
  };
  std::vector<bench::NamedCurve> curves;
  for (const auto& [algorithm, name] : algorithms) {
    config.algorithm = algorithm;
    curves.push_back({name, core::run_multi_seed(config, seeds, jobs).curve});
    std::cerr << "done: " << name << "\n";
  }
  bench::print_curves(std::cout,
                      "Explicit-coordinate baselines vs Perigee, 90% "
                      "coverage (ms)",
                      curves);
  bench::print_improvements(std::cout, curves);
  std::cout << "\nExpected shape: coordinate-greedy lands close to the "
               "true-latency oracle (Vivaldi embeds well) yet both trail "
               "perigee-subset - latency is not the whole objective.\n";
  if (!bench::write_json_if_requested(flags, "Explicit-coordinate baselines",
                                 curves)) return 1;
  return 0;
}
