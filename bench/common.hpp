// Shared plumbing for the figure-reproduction benches: flag handling,
// multi-seed curve collection, and paper-style table printing (sorted λ
// curves sampled at the paper's error-bar node indices).
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "metrics/curves.hpp"
#include "obs/meta.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/json.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace perigee::bench {

struct NamedCurve {
  std::string name;
  metrics::Curve curve;
};

// Registers the flags shared by every figure bench, including the runner
// plumbing: --jobs N fans multi-seed runs across a work-stealing pool
// (results are bit-identical at any value), --json <path> dumps the curves.
inline void add_common_flags(util::Flags& flags, int default_nodes,
                             int default_rounds, int default_seeds) {
  flags.add_int("nodes", default_nodes, "network size");
  flags.add_int("rounds", default_rounds,
                "learning rounds (x100 blocks) for adaptive algorithms");
  flags.add_int("seeds", default_seeds, "independent repetitions");
  flags.add_int("seed", 1, "base seed");
  flags.add_double("coverage", 0.90, "hash-power coverage for lambda");
  flags.add_int("jobs", 0, "worker threads (0 = all hardware threads)");
  flags.add_string("json", "", "also write curves to this JSON file");
  flags.add_string("trace", "",
                   "write a Chrome trace_event JSON of the run to this path "
                   "(requires a PERIGEE_TELEMETRY build)");
}

// RAII driver for the shared --trace flag: arms the span tracer for the
// bench's lifetime and writes the trace file (crash-safe temp-and-rename)
// on scope exit. Construct right after flags.parse().
class TraceSession {
 public:
  explicit TraceSession(const util::Flags& flags)
      : path_(flags.get_string("trace")) {
    if (path_.empty()) return;
    if (!obs::Tracer::instance().start(path_)) {
      std::cerr << "--trace ignored: requires a PERIGEE_TELEMETRY=ON build\n";
      path_.clear();
    }
  }
  ~TraceSession() {
    if (path_.empty()) return;
    if (obs::Tracer::instance().finish()) {
      std::cerr << "wrote " << path_ << "\n";
    } else {
      std::cerr << "cannot write " << path_ << "\n";
    }
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string path_;
};

inline int jobs_from_flags(const util::Flags& flags) {
  return static_cast<int>(flags.get_int("jobs"));
}

inline core::ExperimentConfig config_from_flags(const util::Flags& flags) {
  core::ExperimentConfig config;
  config.net.n = static_cast<std::size_t>(flags.get_int("nodes"));
  config.rounds = static_cast<int>(flags.get_int("rounds"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.coverage = flags.get_double("coverage");
  return config;
}

// Ideal curve via run_ideal across seeds (parallel across seeds when
// jobs != 1, same determinism contract as run_multi_seed).
inline metrics::Curve ideal_curve(const core::ExperimentConfig& config,
                                  int num_seeds, int jobs = 1) {
  return core::run_ideal_multi_seed(config, num_seeds, jobs);
}

// Writes named curve sets as deterministic JSON when --json was given.
// Each set is {"name": ..., "curves": [{"name", "mean", "stddev"}, ...]}.
// Returns false when the file cannot be written, so benches can exit
// nonzero instead of silently succeeding in a pipeline.
struct CurveSet {
  std::string name;
  const std::vector<NamedCurve>* curves = nullptr;
};

inline bool write_json_if_requested(const util::Flags& flags,
                                    const std::string& title,
                                    const std::vector<CurveSet>& sets) {
  const std::string& path = flags.get_string("json");
  if (path.empty()) return true;
  // Temp-and-rename via write_file_atomic: an interrupted bench never
  // leaves a truncated curve file for a plotting pipeline to choke on.
  const bool ok = runner::write_file_atomic(path, [&](std::ostream& os) {
    runner::JsonWriter w(os);
    w.begin_object();
    w.field("title", title);
    // Same provenance block the sweep JSON carries; the curve members that
    // follow stay byte-stable, so strip `meta` before byte-diffing files.
    const obs::RunMeta meta = obs::capture_run_meta();
    w.key("meta");
    w.begin_object();
    obs::write_run_meta_fields(w, meta);
    w.end_object();
    for (const CurveSet& set : sets) {
      w.key(set.name);
      w.begin_array();
      for (const NamedCurve& c : *set.curves) {
        w.begin_object();
        w.field("name", c.name);
        w.field("mean", c.curve.mean);
        w.field("stddev", c.curve.stddev);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
    os << '\n';
  });
  if (!ok) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  std::cerr << "wrote " << path << "\n";
  return true;
}

inline bool write_json_if_requested(const util::Flags& flags,
                                    const std::string& title,
                                    const std::vector<NamedCurve>& curves) {
  return write_json_if_requested(flags, title, {{"curves", &curves}});
}

// Prints the sorted-λ curves sampled at the paper's error-bar indices
// (nodes 100/300/500/700/900 scaled to n), one row per index, one column
// per algorithm, "mean ±stddev" cells — the textual analogue of Figure 3.
inline void print_curves(std::ostream& os, const std::string& title,
                         const std::vector<NamedCurve>& curves) {
  util::print_banner(os, title);
  const std::size_t n = curves.front().curve.mean.size();
  std::vector<std::string> header = {"node"};
  for (const auto& c : curves) header.push_back(c.name);
  util::Table table(header);
  for (std::size_t idx : metrics::errorbar_indices(n)) {
    std::vector<std::string> row = {std::to_string(idx)};
    for (const auto& c : curves) {
      row.push_back(util::fmt(c.curve.mean[idx]) + " ±" +
                    util::fmt(c.curve.stddev[idx]));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> mean_row = {"mean"};
  for (const auto& c : curves) {
    mean_row.push_back(util::fmt(metrics::curve_mean(c.curve)));
  }
  table.add_row(std::move(mean_row));
  table.print(os);
}

// Improvement of each curve vs the first (baseline) at the median node.
inline void print_improvements(std::ostream& os,
                               const std::vector<NamedCurve>& curves) {
  const auto& base = curves.front().curve;
  const std::size_t mid = base.mean.size() / 2;
  os << "improvement vs " << curves.front().name << " at node " << mid
     << ":\n";
  for (std::size_t i = 1; i < curves.size(); ++i) {
    os << "  " << curves[i].name << ": "
       << util::fmt(100.0 * metrics::improvement_at(curves[i].curve, base, mid),
                    1)
       << "%\n";
  }
}

}  // namespace perigee::bench
