// Shared plumbing for the figure-reproduction benches: flag handling,
// multi-seed curve collection, and paper-style table printing (sorted λ
// curves sampled at the paper's error-bar node indices).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "metrics/curves.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace perigee::bench {

struct NamedCurve {
  std::string name;
  metrics::Curve curve;
};

// Registers the flags shared by every figure bench.
inline void add_common_flags(util::Flags& flags, int default_nodes,
                             int default_rounds, int default_seeds) {
  flags.add_int("nodes", default_nodes, "network size");
  flags.add_int("rounds", default_rounds,
                "learning rounds (x100 blocks) for adaptive algorithms");
  flags.add_int("seeds", default_seeds, "independent repetitions");
  flags.add_int("seed", 1, "base seed");
  flags.add_double("coverage", 0.90, "hash-power coverage for lambda");
}

inline core::ExperimentConfig config_from_flags(const util::Flags& flags) {
  core::ExperimentConfig config;
  config.net.n = static_cast<std::size_t>(flags.get_int("nodes"));
  config.rounds = static_cast<int>(flags.get_int("rounds"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.coverage = flags.get_double("coverage");
  return config;
}

// Ideal curve via run_ideal across seeds.
inline metrics::Curve ideal_curve(core::ExperimentConfig config,
                                  int num_seeds) {
  std::vector<std::vector<double>> runs;
  const std::uint64_t base = config.seed;
  for (int s = 0; s < num_seeds; ++s) {
    config.seed = base + static_cast<std::uint64_t>(s);
    runs.push_back(core::run_ideal(config));
  }
  return metrics::aggregate_sorted_curves(std::move(runs));
}

// Prints the sorted-λ curves sampled at the paper's error-bar indices
// (nodes 100/300/500/700/900 scaled to n), one row per index, one column
// per algorithm, "mean ±stddev" cells — the textual analogue of Figure 3.
inline void print_curves(std::ostream& os, const std::string& title,
                         const std::vector<NamedCurve>& curves) {
  util::print_banner(os, title);
  const std::size_t n = curves.front().curve.mean.size();
  std::vector<std::string> header = {"node"};
  for (const auto& c : curves) header.push_back(c.name);
  util::Table table(header);
  for (std::size_t idx : metrics::errorbar_indices(n)) {
    std::vector<std::string> row = {std::to_string(idx)};
    for (const auto& c : curves) {
      row.push_back(util::fmt(c.curve.mean[idx]) + " ±" +
                    util::fmt(c.curve.stddev[idx]));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> mean_row = {"mean"};
  for (const auto& c : curves) {
    mean_row.push_back(util::fmt(metrics::curve_mean(c.curve)));
  }
  table.add_row(std::move(mean_row));
  table.print(os);
}

// Improvement of each curve vs the first (baseline) at the median node.
inline void print_improvements(std::ostream& os,
                               const std::vector<NamedCurve>& curves) {
  const auto& base = curves.front().curve;
  const std::size_t mid = base.mean.size() / 2;
  os << "improvement vs " << curves.front().name << " at node " << mid
     << ":\n";
  for (std::size_t i = 1; i < curves.size(); ++i) {
    os << "  " << curves[i].name << ": "
       << util::fmt(100.0 * metrics::improvement_at(curves[i].curve, base, mid),
                    1)
       << "%\n";
  }
}

}  // namespace perigee::bench
