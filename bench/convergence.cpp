// Convergence behaviour (§5.2 text): the 90-percentile delays converge as
// rounds accumulate; the 50-percentile delays need not improve monotonically
// because Perigee optimizes the 90th percentile only.
#include "common.hpp"
#include "metrics/eval.hpp"
#include "sim/rounds.hpp"
#include "topo/builders.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 50, 1);
  flags.add_int("checkpoint_every", 10, "evaluate every N rounds");
  if (!flags.parse(argc, argv)) return 1;

  for (const auto algorithm :
       {core::Algorithm::PerigeeVanilla, core::Algorithm::PerigeeSubset}) {
    core::ExperimentConfig config = bench::config_from_flags(flags);
    config.algorithm = algorithm;

    core::Scenario scenario = core::build_scenario(config);
    core::build_initial_topology(config, scenario);
    sim::RoundRunner runner(
        scenario.network, scenario.topology,
        core::make_selectors(scenario.network.size(), algorithm,
                             config.params),
        config.blocks_per_round, config.seed);

    util::print_banner(std::cout,
                       std::string("convergence - ") +
                           std::string(core::algorithm_name(algorithm)));
    util::Table table({"round", "mean lambda90", "median lambda90",
                       "mean lambda50"});
    const int every = static_cast<int>(flags.get_int("checkpoint_every"));
    for (int round = 0; round <= config.rounds; round += every) {
      if (round > 0) runner.run_rounds(every);
      const auto l90 = metrics::eval_all_sources(scenario.topology,
                                                 scenario.network, 0.9);
      const auto l50 = metrics::eval_all_sources(scenario.topology,
                                                 scenario.network, 0.5);
      table.add_row({std::to_string(round), util::fmt(util::mean(l90)),
                     util::fmt(util::percentile(l90, 0.5)),
                     util::fmt(util::mean(l50))});
    }
    table.print(std::cout);
  }
  return 0;
}
