// Convergence behaviour (§5.2 text): the 90-percentile delays converge as
// rounds accumulate; the 50-percentile delays need not improve monotonically
// because Perigee optimizes the 90th percentile only. The two algorithm
// traces are independent, so they run as parallel jobs on the sweep pool.
#include <array>

#include "common.hpp"
#include "metrics/eval.hpp"
#include "runner/thread_pool.hpp"
#include "sim/rounds.hpp"
#include "topo/builders.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 50, 1);
  flags.add_int("checkpoint_every", 10, "evaluate every N rounds");
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int jobs = bench::jobs_from_flags(flags);
  const int every = static_cast<int>(flags.get_int("checkpoint_every"));

  const std::array algorithms = {core::Algorithm::PerigeeVanilla,
                                 core::Algorithm::PerigeeSubset};
  struct Trace {
    std::vector<std::vector<std::string>> rows;
    std::vector<double> mean90;  // one entry per checkpoint, for --json
  };
  std::array<Trace, algorithms.size()> traces;

  runner::ThreadPool pool(std::min<unsigned>(
      runner::resolve_jobs(jobs), static_cast<unsigned>(algorithms.size())));
  runner::parallel_for(pool, algorithms.size(), [&](std::size_t i) {
    const auto algorithm = algorithms[i];
    core::ExperimentConfig config = bench::config_from_flags(flags);
    config.algorithm = algorithm;

    core::Scenario scenario = core::build_scenario(config);
    core::build_initial_topology(config, scenario);
    sim::RoundRunner runner(
        scenario.network, scenario.topology,
        core::make_selectors(scenario.network.size(), algorithm,
                             config.params),
        config.blocks_per_round, config.seed);

    for (int round = 0; round <= config.rounds; round += every) {
      if (round > 0) runner.run_rounds(every);
      const auto l90 = metrics::eval_all_sources(scenario.topology,
                                                 scenario.network, 0.9);
      const auto l50 = metrics::eval_all_sources(scenario.topology,
                                                 scenario.network, 0.5);
      traces[i].rows.push_back({std::to_string(round),
                                util::fmt(util::mean(l90)),
                                util::fmt(util::percentile(l90, 0.5)),
                                util::fmt(util::mean(l50))});
      traces[i].mean90.push_back(util::mean(l90));
    }
  });

  std::vector<bench::NamedCurve> json_curves;
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    util::print_banner(std::cout,
                       std::string("convergence - ") +
                           std::string(core::algorithm_name(algorithms[i])));
    util::Table table({"round", "mean lambda90", "median lambda90",
                       "mean lambda50"});
    for (auto& row : traces[i].rows) table.add_row(std::move(row));
    table.print(std::cout);
    // JSON: mean λ90 per checkpoint (the convergence trace itself).
    json_curves.push_back(
        {std::string(core::algorithm_name(algorithms[i])),
         metrics::Curve{traces[i].mean90,
                        std::vector<double>(traces[i].mean90.size(), 0.0)}});
  }
  if (!bench::write_json_if_requested(flags, "Convergence traces (mean lambda90)",
                                 json_curves)) return 1;
  return 0;
}
