// Figure 1: 1000 nodes embedded uniformly in the unit square. With random
// connectivity (3 links per node) the shortest path between two opposite
// corners meanders far beyond the Euclidean distance; a geometric graph
// (threshold connectivity) tracks the geodesic closely.
#include <iostream>

#include "metrics/stretch.hpp"
#include "net/embedding.hpp"
#include "topo/builders.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  flags.add_int("nodes", 1000, "points in the unit square");
  flags.add_int("degree", 3, "random links per node (Figure 1 uses 3)");
  flags.add_int("seed", 1, "seed");
  flags.add_int("sources", 25, "stretch-sample sources");
  if (!flags.parse(argc, argv)) return 1;

  const auto n = static_cast<std::size_t>(flags.get_int("nodes"));
  net::NetworkOptions options;
  options.n = n;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 2;
  options.embed_scale_ms = 1.0;  // distances reported in unit-square units
  const auto network = net::Network::build(options);

  // Corner pair: the nodes closest to (0,0) and (1,1).
  net::NodeId a = 0, b = 0;
  double best_a = 1e18, best_b = 1e18;
  for (net::NodeId v = 0; v < n; ++v) {
    const auto& c = network.profile(v).coords;
    const double da = c[0] * c[0] + c[1] * c[1];
    const double db = (1 - c[0]) * (1 - c[0]) + (1 - c[1]) * (1 - c[1]);
    if (da < best_a) {
      best_a = da;
      a = v;
    }
    if (db < best_b) {
      best_b = db;
      b = v;
    }
  }

  // (a) random topology with `degree` outgoing links per node.
  net::Topology random_topo(
      n, {.out_cap = static_cast<int>(flags.get_int("degree")),
          .in_cap = static_cast<int>(n)});
  util::Rng rng(options.seed);
  topo::build_random(random_topo, rng);

  // (b) geometric graph with the Theorem-2 threshold (x1.2 for connectivity).
  const double r = net::geometric_threshold(n, 2, 1.2);
  net::Topology geo_topo(n, {.out_cap = static_cast<int>(n),
                             .in_cap = static_cast<int>(n)});
  topo::build_geometric_threshold(geo_topo, network, r);

  util::print_banner(std::cout, "Figure 1 - unit-square path stretch");
  std::cout << "corner nodes: (" << network.profile(a).coords[0] << ", "
            << network.profile(a).coords[1] << ") and ("
            << network.profile(b).coords[0] << ", "
            << network.profile(b).coords[1]
            << "), direct distance = " << util::fmt(network.link_ms(a, b), 3)
            << "\n";
  std::cout << "geometric threshold r = " << util::fmt(r, 4) << "\n\n";

  util::Rng s1(7), s2(7);
  const auto random_stats =
      metrics::measure_stretch(random_topo, network, s1,
                               static_cast<std::size_t>(flags.get_int("sources")),
                               2.0 * r);
  const auto geo_stats =
      metrics::measure_stretch(geo_topo, network, s2,
                               static_cast<std::size_t>(flags.get_int("sources")),
                               2.0 * r);

  util::Table table({"topology", "edges", "corner stretch", "median stretch",
                     "p90 stretch", "max"});
  table.add_row({"random (3 links)",
                 std::to_string(random_topo.num_p2p_edges()),
                 util::fmt(metrics::pair_stretch(random_topo, network, a, b), 2),
                 util::fmt(random_stats.p50, 2), util::fmt(random_stats.p90, 2),
                 util::fmt(random_stats.max, 2)});
  table.add_row({"geometric (r)",
                 std::to_string(geo_topo.num_p2p_edges()),
                 util::fmt(metrics::pair_stretch(geo_topo, network, a, b), 2),
                 util::fmt(geo_stats.p50, 2), util::fmt(geo_stats.p90, 2),
                 util::fmt(geo_stats.max, 2)});
  table.print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 1): the random topology's paths "
               "are several times the Euclidean distance; the geometric "
               "graph stays within a small constant.\n";
  return 0;
}
