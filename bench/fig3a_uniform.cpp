// Figure 3(a): minimum delay to reach 90% (and 50%) of the network's hash
// power under uniform hash power, for random, geographic, Kademlia, the
// three Perigee variants and the fully-connected ideal. Sorted per-node
// curves averaged over independent seeds, sampled at the paper's error-bar
// node positions.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 1000, 50, 2);
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);

  core::ExperimentConfig config = bench::config_from_flags(flags);
  config.hash_model = mining::HashPowerModel::Uniform;

  const std::pair<core::Algorithm, const char*> algorithms[] = {
      {core::Algorithm::Random, "random"},
      {core::Algorithm::Geographic, "geographic"},
      {core::Algorithm::Kademlia, "kademlia"},
      {core::Algorithm::PerigeeVanilla, "perigee-vanilla"},
      {core::Algorithm::PerigeeUcb, "perigee-ucb"},
      {core::Algorithm::PerigeeSubset, "perigee-subset"},
  };

  std::vector<bench::NamedCurve> curves90, curves50;
  for (const auto& [algorithm, name] : algorithms) {
    config.algorithm = algorithm;
    auto result = core::run_multi_seed(config, seeds, jobs);
    curves90.push_back({name, std::move(result.curve)});
    curves50.push_back({name, std::move(result.curve50)});
    std::cerr << "done: " << name << "\n";
  }
  curves90.push_back({"ideal", bench::ideal_curve(config, seeds, jobs)});

  bench::print_curves(std::cout,
                      "Figure 3(a) - uniform hash power, 90% coverage (ms)",
                      curves90);
  bench::print_improvements(std::cout, curves90);
  bench::print_curves(std::cout,
                      "Figure 3(a) - uniform hash power, 50% coverage (ms)",
                      curves50);
  if (!bench::write_json_if_requested(flags, "Figure 3(a) - uniform hash power",
                                 {{"curves90", &curves90},
                                  {"curves50", &curves50}})) return 1;
  return 0;
}
