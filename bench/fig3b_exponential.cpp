// Figure 3(b): same comparison as Figure 3(a) but with per-node hash power
// drawn from an exponential distribution (mean 1), normalized to sum to 1.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 40, 2);
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);

  core::ExperimentConfig config = bench::config_from_flags(flags);
  config.hash_model = mining::HashPowerModel::Exponential;

  const std::pair<core::Algorithm, const char*> algorithms[] = {
      {core::Algorithm::Random, "random"},
      {core::Algorithm::Geographic, "geographic"},
      {core::Algorithm::Kademlia, "kademlia"},
      {core::Algorithm::PerigeeVanilla, "perigee-vanilla"},
      {core::Algorithm::PerigeeUcb, "perigee-ucb"},
      {core::Algorithm::PerigeeSubset, "perigee-subset"},
  };

  std::vector<bench::NamedCurve> curves90;
  for (const auto& [algorithm, name] : algorithms) {
    config.algorithm = algorithm;
    auto result = core::run_multi_seed(config, seeds, jobs);
    curves90.push_back({name, std::move(result.curve)});
    std::cerr << "done: " << name << "\n";
  }
  curves90.push_back({"ideal", bench::ideal_curve(config, seeds, jobs)});

  bench::print_curves(
      std::cout, "Figure 3(b) - exponential hash power, 90% coverage (ms)",
      curves90);
  bench::print_improvements(std::cout, curves90);
  if (!bench::write_json_if_requested(
      flags, "Figure 3(b) - exponential hash power", curves90)) return 1;
  return 0;
}
