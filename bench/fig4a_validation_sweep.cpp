// Figure 4(a): block-validation (node) delay scaled to 0.1x, 0.5x, 1x, 5x
// and 10x its default. At small node delay Perigee's learned topology is
// dramatically better than random; as validation dominates, the hop count
// (network diameter) rules and Perigee approaches the random protocol.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 40, 1);
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);

  util::print_banner(std::cout,
                     "Figure 4(a) - validation-delay sweep (median lambda, ms)");
  util::Table table({"scale", "random", "perigee-subset", "ideal",
                     "subset gain"});
  std::vector<bench::NamedCurve> curves;
  for (double scale : {0.1, 0.5, 1.0, 5.0, 10.0}) {
    core::ExperimentConfig config = bench::config_from_flags(flags);
    config.net.validation_scale = scale;

    config.algorithm = core::Algorithm::Random;
    const auto random = core::run_multi_seed(config, seeds, jobs);
    config.algorithm = core::Algorithm::PerigeeSubset;
    const auto subset = core::run_multi_seed(config, seeds, jobs);
    const auto ideal = bench::ideal_curve(config, seeds, jobs);

    const std::size_t mid = random.curve.mean.size() / 2;
    const double gain =
        metrics::improvement_at(subset.curve, random.curve, mid);
    table.add_row({util::fmt(scale, 1) + "x",
                   util::fmt(random.curve.mean[mid]),
                   util::fmt(subset.curve.mean[mid]),
                   util::fmt(ideal.mean[mid]),
                   util::fmt(100.0 * gain, 1) + "%"});
    std::string prefix = "x";
    prefix += util::fmt(scale, 1);
    prefix += ' ';
    curves.push_back({prefix + "random", random.curve});
    curves.push_back({prefix + "perigee-subset", subset.curve});
    curves.push_back({prefix + "ideal", ideal});
    std::cerr << "done: scale " << scale << "\n";
  }
  table.print(std::cout);
  if (!bench::write_json_if_requested(
          flags, "Figure 4(a) - validation-delay sweep", curves)) {
    return 1;
  }
  std::cout << "\nExpected shape (paper §5.3): the gain column shrinks as the\n"
               "validation scale grows - with large node delays the 90th\n"
               "percentile delay is dictated by hop count, which the random\n"
               "topology already minimizes up to constants.\n";
  return 0;
}
