// Figure 4(b): a small set of mining pools (10% of nodes) holds 90% of the
// hash power, and pool-to-pool links are 10x faster than default. Perigee
// learns to sit close to the pools and approaches the fully-connected ideal
// much more closely than the static baselines.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 30, 2);
  flags.add_double("pool_fraction", 0.10, "fraction of nodes in pools");
  flags.add_double("pool_share", 0.90, "hash-power share held by pools");
  flags.add_double("pool_latency_scale", 0.1,
                   "latency multiplier between pool members");
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);

  core::ExperimentConfig config = bench::config_from_flags(flags);
  config.hash_model = mining::HashPowerModel::Pools;
  config.pools.pool_fraction = flags.get_double("pool_fraction");
  config.pools.pool_share = flags.get_double("pool_share");
  config.pool_latency_scale = flags.get_double("pool_latency_scale");

  const std::pair<core::Algorithm, const char*> algorithms[] = {
      {core::Algorithm::Random, "random"},
      {core::Algorithm::Geographic, "geographic"},
      {core::Algorithm::PerigeeSubset, "perigee-subset"},
  };
  std::vector<bench::NamedCurve> curves;
  for (const auto& [algorithm, name] : algorithms) {
    config.algorithm = algorithm;
    curves.push_back({name, core::run_multi_seed(config, seeds, jobs).curve});
    std::cerr << "done: " << name << "\n";
  }
  curves.push_back({"ideal", bench::ideal_curve(config, seeds, jobs)});

  bench::print_curves(std::cout,
                      "Figure 4(b) - mining pools (10% nodes / 90% power), "
                      "90% coverage (ms)",
                      curves);
  bench::print_improvements(std::cout, curves);

  // The paper's reading: Perigee closes most of the random-to-ideal gap.
  const auto& random = curves[0].curve;
  const auto& subset = curves[2].curve;
  const auto& ideal = curves[3].curve;
  const std::size_t mid = random.mean.size() / 2;
  const double closed = (random.mean[mid] - subset.mean[mid]) /
                        (random.mean[mid] - ideal.mean[mid]);
  std::cout << "\nfraction of the random->ideal gap closed by perigee-subset "
               "at the median node: "
            << util::fmt(100.0 * closed, 1) << "%\n";
  if (!bench::write_json_if_requested(flags, "Figure 4(b) - mining pools", curves)) return 1;
  return 0;
}
