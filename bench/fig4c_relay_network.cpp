// Figure 4(c): a bloXroute-like fast block-distribution network — 100 nodes
// wired into a low-latency tree with 10x faster validation — is available to
// every protocol. Perigee discovers and exploits the overlay, closing in on
// the fully-connected bound.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 30, 2);
  flags.add_int("relay_members", 100, "relay overlay size");
  flags.add_double("relay_link_ms", 5.0, "per-hop latency inside the overlay");
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const int seeds = static_cast<int>(flags.get_int("seeds"));
  const int jobs = bench::jobs_from_flags(flags);

  core::ExperimentConfig config = bench::config_from_flags(flags);
  config.relay = true;
  config.relay_config.members =
      static_cast<std::size_t>(flags.get_int("relay_members"));
  config.relay_config.link_ms = flags.get_double("relay_link_ms");

  const std::pair<core::Algorithm, const char*> algorithms[] = {
      {core::Algorithm::Random, "random"},
      {core::Algorithm::Geographic, "geographic"},
      {core::Algorithm::PerigeeSubset, "perigee-subset"},
  };
  std::vector<bench::NamedCurve> curves;
  for (const auto& [algorithm, name] : algorithms) {
    config.algorithm = algorithm;
    curves.push_back({name, core::run_multi_seed(config, seeds, jobs).curve});
    std::cerr << "done: " << name << "\n";
  }
  curves.push_back({"ideal", bench::ideal_curve(config, seeds, jobs)});

  bench::print_curves(
      std::cout,
      "Figure 4(c) - fast relay network present, 90% coverage (ms)", curves);
  bench::print_improvements(std::cout, curves);

  const auto& random = curves[0].curve;
  const auto& subset = curves[2].curve;
  const auto& ideal = curves[3].curve;
  const std::size_t mid = random.mean.size() / 2;
  const double closed = (random.mean[mid] - subset.mean[mid]) /
                        (random.mean[mid] - ideal.mean[mid]);
  std::cout << "\nfraction of the random->ideal gap closed by perigee-subset "
               "at the median node: "
            << util::fmt(100.0 * closed, 1) << "%\n";
  if (!bench::write_json_if_requested(flags, "Figure 4(c) - fast relay network",
                                 curves)) return 1;
  return 0;
}
