// Figure 5: histograms of p2p edge latencies in the final topology of each
// algorithm. Every histogram is bimodal (intra- vs inter-continent links);
// Perigee-Subset concentrates the bulk of its edges at the lower mode —
// nodes learned to keep the neighbors they share cheap links with.
#include "common.hpp"
#include "metrics/edge_hist.hpp"
#include "net/geo.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 30, 1);
  flags.add_int("bins", 24, "histogram bins");
  flags.add_double("mode_cut_ms", 50.0,
                   "latency separating the intra/inter-continent modes");
  if (!flags.parse(argc, argv)) return 1;
  const auto bins = static_cast<std::size_t>(flags.get_int("bins"));
  const double cut = flags.get_double("mode_cut_ms");

  const std::pair<core::Algorithm, const char*> algorithms[] = {
      {core::Algorithm::Random, "random"},
      {core::Algorithm::Geographic, "geographic"},
      {core::Algorithm::KNearestOracle, "geometric (k-nearest)"},
      {core::Algorithm::PerigeeSubset, "perigee-subset"},
  };

  util::Table summary({"algorithm", "edges", "frac < cut", "modes"});
  const double hist_hi = net::max_region_latency_ms() * 1.5;
  for (const auto& [algorithm, name] : algorithms) {
    core::ExperimentConfig config = bench::config_from_flags(flags);
    config.algorithm = algorithm;
    const auto result = core::run_experiment(config);

    util::Histogram hist(0.0, hist_hi, bins);
    hist.add_all(result.edge_latencies);
    util::print_banner(std::cout, std::string("Figure 5 - ") + name);
    std::cout << hist.render(48);
    summary.add_row(
        {name, std::to_string(result.edge_latencies.size()),
         util::fmt(metrics::fraction_below(result.edge_latencies, cut), 3),
         std::to_string(hist.modes().size())});
    std::cerr << "done: " << name << "\n";
  }
  util::print_banner(std::cout, "Figure 5 - summary");
  std::cout << "(cut = " << cut << " ms; paper: all distributions bimodal, "
            << "perigee-subset's mass sits at the lower mode)\n";
  summary.print(std::cout);
  return 0;
}
