// Figure 5: histograms of p2p edge latencies in the final topology of each
// algorithm. Every histogram is bimodal (intra- vs inter-continent links);
// Perigee-Subset concentrates the bulk of its edges at the lower mode —
// nodes learned to keep the neighbors they share cheap links with.
#include <algorithm>

#include "common.hpp"
#include "metrics/edge_hist.hpp"
#include "net/geo.hpp"
#include "runner/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  bench::add_common_flags(flags, 600, 30, 1);
  flags.add_int("bins", 24, "histogram bins");
  flags.add_double("mode_cut_ms", 50.0,
                   "latency separating the intra/inter-continent modes");
  if (!flags.parse(argc, argv)) return 1;
  const bench::TraceSession trace_session(flags);
  const auto bins = static_cast<std::size_t>(flags.get_int("bins"));
  const double cut = flags.get_double("mode_cut_ms");

  const std::pair<core::Algorithm, const char*> algorithms[] = {
      {core::Algorithm::Random, "random"},
      {core::Algorithm::Geographic, "geographic"},
      {core::Algorithm::KNearestOracle, "geometric (k-nearest)"},
      {core::Algorithm::PerigeeSubset, "perigee-subset"},
  };

  util::Table summary({"algorithm", "edges", "frac < cut", "modes"});
  const double hist_hi = net::max_region_latency_ms() * 1.5;

  // The four experiments are independent: fan them out on the sweep pool
  // and render in declaration order once all are done.
  constexpr std::size_t kAlgos = std::size(algorithms);
  std::vector<core::ExperimentResult> results(kAlgos);
  runner::ThreadPool pool(
      std::min<unsigned>(runner::resolve_jobs(bench::jobs_from_flags(flags)),
                         static_cast<unsigned>(kAlgos)));
  runner::parallel_for(pool, kAlgos, [&](std::size_t i) {
    core::ExperimentConfig config = bench::config_from_flags(flags);
    config.algorithm = algorithms[i].first;
    results[i] = core::run_experiment(config);
    std::cerr << "done: " << algorithms[i].second << "\n";
  });

  std::vector<bench::NamedCurve> json_curves;
  for (std::size_t i = 0; i < kAlgos; ++i) {
    const auto& name = algorithms[i].second;
    const auto& result = results[i];

    util::Histogram hist(0.0, hist_hi, bins);
    hist.add_all(result.edge_latencies);
    util::print_banner(std::cout, std::string("Figure 5 - ") + name);
    std::cout << hist.render(48);
    summary.add_row(
        {name, std::to_string(result.edge_latencies.size()),
         util::fmt(metrics::fraction_below(result.edge_latencies, cut), 3),
         std::to_string(hist.modes().size())});
    // JSON: the sorted edge-latency distribution (stddev unused here).
    std::vector<double> sorted = result.edge_latencies;
    std::sort(sorted.begin(), sorted.end());
    json_curves.push_back(
        {name, metrics::Curve{std::move(sorted), {}}});
  }
  util::print_banner(std::cout, "Figure 5 - summary");
  std::cout << "(cut = " << cut << " ms; paper: all distributions bimodal, "
            << "perigee-subset's mass sits at the lower mode)\n";
  summary.print(std::cout);
  if (!bench::write_json_if_requested(
      flags, "Figure 5 - edge latency distributions", json_curves)) return 1;
  return 0;
}
