// Engine micro-benchmarks (google-benchmark): per-block broadcast cost on
// both engines (legacy Topology walk vs compiled CSR fast path), CSR compile
// cost, message-level gossip cost, scoring costs, and the sampling
// primitives. These bound the wall-clock of the figure benches: one Figure-3
// curve is rounds x blocks broadcasts plus n subset-scorings per round.
//
// BM_Broadcast (legacy) vs BM_BroadcastCsr at Arg(1000) — the fig3a grid
// size — is the before/after pair recorded in BENCH_broadcast.json; the
// acceptance bar is >= 1.5x items_per_second.
#include <benchmark/benchmark.h>

#include <array>

#include "core/perigee.hpp"
#include "obs/meta.hpp"
#include "metrics/eval.hpp"
#include "mining/sampler.hpp"
#include "net/csr.hpp"
#include "scenario/driver.hpp"
#include "sim/batch.hpp"
#include "sim/egress.hpp"
#include "sim/gossip.hpp"
#include "sim/parallel.hpp"
#include "sim/rounds.hpp"
#include "topo/builders.hpp"
#include "util/stats.hpp"

namespace {

using namespace perigee;

struct Fixture {
  explicit Fixture(std::size_t n) : topology(n) {
    net::NetworkOptions options;
    options.n = n;
    options.seed = 7;
    network.emplace(net::Network::build(options));
    util::Rng rng(7);
    topo::build_random(topology, rng);
  }
  std::optional<net::Network> network;
  net::Topology topology;
};

void BM_Broadcast(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  net::NodeId miner = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate_broadcast(f.topology, *f.network, miner));
    miner = (miner + 1) % static_cast<net::NodeId>(f.topology.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Broadcast)->Arg(200)->Arg(1000)->Arg(4000);

void BM_BroadcastCsr(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const net::CsrTopology csr =
      net::CsrTopology::build(f.topology, *f.network);
  sim::BroadcastScratch scratch;
  sim::BroadcastResult result;
  net::NodeId miner = 0;
  for (auto _ : state) {
    sim::simulate_broadcast(csr, miner, scratch, result);
    benchmark::DoNotOptimize(result.arrival.data());
    miner = (miner + 1) % static_cast<net::NodeId>(csr.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BroadcastCsr)->Arg(200)->Arg(1000)->Arg(4000);

// The relaxation inner loop in isolation: one source through the batched
// engine's solve_one kernel (u32 fixed-point bucket keys, next-row
// prefetch, branchless settle) over a prebuilt CSR — no λ accumulation, no
// compile, no pool, so iterations price the hot loop and nothing else.
// Recorded in BENCH_broadcast.json as relax_inner_speedup against the
// legacy Topology walker (BM_Broadcast) at the same Arg; the before/after
// Release-mode delta of the micro-pass itself is reported in
// ARCHITECTURE.md ("Release perf truth").
void BM_RelaxInnerLoop(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const net::CsrTopology csr =
      net::CsrTopology::build(f.topology, *f.network);
  sim::MultiSourceScratch scratch;
  sim::MultiSourceResult result;
  std::array<net::NodeId, 1> source{0};
  for (auto _ : state) {
    sim::simulate_broadcast_batch(csr, source, scratch, result);
    benchmark::DoNotOptimize(result.arrival.data());
    source[0] = (source[0] + 1) % static_cast<net::NodeId>(csr.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RelaxInnerLoop)->Arg(200)->Arg(1000)->Arg(4000);

// The scale-path pair recorded in BENCH_scale.json: the parallel
// delta-stepping engine pinned to one worker (settled-once bucket
// relaxation, byte-identical outputs) and the compact fixed-point engine
// (u32 snapshot, integer bucket math), both against BM_BroadcastCsr's
// heap relaxation above.
void BM_BroadcastParallelDelta(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const net::CsrTopology csr =
      net::CsrTopology::build(f.topology, *f.network);
  sim::ParallelScratch scratch;
  sim::BroadcastResult result;
  net::NodeId miner = 0;
  for (auto _ : state) {
    sim::simulate_broadcast_parallel(csr, miner, scratch, result);
    benchmark::DoNotOptimize(result.arrival.data());
    miner = (miner + 1) % static_cast<net::NodeId>(csr.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BroadcastParallelDelta)->Arg(200)->Arg(1000)->Arg(4000);

void BM_BroadcastCompact(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const net::CsrTopology csr =
      net::CsrTopology::build(f.topology, *f.network);
  const net::CompactCsr compact = net::CompactCsr::build(csr);
  sim::ParallelScratch scratch;
  std::vector<std::uint64_t> arrival_q(compact.size());
  net::NodeId miner = 0;
  for (auto _ : state) {
    sim::simulate_broadcast_compact(compact, miner, scratch,
                                    arrival_q.data());
    benchmark::DoNotOptimize(arrival_q.data());
    miner = (miner + 1) % static_cast<net::NodeId>(compact.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BroadcastCompact)->Arg(200)->Arg(1000)->Arg(4000);

// The queuing-engine pair recorded in BENCH_queuing.json. The egress DES
// (sim/egress.hpp) runs twice: in its ∞-rate parity corner, where it
// computes the exact BM_BroadcastCsr arrivals through the event loop — so
// egress_unlimited_speedup (this / BM_BroadcastCsr items_per_second) prices
// the pure DES overhead and the soft gate bars it at n=1000 — and under
// finite profile rates with 200 KB blocks plus INV chatter, the congestion
// grid's per-block workload (egress_queue_speedup, recorded alongside).
void BM_BroadcastEgressUnlimited(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const net::CsrTopology csr =
      net::CsrTopology::build(f.topology, *f.network);
  sim::EgressConfig config;
  config.unlimited_rate = true;
  config.block_bytes = 0.0;
  config.control_bytes = 0.0;
  const sim::EgressPlan plan = sim::EgressPlan::build(*f.network, config);
  sim::EgressScratch scratch;
  sim::BroadcastResult result;
  net::NodeId miner = 0;
  for (auto _ : state) {
    sim::simulate_broadcast_egress(csr, config, plan, miner, scratch, result);
    benchmark::DoNotOptimize(result.arrival.data());
    miner = (miner + 1) % static_cast<net::NodeId>(csr.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BroadcastEgressUnlimited)->Arg(200)->Arg(1000)->Arg(4000);

void BM_BroadcastEgress(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const net::CsrTopology csr =
      net::CsrTopology::build(f.topology, *f.network);
  sim::EgressConfig config;  // 200 KB blocks over 33 Mbit/s profile rates
  config.control_bytes = 1000.0;
  const sim::EgressPlan plan = sim::EgressPlan::build(*f.network, config);
  sim::EgressScratch scratch;
  sim::BroadcastResult result;
  net::NodeId miner = 0;
  for (auto _ : state) {
    sim::simulate_broadcast_egress(csr, config, plan, miner, scratch, result);
    benchmark::DoNotOptimize(result.arrival.data());
    miner = (miner + 1) % static_cast<net::NodeId>(csr.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BroadcastEgress)->Arg(200)->Arg(1000)->Arg(4000);

// Compile cost of the flat-graph snapshot: amortized over the K blocks of a
// round (fig grids: K = 100), so it must stay well under K broadcasts.
void BM_CsrBuild(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::CsrTopology::build(f.topology, *f.network));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsrBuild)->Arg(200)->Arg(1000)->Arg(4000);

// Multi-source λ evaluation: n broadcasts batched over one CSR + scratch
// (includes the compile; the pair below isolates the engines).
void BM_EvalAllSources(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::eval_all_sources(f.topology, *f.network, 0.90));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_EvalAllSources)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

// The before/after pair anchored in BENCH_multi_source.json: per-source CSR
// loop (one 4-ary-heap Dijkstra + λ accumulation per source, shared compile
// and scratch — the pre-batch implementation of eval_all_sources) vs the
// batched multi-source engine at the same workload. The acceptance bar at
// the fig3a grid size (n=1000) is >= 2x items_per_second.
void BM_MultiSourcePerSourceCsr(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const net::CsrTopology csr = net::CsrTopology::build(f.topology, *f.network);
  sim::BroadcastScratch scratch;
  sim::BroadcastResult result;
  std::vector<double> lambda(csr.size());
  for (auto _ : state) {
    for (net::NodeId v = 0; v < csr.size(); ++v) {
      sim::simulate_broadcast(csr, v, scratch, result);
      lambda[v] = metrics::lambda_for_broadcast(result, *f.network, 0.90);
    }
    benchmark::DoNotOptimize(lambda.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_MultiSourcePerSourceCsr)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_MultiSourceBatched(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const net::CsrTopology csr = net::CsrTopology::build(f.topology, *f.network);
  sim::MultiSourceScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::eval_all_sources(csr, *f.network, 0.90, &scratch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_MultiSourceBatched)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Round-shaped batch: |B| = 100 hash-weighted miners through the batched
// engine with materialized stripes, the RoundRunner dispatch shape.
void BM_BroadcastBatchRound(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const net::CsrTopology csr = net::CsrTopology::build(f.topology, *f.network);
  mining::AliasSampler sampler =
      mining::AliasSampler::from_hash_power(*f.network);
  util::Rng rng(11);
  std::vector<net::NodeId> miners(100);
  for (auto& m : miners) {
    m = static_cast<net::NodeId>(sampler.sample(rng));
  }
  sim::MultiSourceScratch scratch;
  sim::MultiSourceResult result;
  for (auto _ : state) {
    sim::simulate_broadcast_batch(csr, miners, scratch, result);
    benchmark::DoNotOptimize(result.arrival.data());
  }
  state.SetItemsProcessed(state.iterations() * miners.size());
}
BENCHMARK(BM_BroadcastBatchRound)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Per-round topology-refresh pairs recorded in BENCH_incremental_csr.json:
// full flat-graph recompile vs the journal patch path, refresh isolated
// (mutations run outside the clock).
//
// Two round shapes bracket the workload spectrum:
//  - BM_CsrChurnRefresh*: a churn epoch at the default 2% rate — a few
//    hundred journaled deltas at n=1000. This is the anchored pair: the
//    acceptance bar at the fig3a grid size (n=1000) is >= 3x
//    items_per_second, and it is the shape the scenario sweeps pay every
//    round (topology mutation as the common case).
//  - BM_CsrRoundRefresh*: the heaviest shape — EVERY node replaces 2 of its
//    dout=8 out-edges (the subset selector's steady state), ~4n deltas, so
//    the patch touches nearly every row and the win compresses toward the
//    latency-resolution savings alone. Recorded alongside for transparency.
void csr_round_refresh(benchmark::State& state, bool patching) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f(n);
  net::CsrCache cache;
  cache.set_patching(patching);
  cache.get(f.topology, *f.network);
  util::Rng rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    for (net::NodeId v = 0; v < n; ++v) {
      for (int r = 0; r < 2; ++r) {
        const auto& out = f.topology.out(v);
        if (out.empty()) break;
        f.topology.disconnect(v, out[rng.uniform_index(out.size())]);
      }
      topo::dial_random_peers(f.topology, v, 2, rng);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(&cache.get(f.topology, *f.network));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CsrRoundRefreshRebuild(benchmark::State& state) {
  csr_round_refresh(state, false);
}
BENCHMARK(BM_CsrRoundRefreshRebuild)->Arg(200)->Arg(1000);

void BM_CsrRoundRefreshPatch(benchmark::State& state) {
  csr_round_refresh(state, true);
}
BENCHMARK(BM_CsrRoundRefreshPatch)->Arg(200)->Arg(1000);

void csr_churn_refresh(benchmark::State& state, bool patching) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f(n);
  net::CsrCache cache;
  cache.set_patching(patching);
  cache.get(f.topology, *f.network);
  scenario::ChurnRegime regime;
  regime.rate = 0.02;
  regime.start_round = 0;
  scenario::ChurnDriver driver(regime, f.topology, *f.network, 7);
  std::size_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    driver.before_round(round++);
    state.ResumeTiming();
    benchmark::DoNotOptimize(&cache.get(f.topology, *f.network));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CsrChurnRefreshRebuild(benchmark::State& state) {
  csr_churn_refresh(state, false);
}
BENCHMARK(BM_CsrChurnRefreshRebuild)->Arg(200)->Arg(1000);

void BM_CsrChurnRefreshPatch(benchmark::State& state) {
  csr_churn_refresh(state, true);
}
BENCHMARK(BM_CsrChurnRefreshPatch)->Arg(200)->Arg(1000);

// End-to-end round-loop wall-clock with the refresh folded in: the adaptive
// subset round (|B| = 100 blocks + scoring + rewiring) with journal patching
// vs forced recompiles — the "adaptive-sweep win" recorded alongside the
// isolated refresh pair in BENCH_incremental_csr.json.
void adaptive_round(benchmark::State& state, bool patching) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f(n);
  sim::RoundRunner runner(
      *f.network, f.topology,
      core::make_selectors(n, core::Algorithm::PerigeeSubset), 100, 7);
  runner.set_csr_patching(patching);
  for (auto _ : state) {
    runner.run_round();
  }
  state.SetItemsProcessed(state.iterations() * 100);  // blocks
}

void BM_AdaptiveRoundRebuild(benchmark::State& state) {
  adaptive_round(state, false);
}
BENCHMARK(BM_AdaptiveRoundRebuild)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_AdaptiveRoundPatched(benchmark::State& state) {
  adaptive_round(state, true);
}
BENCHMARK(BM_AdaptiveRoundPatched)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_GossipInv(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  // Hoist the snapshot: this measures the event loop alone, as it did when
  // the engine walked the Topology directly (BM_CsrBuild prices the compile).
  const net::CsrTopology csr = net::CsrTopology::build(f.topology, *f.network);
  net::NodeId miner = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_gossip(csr, miner));
    miner = (miner + 1) % static_cast<net::NodeId>(csr.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GossipInv)->Arg(200)->Arg(1000);

void BM_RoundWithSubsetScoring(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f(n);
  sim::RoundRunner runner(*f.network, f.topology,
                          core::make_selectors(n, core::Algorithm::PerigeeSubset),
                          100, 7);
  for (auto _ : state) {
    runner.run_round();
  }
  state.SetItemsProcessed(state.iterations() * 100);  // blocks
}
BENCHMARK(BM_RoundWithSubsetScoring)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_RoundWithUcbScoring(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f(n);
  sim::RoundRunner runner(*f.network, f.topology,
                          core::make_selectors(n, core::Algorithm::PerigeeUcb),
                          1, 7);
  for (auto _ : state) {
    runner.run_round();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoundWithUcbScoring)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

// The churn-recompile path: every round the ChurnDriver tears down and
// redials a node fraction through the pre-round hook, so each round pays one
// CSR recompile (BM_CsrBuild) on top of the K broadcasts. Compare against
// BM_RoundWithSubsetScoring at the same Arg to see the churn overhead; the
// compile amortizes over K = 100 blocks exactly as on the rewire path.
void BM_ChurnRoundRecompile(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f(n);
  sim::RoundRunner runner(*f.network, f.topology,
                          core::make_selectors(n, core::Algorithm::PerigeeSubset),
                          100, 7);
  scenario::ChurnRegime regime;
  regime.rate = 0.02;
  regime.start_round = 0;
  scenario::ChurnDriver driver(regime, f.topology, *f.network, 7);
  runner.set_pre_round_hook([&](std::size_t round) {
    if (driver.before_round(round)) runner.refresh_hash_power();
    for (const net::NodeId v : driver.last_rejoined()) runner.reset_selector(v);
  });
  for (auto _ : state) {
    runner.run_round();
  }
  state.SetItemsProcessed(state.iterations() * 100);  // blocks
}
BENCHMARK(BM_ChurnRoundRecompile)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_Percentile(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> sample;
  for (int i = 0; i < state.range(0); ++i) sample.push_back(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::percentile(sample, 0.9));
  }
}
BENCHMARK(BM_Percentile)->Arg(100)->Arg(1000);

void BM_AliasSampler(benchmark::State& state) {
  util::Rng rng(4);
  std::vector<double> weights;
  for (int i = 0; i < 1000; ++i) weights.push_back(rng.exponential(1.0));
  mining::AliasSampler sampler(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_AliasSampler);

void BM_TopologyRewire(benchmark::State& state) {
  Fixture f(1000);
  util::Rng rng(5);
  for (auto _ : state) {
    const auto v = static_cast<net::NodeId>(rng.uniform_index(1000));
    const auto out = f.topology.out(v);
    if (!out.empty()) {
      f.topology.disconnect(v, out.front());
      topo::dial_random_peers(f.topology, v, 1, rng);
    }
  }
}
BENCHMARK(BM_TopologyRewire);

void BM_EdgeDelay(benchmark::State& state) {
  Fixture f(1000);
  util::Rng rng(6);
  for (auto _ : state) {
    const auto u = static_cast<net::NodeId>(rng.uniform_index(1000));
    const auto v = static_cast<net::NodeId>(rng.uniform_index(1000));
    benchmark::DoNotOptimize(f.network->edge_delay_ms(u, v));
  }
}
BENCHMARK(BM_EdgeDelay);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the emitted context's
// `library_build_type` describes how the system libbenchmark shared object
// was compiled (the distro package self-reports "debug"), NOT how this
// binary was compiled — the two disagreeing in old anchors caused real
// confusion. The perigee_* context keys below carry this binary's own
// configure-time facts (the same source as the anchors' `meta` block) and
// are what scripts/check_bench_regression.py --strict-build-type trusts.
// See ARCHITECTURE.md, "Release perf truth".
int main(int argc, char** argv) {
  const perigee::obs::RunMeta meta = perigee::obs::capture_run_meta();
  benchmark::AddCustomContext("perigee_build_type", meta.build_type);
  benchmark::AddCustomContext("perigee_compiler", meta.compiler);
  benchmark::AddCustomContext("perigee_cxx_flags", meta.cxx_flags);
  benchmark::AddCustomContext("perigee_git_sha", meta.git_sha);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
