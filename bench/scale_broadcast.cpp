// Scale instrument behind BENCH_scale.json: one n = 10^5 (default) graph,
// single-source broadcast timed through every engine that claims that scale
// — the CSR reference heap, the parallel delta-stepping engine at worker
// team sizes 1 and --jobs, and the compact fixed-point engine — plus the
// snapshot/scratch footprints and the process peak RSS the soak test
// budgets against.
//
// Byte parity is asserted inline (reference vs parallel arrivals memcmp
// equal) so a timing run can never silently anchor numbers from an engine
// that stopped agreeing. Timings are medians of --reps alternated runs.
//
//   ./scale_broadcast --nodes 100000 --jobs 2 --reps 5 --json scale.json
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "net/csr.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/meta.hpp"
#include "runner/json.hpp"
#include "runner/thread_pool.hpp"
#include "sim/broadcast.hpp"
#include "sim/parallel.hpp"
#include "topo/builders.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace perigee {
namespace {

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// Wall-clock milliseconds of `fn()`, repeated `reps` times, median taken so
// a single scheduler hiccup on a small container cannot skew the anchor.
template <typename Fn>
double time_ms(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return median(std::move(samples));
}

int run(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("nodes", 100000, "network size");
  flags.add_int("seed", 4242, "network/topology seed");
  flags.add_int("jobs", 2, "worker team size for the parallel engine");
  flags.add_int("reps", 5, "repetitions per engine (median reported)");
  flags.add_string("json", "", "also write the measurements to this file");
  if (!flags.parse(argc, argv)) return 1;

  const auto n = static_cast<std::size_t>(flags.get_int("nodes"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const int jobs = std::max(1, static_cast<int>(flags.get_int("jobs")));
  const int reps = std::max(1, static_cast<int>(flags.get_int("reps")));

  net::NetworkOptions options;
  options.n = n;
  options.seed = seed;
  const net::Network network = net::Network::build(options);
  net::Topology topology(n);
  util::Rng rng(seed);
  topo::build_random(topology, rng);
  const net::CsrTopology csr = net::CsrTopology::build(topology, network);
  const net::CompactCsr compact = net::CompactCsr::build(csr);
  const net::NodeId src = static_cast<net::NodeId>(n / 8);

  sim::BroadcastScratch ref_scratch;
  sim::BroadcastResult reference;
  const double reference_ms = time_ms(
      reps, [&] { sim::simulate_broadcast(csr, src, ref_scratch, reference); });

  sim::ParallelScratch scratch;
  sim::BroadcastResult parallel1;
  const double parallel1_ms = time_ms(reps, [&] {
    sim::simulate_broadcast_parallel(csr, src, scratch, parallel1);
  });

  runner::ThreadPool pool(static_cast<unsigned>(jobs));
  sim::BroadcastResult parallelN;
  const double parallelN_ms = time_ms(reps, [&] {
    sim::simulate_broadcast_parallel(csr, src, scratch, parallelN, &pool);
  });

  // Compact engine timed at team size 1: its jobs-invariance is exact, so
  // the single-worker figure is the comparable one (and team overheads are
  // already visible in the parallel-delta rows).
  std::vector<std::uint64_t> arrival_q(n);
  const double compact_ms = time_ms(reps, [&] {
    sim::simulate_broadcast_compact(compact, src, scratch, arrival_q.data());
  });

  // The determinism contract, enforced on the very run being anchored.
  const std::size_t bytes = n * sizeof(double);
  if (std::memcmp(reference.arrival.data(), parallel1.arrival.data(), bytes) !=
          0 ||
      std::memcmp(reference.arrival.data(), parallelN.arrival.data(), bytes) !=
          0) {
    std::cerr << "FATAL: parallel engine lost byte parity with the "
                 "reference at n="
              << n << "\n";
    return 1;
  }

  const std::int64_t peak_kb = obs::peak_rss_kb();
  const obs::RunMeta meta = obs::capture_run_meta();

  std::cout << "n=" << n << " src=" << src << " jobs=" << jobs
            << " reps=" << reps << "\n"
            << "  reference heap      " << reference_ms << " ms\n"
            << "  parallel-delta x1   " << parallel1_ms << " ms\n"
            << "  parallel-delta x" << jobs << "   " << parallelN_ms << " ms\n"
            << "  compact fixedpoint  " << compact_ms << " ms\n"
            << "  csr snapshot        " << csr.memory_bytes() << " bytes\n"
            << "  compact snapshot    " << compact.memory_bytes() << " bytes\n"
            << "  parallel scratch    " << scratch.memory_bytes() << " bytes\n"
            << "  peak RSS            " << peak_kb << " KiB\n";

  const std::string& path = flags.get_string("json");
  if (path.empty()) return 0;
  const bool ok = runner::write_file_atomic(path, [&](std::ostream& os) {
    runner::JsonWriter w(os);
    w.begin_object();
    w.field("title", "scale_broadcast");
    w.key("meta");
    w.begin_object();
    obs::write_run_meta_fields(w, meta);
    w.end_object();
    w.field("nodes", static_cast<std::int64_t>(n));
    w.field("seed", static_cast<std::int64_t>(seed));
    w.field("jobs", static_cast<std::int64_t>(jobs));
    w.field("reps", static_cast<std::int64_t>(reps));
    w.field("reference_heap_ms", reference_ms);
    w.field("parallel_delta_x1_ms", parallel1_ms);
    w.field("parallel_delta_xjobs_ms", parallelN_ms);
    w.field("compact_fixedpoint_ms", compact_ms);
    w.field("csr_snapshot_bytes",
            static_cast<std::int64_t>(csr.memory_bytes()));
    w.field("compact_snapshot_bytes",
            static_cast<std::int64_t>(compact.memory_bytes()));
    w.field("parallel_scratch_bytes",
            static_cast<std::int64_t>(scratch.memory_bytes()));
    w.field("peak_rss_kb", peak_kb);
    w.end_object();
    os << '\n';
  });
  if (!ok) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  std::cerr << "wrote " << path << "\n";
  return 0;
}

}  // namespace
}  // namespace perigee

int main(int argc, char** argv) { return perigee::run(argc, argv); }
