// Spanner comparison (§3.3's "other efficient topology constructions"):
// geometric threshold graph vs Θ/Yao cone spanners vs the random topology,
// on stretch and edge budget. Cone spanners achieve the geometric graph's
// constant stretch with an O(k·n) edge budget and hard out-degree k — the
// property that makes them the theory-side analogue of a degree-capped p2p
// overlay.
#include <iostream>

#include "metrics/stretch.hpp"
#include "net/embedding.hpp"
#include "topo/builders.hpp"
#include "topo/spanner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  flags.add_int("nodes", 1000, "points in the unit square");
  flags.add_int("cones", 8, "cones per node for theta/yao");
  flags.add_int("sources", 15, "stretch-sample sources");
  flags.add_int("seed", 1, "seed");
  if (!flags.parse(argc, argv)) return 1;

  const auto n = static_cast<std::size_t>(flags.get_int("nodes"));
  const int cones = static_cast<int>(flags.get_int("cones"));
  net::NetworkOptions options;
  options.n = n;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 2;
  options.embed_scale_ms = 1.0;
  const auto network = net::Network::build(options);
  const auto sources =
      static_cast<std::size_t>(flags.get_int("sources"));

  util::print_banner(std::cout, "Spanner comparison - unit square, n = " +
                                    std::to_string(n));
  util::Table table({"construction", "edges", "max out-degree",
                     "median stretch", "p90 stretch", "max stretch"});

  auto measure = [&](const std::string& name, const net::Topology& t) {
    util::Rng rng(99);
    const auto stats = metrics::measure_stretch(t, network, rng, sources,
                                                0.05);
    int max_deg = 0;
    for (net::NodeId v = 0; v < t.size(); ++v) {
      max_deg = std::max(max_deg, t.out_count(v));
    }
    table.add_row({name, std::to_string(t.num_p2p_edges()),
                   std::to_string(max_deg), util::fmt(stats.p50, 2),
                   util::fmt(stats.p90, 2), util::fmt(stats.max, 2)});
  };

  {
    net::Topology t(n, {.out_cap = 8, .in_cap = static_cast<int>(n)});
    util::Rng rng(options.seed);
    topo::build_random(t, rng);
    measure("random (8 links)", t);
  }
  {
    const double r = net::geometric_threshold(n, 2, 1.2);
    net::Topology t(n, {.out_cap = static_cast<int>(n),
                        .in_cap = static_cast<int>(n)});
    topo::build_geometric_threshold(t, network, r);
    measure("geometric threshold", t);
  }
  {
    net::Topology t(n, {.out_cap = cones, .in_cap = static_cast<int>(n)});
    topo::build_cone_spanner(t, network, cones, topo::ConeGraphKind::Yao);
    measure("yao-" + std::to_string(cones), t);
  }
  {
    net::Topology t(n, {.out_cap = cones, .in_cap = static_cast<int>(n)});
    topo::build_cone_spanner(t, network, cones, topo::ConeGraphKind::Theta);
    measure("theta-" + std::to_string(cones), t);
  }
  table.print(std::cout);
  std::cout << "\nworst-case cone-spanner bound for k = " << cones << ": "
            << util::fmt(topo::cone_spanner_stretch_bound(cones), 2)
            << "x (observed stretch sits far below it)\n";
  return 0;
}
