// Theorem 1 (Frieze & Pegden): on an Erdős–Rényi graph with p = c log n / n
// over points embedded in [0,1]^d, the network latency between two nodes is
// a log-factor worse than their Euclidean distance. Empirically: the median
// stretch grows with n.
#include <iostream>

#include "metrics/stretch.hpp"
#include "net/embedding.hpp"
#include "topo/builders.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  flags.add_int("dim", 2, "embedding dimension");
  flags.add_double("c", 1.5, "edge-probability constant (p = c log n / n)");
  flags.add_int("sources", 15, "stretch-sample sources");
  flags.add_int("seed", 1, "seed");
  if (!flags.parse(argc, argv)) return 1;
  const int dim = static_cast<int>(flags.get_int("dim"));

  util::print_banner(std::cout,
                     "Theorem 1 - random-graph stretch grows with n");
  util::Table table({"n", "p", "edges", "median stretch", "p90 stretch"});
  for (std::size_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
    net::NetworkOptions options;
    options.n = n;
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    options.latency = net::NetworkOptions::LatencyKind::Euclidean;
    options.embed_dim = dim;
    options.embed_scale_ms = 1.0;
    const auto network = net::Network::build(options);

    const double p = net::random_graph_probability(n, flags.get_double("c"));
    net::Topology t(n, {.out_cap = static_cast<int>(n),
                        .in_cap = static_cast<int>(n)});
    util::Rng rng(options.seed + n);
    topo::build_erdos_renyi(t, p, rng);

    util::Rng srng(42);
    const auto stats = metrics::measure_stretch(
        t, network, srng, static_cast<std::size_t>(flags.get_int("sources")),
        0.25);
    table.add_row({std::to_string(n), util::fmt(p, 4),
                   std::to_string(t.num_p2p_edges()),
                   util::fmt(stats.p50, 2), util::fmt(stats.p90, 2)});
    std::cerr << "done: n=" << n << "\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: median stretch increases with n (the "
               "(log n)^(1-1/d) factor of Eq. 1); it never levels off to a "
               "constant.\n";
  return 0;
}
