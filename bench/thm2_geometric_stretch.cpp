// Theorem 2 (Friedrich, Sauerwald & Stauffer): a geometric graph with
// threshold r = Θ((log n / n)^(1/d)) has constant stretch — the shortest
// path between well-separated nodes is at most a constant times their
// Euclidean distance, independent of n.
#include <iostream>

#include "metrics/stretch.hpp"
#include "net/embedding.hpp"
#include "topo/builders.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  flags.add_int("dim", 2, "embedding dimension");
  flags.add_double("factor", 1.2, "threshold factor on (log n / n)^(1/d)");
  flags.add_int("sources", 15, "stretch-sample sources");
  flags.add_int("seed", 1, "seed");
  if (!flags.parse(argc, argv)) return 1;
  const int dim = static_cast<int>(flags.get_int("dim"));

  util::print_banner(std::cout,
                     "Theorem 2 - geometric-graph stretch stays constant");
  util::Table table({"n", "r", "edges", "median stretch", "p90 stretch",
                     "unreachable"});
  for (std::size_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
    net::NetworkOptions options;
    options.n = n;
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    options.latency = net::NetworkOptions::LatencyKind::Euclidean;
    options.embed_dim = dim;
    options.embed_scale_ms = 1.0;
    const auto network = net::Network::build(options);

    const double r =
        net::geometric_threshold(n, dim, flags.get_double("factor"));
    net::Topology t(n, {.out_cap = static_cast<int>(n),
                        .in_cap = static_cast<int>(n)});
    topo::build_geometric_threshold(t, network, r);

    util::Rng srng(42);
    const auto stats = metrics::measure_stretch(
        t, network, srng, static_cast<std::size_t>(flags.get_int("sources")),
        4.0 * r);  // Theorem 2 applies to pairs with distance = omega(r)
    table.add_row({std::to_string(n), util::fmt(r, 4),
                   std::to_string(t.num_p2p_edges()),
                   util::fmt(stats.p50, 2), util::fmt(stats.p90, 2),
                   std::to_string(stats.unreachable)});
    std::cerr << "done: n=" << n << "\n";
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: median stretch is a small constant (~1.1-"
               "1.3) with no growth in n — contrast with Theorem 1's table.\n";
  return 0;
}
