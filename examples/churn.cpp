// Node churn walkthrough (§6 future work): a running Perigee network loses
// 20% of its nodes at once, keeps operating, and recovers its learned
// performance within a few rounds.
//
//   ./examples/churn [--nodes N]
#include <iostream>

#include "core/experiment.hpp"
#include "metrics/eval.hpp"
#include "sim/rounds.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  flags.add_int("nodes", 500, "network size");
  flags.add_int("warmup_rounds", 25, "rounds before the churn event");
  flags.add_int("recovery_rounds", 25, "rounds after the churn event");
  flags.add_double("leave_fraction", 0.2, "fraction of nodes that leave");
  flags.add_int("seed", 1, "seed");
  if (!flags.parse(argc, argv)) return 1;

  core::ExperimentConfig config;
  config.net.n = static_cast<std::size_t>(flags.get_int("nodes"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.algorithm = core::Algorithm::PerigeeSubset;

  core::Scenario scenario = core::build_scenario(config);
  core::build_initial_topology(config, scenario);
  const std::size_t n = scenario.network.size();

  sim::RoundRunner runner(
      scenario.network, scenario.topology,
      core::make_selectors(n, config.algorithm, config.params),
      config.blocks_per_round, config.seed);

  std::vector<bool> alive(n, true);
  auto mean_lambda_alive = [&]() {
    const auto lambda =
        metrics::eval_all_sources(scenario.topology, scenario.network, 0.9);
    std::vector<double> values;
    for (net::NodeId v = 0; v < n; ++v) {
      if (alive[v]) values.push_back(lambda[v]);
    }
    return util::mean(values);
  };

  util::Table table({"phase", "alive nodes", "mean lambda90 (ms)"});
  table.add_row({"random start", std::to_string(n),
                 util::fmt(mean_lambda_alive())});

  runner.run_rounds(static_cast<int>(flags.get_int("warmup_rounds")));
  table.add_row({"after warm-up", std::to_string(n),
                 util::fmt(mean_lambda_alive())});

  // Churn event: leavers drop all their connections and stop mining.
  util::Rng churn_rng(config.seed + 99);
  const auto leave_count = static_cast<std::size_t>(
      flags.get_double("leave_fraction") * static_cast<double>(n));
  for (std::size_t idx : churn_rng.sample_indices(n, leave_count)) {
    const auto v = static_cast<net::NodeId>(idx);
    alive[v] = false;
    scenario.topology.disconnect_all(v);
    scenario.network.mutable_profiles()[v].hash_power = 0.0;
  }
  // Note: departed nodes also stop exploring. The harness keeps calling
  // their selectors, which would redial; emulate their absence by capping
  // their outgoing budget through immediate re-isolation each round instead
  // — simplest faithful emulation at this scale is to re-isolate after each
  // round below.
  runner.refresh_hash_power();

  table.add_row({"right after 20% leave",
                 std::to_string(n - leave_count),
                 util::fmt(mean_lambda_alive())});

  for (int r = 0; r < static_cast<int>(flags.get_int("recovery_rounds")); ++r) {
    runner.run_round();
    for (net::NodeId v = 0; v < n; ++v) {
      if (!alive[v]) scenario.topology.disconnect_all(v);
    }
  }
  table.add_row({"after recovery", std::to_string(n - leave_count),
                 util::fmt(mean_lambda_alive())});
  table.print(std::cout);

  std::cout << "\nSurviving nodes re-learn routes around the hole the "
               "leavers left; no coordinator or topology reset is needed.\n";
  return 0;
}
