// Figure-3(a)-style comparison across every topology policy: random,
// geographic, Kademlia, the k-nearest latency oracle, the three Perigee
// variants, and the fully-connected ideal.
//
//   ./examples/compare_topologies [--nodes N] [--rounds R] [--seed S]
#include <iostream>

#include "core/experiment.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  flags.add_int("nodes", 1000, "network size");
  flags.add_int("rounds", 40, "learning rounds for adaptive variants");
  flags.add_int("seed", 1, "master seed");
  flags.add_double("coverage", 0.90, "hash-power coverage target");
  if (!flags.parse(argc, argv)) return 1;

  core::ExperimentConfig config;
  config.net.n = static_cast<std::size_t>(flags.get_int("nodes"));
  config.rounds = static_cast<int>(flags.get_int("rounds"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.coverage = flags.get_double("coverage");

  const core::Algorithm algorithms[] = {
      core::Algorithm::Random,         core::Algorithm::Geographic,
      core::Algorithm::Kademlia,       core::Algorithm::PerigeeVanilla,
      core::Algorithm::PerigeeUcb,     core::Algorithm::PerigeeSubset,
      core::Algorithm::KNearestOracle,
  };

  util::Table table(
      {"algorithm", "mean lambda (ms)", "median", "p90", "vs random"});
  double random_mean = 0;
  for (const auto algorithm : algorithms) {
    config.algorithm = algorithm;
    const auto result = core::run_experiment(config);
    const auto s = util::summarize(result.lambda);
    if (algorithm == core::Algorithm::Random) random_mean = s.mean;
    table.add_row({std::string(core::algorithm_name(algorithm)),
                   util::fmt(s.mean), util::fmt(s.p50), util::fmt(s.p90),
                   util::fmt(100.0 * (1.0 - s.mean / random_mean), 1) + "%"});
  }
  const auto ideal = util::summarize(core::run_ideal(config));
  table.add_row({"ideal", util::fmt(ideal.mean), util::fmt(ideal.p50),
                 util::fmt(ideal.p90),
                 util::fmt(100.0 * (1.0 - ideal.mean / random_mean), 1) + "%"});
  table.print(std::cout);
  return 0;
}
