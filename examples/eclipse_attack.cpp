// Eclipse-attack study (§6 discussion): adversary nodes make themselves
// maximally attractive (instant validation => consistently early delivery)
// to capture honest nodes' neighborhoods, then flip to withholding blocks.
// Perigee's scoring evicts them within a round of the flip, and the standing
// random exploration guarantees honest links were never fully displaced.
//
//   ./examples/eclipse_attack [--nodes N] [--adversaries K]
#include <iostream>

#include "core/experiment.hpp"
#include "metrics/eval.hpp"
#include "sim/rounds.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  flags.add_int("nodes", 400, "network size");
  flags.add_int("adversaries", 20, "adversary nodes");
  flags.add_int("grooming_rounds", 20, "rounds the adversary plays nice");
  flags.add_int("attack_rounds", 6, "rounds of withholding");
  flags.add_int("seed", 1, "seed");
  if (!flags.parse(argc, argv)) return 1;

  core::ExperimentConfig config;
  config.net.n = static_cast<std::size_t>(flags.get_int("nodes"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.algorithm = core::Algorithm::PerigeeSubset;

  core::Scenario scenario = core::build_scenario(config);
  core::build_initial_topology(config, scenario);
  const std::size_t n = scenario.network.size();
  const auto k = static_cast<net::NodeId>(flags.get_int("adversaries"));

  // Adversaries: ids 0..k-1, instant validation while grooming.
  for (net::NodeId v = 0; v < k; ++v) {
    scenario.network.mutable_profiles()[v].validation_ms = 0.0;
  }

  sim::RoundRunner runner(
      scenario.network, scenario.topology,
      core::make_selectors(n, config.algorithm, config.params),
      config.blocks_per_round, config.seed);

  auto adversary_out_links = [&]() {
    std::size_t count = 0;
    for (net::NodeId v = k; v < n; ++v) {
      for (net::NodeId u : scenario.topology.out(v)) {
        if (u < k) ++count;
      }
    }
    return count;
  };
  auto honest_mean_lambda = [&]() {
    const auto lambda =
        metrics::eval_all_sources(scenario.topology, scenario.network, 0.9);
    std::vector<double> values;
    for (net::NodeId v = k; v < n; ++v) values.push_back(lambda[v]);
    return util::mean(values);
  };

  util::Table table(
      {"phase", "honest->adversary links", "honest mean lambda90"});
  table.add_row({"start", std::to_string(adversary_out_links()),
                 util::fmt(honest_mean_lambda())});

  runner.run_rounds(static_cast<int>(flags.get_int("grooming_rounds")));
  const std::size_t captured = adversary_out_links();
  table.add_row({"after grooming", std::to_string(captured),
                 util::fmt(honest_mean_lambda())});

  // The flip: adversaries stop relaying.
  for (net::NodeId v = 0; v < k; ++v) {
    scenario.network.mutable_profiles()[v].forwards = false;
  }
  table.add_row({"attack begins", std::to_string(adversary_out_links()),
                 util::fmt(honest_mean_lambda())});

  runner.run_rounds(static_cast<int>(flags.get_int("attack_rounds")));
  table.add_row({"after response", std::to_string(adversary_out_links()),
                 util::fmt(honest_mean_lambda())});
  table.print(std::cout);

  std::cout
      << "\nGrooming works (the adversary attracts far more inbound links "
         "than its population share), but the moment it withholds, scores "
         "collapse to +inf and honest nodes evict it; exploration links "
         "keep the network connected throughout. Residual links are the "
         "current round's random explorers.\n";
  return 0;
}
