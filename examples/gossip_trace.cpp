// Protocol-realism walkthrough: trace one block through the message-level
// INV/GETDATA/BLOCK engine and compare against the fast analytic engine.
// Useful for understanding what δ(u,v) abstracts away.
//
//   ./examples/gossip_trace [--nodes N]
#include <algorithm>
#include <iostream>

#include "sim/broadcast.hpp"
#include "sim/gossip.hpp"
#include "topo/builders.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  flags.add_int("nodes", 200, "network size");
  flags.add_int("miner", 0, "block origin");
  flags.add_int("seed", 1, "seed");
  if (!flags.parse(argc, argv)) return 1;

  net::NetworkOptions options;
  options.n = static_cast<std::size_t>(flags.get_int("nodes"));
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.handshake_factor = 1.0;  // the gossip engine models it explicitly
  const auto network = net::Network::build(options);

  net::Topology topology(network.size());
  util::Rng rng(options.seed);
  topo::build_random(topology, rng);
  const auto miner = static_cast<net::NodeId>(flags.get_int("miner"));

  sim::GossipConfig inv;
  inv.mode = sim::GossipConfig::Mode::InvGetdata;
  inv.record_edge_times = true;
  const auto gossip = sim::simulate_gossip(topology, network, miner, inv);

  sim::GossipConfig push;
  push.mode = sim::GossipConfig::Mode::Push;
  const auto pushed = sim::simulate_gossip(topology, network, miner, push);

  const auto fast = sim::simulate_broadcast(topology, network, miner);

  const auto g = util::summarize(gossip.arrival);
  const auto p = util::summarize(pushed.arrival);
  const auto f = util::summarize(fast.arrival);

  util::Table table({"engine", "p50 arrival", "p90 arrival", "max",
                     "messages"});
  table.add_row({"gossip INV/GETDATA/BLOCK", util::fmt(g.p50),
                 util::fmt(g.p90), util::fmt(g.max),
                 std::to_string(gossip.messages_processed)});
  table.add_row({"gossip push", util::fmt(p.p50), util::fmt(p.p90),
                 util::fmt(p.max), std::to_string(pushed.messages_processed)});
  table.add_row({"fast engine (push model)", util::fmt(f.p50),
                 util::fmt(f.p90), util::fmt(f.max), "-"});
  table.print(std::cout);

  std::cout << "\nPush-mode gossip and the fast engine agree exactly "
            << "(same model, two implementations); the full handshake costs "
            << util::fmt(g.p50 / p.p50, 2)
            << "x the push latency at the median - the overhead the fast "
               "engine's handshake_factor folds into delta(u,v).\n";

  // Per-node detail for a few nodes: who announced first, when the block
  // landed.
  std::cout << "\nfirst INV vs block-in-hand for five sample nodes:\n";
  util::Table detail({"node", "first INV", "block arrival", "gap"});
  for (net::NodeId v : {net::NodeId{3}, net::NodeId{50}, net::NodeId{100},
                        net::NodeId{150}, net::NodeId{199}}) {
    detail.add_row({std::to_string(v), util::fmt(gossip.first_announce[v]),
                    util::fmt(gossip.arrival[v]),
                    util::fmt(gossip.arrival[v] - gossip.first_announce[v])});
  }
  detail.print(std::cout);
  return 0;
}
