// Quickstart: build a 500-node geo network, let Perigee-Subset learn the
// topology for 30 rounds, and compare block propagation delay (λ at 90% of
// hash power) against the static random topology and the fully-connected
// ideal.
//
//   ./examples/quickstart [--nodes N] [--rounds R] [--seed S]
#include <iostream>

#include "core/experiment.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  flags.add_int("nodes", 500, "network size");
  flags.add_int("rounds", 30, "Perigee learning rounds (100 blocks each)");
  flags.add_int("seed", 1, "master seed");
  if (!flags.parse(argc, argv)) return 1;

  core::ExperimentConfig config;
  config.net.n = static_cast<std::size_t>(flags.get_int("nodes"));
  config.rounds = static_cast<int>(flags.get_int("rounds"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::cout << "Perigee quickstart: " << config.net.n << " nodes, "
            << config.rounds << " rounds of " << config.blocks_per_round
            << " blocks\n";

  // Static random baseline (Bitcoin's de-facto policy).
  config.algorithm = core::Algorithm::Random;
  const auto random_result = core::run_experiment(config);

  // Perigee-Subset: the paper's best-performing variant.
  config.algorithm = core::Algorithm::PerigeeSubset;
  const auto perigee_result = core::run_experiment(config);

  // Fully-connected lower bound.
  const auto ideal = core::run_ideal(config);

  const auto r = util::summarize(random_result.lambda);
  const auto p = util::summarize(perigee_result.lambda);
  const auto i = util::summarize(ideal);

  util::Table table({"topology", "mean lambda (ms)", "median", "p90"});
  table.add_row({"random", util::fmt(r.mean), util::fmt(r.p50),
                 util::fmt(r.p90)});
  table.add_row({"perigee-subset", util::fmt(p.mean), util::fmt(p.p50),
                 util::fmt(p.p90)});
  table.add_row({"ideal (full graph)", util::fmt(i.mean), util::fmt(i.p50),
                 util::fmt(i.p90)});
  table.print(std::cout);

  std::cout << "\nPerigee-Subset cuts mean broadcast delay by "
            << util::fmt(100.0 * (1.0 - p.mean / r.mean)) << "% vs random.\n";
  return 0;
}
