// §5.4 scenario as a runnable walkthrough: a fast relay overlay (bloXroute-
// style tree) appears in the network, and Perigee nodes — without being told
// it exists — learn to attach themselves near it because blocks arriving via
// the overlay are simply faster.
//
//   ./examples/relay_adaptation [--nodes N] [--rounds R]
#include <algorithm>
#include <iostream>

#include "core/experiment.hpp"
#include "metrics/eval.hpp"
#include "sim/rounds.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  flags.add_int("nodes", 600, "network size");
  flags.add_int("rounds", 40, "learning rounds");
  flags.add_int("relay_members", 60, "relay overlay size");
  flags.add_int("seed", 1, "seed");
  if (!flags.parse(argc, argv)) return 1;

  core::ExperimentConfig config;
  config.net.n = static_cast<std::size_t>(flags.get_int("nodes"));
  config.rounds = static_cast<int>(flags.get_int("rounds"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.relay = true;
  config.relay_config.members =
      static_cast<std::size_t>(flags.get_int("relay_members"));

  std::cout << "A " << config.relay_config.members
            << "-node relay tree (5 ms links, 10x faster validation) is "
               "installed.\n\n";

  // Run Perigee on top and track how many p2p edges terminate at relay
  // nodes before and after learning.
  config.algorithm = core::Algorithm::PerigeeSubset;
  core::Scenario scenario = core::build_scenario(config);
  core::build_initial_topology(config, scenario);

  auto relay_edge_fraction = [&]() {
    std::size_t total = 0, touching = 0;
    for (const auto& [u, v] : scenario.topology.p2p_edges()) {
      ++total;
      if (scenario.network.profile(u).relay ||
          scenario.network.profile(v).relay) {
        ++touching;
      }
    }
    return static_cast<double>(touching) / static_cast<double>(total);
  };

  const double before_fraction = relay_edge_fraction();
  const double before_lambda = util::mean(
      metrics::eval_all_sources(scenario.topology, scenario.network, 0.9));

  sim::RoundRunner runner(
      scenario.network, scenario.topology,
      core::make_selectors(scenario.network.size(), config.algorithm,
                           config.params),
      config.blocks_per_round, config.seed);
  runner.run_rounds(config.rounds);

  const double after_fraction = relay_edge_fraction();
  const double after_lambda = util::mean(
      metrics::eval_all_sources(scenario.topology, scenario.network, 0.9));

  util::Table table({"", "edges touching relay", "mean lambda90 (ms)"});
  table.add_row({"before learning", util::fmt(100.0 * before_fraction, 1) + "%",
                 util::fmt(before_lambda)});
  table.add_row({"after learning", util::fmt(100.0 * after_fraction, 1) + "%",
                 util::fmt(after_lambda)});
  table.print(std::cout);

  std::cout << "\nPerigee pulled its connections toward the overlay ("
            << util::fmt(100.0 * (after_fraction - before_fraction), 1)
            << " pp more relay-touching edges) and cut mean broadcast delay by "
            << util::fmt(100.0 * (1.0 - after_lambda / before_lambda), 1)
            << "% - without any knowledge that a relay network exists.\n";
  return 0;
}
