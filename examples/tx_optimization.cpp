// Transaction-propagation mode (paper §2.1 and footnote 3: "our protocol is
// general, and can readily be adapted to optimize transaction propagation
// times as well"). Transactions differ from blocks in two ways: they
// originate at arbitrary user-facing nodes rather than proportionally to
// hash power, and verifying one is far cheaper than validating a block.
// Perigee's machinery is unchanged — only the workload swaps.
//
//   ./examples/tx_optimization [--nodes N] [--rounds R]
#include <iostream>

#include "core/experiment.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace perigee;

  util::Flags flags;
  flags.add_int("nodes", 500, "network size");
  flags.add_int("rounds", 30, "learning rounds (100 txs each)");
  flags.add_int("seed", 1, "seed");
  if (!flags.parse(argc, argv)) return 1;

  core::ExperimentConfig config;
  config.net.n = static_cast<std::size_t>(flags.get_int("nodes"));
  config.rounds = static_cast<int>(flags.get_int("rounds"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  // Transaction workload: uniform origins (every node submits user
  // transactions at the same rate — exactly the Uniform hash model) and a
  // ~2 ms signature-check instead of the 50 ms block validation.
  config.hash_model = mining::HashPowerModel::Uniform;
  config.net.validation_mean_ms = 2.0;

  std::cout << "Optimizing *transaction* propagation: uniform origins, "
               "2 ms verification per hop\n\n";

  config.algorithm = core::Algorithm::Random;
  const auto random = core::run_experiment(config);
  config.algorithm = core::Algorithm::PerigeeSubset;
  const auto subset = core::run_experiment(config);
  const auto ideal = core::run_ideal(config);

  const auto r = util::summarize(random.lambda);
  const auto p = util::summarize(subset.lambda);
  const auto i = util::summarize(ideal);
  util::Table table({"topology", "mean tx delay (ms)", "median", "p90"});
  table.add_row({"random", util::fmt(r.mean), util::fmt(r.p50),
                 util::fmt(r.p90)});
  table.add_row({"perigee-subset", util::fmt(p.mean), util::fmt(p.p50),
                 util::fmt(p.p90)});
  table.add_row({"ideal", util::fmt(i.mean), util::fmt(i.p50),
                 util::fmt(i.p90)});
  table.print(std::cout);

  std::cout << "\nWith verification nearly free, link latency is everything "
               "and Perigee's advantage is at its largest: "
            << util::fmt(100.0 * (1.0 - p.mean / r.mean), 1)
            << "% lower mean delay than random (cf. the 0.1x point of "
               "Figure 4(a)).\n";
  return 0;
}
