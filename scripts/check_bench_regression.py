#!/usr/bin/env python3
"""Soft perf gate: compare a fresh micro_bench JSON run against a checked-in
BENCH_*.json anchor.

The anchored quantity is a *speedup ratio* between a fast-path benchmark and
its baseline (items_per_second of --fast-bench/N divided by
--baseline-bench/N), which is largely machine-independent — comparing raw ns
across CI runners would be noise. Anchor pairs today:

  BENCH_broadcast.json       broadcast_speedup      BM_BroadcastCsr /
                                                    BM_Broadcast
  BENCH_broadcast.json       relax_inner_speedup    BM_RelaxInnerLoop /
                                                    BM_Broadcast
  BENCH_multi_source.json    multi_source_speedup   BM_MultiSourceBatched /
                                                    BM_MultiSourcePerSourceCsr
  BENCH_incremental_csr.json incremental_csr_speedup BM_CsrChurnRefreshPatch /
                                                    BM_CsrChurnRefreshRebuild
  BENCH_scale.json           parallel_delta_speedup BM_BroadcastParallelDelta /
                                                    BM_BroadcastCsr
  BENCH_scale.json           compact_speedup        BM_BroadcastCompact /
                                                    BM_BroadcastCsr
  BENCH_queuing.json         egress_unlimited_speedup BM_BroadcastEgressUnlimited /
                                                    BM_BroadcastCsr

If the current ratio falls more than --max-regression below the anchor's
ratio, a GitHub Actions ::warning:: annotation is emitted.

This gate is deliberately soft: it never fails the build (exit code 0 unless
the inputs are unreadable), because shared CI runners are too noisy for a
hard perf wall. It exists to make a real fast-path regression loud in the PR
checks without blocking unrelated work.

Usage:
  check_bench_regression.py <current_benchmark.json> <BENCH_anchor.json>
      [--key broadcast_speedup] [--baseline-bench BM_Broadcast]
      [--fast-bench BM_BroadcastCsr] [--max-regression 0.25] [--sizes 1000]
"""

import argparse
import json
import sys


def items_per_second(entries, name):
    for entry in entries:
        if entry.get("name") == name:
            ips = entry.get("items_per_second")
            if ips:
                return float(ips)
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="benchmark --benchmark_format=json output")
    parser.add_argument("anchor", help="checked-in BENCH_*.json anchor")
    parser.add_argument(
        "--key",
        default="broadcast_speedup",
        help="anchor object holding the per-size speedup ratios "
        '(e.g. {"n1000": 1.8})',
    )
    parser.add_argument(
        "--baseline-bench",
        default="BM_Broadcast",
        help="benchmark name of the baseline (denominator), without /size",
    )
    parser.add_argument(
        "--fast-bench",
        default="BM_BroadcastCsr",
        help="benchmark name of the fast path (numerator), without /size",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="warn when the speedup ratio drops by more than this fraction",
    )
    parser.add_argument(
        "--sizes",
        default="1000",
        help="comma-separated benchmark Arg sizes to check (default: the "
        "fig3a grid size 1000)",
    )
    parser.add_argument(
        "--current-build-type",
        default=None,
        help="build type of the current run (e.g. Debug); defaults to the "
        "current run's context.perigee_build_type (micro_bench injects it); "
        "warns when it differs from the anchor's meta.build_type, since "
        "ratios anchored in one build mode are not comparable in another",
    )
    parser.add_argument(
        "--strict-build-type",
        action="store_true",
        help="hard-fail (exit 2) on a build-type mismatch, or when either "
        "side's build type cannot be determined — the Release perf lane "
        "must never silently compare against a debug-era anchor",
    )
    args = parser.parse_args()

    try:
        with open(args.current) as f:
            current = json.load(f)
        with open(args.anchor) as f:
            anchor = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"::error::perf gate cannot read inputs: {e}")
        return 1

    current_entries = current.get("benchmarks", [])
    anchor_speedups = anchor.get(args.key, {})

    # meta.build_type is the *perigee* library's CMake build type (not
    # google-benchmark's context.library_build_type, which reports how the
    # benchmark .so itself was compiled — see ARCHITECTURE.md "Release perf
    # truth"). The current run self-reports through the perigee_build_type
    # custom context micro_bench injects; --current-build-type overrides it.
    anchor_build_type = (anchor.get("meta") or {}).get("build_type")
    current_build_type = args.current_build_type or (
        current.get("context") or {}
    ).get("perigee_build_type")
    if current_build_type and anchor_build_type and (
        current_build_type != anchor_build_type
    ):
        message = (
            f"current run is {current_build_type} but {args.anchor} was "
            f"anchored under {anchor_build_type}; speedup ratios are not "
            "comparable across build modes — re-anchor or fix the lane's "
            "build type"
        )
        if args.strict_build_type:
            print(f"::error title=Bench build-type mismatch::{message}")
            return 2
        print(f"::warning title=Bench build-type mismatch::{message}")
    elif args.strict_build_type and not (
        current_build_type and anchor_build_type
    ):
        print(
            "::error title=Bench build-type unknown::--strict-build-type "
            f"needs both sides' build types (current: {current_build_type}, "
            f"anchor: {anchor_build_type}); pass --current-build-type or "
            "regenerate the anchor with meta"
        )
        return 2

    warned = False
    checked = 0
    for size in args.sizes.split(","):
        size = size.strip()
        anchor_ratio = anchor_speedups.get(f"n{size}")
        baseline = items_per_second(
            current_entries, f"{args.baseline_bench}/{size}"
        )
        fast = items_per_second(current_entries, f"{args.fast_bench}/{size}")
        if anchor_ratio is None or baseline is None or fast is None:
            print(
                f"::notice::perf gate: n={size} missing from current run or "
                "anchor; skipped"
            )
            continue
        checked += 1
        ratio = fast / baseline
        drop = 1.0 - ratio / anchor_ratio
        line = (
            f"{args.fast_bench}/{size} speedup ratio {ratio:.3f}x "
            f"(anchor {anchor_ratio:.3f}x, change {-drop:+.1%})"
        )
        if drop > args.max_regression:
            print(
                f"::warning title={args.fast_bench} perf regression::{line} "
                f"— regressed more than {args.max_regression:.0%} vs "
                f"{args.anchor}; re-anchor or investigate the fast path"
            )
            warned = True
        else:
            print(f"perf gate OK: {line}")

    if checked == 0:
        print("::notice::perf gate: nothing compared (no overlapping sizes)")
    # Soft gate: warnings annotate the run but never fail it.
    del warned
    return 0


if __name__ == "__main__":
    sys.exit(main())
