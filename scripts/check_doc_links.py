#!/usr/bin/env python3
"""Docs link check: every relative markdown link must point at a real file.

Scans the hand-written markdown (README.md, ARCHITECTURE.md, PAPER_MAP.md,
ROADMAP.md, docs/*.md) for inline links `[text](target)`, resolves each
relative target against the file that contains it, and fails with a GitHub
Actions ::error:: annotation when the target does not exist. External
schemes (http/https/mailto) and pure in-page anchors (#section) are skipped;
a `path#anchor` target is checked for the path part only — anchor slugs are
renderer-specific and not worth pinning.

Unlike the perf gates this is a hard gate: a dangling doc link is always a
bug, never runner noise.

Usage:
  check_doc_links.py [root]   # root defaults to the repo root (script/..)
"""

import pathlib
import re
import sys

# Inline markdown links, excluding images' alt-text edge cases handled the
# same way: capture the target between the parentheses.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: pathlib.Path):
    for name in ("README.md", "ARCHITECTURE.md", "PAPER_MAP.md",
                 "ROADMAP.md", "CHANGES.md", "PAPER.md"):
        path = root / name
        if path.exists():
            yield path
    yield from sorted((root / "docs").glob("*.md"))


def main():
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else (
        pathlib.Path(__file__).resolve().parent.parent)
    errors = 0
    checked = 0
    for doc in doc_files(root):
        text = doc.read_text(encoding="utf-8")
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            checked += 1
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                rel = doc.relative_to(root)
                print(f"::error file={rel},line={line}::dangling link "
                      f"'{target}' (resolved {resolved})")
                errors += 1
    print(f"checked {checked} relative links, {errors} dangling")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
