#!/usr/bin/env python3
"""Soft gate: telemetry-ON overhead on the hot broadcast path must stay small.

Usage:
    python3 scripts/check_telemetry_overhead.py on.json off.json \
        [--benchmark BM_BroadcastBatchRound] [--threshold-pct 2.0]

`on.json` and `off.json` are `micro_bench --benchmark_format=json` outputs
from PERIGEE_TELEMETRY=ON and =OFF builds of the same source. The script
compares items_per_second for every matching run of the chosen benchmark
(all Arg variants) and emits a GitHub Actions ::warning:: when the ON build
is more than the threshold slower. It is a SOFT gate — exit is always 0 on
well-formed input — because shared CI runners jitter more than 2% on their
own; the warning makes regressions visible without turning noise into red
lanes. Exit is nonzero only when the inputs are malformed or the benchmark
is missing from either file (that means the gate silently measured nothing).
"""

import argparse
import json
import sys


def load_runs(path: str, benchmark: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_telemetry_overhead: cannot load {path}: {err}",
              file=sys.stderr)
        sys.exit(1)
    runs = {}
    for entry in doc.get("benchmarks", []):
        name = entry.get("name", "")
        if name.split("/")[0] != benchmark:
            continue
        if entry.get("run_type") == "aggregate":
            continue
        ips = entry.get("items_per_second")
        if isinstance(ips, (int, float)) and ips > 0:
            runs[name] = ips
    if not runs:
        print(f"check_telemetry_overhead: no {benchmark} runs with "
              f"items_per_second in {path}", file=sys.stderr)
        sys.exit(1)
    return runs


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Warn when telemetry-ON slows the hot path beyond the "
                    "threshold.")
    parser.add_argument("on_json", help="micro_bench JSON from the ON build")
    parser.add_argument("off_json", help="micro_bench JSON from the OFF build")
    parser.add_argument("--benchmark", default="BM_BroadcastBatchRound")
    parser.add_argument("--threshold-pct", type=float, default=2.0)
    args = parser.parse_args()

    on = load_runs(args.on_json, args.benchmark)
    off = load_runs(args.off_json, args.benchmark)
    common = sorted(set(on) & set(off))
    if not common:
        print("check_telemetry_overhead: ON and OFF files share no runs",
              file=sys.stderr)
        sys.exit(1)

    worst = 0.0
    for name in common:
        overhead_pct = 100.0 * (off[name] - on[name]) / off[name]
        worst = max(worst, overhead_pct)
        verdict = ("WARN" if overhead_pct > args.threshold_pct else "ok")
        print(f"{verdict:4} {name}: ON {on[name]:.3e} items/s, "
              f"OFF {off[name]:.3e} items/s, overhead {overhead_pct:+.2f}%")

    if worst > args.threshold_pct:
        print(f"::warning title=Telemetry overhead::telemetry-ON is "
              f"{worst:.2f}% slower than OFF on {args.benchmark} "
              f"(soft gate threshold {args.threshold_pct}%)")
    else:
        print(f"telemetry overhead within {args.threshold_pct}% "
              f"(worst {worst:+.2f}%)")


if __name__ == "__main__":
    main()
