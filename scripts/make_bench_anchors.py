#!/usr/bin/env python3
"""Regenerate the seven BENCH_*.json perf anchors from one build tree.

Usage:
    python3 scripts/make_bench_anchors.py --build-dir build-o2 [--out-dir .]
        [--min-time 0.2] [--skip-scale] [--skip-sweeps]

One micro_bench run (JSON format) feeds every micro-anchor; the figure /
sweep / scale instruments are invoked separately for the blocks that are not
google-benchmark entries. The emitted files keep the exact
`perigee-bench-snapshot-v1` shape the soft gates consume
(scripts/check_bench_regression.py), including the `meta` block (this
binary's configure-time facts, via `perigee_sweep --print-meta`) and the
benchmark `context` (which carries google-benchmark's own
`library_build_type` — the system .so's build flavor, NOT perigee's — plus
the authoritative `perigee_build_type` custom-context key; see
ARCHITECTURE.md, "Release perf truth").

Anchor regeneration policy: run this ONLY from a Release (-O2) tree when
refreshing the checked-in anchors. The debug-era anchors are frozen as
BENCH_*_debug.json and are never regenerated.
"""
from __future__ import annotations

import argparse
import json
import os
import re
import statistics
import subprocess
import sys
import tempfile
import time

# google-benchmark entry keys the anchors keep (drop run metadata noise).
ENTRY_KEYS = ("name", "iterations", "real_time", "cpu_time", "time_unit",
              "items_per_second")
# context keys carried into every anchor: hardware facts, the library's own
# build flavor, and perigee's authoritative build-type custom context.
CONTEXT_KEYS = ("num_cpus", "mhz_per_cpu", "library_build_type",
                "perigee_build_type", "perigee_cxx_flags")

SCHEMA = "perigee-bench-snapshot-v1"

NOTES = {
    "baseline": (
        "CI-sized perf/quality anchor: micro-engine costs, Figure-1 stretch, "
        "and the baseline sweep grid run on the parallel runner (--jobs 1 "
        "reference; curves are jobs-invariant)."),
    "broadcast": (
        "Broadcast fast-path anchor: legacy Topology-walking engine vs the "
        "compiled CSR engine (pre-resolved per-edge delta, 4-ary heap, "
        "reusable scratch), plus CSR compile cost, the batched multi-source "
        "eval, and the isolated relaxation inner loop (BM_RelaxInnerLoop: "
        "fixed-point bucket keys, next-row prefetch, branchless settle). "
        "broadcast_speedup is CSR/legacy items_per_second; the acceptance "
        "bar at the fig3a grid size (n=1000) is >= 1.5x. relax_inner_speedup "
        "is BM_RelaxInnerLoop/legacy at the same sizes (no bar; tracked for "
        "the hot-loop micro-pass)."),
    "multi_source": (
        "Batched multi-source engine anchor: the per-source CSR loop "
        "(4-ary-heap Dijkstra + lambda accumulation per source, shared "
        "compile and scratch) vs the batched engine (monotone bucket queue, "
        "SoA per-source stripes, deferred ready fill, radix-sorted lambda "
        "accumulation) on the fig3a-size all-sources eval workload. "
        "multi_source_speedup is batched/per-source items_per_second; the "
        "acceptance bar at the fig3a grid size (n=1000) is >= 2x. Measured "
        "single-threaded on a 1-core container; the engine additionally fans "
        "sources across a runner::ThreadPool with byte-identical output, so "
        "multi-core wall-clock scales further (see BM_BroadcastBatchRound "
        "for the round-loop batch shape)."),
    "incremental_csr": (
        "Incremental-CSR anchor: per-round topology refresh as a full "
        "flat-graph recompile vs the mutation-journal patch path "
        "(net::CsrCache apply_deltas), refresh isolated from the mutations "
        "themselves. incremental_csr_speedup is the churn-epoch round shape "
        "(2% seeded churn, the scenario sweeps' common case; a few hundred "
        "journaled deltas at n=1000): patch/rebuild items_per_second, "
        "acceptance bar at the fig3a grid size (n=1000) >= 3x. "
        "full_rewire_refresh_speedup is the heaviest shape (every node "
        "replaces 2 of dout=8 out-edges per round, ~4n deltas) where the "
        "patch touches nearly every row and the win compresses toward the "
        "saved latency-model resolutions (4x fewer); recorded for "
        "transparency, no bar. adaptive_round_speedup and sweep_wallclock "
        "record the end-to-end |B|=100 adaptive round / sweep win, small by "
        "construction because one compile already amortizes over 100 blocks "
        "(PR2); |B|=1 (UCB) and churn-driven rounds are where the refresh "
        "dominates. Measured single-threaded on a 1-core container."),
    "queuing": (
        "Queuing-engine anchor for the egress transmission DES "
        "(sim/egress.hpp, docs/TRANSMISSION_MODEL.md). "
        "egress_unlimited_speedup is BM_BroadcastEgressUnlimited / "
        "BM_BroadcastCsr items_per_second: the event loop in its ∞-rate "
        "parity corner computes the exact delay-only arrivals (byte parity "
        "pinned by tests/sim_engine_diff_test.cpp), so the ratio prices pure "
        "DES overhead — the heap carries (time, seq, node, kind) events "
        "plus per-sender scheduler state instead of bare (dist, node) keys, "
        "and every Ready node walks its control segment. The soft gate bars "
        "regressions of this ratio at n=1000, not the absolute value. "
        "egress_queue_speedup is the finite-rate congestion workload (200 KB "
        "blocks + 1 KB INV chatter over 33 Mbit/s profile rates): one "
        "SendDone event per serializing message pushes the event count per "
        "broadcast from O(n) toward O(edges), which is why the congestion "
        "grid is sized at n=200. Measured on a 1-core container."),
    "scale": (
        "Scale anchor for the parallel delta-stepping engine and the compact "
        "fixed-point CSR. parallel_delta_speedup / compact_speedup are "
        "items_per_second ratios vs BM_BroadcastCsr (the settled-heap CSR "
        "reference) at each micro_bench grid size; the soft gate bars on "
        "n1000. The `scale` block is one n=10^5 single-source broadcast "
        "(scale_broadcast --nodes 100000 --jobs 2 --reps 5, median "
        "wall-clock per engine, byte parity asserted on the measured run); "
        "parallel_delta_x2 can be SLOWER than x1 on a single core: two "
        "barrier-synchronized workers timeshare it, which is pure overhead "
        "— the x1 path (inline, no barriers) is the honest 1-core "
        "figure and byte-identical to every other team size by "
        "construction. Measured on a 1-core container."),
}

# The micro_bench subset each anchor records (exact benchmark names).
MICRO_SLICES = {
    "baseline": [
        "BM_Broadcast/200", "BM_Broadcast/1000", "BM_Broadcast/4000",
        "BM_RoundWithSubsetScoring/200", "BM_RoundWithSubsetScoring/1000",
        "BM_EdgeDelay",
    ],
    "broadcast": [
        "BM_Broadcast/200", "BM_Broadcast/1000", "BM_Broadcast/4000",
        "BM_BroadcastCsr/200", "BM_BroadcastCsr/1000", "BM_BroadcastCsr/4000",
        "BM_RelaxInnerLoop/200", "BM_RelaxInnerLoop/1000",
        "BM_RelaxInnerLoop/4000",
        "BM_CsrBuild/200", "BM_CsrBuild/1000", "BM_CsrBuild/4000",
        "BM_EvalAllSources/200", "BM_EvalAllSources/1000",
    ],
    "multi_source": [
        "BM_MultiSourcePerSourceCsr/200", "BM_MultiSourcePerSourceCsr/1000",
        "BM_MultiSourceBatched/200", "BM_MultiSourceBatched/1000",
        "BM_BroadcastBatchRound/200", "BM_BroadcastBatchRound/1000",
    ],
    "incremental_csr": [
        "BM_CsrRoundRefreshRebuild/200", "BM_CsrRoundRefreshRebuild/1000",
        "BM_CsrRoundRefreshPatch/200", "BM_CsrRoundRefreshPatch/1000",
        "BM_CsrChurnRefreshRebuild/200", "BM_CsrChurnRefreshRebuild/1000",
        "BM_CsrChurnRefreshPatch/200", "BM_CsrChurnRefreshPatch/1000",
        "BM_AdaptiveRoundRebuild/200", "BM_AdaptiveRoundRebuild/1000",
        "BM_AdaptiveRoundPatched/200", "BM_AdaptiveRoundPatched/1000",
    ],
    "queuing": [
        "BM_BroadcastCsr/200", "BM_BroadcastCsr/1000", "BM_BroadcastCsr/4000",
        "BM_BroadcastEgressUnlimited/200", "BM_BroadcastEgressUnlimited/1000",
        "BM_BroadcastEgressUnlimited/4000",
        "BM_BroadcastEgress/200", "BM_BroadcastEgress/1000",
        "BM_BroadcastEgress/4000",
    ],
    "scale": [
        "BM_Broadcast/200", "BM_Broadcast/1000", "BM_Broadcast/4000",
        "BM_BroadcastCsr/200", "BM_BroadcastCsr/1000", "BM_BroadcastCsr/4000",
        "BM_BroadcastParallelDelta/200", "BM_BroadcastParallelDelta/1000",
        "BM_BroadcastParallelDelta/4000",
        "BM_BroadcastCompact/200", "BM_BroadcastCompact/1000",
        "BM_BroadcastCompact/4000",
    ],
}


def run(cmd, **kwargs):
    print("+", " ".join(cmd), file=sys.stderr, flush=True)
    return subprocess.run(cmd, check=True, **kwargs)


def micro_filter():
    names = sorted({n.split("/")[0] for s in MICRO_SLICES.values() for n in s})
    return "^(" + "|".join(names) + ")(/|$)"


def run_micro_bench(build_dir, min_time):
    exe = os.path.join(build_dir, "micro_bench")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    run([exe, f"--benchmark_filter={micro_filter()}",
         # No "s" suffix: benchmark 1.7.x rejects suffixed durations
         # (1.8+ accepts both spellings).
         f"--benchmark_min_time={min_time}",
         f"--benchmark_out={out_path}", "--benchmark_out_format=json"],
        stdout=subprocess.DEVNULL)
    with open(out_path) as fh:
        data = json.load(fh)
    os.unlink(out_path)
    return data


def entry_map(micro_json):
    entries = {}
    for bench in micro_json["benchmarks"]:
        if bench.get("run_type", "iteration") != "iteration":
            continue
        entries[bench["name"]] = {k: bench[k] for k in ENTRY_KEYS
                                  if k in bench}
    return entries


def context_block(micro_json):
    ctx = micro_json["context"]
    return {k: ctx[k] for k in CONTEXT_KEYS if k in ctx}


def capture_meta(build_dir):
    out = run([os.path.join(build_dir, "perigee_sweep"), "--print-meta"],
              capture_output=True, text=True).stdout
    return json.loads(out)


def speedup(entries, fast, slow, sizes):
    return {f"n{s}": round(entries[f"{fast}/{s}"]["items_per_second"] /
                           entries[f"{slow}/{s}"]["items_per_second"], 3)
            for s in sizes}


def slice_entries(entries, anchor):
    missing = [n for n in MICRO_SLICES[anchor] if n not in entries]
    if missing:
        raise SystemExit(f"micro_bench run is missing {missing} for {anchor}")
    return [entries[n] for n in MICRO_SLICES[anchor]]


def parse_fig1(build_dir, nodes):
    out = run([os.path.join(build_dir, "fig1_stretch"), "--nodes",
               str(nodes)], capture_output=True, text=True).stdout
    rows = []
    for line in out.splitlines():
        # util::Table row: "<topology>  <edges>  <corner>  <median>  <p90>
        # <max>" with a text label that may contain spaces/parentheses.
        m = re.match(r"^\s*(\S.*?)\s{2,}(\d+)\s+([\d.]+)\s+([\d.]+)\s+"
                     r"([\d.]+)\s+([\d.]+)\s*$", line)
        if m and not m.group(1).lower().startswith("topology"):
            rows.append({
                "topology": m.group(1).strip(),
                "edges": int(m.group(2)),
                "corner_stretch": float(m.group(3)),
                "median_stretch": float(m.group(4)),
                "p90_stretch": float(m.group(5)),
                "max_stretch": float(m.group(6)),
            })
    if len(rows) < 2:
        raise SystemExit(f"could not parse fig1_stretch table:\n{out}")
    return {"nodes": nodes, "rows": rows}


def timed_sweep(build_dir, json_path, incremental=True):
    cmd = [os.path.join(build_dir, "perigee_sweep"), "--figure", "baseline",
           "--seeds", "2", "--jobs", "1", "--json", json_path]
    if not incremental:
        cmd.append("--incremental-csr=false")
    start = time.monotonic()
    run(cmd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    return time.monotonic() - start


def sweep_baseline_block(build_dir, scratch_dir):
    path = os.path.join(scratch_dir, "sweep_baseline.json")
    wall = timed_sweep(build_dir, path)
    with open(path) as fh:
        data = json.load(fh)
    return ({"name": data["name"], "spec": data["spec"],
             "cells": data["cells"]}, round(wall, 2))


def sweep_wallclock_block(build_dir, scratch_dir, runs=3):
    patched, rebuild = [], []
    path = os.path.join(scratch_dir, "wallclock.json")
    for _ in range(runs):  # interleaved to share thermal/noise conditions
        patched.append(timed_sweep(build_dir, path, incremental=True))
        rebuild.append(timed_sweep(build_dir, path, incremental=False))
    med_p = statistics.median(patched)
    med_r = statistics.median(rebuild)
    return {
        "note": ("perigee_sweep --figure baseline --seeds 2 --jobs 1, median "
                 f"of {2 * runs} interleaved runs, --incremental-csr=false "
                 "vs default; output JSON byte-identical either way"),
        "baseline_patched_s": round(med_p, 2),
        "baseline_rebuild_s": round(med_r, 2),
        "baseline_win": round(med_r / med_p, 3),
    }


def scale_block(build_dir, scratch_dir):
    path = os.path.join(scratch_dir, "scale.json")
    run([os.path.join(build_dir, "scale_broadcast"), "--nodes", "100000",
         "--jobs", "2", "--reps", "5", "--json", path],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    with open(path) as fh:
        data = json.load(fh)
    jobs = data["jobs"]
    block = {k: data[k] for k in ("nodes", "seed", "jobs", "reps",
                                  "reference_heap_ms", "parallel_delta_x1_ms")}
    block[f"parallel_delta_x{jobs}_ms"] = data["parallel_delta_xjobs_ms"]
    for k in ("compact_fixedpoint_ms", "csr_snapshot_bytes",
              "compact_snapshot_bytes", "parallel_scratch_bytes",
              "peak_rss_kb"):
        block[k] = data[k]
    block["peak_rss_budget_kb"] = 1048576  # soak test's 1 GiB ceiling
    return block


def write_anchor(out_dir, stem, payload):
    path = os.path.join(out_dir, f"BENCH_{stem}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"wrote {path}", file=sys.stderr)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", required=True,
                    help="build tree holding micro_bench/perigee_sweep/"
                         "fig1_stretch/scale_broadcast")
    ap.add_argument("--out-dir", default=".",
                    help="where BENCH_*.json land (repo root)")
    ap.add_argument("--min-time", default="0.2",
                    help="google-benchmark --benchmark_min_time seconds")
    ap.add_argument("--skip-scale", action="store_true",
                    help="keep the existing scale block (skips the n=1e5 "
                         "soak; the micro slice is still refreshed)")
    ap.add_argument("--skip-sweeps", action="store_true",
                    help="keep existing sweep/wallclock/fig1 blocks (only "
                         "micro entries + speedups are refreshed)")
    args = ap.parse_args()

    micro = run_micro_bench(args.build_dir, args.min_time)
    entries = entry_map(micro)
    ctx = context_block(micro)
    meta = capture_meta(args.build_dir)

    def previous(stem, key, fallback=None):
        path = os.path.join(args.out_dir, f"BENCH_{stem}.json")
        if os.path.exists(path):
            with open(path) as fh:
                return json.load(fh).get(key, fallback)
        return fallback

    with tempfile.TemporaryDirectory() as scratch:
        # --- BENCH_broadcast ---
        write_anchor(args.out_dir, "broadcast", {
            "schema": SCHEMA,
            "note": NOTES["broadcast"],
            "context": ctx,
            "meta": meta,
            "broadcast_speedup": speedup(entries, "BM_BroadcastCsr",
                                         "BM_Broadcast", (200, 1000, 4000)),
            "relax_inner_speedup": speedup(entries, "BM_RelaxInnerLoop",
                                           "BM_Broadcast", (200, 1000, 4000)),
            "micro_bench": slice_entries(entries, "broadcast"),
        })

        # --- BENCH_multi_source ---
        write_anchor(args.out_dir, "multi_source", {
            "schema": SCHEMA,
            "note": NOTES["multi_source"],
            "context": ctx,
            "meta": meta,
            "multi_source_speedup": speedup(entries, "BM_MultiSourceBatched",
                                            "BM_MultiSourcePerSourceCsr",
                                            (200, 1000)),
            "micro_bench": slice_entries(entries, "multi_source"),
        })

        # --- BENCH_incremental_csr ---
        if args.skip_sweeps:
            wallclock = previous("incremental_csr", "sweep_wallclock", {})
        else:
            wallclock = sweep_wallclock_block(args.build_dir, scratch)
        write_anchor(args.out_dir, "incremental_csr", {
            "schema": SCHEMA,
            "note": NOTES["incremental_csr"],
            "context": ctx,
            "meta": meta,
            "incremental_csr_speedup": speedup(
                entries, "BM_CsrChurnRefreshPatch", "BM_CsrChurnRefreshRebuild",
                (200, 1000)),
            "full_rewire_refresh_speedup": speedup(
                entries, "BM_CsrRoundRefreshPatch", "BM_CsrRoundRefreshRebuild",
                (200, 1000)),
            "adaptive_round_speedup": speedup(
                entries, "BM_AdaptiveRoundPatched", "BM_AdaptiveRoundRebuild",
                (200, 1000)),
            "sweep_wallclock": wallclock,
            "micro_bench": slice_entries(entries, "incremental_csr"),
        })

        # --- BENCH_queuing ---
        write_anchor(args.out_dir, "queuing", {
            "schema": SCHEMA,
            "note": NOTES["queuing"],
            "context": ctx,
            "meta": meta,
            "egress_unlimited_speedup": speedup(
                entries, "BM_BroadcastEgressUnlimited", "BM_BroadcastCsr",
                (200, 1000, 4000)),
            "egress_queue_speedup": speedup(
                entries, "BM_BroadcastEgress", "BM_BroadcastCsr",
                (200, 1000, 4000)),
            "micro_bench": slice_entries(entries, "queuing"),
        })

        # --- BENCH_scale ---
        scale = (previous("scale", "scale", {}) if args.skip_scale
                 else scale_block(args.build_dir, scratch))
        write_anchor(args.out_dir, "scale", {
            "schema": SCHEMA,
            "note": NOTES["scale"],
            "context": ctx,
            "meta": meta,
            "parallel_delta_speedup": speedup(
                entries, "BM_BroadcastParallelDelta", "BM_BroadcastCsr",
                (200, 1000, 4000)),
            "compact_speedup": speedup(entries, "BM_BroadcastCompact",
                                       "BM_BroadcastCsr", (200, 1000, 4000)),
            "scale": scale,
            "micro_bench": slice_entries(entries, "scale"),
        })

        # --- BENCH_baseline ---
        if args.skip_sweeps:
            fig1 = previous("baseline", "fig1_stretch", {})
            sweep = previous("baseline", "sweep_baseline", {})
            wall = previous("baseline", "sweep_baseline_wall_seconds_jobs1")
        else:
            fig1 = parse_fig1(args.build_dir, 400)
            sweep, wall = sweep_baseline_block(args.build_dir, scratch)
        write_anchor(args.out_dir, "baseline", {
            "schema": SCHEMA,
            "note": NOTES["baseline"],
            "context": ctx,
            "meta": meta,
            "micro_bench": slice_entries(entries, "baseline"),
            "fig1_stretch": fig1,
            "sweep_baseline": sweep,
            "sweep_baseline_wall_seconds_jobs1": wall,
        })

        # --- BENCH_sweep: a raw ad-hoc sweep output (delay vs queue
        # transmission at a toy size), written directly by perigee_sweep.
        if not args.skip_sweeps:
            run([os.path.join(args.build_dir, "perigee_sweep"),
                 "--algorithms", "random", "--nodes", "80", "--rounds", "3",
                 "--transmission", "delay,queue", "--seeds", "1",
                 "--jobs", "1",
                 "--json", os.path.join(args.out_dir, "BENCH_sweep.json")],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            print(f"wrote {args.out_dir}/BENCH_sweep.json", file=sys.stderr)


if __name__ == "__main__":
    main()
