#!/usr/bin/env python3
"""Remove the top-level "meta" member from a sweep/bench JSON file.

Usage:
    python3 scripts/strip_meta.py in.json out.json

`perigee_sweep` stamps every JSON it writes with a `meta` block (git sha,
peak RSS, wall clock) that legitimately differs between two otherwise
byte-identical runs. CI's determinism gates compare curves with `cmp`, so
both sides are passed through this script first. The body outside `meta` is
copied through byte-for-byte — the writer emits `meta` as a self-contained
two-space-indented block between "spec" and "cells", and
ObsDeterminism.MetaMemberDoesNotDisturbCurveBytes pins that textual shape —
so stripped outputs from runs with and without meta compare equal.
"""

import json
import sys


def strip(text: str) -> str:
    begin = text.find('  "meta": {')
    if begin == -1:
        return text  # nothing to strip (e.g. emitted without meta)
    end = text.find("  },\n", begin)
    if end == -1:
        raise ValueError('found "meta" opener but no closing "  },"')
    return text[:begin] + text[end + len("  },\n"):]


def main() -> None:
    if len(sys.argv) != 3:
        print("usage: strip_meta.py in.json out.json", file=sys.stderr)
        sys.exit(2)
    with open(sys.argv[1], encoding="utf-8") as handle:
        text = handle.read()
    stripped = strip(text)
    json.loads(stripped)  # must still be valid JSON after surgery
    with open(sys.argv[2], "w", encoding="utf-8") as handle:
        handle.write(stripped)


if __name__ == "__main__":
    main()
