#!/usr/bin/env python3
"""Summarize a perigee Chrome trace_event JSON as a per-phase time table.

Usage:
    python3 scripts/summarize_trace.py trace.json
    python3 scripts/summarize_trace.py trace.json --check
    python3 scripts/summarize_trace.py trace.json --phase round

Reads the file `perigee_sweep --trace` (or any bench with --trace) wrote and
prints, per span name: event count, total/mean/min/max duration in
milliseconds, and the share of the wall-clock span the phase covers. With
--check the script validates the trace's structure (the fields
chrome://tracing and Perfetto require) and exits nonzero on any problem, so
CI can gate on "the trace artifact is loadable".

Only complete events ("ph": "X") are emitted by the tracer; anything else in
the file is rejected under --check. Durations overlap (spans nest:
sweep_cell > experiment > round > broadcast_batch), so phase totals are not
expected to sum to the wall clock.
"""

import argparse
import json
import sys

REQUIRED_EVENT_FIELDS = ("name", "ph", "ts", "dur", "pid", "tid")


def fail(message: str) -> None:
    print(f"summarize_trace: error: {message}", file=sys.stderr)
    sys.exit(1)


def load_trace(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{path} is not valid JSON: {err}")
    if not isinstance(doc, dict):
        fail("top level must be a JSON object (trace_event object format)")
    return doc


def validate(doc: dict) -> list:
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('missing or non-array "traceEvents"')
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"traceEvents[{i}] is not an object")
        for field in REQUIRED_EVENT_FIELDS:
            if field not in event:
                fail(f'traceEvents[{i}] lacks required field "{field}"')
        if event["ph"] != "X":
            fail(f'traceEvents[{i}] has ph={event["ph"]!r}; the tracer only '
                 'emits complete events ("X")')
        if not isinstance(event["name"], str) or not event["name"]:
            fail(f"traceEvents[{i}] has an empty or non-string name")
        for field in ("ts", "dur"):
            if not isinstance(event[field], (int, float)):
                fail(f"traceEvents[{i}].{field} is not a number")
        if event["dur"] < 0:
            fail(f"traceEvents[{i}] has negative dur")
        if event["ts"] < 0:
            fail(f"traceEvents[{i}] has negative ts")
    return events


def summarize(events: list, phase_filter: str | None) -> list:
    phases = {}
    for event in events:
        name = event["name"]
        if phase_filter is not None and name != phase_filter:
            continue
        dur_ms = event["dur"] / 1000.0  # trace timestamps are microseconds
        stats = phases.setdefault(
            name, {"count": 0, "total": 0.0, "min": dur_ms, "max": dur_ms})
        stats["count"] += 1
        stats["total"] += dur_ms
        stats["min"] = min(stats["min"], dur_ms)
        stats["max"] = max(stats["max"], dur_ms)
    return sorted(phases.items(), key=lambda kv: -kv[1]["total"])


def print_table(events: list, rows: list) -> None:
    if not events:
        print("(no events)")
        return
    span_ms = (max(e["ts"] + e["dur"] for e in events) -
               min(e["ts"] for e in events)) / 1000.0
    header = ("phase", "count", "total ms", "mean ms", "min ms", "max ms",
              "% span")
    widths = [max(len(header[0]), *(len(name) for name, _ in rows))
              if rows else len(header[0])] + [10] * 6
    line = "  ".join(h.rjust(w) if i else h.ljust(w)
                     for i, (h, w) in enumerate(zip(header, widths)))
    print(line)
    print("-" * len(line))
    for name, s in rows:
        share = 100.0 * s["total"] / span_ms if span_ms > 0 else 0.0
        cells = (f"{s['count']}", f"{s['total']:.3f}",
                 f"{s['total'] / s['count']:.3f}", f"{s['min']:.3f}",
                 f"{s['max']:.3f}", f"{share:.1f}")
        print("  ".join([name.ljust(widths[0])] +
                        [c.rjust(w) for c, w in zip(cells, widths[1:])]))
    print(f"\nwall-clock span: {span_ms:.3f} ms across {len(events)} events")


def print_metrics(doc: dict) -> None:
    metrics = doc.get("perigeeMetrics")
    if not isinstance(metrics, dict):
        return
    counters = metrics.get("counters") or {}
    histograms = metrics.get("histograms") or {}
    if counters:
        print("\ncounters:")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]}")
    if histograms:
        print("\nhistograms (power-of-two buckets):")
        for name in sorted(histograms):
            hist = histograms[name]
            count = hist.get("count", 0)
            mean = hist.get("sum", 0) / count if count else 0.0
            print(f"  {name}: count={count} mean={mean:.1f}")


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Per-phase time table for a perigee --trace file.")
    parser.add_argument("trace", help="Chrome trace_event JSON path")
    parser.add_argument("--check", action="store_true",
                        help="validate structure only; exit nonzero on any "
                             "malformation (CI gate)")
    parser.add_argument("--phase", default=None,
                        help="restrict the table to one span name")
    parser.add_argument("--no-metrics", action="store_true",
                        help="skip the embedded counter/histogram dump")
    args = parser.parse_args()

    doc = load_trace(args.trace)
    events = validate(doc)

    if args.check:
        meta = doc.get("metadata")
        if not isinstance(meta, dict) or "build_type" not in meta:
            fail('missing "metadata" with build provenance')
        print(f"ok: {len(events)} events, "
              f"{len({e['name'] for e in events})} phases, "
              f"build={meta.get('build_type')} sha={meta.get('git_sha')}")
        return

    print_table(events, summarize(events, args.phase))
    if not args.no_metrics:
        print_metrics(doc)


if __name__ == "__main__":
    main()
