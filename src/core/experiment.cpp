#include "core/experiment.hpp"

#include <algorithm>
#include <functional>
#include <optional>

#include "metrics/edge_hist.hpp"
#include "metrics/eval.hpp"
#include "net/csr.hpp"
#include "obs/trace.hpp"
#include "runner/thread_pool.hpp"
#include "scenario/driver.hpp"
#include "sim/egress.hpp"
#include "sim/rounds.hpp"
#include "topo/builders.hpp"
#include "topo/coordinates.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

// Local `Scenario scenario` variables below shadow the scenario namespace;
// refer to the scenario layer through this alias.
namespace scn = perigee::scenario;

namespace perigee::core {
namespace {

// The scenario layer's KB-denominated transmission regime, converted to the
// engine's byte-denominated config (1 KB = 1000 bytes, matching the
// kilobyte/Mbit arithmetic of net::Network::edge_delay_from_link_ms).
sim::EgressConfig egress_config_from(const scn::TransmissionRegime& regime) {
  sim::EgressConfig config;
  config.block_bytes = regime.block_kb * 1000.0;
  config.control_bytes = regime.control_kb * 1000.0;
  config.compact_blocks = regime.compact_blocks;
  config.rate_scale = regime.rate_scale;
  config.burst_bytes = regime.burst_kb * 1000.0;
  return config;
}

// The experiment's λ-evaluation state: delay-only by default, or the
// queued-transmission engine when the scenario's transmission regime is
// active. One instance serves the round loop's checkpoints and the final
// coverage evaluations, so scratch arenas and the rate plan are shared.
struct EvalEngine {
  sim::MultiSourceScratch scratch;
  std::optional<sim::EgressConfig> egress;
  sim::EgressPlanCache plans;     // rebuilt when profiles change (churn)
  sim::EgressScratch egress_scratch;

  explicit EvalEngine(const ExperimentConfig& config) {
    if (config.scenario.transmission.enabled()) {
      egress = egress_config_from(config.scenario.transmission);
    }
  }

  std::vector<double> lambda(const net::CsrTopology& csr,
                             const net::Network& network, double coverage,
                             runner::ThreadPool* pool) {
    if (egress.has_value()) {
      return metrics::eval_all_sources_egress(
          csr, network, *egress, plans.get(network, *egress), coverage,
          &egress_scratch, pool);
    }
    return metrics::eval_all_sources(csr, network, coverage, &scratch, pool);
  }
};

// Checkpoint evaluation over an already-compiled snapshot (the round
// runner's cache), sharing the experiment's engine scratch and pool: no
// per-checkpoint compile, no per-checkpoint arena.
Checkpoint make_checkpoint(std::size_t blocks_mined,
                           const net::CsrTopology& csr,
                           const net::Network& network, double coverage,
                           EvalEngine& eval, runner::ThreadPool* pool) {
  Checkpoint cp;
  cp.blocks_mined = blocks_mined;
  PERIGEE_TRACE_SPAN_ARGS(
      checkpoint_span, "checkpoint_eval",
      obs::TraceArgs().arg("blocks_mined", blocks_mined).json());
  const auto lambda = eval.lambda(csr, network, coverage, pool);
  cp.mean_lambda = util::mean(lambda);
  cp.median_lambda = util::percentile(lambda, 0.5);
  return cp;
}

}  // namespace

Scenario build_scenario(const ExperimentConfig& config) {
  net::NetworkOptions net_options = config.net;
  net_options.seed = config.seed;
  scn::adjust_network_options(net_options, config.scenario);
  net::Network network = net::Network::build(net_options);

  util::Rng master(config.seed);
  util::Rng hash_rng = master.split(0x4A5);
  util::Rng relay_rng = master.split(0x9E1);

  std::vector<net::NodeId> pool_members =
      mining::assign_hash_power(network, config.hash_model, hash_rng,
                                config.pools);

  // Static scenario regimes overlay the sampled substrate: geo clustering
  // moves regions, hetero tiers rewrite bandwidth/validation (and, for the
  // datacenter mix, re-concentrate the hash power just assigned), the
  // adversary regime flips `forwards` off. Inert specs change nothing.
  scn::apply_static_regimes(network, config.scenario, config.seed);

  if (config.pool_latency_scale != 1.0 && !pool_members.empty()) {
    PERIGEE_ASSERT(config.net.latency == net::NetworkOptions::LatencyKind::Geo);
    std::vector<bool> is_pool(network.size(), false);
    for (net::NodeId v : pool_members) is_pool[v] = true;
    network.set_latency_model(std::make_unique<net::PairClassScaledModel>(
        network.make_geo_model(),
        [is_pool = std::move(is_pool)](net::NodeId v) { return is_pool[v]; },
        config.pool_latency_scale));
  }

  net::Topology topology(network.size(), config.limits);
  std::vector<net::NodeId> relay_members;
  if (config.relay) {
    relay_members =
        topo::install_relay_tree(topology, network, config.relay_config,
                                 relay_rng)
            .members;
  }
  return Scenario{std::move(network), std::move(topology),
                  std::move(pool_members), std::move(relay_members)};
}

Scenario clone_scenario(const Scenario& scenario) {
  return Scenario{scenario.network.clone(), scenario.topology,
                  scenario.pool_members, scenario.relay_members};
}

void build_initial_topology(const ExperimentConfig& config,
                            Scenario& scenario) {
  util::Rng topo_rng = util::Rng(config.seed).split(0x7090);
  switch (config.algorithm) {
    case Algorithm::Geographic:
      topo::build_geo_clusters(scenario.topology, scenario.network, topo_rng);
      break;
    case Algorithm::Kademlia:
      topo::build_kademlia(scenario.topology, topo_rng);
      break;
    case Algorithm::KNearestOracle:
      topo::build_k_nearest(scenario.topology, scenario.network, topo_rng);
      break;
    case Algorithm::CoordinateGreedy:
      topo::build_coordinate_greedy(scenario.topology, scenario.network,
                                    topo_rng);
      break;
    case Algorithm::Ideal:
      PERIGEE_ASSERT_MSG(false, "use run_ideal for the ideal bound");
      break;
    case Algorithm::Random:
    case Algorithm::PerigeeVanilla:
    case Algorithm::PerigeeUcb:
    case Algorithm::PerigeeSubset:
      // Adaptive variants start from an arbitrary random topology (§4.1).
      topo::build_random(scenario.topology, topo_rng);
      break;
  }
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  return run_experiment(config, build_scenario(config));
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                Scenario scenario) {
  PERIGEE_TRACE_SPAN_ARGS(experiment_span, "experiment",
                          obs::TraceArgs()
                              .arg("algorithm", algorithm_name(config.algorithm))
                              .arg("nodes", config.net.n)
                              .arg("seed", config.seed)
                              .json());
  build_initial_topology(config, scenario);

  ExperimentResult result;
  result.algorithm = std::string(algorithm_name(config.algorithm));

  // Source-level parallelism (config.engine_jobs): one pool and one engine
  // arena serve the round loop, every checkpoint, and the final λ
  // evaluations. Byte-identical at any worker count, so sweep grids that
  // parallelize across seeds instead simply leave this at 1.
  std::unique_ptr<runner::ThreadPool> engine_pool;
  if (config.engine_jobs != 1) {
    const unsigned workers = runner::resolve_jobs(config.engine_jobs);
    if (workers > 1) {
      engine_pool = std::make_unique<runner::ThreadPool>(workers);
    }
  }
  // The message-level gossip engine scores neighbors by INV announcement
  // times and has no per-message serialization model; the queued regime is
  // a Fast-engine axis only.
  PERIGEE_ASSERT_MSG(
      !(config.message_level && config.scenario.transmission.enabled()),
      "message_level + transmission=queue is unsupported");
  EvalEngine eval(config);
  const auto eval_both = [&](const net::CsrTopology& csr) {
    PERIGEE_TRACE_SPAN(final_eval_span, "final_eval");
    result.lambda = eval.lambda(csr, scenario.network, config.coverage,
                                engine_pool.get());
    result.lambda50 =
        eval.lambda(csr, scenario.network, 0.50, engine_pool.get());
  };

  // Static baselines normally skip the round loop (their selectors never
  // rewire, so rounds would be no-ops) — but under churn the rounds *do*
  // something: nodes leave and rejoin, so every algorithm must live through
  // the same schedule. Only the churned nodes themselves redial on rejoin;
  // static policies do not otherwise repair lost connections.
  if (is_adaptive(config.algorithm) || config.scenario.churn.enabled()) {
    // UCB is a |B|=1 method: same total block budget, shorter rounds.
    const bool ucb = config.algorithm == Algorithm::PerigeeUcb;
    const int total_rounds =
        ucb ? config.rounds * config.blocks_per_round : config.rounds;
    // Static baselines reach this loop only under churn, and then only the
    // mutations matter: no selector reads the observations and no block
    // hook is installed, so simulate one block per round instead of |B|
    // discarded ones. The final λ depends only on the final topology either
    // way.
    const int blocks_per_round =
        ucb || !is_adaptive(config.algorithm) ? 1 : config.blocks_per_round;
    // What one round stands for on the blocks_mined checkpoint axis: static
    // baselines simulate 1 block but represent a full |B| budget, keeping
    // their convergence curves comparable to adaptive runs.
    const int budget_per_round = ucb ? 1 : config.blocks_per_round;

    sim::RoundRunner runner(
        scenario.network, scenario.topology,
        make_selectors(scenario.network.size(), config.algorithm,
                       config.params),
        blocks_per_round, config.seed,
        config.message_level ? sim::RoundRunner::Engine::Gossip
                             : sim::RoundRunner::Engine::Fast);
    runner.set_thread_pool(engine_pool.get());
    runner.set_csr_patching(config.incremental_csr);
    runner.set_relax_engine(config.relax_engine);
    runner.set_transmission(eval.egress);

    std::unique_ptr<net::AddrMan> addrman;
    if (config.partial_view) {
      addrman = std::make_unique<net::AddrMan>(scenario.network.size(),
                                               config.addrman_capacity);
      util::Rng boot_rng = util::Rng(config.seed).split(0xB007);
      addrman->bootstrap(boot_rng, config.addrman_bootstrap);
      addrman->add_neighbors_of(scenario.topology);
      runner.set_addrman(addrman.get());
    }

    std::unique_ptr<scn::ChurnDriver> churn;
    if (config.scenario.churn.enabled()) {
      // UCB spreads one update epoch over blocks_per_round single-block
      // rounds; the driver lands churn on epoch boundaries so every
      // algorithm endures the same schedule for the same block budget.
      const auto rounds_per_epoch =
          ucb ? static_cast<std::size_t>(config.blocks_per_round) : 1u;
      churn = std::make_unique<scn::ChurnDriver>(
          config.scenario.churn, scenario.topology, scenario.network,
          config.seed, addrman.get(), config.addrman_bootstrap,
          rounds_per_epoch);
      runner.set_pre_round_hook([&runner,
                                 driver = churn.get()](std::size_t round) {
        if (driver->before_round(round)) runner.refresh_hash_power();
        for (const net::NodeId v : driver->last_rejoined()) {
          runner.reset_selector(v);
        }
      });
    }

    // Checkpoints evaluate runner.current_csr(): the compile is served from
    // the runner's cache, so the next round (same topology version) reuses
    // it instead of compiling the same graph a second time.
    if (config.checkpoints > 0) {
      result.checkpoints.push_back(
          make_checkpoint(0, runner.current_csr(), scenario.network,
                          config.coverage, eval, engine_pool.get()));
    }
    const int interval =
        config.checkpoints > 0
            ? std::max(1, total_rounds / config.checkpoints)
            : total_rounds;
    int done = 0;
    while (done < total_rounds) {
      const int step = std::min(interval, total_rounds - done);
      runner.run_rounds(step);
      done += step;
      if (config.checkpoints > 0) {
        result.checkpoints.push_back(make_checkpoint(
            static_cast<std::size_t>(done) *
                static_cast<std::size_t>(budget_per_round),
            runner.current_csr(), scenario.network, config.coverage, eval,
            engine_pool.get()));
      }
    }
    // Both final coverage evaluations ride on the runner's cached compile.
    eval_both(runner.current_csr());
  } else {
    // No round loop ran: one flat-graph compile serves both coverage
    // evaluations of the static topology.
    eval_both(net::CsrTopology::build(scenario.topology, scenario.network));
  }

  result.edge_latencies =
      metrics::p2p_edge_latencies(scenario.topology, scenario.network);
  return result;
}

std::vector<double> run_ideal(const ExperimentConfig& config) {
  const Scenario scenario = build_scenario(config);
  // The scenario topology holds only infra (relay) edges at this point;
  // overlaying them keeps the bound valid when a relay network exists.
  return metrics::eval_ideal(scenario.network, config.coverage,
                             &scenario.topology);
}

IdealResult run_ideal_both(const ExperimentConfig& config) {
  return run_ideal_both(config, build_scenario(config));
}

IdealResult run_ideal_both(const ExperimentConfig& config,
                           const Scenario& scenario) {
  auto multi = metrics::eval_ideal_multi(
      scenario.network, {config.coverage, 0.50}, &scenario.topology);
  return IdealResult{std::move(multi[0]), std::move(multi[1])};
}

CellCurves run_cell_curves(const ExperimentConfig& config,
                           const Scenario* prebuilt) {
  if (config.algorithm == Algorithm::Ideal) {
    IdealResult r = prebuilt != nullptr ? run_ideal_both(config, *prebuilt)
                                        : run_ideal_both(config);
    return CellCurves{std::move(r.lambda), std::move(r.lambda50)};
  }
  ExperimentResult r = prebuilt != nullptr
                           ? run_experiment(config, clone_scenario(*prebuilt))
                           : run_experiment(config);
  return CellCurves{std::move(r.lambda), std::move(r.lambda50)};
}

namespace {

// Runs fn(seed_index) for every seed, sequentially when at most one worker
// is useful, else on a pool. fn writes into a pre-assigned slot, which keeps
// the aggregate a pure function of the config at any worker count.
void for_each_seed(int num_seeds, int jobs,
                   const std::function<void(std::size_t)>& fn) {
  const auto n = static_cast<std::size_t>(num_seeds);
  const unsigned workers =
      std::min<unsigned>(runner::resolve_jobs(jobs), static_cast<unsigned>(n));
  if (workers <= 1) {
    for (std::size_t s = 0; s < n; ++s) fn(s);
    return;
  }
  runner::ThreadPool pool(workers);
  runner::parallel_for(pool, n, fn);
}

}  // namespace

namespace {

// Workers beyond the seed count would idle in the seed pool; hand them to
// each seed's engine instead (config.engine_jobs), where the batched
// engine's any-worker-count determinism keeps results byte-identical.
void flow_leftover_jobs(ExperimentConfig& config, int num_seeds, int jobs) {
  const unsigned resolved = runner::resolve_jobs(jobs);
  if (config.engine_jobs == 1 &&
      resolved > static_cast<unsigned>(num_seeds)) {
    config.engine_jobs =
        static_cast<int>(resolved / static_cast<unsigned>(num_seeds));
  }
}

}  // namespace

MultiSeedResult run_multi_seed(ExperimentConfig config, int num_seeds,
                               int jobs) {
  PERIGEE_ASSERT(num_seeds >= 1);
  flow_leftover_jobs(config, num_seeds, jobs);
  std::vector<std::vector<double>> runs(static_cast<std::size_t>(num_seeds));
  std::vector<std::vector<double>> runs50(static_cast<std::size_t>(num_seeds));
  const std::uint64_t base_seed = config.seed;
  for_each_seed(num_seeds, jobs, [&](std::size_t s) {
    ExperimentConfig seeded = config;
    seeded.seed = base_seed + static_cast<std::uint64_t>(s);
    ExperimentResult r = run_experiment(seeded);
    runs[s] = std::move(r.lambda);
    runs50[s] = std::move(r.lambda50);
  });
  return MultiSeedResult{metrics::aggregate_sorted_curves(std::move(runs)),
                         metrics::aggregate_sorted_curves(std::move(runs50))};
}

metrics::Curve run_ideal_multi_seed(ExperimentConfig config, int num_seeds,
                                    int jobs) {
  PERIGEE_ASSERT(num_seeds >= 1);
  std::vector<std::vector<double>> runs(static_cast<std::size_t>(num_seeds));
  const std::uint64_t base_seed = config.seed;
  for_each_seed(num_seeds, jobs, [&](std::size_t s) {
    ExperimentConfig seeded = config;
    seeded.seed = base_seed + static_cast<std::uint64_t>(s);
    runs[s] = run_ideal(seeded);
  });
  return metrics::aggregate_sorted_curves(std::move(runs));
}

IncrementalResult run_incremental(const ExperimentConfig& config,
                                  double adopter_fraction) {
  PERIGEE_ASSERT(adopter_fraction >= 0.0 && adopter_fraction <= 1.0);
  Scenario scenario = build_scenario(config);

  ExperimentConfig random_start = config;
  random_start.algorithm = Algorithm::Random;
  build_initial_topology(random_start, scenario);

  const std::size_t n = scenario.network.size();
  util::Rng adopt_rng = util::Rng(config.seed).split(0xAD07);
  const auto k = static_cast<std::size_t>(adopter_fraction *
                                          static_cast<double>(n));
  std::vector<bool> adopter(n, false);
  for (std::size_t idx : adopt_rng.sample_indices(n, k)) adopter[idx] = true;

  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  selectors.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    selectors.push_back(adopter[v]
                            ? make_selector(Algorithm::PerigeeSubset,
                                            config.params)
                            : make_selector(Algorithm::Random));
  }
  std::unique_ptr<runner::ThreadPool> engine_pool;
  if (config.engine_jobs != 1) {
    const unsigned workers = runner::resolve_jobs(config.engine_jobs);
    if (workers > 1) {
      engine_pool = std::make_unique<runner::ThreadPool>(workers);
    }
  }
  sim::RoundRunner runner(scenario.network, scenario.topology,
                          std::move(selectors), config.blocks_per_round,
                          config.seed);
  runner.set_thread_pool(engine_pool.get());
  runner.set_csr_patching(config.incremental_csr);
  runner.set_relax_engine(config.relax_engine);
  EvalEngine eval(config);
  runner.set_transmission(eval.egress);
  std::unique_ptr<scn::ChurnDriver> churn;
  if (config.scenario.churn.enabled()) {
    churn = std::make_unique<scn::ChurnDriver>(config.scenario.churn,
                                               scenario.topology,
                                               scenario.network, config.seed);
    runner.set_pre_round_hook([&runner, driver = churn.get()](std::size_t r) {
      if (driver->before_round(r)) runner.refresh_hash_power();
      for (const net::NodeId v : driver->last_rejoined()) {
        runner.reset_selector(v);
      }
    });
  }
  runner.run_rounds(config.rounds);

  // The final evaluation reuses the runner's cached compile of the final
  // topology instead of building a second snapshot.
  const auto lambda = eval.lambda(runner.current_csr(), scenario.network,
                                  config.coverage, engine_pool.get());
  IncrementalResult result;
  for (std::size_t v = 0; v < n; ++v) {
    (adopter[v] ? result.lambda_adopters : result.lambda_others)
        .push_back(lambda[v]);
  }
  return result;
}

IncrementalCurves run_incremental_multi_seed(ExperimentConfig config,
                                             double adopter_fraction,
                                             int num_seeds, int jobs) {
  PERIGEE_ASSERT(num_seeds >= 1);
  flow_leftover_jobs(config, num_seeds, jobs);
  // Adopter count k = fraction * n is seed-independent, so the per-group
  // vectors have equal length across seeds and aggregate cleanly.
  std::vector<std::vector<double>> adopters(
      static_cast<std::size_t>(num_seeds));
  std::vector<std::vector<double>> others(static_cast<std::size_t>(num_seeds));
  const std::uint64_t base_seed = config.seed;
  for_each_seed(num_seeds, jobs, [&](std::size_t s) {
    ExperimentConfig seeded = config;
    seeded.seed = base_seed + static_cast<std::uint64_t>(s);
    IncrementalResult r = run_incremental(seeded, adopter_fraction);
    adopters[s] = std::move(r.lambda_adopters);
    others[s] = std::move(r.lambda_others);
  });
  return IncrementalCurves{
      metrics::aggregate_sorted_curves(std::move(adopters)),
      metrics::aggregate_sorted_curves(std::move(others))};
}

}  // namespace perigee::core
