// One-call experiment harness reproducing the paper's evaluation pipeline
// (§5.1): build a network scenario, construct the initial topology, run the
// protocol's learning rounds, and measure λv for every node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/perigee.hpp"
#include "metrics/curves.hpp"
#include "mining/hashpower.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "scenario/scenario.hpp"
#include "sim/parallel.hpp"
#include "topo/relay.hpp"

namespace perigee::core {

struct ExperimentConfig {
  net::NetworkOptions net;        // n, latency kind, validation scale, ...
  net::TopologyLimits limits;     // dout = 8, din <= 20

  Algorithm algorithm = Algorithm::PerigeeSubset;
  PerigeeParams params;

  // Learning schedule for the adaptive variants. Vanilla/Subset run `rounds`
  // rounds of `blocks_per_round` blocks; UCB (a |B|=1 method) runs
  // rounds * blocks_per_round single-block rounds, so every variant sees the
  // same number of mined blocks. Static baselines skip the loop entirely.
  int rounds = 40;
  int blocks_per_round = net::kDefaultBlocksPerRound;

  mining::HashPowerModel hash_model = mining::HashPowerModel::Uniform;
  mining::PoolsConfig pools;
  // Figure 4(b): scale applied to links between pool members (1 = off).
  double pool_latency_scale = 1.0;

  // Figure 4(c): install the fast relay overlay before the p2p topology.
  bool relay = false;
  topo::RelayConfig relay_config;

  // Declarative scenario regimes (src/scenario): static regimes (hetero
  // tiers, geo clustering, withholding adversaries) mutate the built network
  // once; the churn regime runs a seeded join/leave schedule between rounds
  // via scenario::ChurnDriver; the transmission regime routes every round
  // and λ evaluation through the queued egress engine (sim/egress.hpp,
  // docs/TRANSMISSION_MODEL.md) instead of the delay-only relaxation.
  // Default-constructed == inert: results are bit-identical to configs that
  // predate the scenario layer. transmission=queue is incompatible with
  // message_level (asserted).
  scenario::ScenarioSpec scenario;

  // Partial-view peer discovery (§2.1 addrMan / §6): when enabled, each node
  // knows only a bounded address book — bootstrapped with `addrman_bootstrap`
  // random addresses and refreshed by per-round gossip — and exploration
  // samples from it instead of the global node set. Off by default, matching
  // the paper's "each node knows all IPs" evaluation assumption.
  bool partial_view = false;
  std::size_t addrman_capacity = 100;
  std::size_t addrman_bootstrap = 30;

  // When true, learning runs on the message-level gossip engine: neighbors
  // are scored by INV announcement timestamps (footnote 3 of the paper)
  // instead of the fast engine's block delivery times. Roughly 20x slower;
  // used to validate that the fast abstraction does not change outcomes.
  bool message_level = false;

  double coverage = 0.90;
  // Number of intermediate λ evaluations during learning (0 = none).
  int checkpoints = 0;

  // Source-level parallelism inside one experiment: > 1 runs each round's
  // block batch and every λ evaluation across a runner::ThreadPool of this
  // many workers (0 = all hardware threads). Results are byte-identical at
  // any value — the batched engine writes per-source slots — so this only
  // changes wall-clock. run_multi_seed raises it automatically when it has
  // more workers than seeds.
  int engine_jobs = 1;

  // Incremental CSR maintenance across the round loop: the runner's snapshot
  // cache absorbs each round's rewiring by replaying the topology's mutation
  // journal instead of recompiling the flat graph. Patched and recompiled
  // snapshots are byte-identical (the differential harness pins this), so
  // disabling it only changes wall-clock — kept as a switch for A/B
  // measurement (BENCH_incremental_csr.json) and bisection.
  bool incremental_csr = true;

  // Relaxation backend for the Fast engine's block batches: the batched
  // bucket-queue engine (default; parallelizes across a round's sources) or
  // the parallel delta-stepping engine (parallelizes within each source —
  // the scale shape for large n with few blocks). Outputs are byte-identical
  // either way (tests/sim_engine_diff_test.cpp pins it), so like
  // `engine_jobs` this is a wall-clock A/B switch, not a sweep axis.
  sim::RelaxEngine relax_engine = sim::RelaxEngine::Batched;

  // Master seed: drives network construction, hash power, initial topology,
  // mining and exploration.
  std::uint64_t seed = 1;
};

struct Checkpoint {
  std::size_t blocks_mined = 0;  // cumulative blocks at this checkpoint
  double mean_lambda = 0;        // mean λ (at config.coverage) across nodes
  double median_lambda = 0;
};

struct ExperimentResult {
  std::string algorithm;
  std::vector<double> lambda;    // per-node λ at config.coverage (unsorted)
  std::vector<double> lambda50;  // per-node λ at 50% coverage
  std::vector<double> edge_latencies;  // final p2p edge link latencies
  std::vector<Checkpoint> checkpoints;
};

// The scenario shared by an experiment and its ideal bound: network with
// hash power assigned (and pool latency scaling applied), plus the relay
// overlay if configured.
struct Scenario {
  net::Network network;
  net::Topology topology;
  std::vector<net::NodeId> pool_members;
  std::vector<net::NodeId> relay_members;
};

// Builds the scenario: network, hash power, latency decorators, infra
// overlay. The topology contains only infra edges on return.
Scenario build_scenario(const ExperimentConfig& config);

// Deep copy of a built scenario: the network is cloned (fresh profile
// storage, latency model re-pointed), topology and member lists copied.
// Running on the clone is bit-identical to running on a fresh
// build_scenario of the same config — the sweep runner builds each distinct
// (topology axes, seed) scenario once and clones it across the cells that
// share it instead of resampling from scratch per cell.
Scenario clone_scenario(const Scenario& scenario);

// Installs the initial p2p topology for `algorithm` into the scenario
// (random start for adaptive variants; the baseline's own construction for
// static ones).
void build_initial_topology(const ExperimentConfig& config, Scenario& scenario);

ExperimentResult run_experiment(const ExperimentConfig& config);

// run_experiment over a prebuilt scenario (taken by value: the round loop
// rewires the topology and churn mutates profiles). `scenario` must be the
// result of build_scenario / clone_scenario for a config whose topology
// axes and seed equal this config's — byte-identical to the one-argument
// form, which is just run_experiment(config, build_scenario(config)).
ExperimentResult run_experiment(const ExperimentConfig& config,
                                Scenario scenario);

// λv on the fully-connected topology of the same scenario. Always
// delay-only, even under the queued transmission regime: the bound models
// instantaneous fan-out to all n-1 peers, which no finite-rate sender can
// realize, so it stays a true lower bound (congestion grids therefore
// compare learned topologies against each other, not against the bound).
std::vector<double> run_ideal(const ExperimentConfig& config);

// run_ideal at config.coverage and 50% from one scenario + one Dijkstra
// pass per source (the sweep runner wants both coverages per cell).
struct IdealResult {
  std::vector<double> lambda;    // at config.coverage
  std::vector<double> lambda50;  // at 50% coverage
};
IdealResult run_ideal_both(const ExperimentConfig& config);

// run_ideal_both over a prebuilt scenario. Read-only: the ideal bound never
// mutates the scenario, so sweep cells evaluate it straight off the shared
// build without cloning.
IdealResult run_ideal_both(const ExperimentConfig& config,
                           const Scenario& scenario);

// The raw per-node λ vectors of one sweep cell run — the payload the sweep
// runner checkpoints per (cell, seed) and aggregates into curves.
// Dispatches Algorithm::Ideal to run_ideal_both and everything else to
// run_experiment. A non-null `prebuilt` scenario is evaluated directly
// (ideal) or cloned first (experiments); results are byte-identical with
// and without it.
struct CellCurves {
  std::vector<double> lambda;    // at config.coverage (unsorted)
  std::vector<double> lambda50;  // at 50% coverage
};
CellCurves run_cell_curves(const ExperimentConfig& config,
                           const Scenario* prebuilt = nullptr);

// Repeats `run_experiment` with seeds seed, seed+1, ... and aggregates the
// sorted per-node curves (paper: 3 independently sampled link latencies).
// `jobs` > 1 fans the seeds out across a runner::ThreadPool; each seed is an
// independent pure function of its config, and results land in per-seed
// slots aggregated in seed order, so any jobs value gives bit-identical
// curves (jobs <= 0 = all hardware threads).
struct MultiSeedResult {
  metrics::Curve curve;    // at config.coverage
  metrics::Curve curve50;  // at 50% coverage
};
MultiSeedResult run_multi_seed(ExperimentConfig config, int num_seeds,
                               int jobs = 1);

// Per-seed ideal bounds (run_ideal) aggregated the same way.
metrics::Curve run_ideal_multi_seed(ExperimentConfig config, int num_seeds,
                                    int jobs = 1);

// Incremental-deployment ablation (§1.2): `adopter_fraction` of nodes run
// Perigee-Subset while the rest keep their random neighbors. λ is reported
// separately for the two groups.
struct IncrementalResult {
  std::vector<double> lambda_adopters;
  std::vector<double> lambda_others;
};
IncrementalResult run_incremental(const ExperimentConfig& config,
                                  double adopter_fraction);

// Multi-seed aggregation of run_incremental with the same parallel/
// deterministic contract as run_multi_seed.
struct IncrementalCurves {
  metrics::Curve adopters;  // sorted-λ curve over adopter nodes
  metrics::Curve others;    // sorted-λ curve over holdout nodes
};
IncrementalCurves run_incremental_multi_seed(ExperimentConfig config,
                                             double adopter_fraction,
                                             int num_seeds, int jobs = 1);

}  // namespace perigee::core
