// Perigee protocol parameters (paper §4, §5.1 defaults).
#pragma once

#include "net/types.hpp"

namespace perigee::core {

struct PerigeeParams {
  // dv: neighbors retained by score at the end of a round.
  int keep = net::kDefaultKeep;  // 6
  // ev: random connections made for exploration each round. After retention
  // a node refills its outgoing slots to the topology's out_cap, so with
  // out_cap = keep + explore this matches Algorithm 1 exactly.
  int explore = net::kDefaultExplore;  // 2
  // Score quantile: a neighbor is rated by this percentile of its relative
  // delivery times (the paper uses the 90th everywhere).
  double percentile = net::kScorePercentile;  // 0.90
  // UCB exploration constant c in Eq. (3)-(4), in milliseconds (the paper's
  // timestamps are unnormalized, so c carries the delay scale).
  double ucb_c = 300.0;
  // Sliding-window size of the per-neighbor sample multiset kept by UCB
  // scoring (see core/ucb.hpp for why the window is bounded).
  int ucb_window = 256;
};

}  // namespace perigee::core
