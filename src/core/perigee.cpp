#include "core/perigee.hpp"

#include "core/subset.hpp"
#include "core/ucb.hpp"
#include "core/vanilla.hpp"
#include "util/assert.hpp"

namespace perigee::core {

std::string_view algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::Random:
      return "random";
    case Algorithm::Geographic:
      return "geographic";
    case Algorithm::Kademlia:
      return "kademlia";
    case Algorithm::KNearestOracle:
      return "k-nearest-oracle";
    case Algorithm::CoordinateGreedy:
      return "coordinate-greedy";
    case Algorithm::PerigeeVanilla:
      return "perigee-vanilla";
    case Algorithm::PerigeeUcb:
      return "perigee-ucb";
    case Algorithm::PerigeeSubset:
      return "perigee-subset";
    case Algorithm::Ideal:
      return "ideal";
  }
  return "unknown";
}

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> all = {
      Algorithm::Random,          Algorithm::Geographic,
      Algorithm::Kademlia,        Algorithm::KNearestOracle,
      Algorithm::CoordinateGreedy, Algorithm::PerigeeVanilla,
      Algorithm::PerigeeUcb,      Algorithm::PerigeeSubset,
      Algorithm::Ideal,
  };
  return all;
}

std::optional<Algorithm> algorithm_from_name(std::string_view name) {
  for (const Algorithm a : all_algorithms()) {
    if (algorithm_name(a) == name) return a;
  }
  return std::nullopt;
}

bool is_adaptive(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::PerigeeVanilla:
    case Algorithm::PerigeeUcb:
    case Algorithm::PerigeeSubset:
      return true;
    default:
      return false;
  }
}

std::unique_ptr<sim::NeighborSelector> make_selector(
    Algorithm algorithm, const PerigeeParams& params) {
  switch (algorithm) {
    case Algorithm::PerigeeVanilla:
      return std::make_unique<VanillaSelector>(params);
    case Algorithm::PerigeeUcb:
      return std::make_unique<UcbSelector>(params);
    case Algorithm::PerigeeSubset:
      return std::make_unique<SubsetSelector>(params);
    case Algorithm::Ideal:
      PERIGEE_ASSERT_MSG(false,
                         "ideal is evaluated analytically, not simulated");
      return nullptr;
    default:
      return std::make_unique<sim::StaticSelector>();
  }
}

std::vector<std::unique_ptr<sim::NeighborSelector>> make_selectors(
    std::size_t n, Algorithm algorithm, const PerigeeParams& params) {
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  selectors.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    selectors.push_back(make_selector(algorithm, params));
  }
  return selectors;
}

}  // namespace perigee::core
