// Public entry point of the Perigee library: the algorithm catalogue and the
// selector factory. See core/experiment.hpp for the one-call experiment
// harness and the individual headers for each scoring method.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/params.hpp"
#include "sim/selector.hpp"

namespace perigee::core {

// Every neighbor-selection policy evaluated in the paper (§5.1).
enum class Algorithm {
  Random,           // §3.1 static random topology
  Geographic,       // §3.2 static geography-clustered topology
  Kademlia,         // Kadcast-style structured overlay (static)
  KNearestOracle,   // latency-oracle k-nearest topology (upper-bound heuristic)
  CoordinateGreedy, // Vivaldi coordinates + nearest-by-estimate (static)
  PerigeeVanilla,  // §4.2.1 individual 90th-percentile scoring
  PerigeeUcb,      // §4.2.2 confidence-bound scoring, 1-block rounds
  PerigeeSubset,   // §4.3 greedy joint scoring (the paper's best variant)
  Ideal,           // fully-connected lower bound (evaluated analytically)
};

std::string_view algorithm_name(Algorithm algorithm);

// Inverse of algorithm_name (exact match); nullopt for unknown names.
std::optional<Algorithm> algorithm_from_name(std::string_view name);

// Every Algorithm value, in declaration order (for CLIs and sweeps).
const std::vector<Algorithm>& all_algorithms();

// True for the Perigee variants that rewire each round.
bool is_adaptive(Algorithm algorithm);

// Selector instance for one node under `algorithm` (StaticSelector for the
// non-adaptive baselines).
std::unique_ptr<sim::NeighborSelector> make_selector(
    Algorithm algorithm, const PerigeeParams& params = {});

// One selector per node, as RoundRunner expects.
std::vector<std::unique_ptr<sim::NeighborSelector>> make_selectors(
    std::size_t n, Algorithm algorithm, const PerigeeParams& params = {});

}  // namespace perigee::core
