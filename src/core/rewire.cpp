#include "core/rewire.hpp"

#include <algorithm>

#include "topo/builders.hpp"
#include "util/assert.hpp"

namespace perigee::core {

int retain_and_explore(net::Topology& topology, net::NodeId v,
                       const std::vector<net::NodeId>& keep, util::Rng& rng,
                       const net::AddrMan* addrman) {
  for (std::size_t i = 0; i < keep.size(); ++i) {
    PERIGEE_ASSERT_MSG(topology.has_out(v, keep[i]),
                       "retained peer is not a current outgoing neighbor");
    // Duplicate-freeness is load-bearing for the equal-size skip below.
    PERIGEE_ASSERT_MSG(
        std::find(keep.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  keep.end(), keep[i]) == keep.end(),
        "retained peer listed twice");
  }
  // keep is a duplicate-free subset of the outgoing list (asserted above),
  // so equal sizes mean every neighbor is retained: skip the drop pass —
  // no snapshot copy, no journaled deltas, no topology version bump.
  if (keep.size() != topology.out(v).size()) {
    // Snapshot: disconnect mutates the outgoing list.
    const std::vector<net::NodeId> current = topology.out(v);
    for (net::NodeId u : current) {
      if (std::find(keep.begin(), keep.end(), u) == keep.end()) {
        topology.disconnect(v, u);
      }
    }
  }
  const int want = topology.limits().out_cap - topology.out_count(v);
  if (addrman != nullptr) {
    return topo::dial_peers_from_book(topology, v, want, *addrman, rng);
  }
  return topo::dial_random_peers(topology, v, want, rng);
}

}  // namespace perigee::core
