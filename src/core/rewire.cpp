#include "core/rewire.hpp"

#include <algorithm>

#include "topo/builders.hpp"
#include "util/assert.hpp"

namespace perigee::core {

int retain_and_explore(net::Topology& topology, net::NodeId v,
                       const std::vector<net::NodeId>& keep, util::Rng& rng,
                       const net::AddrMan* addrman) {
  // Snapshot: disconnect mutates the outgoing list.
  const std::vector<net::NodeId> current = topology.out(v);
  for (net::NodeId u : keep) {
    PERIGEE_ASSERT_MSG(
        std::find(current.begin(), current.end(), u) != current.end(),
        "retained peer is not a current outgoing neighbor");
  }
  for (net::NodeId u : current) {
    if (std::find(keep.begin(), keep.end(), u) == keep.end()) {
      topology.disconnect(v, u);
    }
  }
  const int want = topology.limits().out_cap - topology.out_count(v);
  if (addrman != nullptr) {
    return topo::dial_peers_from_book(topology, v, want, *addrman, rng);
  }
  return topo::dial_random_peers(topology, v, want, rng);
}

}  // namespace perigee::core
