// Rewiring helper shared by the Perigee scoring variants: disconnect the
// non-retained outgoing neighbors and refill the freed slots with random
// peers (Algorithm 1's exploration step), respecting incoming caps.
#pragma once

#include <vector>

#include "net/addrman.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace perigee::core {

// Keeps exactly the outgoing connections v->u for u in `keep` (which must
// all be current outgoing neighbors of v), drops the rest, then dials random
// peers until v's outgoing slots are full or attempts are exhausted. With a
// non-null `addrman`, exploration candidates come from v's address book
// (partial view) instead of the global node set. Returns the number of new
// connections established.
int retain_and_explore(net::Topology& topology, net::NodeId v,
                       const std::vector<net::NodeId>& keep, util::Rng& rng,
                       const net::AddrMan* addrman = nullptr);

}  // namespace perigee::core
