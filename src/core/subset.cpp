#include "core/subset.hpp"

#include <algorithm>
#include <cmath>

#include "core/rewire.hpp"
#include "util/stats.hpp"

namespace perigee::core {

void SubsetSelector::on_round_end(net::NodeId self, sim::RoundContext& ctx) {
  const auto& obs = ctx.obs;
  const std::size_t blocks = obs.blocks_recorded();

  // Candidate rows: relative timestamps of each outgoing neighbor.
  std::vector<net::NodeId> candidates;
  std::vector<std::span<const double>> rows;
  for (std::size_t i = 0; i < obs.neighbor_count(self); ++i) {
    if (!obs.is_outgoing(self, i)) continue;
    candidates.push_back(obs.neighbors(self)[i]);
    rows.push_back(obs.rel_times(self, i));
  }
  if (candidates.empty()) {
    retain_and_explore(ctx.topology, self, {}, ctx.rng, ctx.addrman);
    return;
  }

  const auto keep_n = std::min<std::size_t>(
      static_cast<std::size_t>(params_.keep), candidates.size());

  // Greedy complement selection (§4.3): best[b] is the group's per-block
  // delivery time so far; a candidate's marginal score is the percentile of
  // min(candidate, best).
  std::vector<double> best(blocks, util::kInf);
  std::vector<bool> taken(candidates.size(), false);
  std::vector<net::NodeId> keep;
  std::vector<double> merged(blocks);
  keep.reserve(keep_n);

  for (std::size_t step = 0; step < keep_n; ++step) {
    double best_score = util::kInf;
    std::size_t best_idx = candidates.size();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (taken[c]) continue;
      for (std::size_t b = 0; b < blocks; ++b) {
        merged[b] = std::min(rows[c][b], best[b]);
      }
      const double score = util::percentile(merged, params_.percentile);
      // Strict < keeps the lowest candidate index on ties: deterministic.
      if (score < best_score ||
          (best_idx == candidates.size() && std::isinf(score))) {
        best_score = score;
        best_idx = c;
      }
    }
    taken[best_idx] = true;
    keep.push_back(candidates[best_idx]);
    for (std::size_t b = 0; b < blocks; ++b) {
      best[b] = std::min(best[b], rows[best_idx][b]);
    }
  }

  retain_and_explore(ctx.topology, self, keep, ctx.rng, ctx.addrman);
}

}  // namespace perigee::core
