// SubsetScoring (paper §4.3): neighbors are scored jointly. The retained
// group is grown greedily — each step adds the neighbor whose delivery times
// best *complement* the group chosen so far, by scoring the per-block minimum
// between the candidate's relative timestamps and the group's.
#pragma once

#include "core/params.hpp"
#include "sim/selector.hpp"

namespace perigee::core {

class SubsetSelector final : public sim::NeighborSelector {
 public:
  explicit SubsetSelector(PerigeeParams params = {}) : params_(params) {}

  void on_round_end(net::NodeId self, sim::RoundContext& ctx) override;
  const char* name() const override { return "perigee-subset"; }

 private:
  PerigeeParams params_;
};

}  // namespace perigee::core
