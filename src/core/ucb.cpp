#include "core/ucb.hpp"

#include <algorithm>
#include <cmath>

#include "topo/builders.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace perigee::core {

void UcbSelector::Arm::add(double value, std::size_t window) {
  PERIGEE_ASSERT(window > 0);
  if (recent.size() == window) {
    const double oldest = recent.front();
    recent.pop_front();
    const auto it =
        std::lower_bound(sorted.begin(), sorted.end(), oldest);
    PERIGEE_ASSERT(it != sorted.end());
    sorted.erase(it);
  }
  recent.push_back(value);
  sorted.insert(std::upper_bound(sorted.begin(), sorted.end(), value), value);
}

UcbSelector::Bounds UcbSelector::compute_bounds(const Arm& arm) const {
  Bounds b;
  b.samples = arm.sorted.size();
  if (arm.sorted.empty()) {
    // A neighbor with zero finite deliveries after a full round never
    // relayed anything: rank it worst with full confidence.
    b.estimate = util::kInf;
    b.lcb = util::kInf;
    b.ucb = util::kInf;
    return b;
  }
  b.estimate = util::percentile_sorted(arm.sorted, params_.percentile);
  const auto n = static_cast<double>(arm.sorted.size());
  const double half_width =
      params_.ucb_c * std::sqrt(std::log(std::max(n, 1.0)) / (2.0 * n));
  b.lcb = b.estimate - half_width;
  b.ucb = b.estimate + half_width;
  return b;
}

UcbSelector::Bounds UcbSelector::bounds_for(net::NodeId neighbor) const {
  auto it = arms_.find(neighbor);
  if (it == arms_.end()) return compute_bounds(Arm{});
  return compute_bounds(it->second);
}

void UcbSelector::on_reset(net::NodeId) { arms_.clear(); }

void UcbSelector::on_round_end(net::NodeId self, sim::RoundContext& ctx) {
  const auto& obs = ctx.obs;
  const auto window = static_cast<std::size_t>(params_.ucb_window);

  // Fold this round's finite relative timestamps into each outgoing
  // neighbor's window.
  std::vector<net::NodeId> outgoing;
  for (std::size_t i = 0; i < obs.neighbor_count(self); ++i) {
    if (!obs.is_outgoing(self, i)) continue;
    const net::NodeId u = obs.neighbors(self)[i];
    outgoing.push_back(u);
    Arm& arm = arms_[u];
    for (double t : obs.rel_times(self, i)) {
      if (std::isfinite(t)) arm.add(t, window);
    }
  }
  // Forget arms of neighbors no longer connected: if they are re-explored
  // later they start fresh, as the paper's per-connection history implies.
  for (auto it = arms_.begin(); it != arms_.end();) {
    if (std::find(outgoing.begin(), outgoing.end(), it->first) ==
        outgoing.end()) {
      it = arms_.erase(it);
    } else {
      ++it;
    }
  }
  if (outgoing.size() < 2) return;

  // Disconnect rule: drop argmax lcb iff max lcb > min ucb.
  net::NodeId worst = outgoing.front();
  double max_lcb = -util::kInf;
  double min_ucb = util::kInf;
  for (net::NodeId u : outgoing) {
    const Bounds b = compute_bounds(arms_[u]);
    // First strictly-greater lcb wins; outgoing is in adjacency order, so
    // ties resolve deterministically.
    if (b.lcb > max_lcb) {
      max_lcb = b.lcb;
      worst = u;
    }
    min_ucb = std::min(min_ucb, b.ucb);
  }
  if (max_lcb > min_ucb) {
    ctx.topology.disconnect(self, worst);
    arms_.erase(worst);
    if (ctx.addrman != nullptr) {
      topo::dial_peers_from_book(ctx.topology, self, 1, *ctx.addrman,
                                 ctx.rng);
    } else {
      topo::dial_random_peers(ctx.topology, self, 1, ctx.rng);
    }
  }
}

}  // namespace perigee::core
