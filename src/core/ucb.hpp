// UCBScoring (paper §4.2.2): per-neighbor delay estimates with confidence
// bounds accumulated over the rounds a neighbor has stayed connected
// (Eq. 3-4). A neighbor is disconnected only when its lower confidence bound
// exceeds some neighbor's upper bound — i.e. when it is statistically
// distinguishable as worse — which prevents evicting a good neighbor on a
// noisy single-block round. Designed for |B| = 1 rounds.
//
// Implementation note: the paper's multiset union over a neighbor's entire
// connection lifetime grows without bound, making the per-round percentile
// O(history · log history) and the whole run quadratic. We keep a sliding
// window of the most recent `ucb_window` samples in incrementally-sorted
// form: O(log W) per insert, O(1) percentile. Beyond a few hundred samples
// the confidence interval is already narrow, and a bounded window also adapts
// faster when the network drifts.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "core/params.hpp"
#include "sim/selector.hpp"

namespace perigee::core {

class UcbSelector final : public sim::NeighborSelector {
 public:
  explicit UcbSelector(PerigeeParams params = {}) : params_(params) {}

  void on_round_end(net::NodeId self, sim::RoundContext& ctx) override;
  // A rejoining node is a fresh participant: all confidence-bound history
  // refers to connections its predecessor held, so drop every arm.
  void on_reset(net::NodeId self) override;
  const char* name() const override { return "perigee-ucb"; }

  struct Bounds {
    double estimate;  // 90th percentile of windowed samples
    double lcb;
    double ucb;
    std::size_t samples;
  };

  // Current bounds for an outgoing neighbor (for tests/inspection); returns
  // zero-sample bounds if the neighbor is unknown.
  Bounds bounds_for(net::NodeId neighbor) const;

 private:
  // Sliding window of the most recent finite relative delivery times of one
  // connected neighbor, maintained both in arrival order (for eviction) and
  // sorted (for O(1) percentiles).
  struct Arm {
    std::deque<double> recent;
    std::vector<double> sorted;

    void add(double value, std::size_t window);
  };

  std::map<net::NodeId, Arm> arms_;
  PerigeeParams params_;

  Bounds compute_bounds(const Arm& arm) const;
};

}  // namespace perigee::core
