#include "core/vanilla.hpp"

#include <algorithm>

#include "core/rewire.hpp"
#include "util/stats.hpp"

namespace perigee::core {

void VanillaSelector::on_round_end(net::NodeId self, sim::RoundContext& ctx) {
  const auto& obs = ctx.obs;
  // Score the outgoing neighbors captured at round start; v's own outgoing
  // set cannot have changed mid-round.
  std::vector<std::pair<double, net::NodeId>> scored;
  for (std::size_t i = 0; i < obs.neighbor_count(self); ++i) {
    if (!obs.is_outgoing(self, i)) continue;
    const double score = util::percentile(obs.rel_times(self, i),
                                          params_.percentile);
    scored.emplace_back(score, obs.neighbors(self)[i]);
  }
  if (scored.empty()) {
    // No outgoing neighbors (degenerate start): just explore.
    retain_and_explore(ctx.topology, self, {}, ctx.rng, ctx.addrman);
    return;
  }
  std::sort(scored.begin(), scored.end());
  const auto keep_n =
      std::min<std::size_t>(static_cast<std::size_t>(params_.keep),
                            scored.size());
  std::vector<net::NodeId> keep;
  keep.reserve(keep_n);
  for (std::size_t i = 0; i < keep_n; ++i) keep.push_back(scored[i].second);
  retain_and_explore(ctx.topology, self, keep, ctx.rng, ctx.addrman);
}

}  // namespace perigee::core
