// VanillaScoring (paper §4.2.1): each outgoing neighbor's score is the 90th
// percentile of its relative delivery times over the round; the best `keep`
// are retained, the rest replaced by random exploration.
#pragma once

#include "core/params.hpp"
#include "sim/selector.hpp"

namespace perigee::core {

class VanillaSelector final : public sim::NeighborSelector {
 public:
  explicit VanillaSelector(PerigeeParams params = {}) : params_(params) {}

  void on_round_end(net::NodeId self, sim::RoundContext& ctx) override;
  const char* name() const override { return "perigee-vanilla"; }

 private:
  PerigeeParams params_;
};

}  // namespace perigee::core
