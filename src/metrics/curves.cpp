#include "metrics/curves.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace perigee::metrics {

Curve aggregate_sorted_curves(std::vector<std::vector<double>> runs) {
  PERIGEE_ASSERT(!runs.empty());
  const std::size_t n = runs.front().size();
  for (auto& run : runs) {
    PERIGEE_ASSERT(run.size() == n);
    std::sort(run.begin(), run.end());
  }
  Curve curve;
  curve.mean.assign(n, 0.0);
  curve.stddev.assign(n, 0.0);
  const auto r = static_cast<double>(runs.size());
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0;
    for (const auto& run : runs) s += run[i];
    curve.mean[i] = s / r;
    if (runs.size() > 1) {
      double s2 = 0;
      for (const auto& run : runs) {
        s2 += (run[i] - curve.mean[i]) * (run[i] - curve.mean[i]);
      }
      curve.stddev[i] = std::sqrt(s2 / (r - 1.0));
    }
  }
  return curve;
}

std::vector<std::size_t> errorbar_indices(std::size_t n) {
  PERIGEE_ASSERT(n > 0);
  std::vector<std::size_t> idx;
  for (double f : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    idx.push_back(std::min(n - 1, static_cast<std::size_t>(
                                      f * static_cast<double>(n))));
  }
  return idx;
}

double improvement_at(const Curve& ours, const Curve& baseline,
                      std::size_t i) {
  PERIGEE_ASSERT(i < ours.mean.size() && i < baseline.mean.size());
  PERIGEE_ASSERT(baseline.mean[i] > 0);
  return 1.0 - ours.mean[i] / baseline.mean[i];
}

double curve_mean(const Curve& curve) {
  return util::mean(curve.mean);
}

}  // namespace perigee::metrics
