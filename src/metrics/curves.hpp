// Multi-seed curve aggregation in the paper's plotting convention (§5.1):
// per-node λ values are sorted ascending per run, then averaged index-wise
// across runs; error bars are reported at nodes 100, 300, 500, 700, 900
// (scaled to the network size).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace perigee::metrics {

struct Curve {
  std::vector<double> mean;    // sorted-λ mean across runs, per node index
  std::vector<double> stddev;  // index-wise stddev across runs
};

// Sorts each run's values and averages index-wise. All runs must have equal
// length.
Curve aggregate_sorted_curves(std::vector<std::vector<double>> runs);

// The paper's error-bar positions for n nodes: {0.1n, 0.3n, 0.5n, 0.7n,
// 0.9n} as indices.
std::vector<std::size_t> errorbar_indices(std::size_t n);

// Relative improvement of `ours` vs `baseline` at index i (positive = ours
// faster), e.g. the paper's "33% lower delay at the 500th node".
double improvement_at(const Curve& ours, const Curve& baseline, std::size_t i);

// Mean of a curve's mean series (a scalar summary used in tables).
double curve_mean(const Curve& curve);

}  // namespace perigee::metrics
