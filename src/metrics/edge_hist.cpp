#include "metrics/edge_hist.hpp"

#include <algorithm>

#include "net/geo.hpp"
#include "util/assert.hpp"

namespace perigee::metrics {

std::vector<double> p2p_edge_latencies(const net::Topology& topology,
                                       const net::Network& network) {
  std::vector<double> latencies;
  for (const auto& [u, v] : topology.p2p_edges()) {
    latencies.push_back(network.link_ms(u, v));
  }
  return latencies;
}

util::Histogram edge_latency_histogram(const net::Topology& topology,
                                       const net::Network& network,
                                       std::size_t bins) {
  const auto latencies = p2p_edge_latencies(topology, network);
  double hi = net::max_region_latency_ms() * 1.5;
  for (double x : latencies) hi = std::max(hi, x + 1.0);
  util::Histogram hist(0.0, hi, bins);
  hist.add_all(latencies);
  return hist;
}

double fraction_below(const std::vector<double>& latencies, double cut_ms) {
  if (latencies.empty()) return 0.0;
  const auto below = std::count_if(latencies.begin(), latencies.end(),
                                   [cut_ms](double x) { return x < cut_ms; });
  return static_cast<double>(below) / static_cast<double>(latencies.size());
}

}  // namespace perigee::metrics
