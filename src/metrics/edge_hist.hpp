// Edge-latency histograms (paper Figure 5): the distribution of link
// latencies over the final p2p topology reveals what a protocol learned —
// the intra-continent mode vs the inter-continent mode.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "util/stats.hpp"

namespace perigee::metrics {

// Link propagation latency of every p2p edge (infra edges excluded; each
// undirected edge once).
std::vector<double> p2p_edge_latencies(const net::Topology& topology,
                                       const net::Network& network);

util::Histogram edge_latency_histogram(const net::Topology& topology,
                                       const net::Network& network,
                                       std::size_t bins = 24);

// Fraction of edges with latency below `cut_ms` — the mass at the
// intra-continent mode, Perigee-Subset's signature in Figure 5.
double fraction_below(const std::vector<double>& latencies, double cut_ms);

}  // namespace perigee::metrics
