#include "metrics/eval.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "runner/thread_pool.hpp"
#include "sim/batch.hpp"
#include "sim/egress.hpp"
#include "util/radix.hpp"

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace perigee::metrics {
namespace {

// Accumulation over pairs already sorted ascending by (arrival, power):
// the earliest time at which cumulative power reaches
// coverage * total_power.
double coverage_time_sorted(
    const std::vector<std::pair<double, double>>& by_arrival,
    double total_power, double coverage) {
  PERIGEE_ASSERT(coverage > 0.0 && coverage <= 1.0);
  const double target = coverage * total_power;
  double acc = 0;
  for (const auto& [t, power] : by_arrival) {
    if (std::isinf(t)) break;  // unreachable tail
    acc += power;
    // Tolerate fp round-off in normalized hash powers.
    if (acc >= target - 1e-12) return t;
  }
  return util::kInf;
}

// Shared accumulation: given (arrival, hash power) pairs, the earliest time
// at which cumulative power reaches coverage * total_power.
double coverage_time(std::vector<std::pair<double, double>>& by_arrival,
                     double total_power, double coverage) {
  std::sort(by_arrival.begin(), by_arrival.end());
  return coverage_time_sorted(by_arrival, total_power, coverage);
}

}  // namespace

double lambda_for_broadcast(const sim::BroadcastResult& result,
                            const net::Network& network, double coverage) {
  PERIGEE_ASSERT(result.arrival.size() == network.size());
  std::vector<std::pair<double, double>> by_arrival;
  by_arrival.reserve(network.size());
  double total = 0;
  for (net::NodeId v = 0; v < network.size(); ++v) {
    const double power = network.profile(v).hash_power;
    total += power;
    by_arrival.emplace_back(result.arrival[v], power);
  }
  return coverage_time(by_arrival, total, coverage);
}

std::vector<double> eval_all_sources(const net::Topology& topology,
                                     const net::Network& network,
                                     double coverage) {
  return eval_all_sources(net::CsrTopology::build(topology, network), network,
                          coverage);
}

std::vector<double> eval_all_sources(const net::CsrTopology& csr,
                                     const net::Network& network,
                                     double coverage,
                                     sim::MultiSourceScratch* scratch,
                                     runner::ThreadPool* pool) {
  PERIGEE_ASSERT(csr.size() == network.size());
  const std::size_t n = network.size();
  std::vector<double> lambda(n);
  // Hash powers (and their sum, accumulated in NodeId order exactly as
  // lambda_for_broadcast does) are batch constants: extract them once
  // instead of walking the profiles per source.
  std::vector<double> powers(n);
  double total = 0;
  for (net::NodeId v = 0; v < n; ++v) {
    powers[v] = network.profile(v).hash_power;
    total += powers[v];
  }
  std::vector<net::NodeId> sources(n);
  std::iota(sources.begin(), sources.end(), net::NodeId{0});

  sim::MultiSourceScratch local_scratch;
  sim::MultiSourceScratch& arena = scratch != nullptr ? *scratch
                                                      : local_scratch;
  sim::for_each_source_broadcast(
      csr, sources, arena,
      [&](std::size_t lane, std::size_t s, std::span<const double> arrival,
          std::span<const double> /*ready*/) {
        auto& buffers = arena.lane(lane);
        auto& by_arrival = buffers.by_arrival;
        by_arrival.resize(n);
        const double* arr = arrival.data();
        const double* pow = powers.data();
        for (std::size_t v = 0; v < n; ++v) {
          by_arrival[v] = {arr[v], pow[v]};
        }
        // Radix replaces std::sort but yields the identical sequence, so λ
        // stays bit-equal to lambda_for_broadcast on the same arrival set.
        util::radix_sort_arrival_pairs(by_arrival, buffers.sort_scratch);
        lambda[s] = coverage_time_sorted(by_arrival, total, coverage);
      },
      pool, /*need_ready=*/false);
  return lambda;
}

std::vector<double> eval_all_sources_egress(const net::CsrTopology& csr,
                                            const net::Network& network,
                                            const sim::EgressConfig& config,
                                            const sim::EgressPlan& plan,
                                            double coverage,
                                            sim::EgressScratch* scratch,
                                            runner::ThreadPool* pool) {
  PERIGEE_ASSERT(csr.size() == network.size());
  const std::size_t n = network.size();
  std::vector<double> lambda(n);
  std::vector<double> powers(n);
  double total = 0;
  for (net::NodeId v = 0; v < n; ++v) {
    powers[v] = network.profile(v).hash_power;
    total += powers[v];
  }
  std::vector<net::NodeId> sources(n);
  std::iota(sources.begin(), sources.end(), net::NodeId{0});

  sim::EgressScratch local_scratch;
  sim::EgressScratch& arena = scratch != nullptr ? *scratch : local_scratch;
  // Same accumulation as the delay-only overload, lane buffers and radix
  // sort included — only the engine behind the arrival stripes differs.
  sim::for_each_source_broadcast_egress(
      csr, config, plan, sources, arena,
      [&](std::size_t lane, std::size_t s, std::span<const double> arrival,
          std::span<const double> /*ready*/) {
        auto& buffers = arena.lane(lane);
        auto& by_arrival = buffers.by_arrival;
        by_arrival.resize(n);
        const double* arr = arrival.data();
        const double* pow = powers.data();
        for (std::size_t v = 0; v < n; ++v) {
          by_arrival[v] = {arr[v], pow[v]};
        }
        util::radix_sort_arrival_pairs(by_arrival, buffers.sort_scratch);
        lambda[s] = coverage_time_sorted(by_arrival, total, coverage);
      },
      pool, /*need_ready=*/false);
  return lambda;
}

std::vector<double> eval_ideal(const net::Network& network, double coverage,
                               const net::Topology* infra) {
  return std::move(eval_ideal_multi(network, {coverage}, infra).front());
}

std::vector<std::vector<double>> eval_ideal_multi(
    const net::Network& network, const std::vector<double>& coverages,
    const net::Topology* infra) {
  PERIGEE_ASSERT(!coverages.empty());
  // Broadcast on the fully-connected topology. Direct delivery is not
  // always fastest — per-pair jitter can make a two-hop path through a fast
  // intermediary beat a slow direct link — so this is a dense Dijkstra per
  // source over a cached δ matrix, exactly what simulating the complete
  // graph would do, without materializing an O(n^2) Topology.
  const std::size_t n = network.size();
  std::vector<double> delta(n * n, 0.0);
  for (net::NodeId u = 0; u < n; ++u) {
    for (net::NodeId v = u + 1; v < n; ++v) {
      const double d = network.edge_delay_ms(u, v);
      delta[u * n + v] = d;
      delta[v * n + u] = d;
    }
  }
  if (infra != nullptr) {
    PERIGEE_ASSERT(infra->size() == n);
    for (const auto& [u, v] : infra->infra_edges()) {
      const double ms = *infra->infra_latency(u, v);
      delta[u * n + v] = std::min(delta[u * n + v], ms);
      delta[v * n + u] = std::min(delta[v * n + u], ms);
    }
  }

  std::vector<std::vector<double>> lambda(coverages.size(),
                                          std::vector<double>(n));
  std::vector<double> arrival(n), ready(n);
  std::vector<bool> settled(n);
  std::vector<std::pair<double, double>> by_arrival;
  for (net::NodeId src = 0; src < n; ++src) {
    arrival.assign(n, util::kInf);
    ready.assign(n, util::kInf);
    settled.assign(n, false);
    arrival[src] = 0.0;
    ready[src] = 0.0;
    for (std::size_t iter = 0; iter < n; ++iter) {
      // Dense min-selection: O(n) beats a heap on a complete graph.
      std::size_t u = n;
      double best = util::kInf;
      for (std::size_t i = 0; i < n; ++i) {
        if (!settled[i] && arrival[i] < best) {
          best = arrival[i];
          u = i;
        }
      }
      if (u == n) break;
      settled[u] = true;
      if (!network.profile(static_cast<net::NodeId>(u)).forwards && u != src) {
        continue;
      }
      const double r = ready[u];
      const double* row = delta.data() + u * n;
      for (std::size_t v = 0; v < n; ++v) {
        if (settled[v]) continue;
        const double cand = r + row[v];
        if (cand < arrival[v]) {
          arrival[v] = cand;
          ready[v] =
              cand + network.validation_ms(static_cast<net::NodeId>(v));
        }
      }
    }
    by_arrival.clear();
    double total = 0;
    for (net::NodeId u = 0; u < n; ++u) {
      const double power = network.profile(u).hash_power;
      total += power;
      by_arrival.emplace_back(arrival[u], power);
    }
    // coverage_time sorts in place; subsequent calls re-sort a sorted
    // vector, so the Dijkstra pass above stays the only expensive step.
    for (std::size_t k = 0; k < coverages.size(); ++k) {
      lambda[k][src] = coverage_time(by_arrival, total, coverages[k]);
    }
  }
  return lambda;
}

}  // namespace perigee::metrics
