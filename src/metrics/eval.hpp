/// \file
/// \brief The paper's performance metric (§2.2): λv is the minimum time for a
/// block mined and broadcast by v to reach nodes totalling at least a target
/// fraction (default 90%) of the network's hash power.
#pragma once

#include <vector>

#include "net/csr.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/broadcast.hpp"

namespace perigee::runner {
class ThreadPool;
}  // namespace perigee::runner

namespace perigee::sim {
class EgressPlan;
class EgressScratch;
class MultiSourceScratch;
struct EgressConfig;
}  // namespace perigee::sim

namespace perigee::metrics {

/// λ for one broadcast: sorts nodes by arrival and accumulates hash power
/// (the miner's own power counts at time 0) until `coverage` of the total is
/// reached; +inf if the reachable set never covers it.
double lambda_for_broadcast(const sim::BroadcastResult& result,
                            const net::Network& network, double coverage);

/// λv for every source v (unsorted, index == NodeId). Compiles one
/// `net::CsrTopology` and runs all n sources through the batched
/// multi-source engine (sim/batch.hpp), so the per-source cost is pure
/// engine work. Standalone convenience — callers that already hold a
/// snapshot (the experiment harness, the round loop's checkpoints) use the
/// overload below and skip the compile.
std::vector<double> eval_all_sources(const net::Topology& topology,
                                     const net::Network& network,
                                     double coverage = 0.90);

/// Batched evaluation over a snapshot the caller already compiled — the
/// batch entry point the compile and scratch acquisition are hoisted to.
/// `network` supplies the hash powers for the coverage accumulation and
/// must be the one the snapshot was built over. `scratch` (optional) reuses
/// the caller's engine arena across evaluations; `pool` (optional) fans
/// sources across workers — λ output is byte-identical at any worker count.
std::vector<double> eval_all_sources(
    const net::CsrTopology& csr, const net::Network& network,
    double coverage = 0.90, sim::MultiSourceScratch* scratch = nullptr,
    runner::ThreadPool* pool = nullptr);

/// Batched λ evaluation under the queued-transmission model: identical
/// coverage accumulation, but every broadcast runs through the egress
/// engine (sim/egress.hpp) so λ reflects serialization + queue wait. With
/// `config.unlimited_rate` the result is byte-identical to the delay-only
/// overload above — the equivalence the diff harness enforces. `plan` must
/// be built from `network`'s current profiles (`sim::EgressPlanCache`).
std::vector<double> eval_all_sources_egress(
    const net::CsrTopology& csr, const net::Network& network,
    const sim::EgressConfig& config, const sim::EgressPlan& plan,
    double coverage = 0.90, sim::EgressScratch* scratch = nullptr,
    runner::ThreadPool* pool = nullptr);

/// λv on the fully-connected topology ("ideal" in Figure 3), computed as a
/// dense per-source Dijkstra without materializing an O(n^2) Topology. When
/// `infra` is given, its infrastructure links (e.g. the §5.4 relay tree) are
/// overlaid on the complete graph so the bound stays a true lower bound for
/// scenarios where the overlay exists.
std::vector<double> eval_ideal(const net::Network& network,
                               double coverage = 0.90,
                               const net::Topology* infra = nullptr);

/// Same bound evaluated at several coverages from a single Dijkstra pass per
/// source (the pass dominates; extra coverages are nearly free). Returns one
/// λ vector per coverage, in input order.
std::vector<std::vector<double>> eval_ideal_multi(
    const net::Network& network, const std::vector<double>& coverages,
    const net::Topology* infra = nullptr);

}  // namespace perigee::metrics
