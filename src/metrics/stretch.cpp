#include "metrics/stretch.hpp"

#include <cmath>
#include <queue>

#include "sim/broadcast.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace perigee::metrics {

std::vector<double> latency_shortest_paths(const net::Topology& topology,
                                           const net::Network& network,
                                           net::NodeId src) {
  PERIGEE_ASSERT(src < topology.size());
  const std::size_t n = topology.size();
  std::vector<double> dist(n, util::kInf);
  dist[src] = 0.0;
  using Item = std::pair<double, net::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  queue.emplace(0.0, src);
  std::vector<bool> settled(n, false);
  while (!queue.empty()) {
    const auto [t, u] = queue.top();
    queue.pop();
    if (settled[u]) continue;
    settled[u] = true;
    for (const auto& link : topology.adjacency(u)) {
      if (settled[link.peer]) continue;
      const double w =
          link.is_infra() ? link.infra_ms : network.link_ms(u, link.peer);
      if (t + w < dist[link.peer]) {
        dist[link.peer] = t + w;
        queue.emplace(dist[link.peer], link.peer);
      }
    }
  }
  return dist;
}

StretchStats measure_stretch(const net::Topology& topology,
                             const net::Network& network, util::Rng& rng,
                             std::size_t sources, double min_direct_ms) {
  PERIGEE_ASSERT(sources >= 1);
  const std::size_t n = topology.size();
  std::vector<double> stretches;
  StretchStats stats;
  for (std::size_t s = 0; s < sources; ++s) {
    const auto src = static_cast<net::NodeId>(rng.uniform_index(n));
    const auto dist = latency_shortest_paths(topology, network, src);
    for (net::NodeId v = 0; v < n; ++v) {
      if (v == src) continue;
      const double direct = network.link_ms(src, v);
      if (direct < min_direct_ms) continue;
      if (std::isinf(dist[v])) {
        ++stats.unreachable;
        continue;
      }
      stretches.push_back(dist[v] / direct);
    }
  }
  stats.pairs = stretches.size();
  if (!stretches.empty()) {
    const auto summary = util::summarize(stretches);
    stats.mean = summary.mean;
    stats.p50 = summary.p50;
    stats.p90 = summary.p90;
    stats.max = summary.max;
  }
  return stats;
}

double pair_stretch(const net::Topology& topology, const net::Network& network,
                    net::NodeId a, net::NodeId b) {
  PERIGEE_ASSERT(a != b);
  const auto dist = latency_shortest_paths(topology, network, a);
  const double direct = network.link_ms(a, b);
  PERIGEE_ASSERT(direct > 0);
  return dist[b] / direct;
}

}  // namespace perigee::metrics
