// Path-stretch measurements for the theory experiments (paper §3, Theorems
// 1-2, Figure 1): how much longer is the latency-weighted shortest path
// between two nodes than their direct point-to-point latency?
#pragma once

#include <cstddef>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace perigee::metrics {

// Latency-weighted shortest-path distance from `src` to every node (link
// propagation latency only — the pure graph-distance model of §3.1, no
// validation delay). +inf for unreachable nodes.
std::vector<double> latency_shortest_paths(const net::Topology& topology,
                                           const net::Network& network,
                                           net::NodeId src);

struct StretchStats {
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double max = 0;
  std::size_t pairs = 0;        // measured pairs
  std::size_t unreachable = 0;  // skipped: no path
};

// Stretch dist(u,v) / δ(u,v) over pairs sampled from `sources` random
// sources to all targets with direct latency at least `min_direct_ms`
// (Theorems 1-2 exclude near-coincident pairs, where stretch is ill-posed).
StretchStats measure_stretch(const net::Topology& topology,
                             const net::Network& network, util::Rng& rng,
                             std::size_t sources, double min_direct_ms);

// Stretch of one specific pair (Figure 1's corner-to-corner example).
double pair_stretch(const net::Topology& topology, const net::Network& network,
                    net::NodeId a, net::NodeId b);

}  // namespace perigee::metrics
