#include "mining/hashpower.hpp"

#include "util/assert.hpp"

namespace perigee::mining {

std::string_view hash_model_name(HashPowerModel model) {
  switch (model) {
    case HashPowerModel::Uniform:
      return "uniform";
    case HashPowerModel::Exponential:
      return "exponential";
    case HashPowerModel::Pools:
      return "pools";
  }
  return "unknown";
}

std::optional<HashPowerModel> hash_model_from_name(std::string_view name) {
  for (const auto model : {HashPowerModel::Uniform, HashPowerModel::Exponential,
                           HashPowerModel::Pools}) {
    if (hash_model_name(model) == name) return model;
  }
  return std::nullopt;
}

std::vector<net::NodeId> assign_hash_power(net::Network& network,
                                           HashPowerModel model,
                                           util::Rng& rng,
                                           const PoolsConfig& pools) {
  auto& profiles = network.mutable_profiles();
  const std::size_t n = profiles.size();
  PERIGEE_ASSERT(n > 0);
  std::vector<net::NodeId> pool_members;

  switch (model) {
    case HashPowerModel::Uniform: {
      for (auto& p : profiles) p.hash_power = 1.0 / static_cast<double>(n);
      break;
    }
    case HashPowerModel::Exponential: {
      double total = 0;
      for (auto& p : profiles) {
        p.hash_power = rng.exponential(1.0);
        total += p.hash_power;
      }
      PERIGEE_ASSERT(total > 0);
      for (auto& p : profiles) p.hash_power /= total;
      break;
    }
    case HashPowerModel::Pools: {
      PERIGEE_ASSERT(pools.pool_fraction > 0 && pools.pool_fraction < 1);
      PERIGEE_ASSERT(pools.pool_share > 0 && pools.pool_share <= 1);
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(pools.pool_fraction *
                                      static_cast<double>(n)));
      for (std::size_t idx : rng.sample_indices(n, k)) {
        pool_members.push_back(static_cast<net::NodeId>(idx));
      }
      concentrate_hash_power(network, pool_members, pools.pool_share);
      break;
    }
  }
  return pool_members;
}

void concentrate_hash_power(net::Network& network,
                            const std::vector<net::NodeId>& members,
                            double share) {
  auto& profiles = network.mutable_profiles();
  const std::size_t n = profiles.size();
  const std::size_t k = members.size();
  PERIGEE_ASSERT(k > 0 && k < n);
  PERIGEE_ASSERT(share >= 0 && share <= 1);
  const double inside = share / static_cast<double>(k);
  const double outside = (1.0 - share) / static_cast<double>(n - k);
  for (auto& p : profiles) p.hash_power = outside;
  for (const net::NodeId v : members) profiles[v].hash_power = inside;
}

double total_hash_power(const net::Network& network) {
  double total = 0;
  for (const auto& p : network.profiles()) total += p.hash_power;
  return total;
}

}  // namespace perigee::mining
