// Hash-power assignment models (paper §5.1, §5.2, §5.4).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace perigee::mining {

enum class HashPowerModel {
  // Every node holds 1/n of the hash power (paper default).
  Uniform,
  // fv ~ Exponential(mean 1), normalized to sum to 1 (Figure 3(b)).
  Exponential,
  // A random `pool_fraction` of nodes shares `pool_share` of the hash power
  // equally; the rest split the remainder (Figure 4(b): 10% hold 90%).
  Pools,
};

struct PoolsConfig {
  double pool_fraction = 0.10;
  double pool_share = 0.90;
};

// "uniform" / "exponential" / "pools" (sweep labels and CLI flags).
std::string_view hash_model_name(HashPowerModel model);
std::optional<HashPowerModel> hash_model_from_name(std::string_view name);

// Overwrites profile.hash_power for every node. Returns the ids of pool
// members (empty unless model == Pools). Deterministic in `rng`.
std::vector<net::NodeId> assign_hash_power(net::Network& network,
                                           HashPowerModel model,
                                           util::Rng& rng,
                                           const PoolsConfig& pools = {});

// Concentrates `share` of the total hash power equally on `members`; every
// other node splits the remainder equally. Requires 0 < |members| < n.
// Used by the Pools model and by the scenario layer's datacenter tier.
void concentrate_hash_power(net::Network& network,
                            const std::vector<net::NodeId>& members,
                            double share);

// Total hash power across nodes (should be ~1 after assignment).
double total_hash_power(const net::Network& network);

}  // namespace perigee::mining
