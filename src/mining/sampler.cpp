#include "mining/sampler.hpp"

#include "util/assert.hpp"

namespace perigee::mining {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  PERIGEE_ASSERT(n > 0);
  double total = 0;
  for (double w : weights) {
    PERIGEE_ASSERT(w >= 0);
    total += w;
  }
  PERIGEE_ASSERT(total > 0);

  norm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) norm_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's algorithm: split columns into under-/over-full relative to 1/n.
  std::vector<double> scaled(n);
  std::vector<std::size_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = norm_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly full (modulo fp error).
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;
}

AliasSampler AliasSampler::from_hash_power(const net::Network& network) {
  std::vector<double> w;
  w.reserve(network.size());
  for (const auto& p : network.profiles()) w.push_back(p.hash_power);
  return AliasSampler(w);
}

std::size_t AliasSampler::sample(util::Rng& rng) const {
  const std::size_t col = rng.uniform_index(prob_.size());
  return rng.uniform() < prob_[col] ? col : alias_[col];
}

double AliasSampler::probability(std::size_t i) const {
  PERIGEE_ASSERT(i < norm_.size());
  return norm_[i];
}

}  // namespace perigee::mining
