// Weighted miner sampling.
//
// Each mined block's origin is drawn proportionally to hash power (paper
// §2.1). Rounds draw 100 blocks x many rounds x many experiments, so we use
// Vose's alias method: O(n) build, O(1) per draw.
#pragma once

#include <cstddef>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace perigee::mining {

class AliasSampler {
 public:
  // Weights must be non-negative with a positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  // Builds from the network's hash-power vector.
  static AliasSampler from_hash_power(const net::Network& network);

  std::size_t sample(util::Rng& rng) const;
  std::size_t size() const { return prob_.size(); }

  // Exact sampling probability of index i (for tests).
  double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;        // acceptance probability per column
  std::vector<std::size_t> alias_;  // fallback index per column
  std::vector<double> norm_;        // normalized input weights
};

}  // namespace perigee::mining
