#include "net/addrman.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace perigee::net {

AddrMan::AddrMan(std::size_t n_nodes, std::size_t capacity)
    : capacity_(capacity), books_(n_nodes) {
  PERIGEE_ASSERT(capacity_ >= 1);
}

void AddrMan::bootstrap(util::Rng& rng, std::size_t count) {
  PERIGEE_ASSERT(count <= capacity_);
  const std::size_t n = books_.size();
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < count; ++i) {
      learn(v, static_cast<NodeId>(rng.uniform_index(n)), rng);
    }
  }
}

void AddrMan::rebootstrap(NodeId v, util::Rng& rng, std::size_t count) {
  PERIGEE_ASSERT(v < books_.size());
  PERIGEE_ASSERT(count <= capacity_);
  books_[v].clear();
  const std::size_t n = books_.size();
  // Fill to exactly `count` distinct addresses (self/duplicate draws retry,
  // attempt-capped so a tiny network cannot loop forever).
  const std::size_t want = std::min(count, n - 1);
  for (std::size_t attempts = 0;
       books_[v].size() < want && attempts < 64 * want; ++attempts) {
    learn(v, static_cast<NodeId>(rng.uniform_index(n)), rng);
  }
}

void AddrMan::add_neighbors_of(const Topology& topology) {
  PERIGEE_ASSERT(topology.size() == books_.size());
  // Neighbor addresses are always worth knowing; use a throwaway generator
  // for the (rare) eviction choice to keep this callable anywhere.
  util::Rng rng(0xADD7);
  for (NodeId v = 0; v < topology.size(); ++v) {
    for (const auto& link : topology.adjacency(v)) {
      learn(v, link.peer, rng);
    }
  }
}

bool AddrMan::knows(NodeId v, NodeId addr) const {
  PERIGEE_ASSERT(v < books_.size());
  const auto& book = books_[v];
  return std::find(book.begin(), book.end(), addr) != book.end();
}

bool AddrMan::learn(NodeId v, NodeId addr, util::Rng& rng) {
  PERIGEE_ASSERT(v < books_.size());
  PERIGEE_ASSERT(addr < books_.size());
  if (addr == v || knows(v, addr)) return false;
  auto& book = books_[v];
  if (book.size() < capacity_) {
    book.push_back(addr);
  } else {
    book[rng.uniform_index(book.size())] = addr;
  }
  return true;
}

NodeId AddrMan::sample(NodeId v, util::Rng& rng) const {
  PERIGEE_ASSERT(v < books_.size());
  const auto& book = books_[v];
  if (book.empty()) return kInvalidNode;
  return book[rng.uniform_index(book.size())];
}

void AddrMan::gossip_round(const Topology& topology, util::Rng& rng,
                           std::size_t fanout) {
  PERIGEE_ASSERT(topology.size() == books_.size());
  for (NodeId v = 0; v < topology.size(); ++v) {
    for (const auto& link : topology.adjacency(v)) {
      // The neighbor itself is an address worth keeping.
      learn(v, link.peer, rng);
      // v pushes `fanout` random entries of its book to the neighbor.
      for (std::size_t i = 0; i < fanout; ++i) {
        const NodeId addr = sample(v, rng);
        if (addr != kInvalidNode) learn(link.peer, addr, rng);
      }
    }
  }
}

}  // namespace perigee::net
