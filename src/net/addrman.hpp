/// \file
/// \brief Peer discovery: per-node address books ("addrMan", paper §2.1).
///
/// Bitcoin nodes do not know the whole network; each keeps a bounded local
/// database of peer addresses, seeded by a bootstrap server and refreshed by
/// gossiping addresses with neighbors. The paper's evaluation assumes full
/// knowledge of all IPs; this module removes that assumption so experiments
/// can study Perigee under partial views (§6's discussion of limited peer
/// addresses under churn). When a RoundRunner carries an AddrMan, exploration
/// samples from the dialer's address book instead of from the global node
/// set.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"
#include "util/rng.hpp"

namespace perigee::net {

/// Bounded per-node address books with gossip refresh.
class AddrMan {
 public:
  /// `capacity` bounds each node's address book (excluding self). The book
  /// starts empty; call bootstrap() to seed it.
  AddrMan(std::size_t n_nodes, std::size_t capacity);

  /// Number of nodes (books).
  std::size_t size() const { return books_.size(); }
  /// Per-book capacity.
  std::size_t capacity() const { return capacity_; }

  /// Seeds every node's book with `count` random addresses (bootstrap-server
  /// behaviour).
  void bootstrap(util::Rng& rng, std::size_t count);
  /// Empties v's book and reseeds it with `count` random addresses: a node
  /// rejoining after churn has lost its local database and contacts the
  /// bootstrap server afresh (§6's limited-view churn discussion).
  void rebootstrap(NodeId v, util::Rng& rng, std::size_t count);
  /// Adds each node's current topology neighbors to its book.
  void add_neighbors_of(const Topology& topology);

  /// True when `addr` is in v's book.
  bool knows(NodeId v, NodeId addr) const;
  /// Number of addresses v currently knows.
  std::size_t known_count(NodeId v) const { return books_[v].size(); }

  /// Inserts `addr` into v's book; when full, a random existing entry is
  /// evicted (Bitcoin's addrman similarly overwrites buckets). Self-inserts
  /// and duplicates are no-ops. Returns true if the book changed.
  bool learn(NodeId v, NodeId addr, util::Rng& rng);

  /// A random known address of v, or kInvalidNode if the book is empty.
  NodeId sample(NodeId v, util::Rng& rng) const;

  /// One round of address gossip: every node sends `fanout` random entries
  /// from its book to each topology neighbor (cf. Bitcoin's periodic ADDR
  /// messages). Nodes also learn the addresses of the neighbors themselves.
  void gossip_round(const Topology& topology, util::Rng& rng,
                    std::size_t fanout = 2);

 private:
  std::size_t capacity_;
  std::vector<std::vector<NodeId>> books_;
};

}  // namespace perigee::net
