#include "net/csr.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace perigee::net {

CsrTopology CsrTopology::build(const Topology& topology,
                               const Network& network) {
  PERIGEE_ASSERT(topology.size() == network.size());
  const std::size_t n = topology.size();

  CsrTopology csr;
  csr.version_ = topology.version();
  csr.offsets_.resize(n + 1);
  csr.offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    csr.offsets_[v + 1] = csr.offsets_[v] + topology.adjacency(v).size();
  }
  const std::size_t links = csr.offsets_[n];
  csr.peer_.resize(links);
  csr.delay_ms_.resize(links);
  csr.control_ms_.resize(links);
  csr.forwards_.resize(n);
  csr.validation_ms_.resize(n);

  // Delay/validation bounds ride along with the compile; the batched
  // engine sizes its bucket queue from them without another O(E) pass.
  double min_delay = std::numeric_limits<double>::infinity();
  double max_delay = 0.0;
  double max_validation = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    csr.forwards_[v] = network.profile(v).forwards ? 1 : 0;
    csr.validation_ms_[v] = network.validation_ms(v);
    max_validation = std::max(max_validation, csr.validation_ms_[v]);
    std::size_t e = csr.offsets_[v];
    for (const auto& link : topology.adjacency(v)) {
      csr.peer_[e] = link.peer;
      if (link.is_infra()) {
        csr.delay_ms_[e] = link.infra_ms;
        csr.control_ms_[e] = link.infra_ms;
      } else {
        // One latency-model call per entry: the block delay derives from the
        // same link_ms the control delay stores.
        const double link_ms = network.link_ms(v, link.peer);
        csr.delay_ms_[e] =
            network.edge_delay_from_link_ms(link_ms, v, link.peer);
        csr.control_ms_[e] = link_ms;
      }
      min_delay = std::min(min_delay, csr.delay_ms_[e]);
      max_delay = std::max(max_delay, csr.delay_ms_[e]);
      ++e;
    }
  }
  csr.min_delay_ms_ = min_delay;
  csr.max_delay_ms_ = max_delay;
  csr.max_validation_ms_ = max_validation;
  return csr;
}

double CsrTopology::block_delay(NodeId u, NodeId v) const {
  const auto row = peers(u);
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] == v) return delays(u)[i];
  }
  PERIGEE_ASSERT_MSG(false, "block_delay of non-adjacent pair");
  return 0.0;
}

double CsrTopology::control_delay(NodeId u, NodeId v) const {
  const auto row = peers(u);
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] == v) return control_delays(u)[i];
  }
  PERIGEE_ASSERT_MSG(false, "control_delay of non-adjacent pair");
  return 0.0;
}

bool CsrTopology::profiles_current(const Network& network) const {
  if (forwards_.size() != network.size()) return false;
  for (NodeId v = 0; v < network.size(); ++v) {
    if (forwards(v) != network.profile(v).forwards ||
        validation_ms(v) != network.validation_ms(v)) {
      return false;
    }
  }
  return true;
}

const CsrTopology& CsrCache::get(const Topology& topology,
                                 const Network& network) {
  if (!csr_ || csr_->built_from_version() != topology.version() ||
      !csr_->profiles_current(network)) {
    csr_ = CsrTopology::build(topology, network);
  }
  return *csr_;
}

}  // namespace perigee::net
