#include "net/csr.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace perigee::net {
namespace {

// Patch-vs-rebuild policy: a journal replay is worthwhile while the delta
// count stays well below the live link-entry count — each Connect costs one
// latency-model resolution against the rebuild's one per directed entry, and
// removals are short ordered shifts. Beyond half the entry count (mass
// join/leave churn epochs) the patch no longer clearly beats the compile, so
// the cache rebuilds and re-derives exact δ bounds for free. The floor keeps
// tiny graphs from rebuilding over a handful of deltas.
std::size_t patch_budget(std::size_t num_links) {
  return std::max<std::size_t>(64, num_links / 2);
}

// Exact-δ-bounds refresh cadence: after this many removed edges the
// conservative min/max are re-derived by a pure array scan (no latency-model
// calls). Removals only *loosen* the bounds (correctness never depends on
// the refresh); this just keeps the bucket-queue width derivation close to
// the true minimum.
constexpr std::size_t kBoundsRefreshRemovals = 1024;

}  // namespace

CsrTopology::EdgeInputs CsrTopology::edge_inputs_of(
    const NodeProfile& profile) {
  return EdgeInputs{profile.region, profile.coords, profile.access_ms,
                    profile.bandwidth_mbps};
}

CsrTopology CsrTopology::build(const Topology& topology,
                               const Network& network, Layout layout) {
  PERIGEE_ASSERT(topology.size() == network.size());
  const std::size_t n = topology.size();
  const TopologyLimits& limits = topology.limits();

  CsrTopology csr;
  csr.version_ = topology.version();
  csr.profile_version_ = network.profile_version();
  csr.latency_version_ = network.latency_version();
  csr.offsets_.resize(n + 1);
  csr.row_end_.resize(n);
  csr.offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto& adj = topology.adjacency(v);
    std::size_t capacity = adj.size();
    if (layout == Layout::Patchable) {
      // Slab capacity covers every p2p population the caps allow, plus the
      // node's infra links (installed at scenario build, before the round
      // loop): any journaled Connect fits without moving other rows.
      const auto infra = static_cast<std::size_t>(std::count_if(
          adj.begin(), adj.end(),
          [](const Topology::Link& l) { return l.is_infra(); }));
      capacity = std::max(
          capacity, static_cast<std::size_t>(limits.out_cap) +
                        static_cast<std::size_t>(limits.in_cap) + infra);
    }
    csr.offsets_[v + 1] = csr.offsets_[v] + capacity;
  }
  const std::size_t slots = csr.offsets_[n];
  csr.peer_.resize(slots);
  csr.delay_ms_.resize(slots);
  csr.control_ms_.resize(slots);
  csr.forwards_.resize(n);
  csr.validation_ms_.resize(n);
  csr.edge_inputs_.resize(n);

  // Delay/validation bounds ride along with the compile; the batched
  // engine sizes its bucket queue from them without another O(E) pass.
  double min_delay = std::numeric_limits<double>::infinity();
  double max_delay = 0.0;
  double max_validation = 0.0;
  std::size_t links = 0;
  for (NodeId v = 0; v < n; ++v) {
    const NodeProfile& profile = network.profile(v);
    csr.forwards_[v] = profile.forwards ? 1 : 0;
    csr.validation_ms_[v] = profile.validation_ms;
    csr.edge_inputs_[v] = edge_inputs_of(profile);
    max_validation = std::max(max_validation, csr.validation_ms_[v]);
    std::size_t e = csr.offsets_[v];
    for (const auto& link : topology.adjacency(v)) {
      csr.peer_[e] = link.peer;
      if (link.is_infra()) {
        csr.delay_ms_[e] = link.infra_ms;
        csr.control_ms_[e] = link.infra_ms;
      } else {
        // One latency-model call per entry: the block delay derives from the
        // same link_ms the control delay stores.
        const double link_ms = network.link_ms(v, link.peer);
        csr.delay_ms_[e] =
            network.edge_delay_from_link_ms(link_ms, v, link.peer);
        csr.control_ms_[e] = link_ms;
      }
      min_delay = std::min(min_delay, csr.delay_ms_[e]);
      max_delay = std::max(max_delay, csr.delay_ms_[e]);
      ++e;
    }
    csr.row_end_[v] = e;
    links += e - csr.offsets_[v];
  }
  csr.num_links_ = links;
  csr.min_delay_ms_ = min_delay;
  csr.max_delay_ms_ = max_delay;
  csr.max_validation_ms_ = max_validation;
  // High-water mark so a run's largest snapshot is visible next to the
  // compact variant's footprint (scale-path memory budgeting).
  PERIGEE_GAUGE_MAX("mem.csr_bytes", csr.memory_bytes());
  return csr;
}

std::size_t CsrTopology::memory_bytes() const {
  return offsets_.capacity() * sizeof(std::size_t) +
         row_end_.capacity() * sizeof(std::size_t) +
         peer_.capacity() * sizeof(NodeId) +
         delay_ms_.capacity() * sizeof(double) +
         control_ms_.capacity() * sizeof(double) +
         forwards_.capacity() * sizeof(std::uint8_t) +
         validation_ms_.capacity() * sizeof(double) +
         edge_inputs_.capacity() * sizeof(EdgeInputs);
}

double CsrTopology::block_delay(NodeId u, NodeId v) const {
  const auto row = peers(u);
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] == v) return delays(u)[i];
  }
  PERIGEE_ASSERT_MSG(false, "block_delay of non-adjacent pair");
  return 0.0;
}

double CsrTopology::control_delay(NodeId u, NodeId v) const {
  const auto row = peers(u);
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] == v) return control_delays(u)[i];
  }
  PERIGEE_ASSERT_MSG(false, "control_delay of non-adjacent pair");
  return 0.0;
}

bool CsrTopology::append_entry(NodeId u, NodeId v, double delay,
                               double control) {
  const std::size_t e = row_end_[u];
  if (e >= offsets_[u + 1]) return false;  // slab full: rebuild instead
  peer_[e] = v;
  delay_ms_[e] = delay;
  control_ms_[e] = control;
  row_end_[u] = e + 1;
  ++num_links_;
  return true;
}

bool CsrTopology::remove_entry(NodeId u, NodeId v, std::uint32_t slot) {
  const std::size_t begin = offsets_[u];
  const std::size_t end = row_end_[u];
  const std::size_t e = begin + slot;
  // Rows mirror adjacency order, so the journaled erase index lands directly
  // on the entry — no row scan. The peer check catches a journal that does
  // not describe this snapshot (consumer bug): fall back to a rebuild.
  if (e >= end || peer_[e] != v) return false;
  // Ordered erase, mirroring Topology::adj_remove's vector::erase: the
  // surviving entries keep exactly the order a fresh compile would lay
  // down, which is what keeps patched snapshots byte-equal to rebuilt
  // ones (and ObservationTable's adjacency-order indexing valid). One
  // fused inline loop over all three arrays: the shifted tail is a handful
  // of entries, where three out-of-line memmove calls would cost more than
  // the moves themselves.
  for (std::size_t i = e; i + 1 < end; ++i) {
    peer_[i] = peer_[i + 1];
    delay_ms_[i] = delay_ms_[i + 1];
    control_ms_[i] = control_ms_[i + 1];
  }
  row_end_[u] = end - 1;
  --num_links_;
  return true;
}

bool CsrTopology::apply_deltas(std::span<const Topology::EdgeDelta> deltas,
                               const Network& network) {
  using Kind = Topology::EdgeDelta::Kind;
  for (const auto& d : deltas) {
    switch (d.kind) {
      case Kind::Connect: {
        // One resolution per mirrored entry, each from its own row's side:
        // link_ms is symmetric only up to floating-point summation order
        // (access_u + access_v associates differently per direction), and a
        // fresh compile resolves row u's entry as link_ms(u, v) — the patch
        // must reproduce those exact bits.
        const double link_uv = network.link_ms(d.u, d.v);
        const double link_vu = network.link_ms(d.v, d.u);
        const double delay_uv =
            network.edge_delay_from_link_ms(link_uv, d.u, d.v);
        const double delay_vu =
            network.edge_delay_from_link_ms(link_vu, d.v, d.u);
        if (!append_entry(d.u, d.v, delay_uv, link_uv) ||
            !append_entry(d.v, d.u, delay_vu, link_vu)) {
          return false;
        }
        min_delay_ms_ = std::min(min_delay_ms_, std::min(delay_uv, delay_vu));
        max_delay_ms_ = std::max(max_delay_ms_, std::max(delay_uv, delay_vu));
        break;
      }
      case Kind::InfraAdd: {
        if (!append_entry(d.u, d.v, d.infra_ms, d.infra_ms) ||
            !append_entry(d.v, d.u, d.infra_ms, d.infra_ms)) {
          return false;
        }
        min_delay_ms_ = std::min(min_delay_ms_, d.infra_ms);
        max_delay_ms_ = std::max(max_delay_ms_, d.infra_ms);
        break;
      }
      case Kind::Disconnect: {
        if (!remove_entry(d.u, d.v, d.u_slot) ||
            !remove_entry(d.v, d.u, d.v_slot)) {
          return false;
        }
        // Removals leave the bounds conservative (min can only be ≤ the true
        // minimum); the periodic refresh below re-derives them exactly.
        removals_since_refresh_ += 2;
        break;
      }
    }
    ++version_;
  }
  if (removals_since_refresh_ >= kBoundsRefreshRemovals) refresh_bounds();
  return true;
}

bool CsrTopology::refresh_profiles(const Network& network) {
  if (validation_ms_.size() != network.size()) return false;
  const std::size_t n = network.size();
  for (NodeId v = 0; v < n; ++v) {
    const NodeProfile& profile = network.profile(v);
    if (edge_inputs_[v] != edge_inputs_of(profile)) {
      // Region / coordinates / access / bandwidth feed the per-edge δ
      // resolution; the frozen delay arrays are stale beyond repair here.
      return false;
    }
    forwards_[v] = profile.forwards ? 1 : 0;
    validation_ms_[v] = profile.validation_ms;
    // Conservative upward tighten; exact shrink happens on refresh_bounds.
    max_validation_ms_ = std::max(max_validation_ms_, profile.validation_ms);
  }
  profile_version_ = network.profile_version();
  return true;
}

void CsrTopology::refresh_bounds() {
  double min_delay = std::numeric_limits<double>::infinity();
  double max_delay = 0.0;
  const std::size_t n = size();
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t e = offsets_[v]; e < row_end_[v]; ++e) {
      min_delay = std::min(min_delay, delay_ms_[e]);
      max_delay = std::max(max_delay, delay_ms_[e]);
    }
  }
  min_delay_ms_ = min_delay;
  max_delay_ms_ = max_delay;
  max_validation_ms_ =
      validation_ms_.empty()
          ? 0.0
          : *std::max_element(validation_ms_.begin(), validation_ms_.end());
  removals_since_refresh_ = 0;
}

CompactCsr CompactCsr::build(const CsrTopology& csr) {
  const std::size_t n = csr.size();
  CompactCsr out;
  // One shared grid sized to the largest value it must hold: the largest
  // block delay or validation delay, quantized into 31 bits. Any path sum
  // of <= n such terms then stays below n * 2^31 << 2^63, so u64 arrival
  // accumulation in the compact engine cannot overflow.
  const double max_value =
      std::max(csr.max_delay_ms(), csr.max_validation_ms());
  out.scale_ = util::FixedPointScale::fit(max_value, 31);

  out.offsets_.resize(n + 1);
  out.validation_q_.resize(n);
  out.forwards_.assign((n + 63) / 64, 0);
  out.offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    // Packed rows: slab slack from a Patchable source snapshot is dropped.
    const std::size_t row = csr.peers(v).size();
    const std::size_t end = out.offsets_[v] + row;
    PERIGEE_ASSERT_MSG(end <= std::numeric_limits<std::uint32_t>::max(),
                       "entry count exceeds 32-bit offsets");
    out.offsets_[v + 1] = static_cast<std::uint32_t>(end);
  }
  const std::size_t entries = out.offsets_[n];
  out.peer_.resize(entries);
  out.delay_q_.resize(entries);

  std::uint32_t min_q = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t max_q = 0;
  std::uint32_t max_validation = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t vq = out.scale_.quantize(csr.validation_ms(v));
    out.validation_q_[v] = static_cast<std::uint32_t>(vq);
    max_validation = std::max(max_validation, out.validation_q_[v]);
    if (csr.forwards(v)) out.forwards_[v >> 6] |= std::uint64_t{1} << (v & 63);
    const auto peers = csr.peers(v);
    const auto delays = csr.delays(v);
    std::uint32_t e = out.offsets_[v];
    for (std::size_t i = 0; i < peers.size(); ++i) {
      out.peer_[e] = peers[i];
      const std::uint64_t dq = out.scale_.quantize(delays[i]);
      out.delay_q_[e] = static_cast<std::uint32_t>(dq);
      min_q = std::min(min_q, out.delay_q_[e]);
      max_q = std::max(max_q, out.delay_q_[e]);
      ++e;
    }
  }
  if (entries == 0) min_q = std::numeric_limits<std::uint32_t>::max();
  out.min_delay_q_ = min_q;
  out.max_delay_q_ = max_q;
  out.max_validation_q_ = max_validation;
  PERIGEE_GAUGE_MAX("mem.compact_csr_bytes", out.memory_bytes());
  return out;
}

std::size_t CompactCsr::memory_bytes() const {
  return offsets_.capacity() * sizeof(std::uint32_t) +
         peer_.capacity() * sizeof(std::uint32_t) +
         delay_q_.capacity() * sizeof(std::uint32_t) +
         validation_q_.capacity() * sizeof(std::uint32_t) +
         forwards_.capacity() * sizeof(std::uint64_t);
}

const CsrTopology& CsrCache::get(const Topology& topology,
                                 const Network& network) {
  if (csr_ && patching_ &&
      csr_->built_from_latency_version() == network.latency_version()) {
    bool current = true;
    if (csr_->built_from_version() != topology.version()) {
      const auto deltas = topology.deltas_since(csr_->built_from_version());
      if (deltas.has_value() &&
          deltas->size() <= patch_budget(csr_->num_links())) {
        PERIGEE_TRACE_SPAN_ARGS(
            patch_span, "csr_patch",
            obs::TraceArgs().arg("deltas", deltas->size()).json());
        current = csr_->apply_deltas(*deltas, network);
      } else {
        current = false;
      }
      if (current) {
        ++patches_;
        PERIGEE_COUNTER_ADD("csr.cache.patches", 1);
        PERIGEE_HISTOGRAM_OBSERVE("csr.patch.deltas", deltas->size());
      } else if (deltas.has_value()) {
        // Delta volume over budget (or a failed replay): the rebuild below
        // is the patch-vs-rebuild heuristic choosing the compile.
        PERIGEE_COUNTER_ADD("csr.cache.patch_rejects", 1);
      } else {
        // The journal was truncated past the snapshot's version.
        PERIGEE_COUNTER_ADD("csr.cache.journal_misses", 1);
      }
    } else {
      PERIGEE_COUNTER_ADD("csr.cache.hits", 1);
    }
    if (current &&
        csr_->built_from_profile_version() != network.profile_version()) {
      current = csr_->refresh_profiles(network);
    }
    if (current) return *csr_;
    // A failed patch leaves the snapshot half-applied; the rebuild below
    // discards it wholesale.
  }
  if (csr_ && !patching_ &&
      csr_->built_from_version() == topology.version() &&
      csr_->built_from_profile_version() == network.profile_version() &&
      csr_->built_from_latency_version() == network.latency_version()) {
    PERIGEE_COUNTER_ADD("csr.cache.hits", 1);
    return *csr_;
  }
  {
    PERIGEE_TRACE_SPAN_ARGS(
        compile_span, "csr_compile",
        obs::TraceArgs().arg("nodes", topology.size()).json());
    csr_ =
        CsrTopology::build(topology, network, CsrTopology::Layout::Patchable);
  }
  ++rebuilds_;
  PERIGEE_COUNTER_ADD("csr.cache.rebuilds", 1);
  return *csr_;
}

}  // namespace perigee::net
