/// \file
/// \brief Compiled flat-graph (compressed sparse row) view of a Topology,
/// with an incremental patch path driven by the Topology's mutation journal.
///
/// `Topology` is the *mutable* graph the protocol rewires between rounds; its
/// per-node link lists are the right shape for connect/disconnect but the
/// wrong shape for the broadcast hot loop, which visits every directed link of
/// the graph once per simulated block and pays a virtual `LatencyModel` call
/// per edge. `CsrTopology` is the immutable-per-round compiled form: one
/// contiguous offsets/peers/delay triplet with every per-edge δ(u,v)
/// pre-resolved (infra override or `Network::edge_delay_ms`), so the engine's
/// inner loop is a single array read per edge. Per-node attributes the
/// engines consult (validation delay Δv, the forwards flag) are cached
/// alongside.
///
/// A snapshot is refreshed once per round — the topology is static within a
/// round (paper §4.1). Refreshing no longer means recompiling: the learning
/// loop typically replaces a few of each node's ≤ dout out-edges per round,
/// and `apply_deltas` replays the Topology's journaled `EdgeDelta`s onto the
/// existing snapshot in place. Rows are laid out as fixed-capacity slabs
/// (sized to the degree caps), so an out-edge swap is an ordered slot
/// erase/append plus one latency-model resolution for the new edge — the
/// patched arrays are *identical* to what a fresh compile would produce,
/// entry for entry, because `Topology` mutations preserve adjacency order
/// (`adj_add` appends, `adj_remove` erases in place) and the patch mirrors
/// them. `CsrCache` picks patch vs. full rebuild by delta volume and handles
/// profile/latency staleness through the Network's version counters.
/// `tests/sim_engine_diff_test.cpp` holds patched snapshots byte-equal to
/// fresh compiles (and both to the legacy engine) across every regime.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"
#include "util/fixedpoint.hpp"

namespace perigee::net {

/// Compressed-sparse-row snapshot of a `Topology` over a `Network`.
///
/// Row `v` lists the full relay adjacency of `v` (outgoing + incoming +
/// infra) in exactly `Topology::adjacency(v)` order, so index `i` of row `v`
/// corresponds to `adjacency(v)[i]` — consumers that captured neighbor lists
/// from the Topology (e.g. `ObservationTable`) can index CSR rows directly.
/// The order survives `apply_deltas`, which mirrors the Topology's own
/// ordered insert/erase.
class CsrTopology {
 public:
  /// Row allocation strategy for `build`.
  enum class Layout {
    /// Rows packed back to back (no slack). Smallest footprint; in-place
    /// additions do not fit, so `apply_deltas` accepts only Disconnect
    /// deltas. The default for one-shot compiles (static topologies, tests).
    Packed,
    /// Every row is a fixed-capacity slab sized to the degree caps
    /// (`out_cap + in_cap` plus the node's infra links at build time), so
    /// any p2p delta the Topology can legally produce patches in place.
    /// Used by `CsrCache` for the round loop.
    Patchable,
  };

  /// Compiles a snapshot. O(E) `edge_delay_ms`/`link_ms` evaluations; every
  /// later traversal is pure array reads. The snapshot records
  /// `topology.version()` plus the network's profile/latency versions, which
  /// `CsrCache` compares to refresh it incrementally.
  static CsrTopology build(const Topology& topology, const Network& network,
                           Layout layout = Layout::Packed);

  /// Number of nodes.
  std::size_t size() const { return offsets_.size() - 1; }
  /// Number of live directed link entries (2x undirected edge count; slab
  /// slack is not counted).
  std::size_t num_links() const { return num_links_; }
  /// `Topology::version()` the snapshot currently reflects (build version
  /// advanced by every applied delta).
  std::uint64_t built_from_version() const { return version_; }
  /// `Network::profile_version()` the cached per-node attributes reflect.
  std::uint64_t built_from_profile_version() const { return profile_version_; }
  /// `Network::latency_version()` the pre-resolved delays were frozen under.
  std::uint64_t built_from_latency_version() const { return latency_version_; }

  /// Neighbors of `v`, in `Topology::adjacency(v)` order.
  std::span<const NodeId> peers(NodeId v) const {
    return {peer_.data() + offsets_[v], row_end_[v] - offsets_[v]};
  }
  /// Block delay δ(v, peer) per neighbor of `v` (infra override or
  /// propagation + transmission), parallel to `peers(v)`.
  std::span<const double> delays(NodeId v) const {
    return {delay_ms_.data() + offsets_[v], row_end_[v] - offsets_[v]};
  }
  /// Control-message delay per neighbor of `v`: infra override or pure
  /// propagation latency (no handshake factor, no transmission term). Used by
  /// the INV/GETDATA gossip engine.
  std::span<const double> control_delays(NodeId v) const {
    return {control_ms_.data() + offsets_[v], row_end_[v] - offsets_[v]};
  }

  /// Cached `NodeProfile::forwards` (withholding nodes relay nothing).
  bool forwards(NodeId v) const { return forwards_[v] != 0; }
  /// Cached per-node validation delay Δv in ms.
  double validation_ms(NodeId v) const { return validation_ms_[v]; }

  /// Lower bound on the smallest block δ over all live link entries (+inf
  /// when there are none). Exact after a fresh compile; after patches it is
  /// maintained conservatively — tightened by every added edge, left in
  /// place by removals, and re-derived exactly on a periodic refresh — so it
  /// never exceeds the true minimum. The batched engine derives its
  /// bucket-queue width from this; a non-positive value (a zero-latency
  /// infra edge) routes it to the heap fallback instead.
  double min_delay_ms() const { return min_delay_ms_; }
  /// Upper bound on the largest block δ over all live link entries (0 when
  /// there are none); conservative under patching like `min_delay_ms`.
  double max_delay_ms() const { return max_delay_ms_; }
  /// Upper bound on the largest per-node validation delay Δv (0 for an empty
  /// graph). Together with `max_delay_ms` this bounds how far one Dijkstra
  /// relaxation can reach past the key being settled.
  double max_validation_ms() const { return max_validation_ms_; }

  /// Raw arrays for the engine hot loop: row `v` spans
  /// `offsets()[v] .. row_ends()[v]` of `peer_data()` / `delay_data()`.
  /// (`offsets()[v + 1]` is the row's slab capacity bound, not its length —
  /// patchable layouts keep slack there for in-place edge additions.)
  const std::size_t* offsets() const { return offsets_.data(); }
  const std::size_t* row_ends() const { return row_end_.data(); }
  const NodeId* peer_data() const { return peer_.data(); }
  const double* delay_data() const { return delay_ms_.data(); }

  /// Block delay of the (adjacent) pair — O(deg(u)) row scan. Both delay
  /// kinds are symmetric, so the u-side row answers for either direction.
  double block_delay(NodeId u, NodeId v) const;
  /// Control-message delay of the (adjacent) pair — O(deg(u)) row scan.
  double control_delay(NodeId u, NodeId v) const;

  /// Replays journaled topology mutations onto the snapshot in place:
  /// Disconnect erases the two mirrored row entries (ordered, like
  /// `Topology::adj_remove`), Connect/InfraAdd append them with one
  /// latency-model resolution per new edge. Returns false when a delta does
  /// not fit (row slab full — a Packed snapshot, or an infra install beyond
  /// the build-time slack) or does not match the rows (journal from a
  /// different graph); the snapshot is then partially patched garbage and
  /// must be discarded for a rebuild, which `CsrCache` does. On success the
  /// snapshot is entry-for-entry identical to a fresh compile of the mutated
  /// topology (modulo the conservative δ bounds) and `built_from_version()`
  /// has advanced by `deltas.size()`.
  bool apply_deltas(std::span<const Topology::EdgeDelta> deltas,
                    const Network& network);

  /// Re-syncs the cached per-node attributes (forwards, Δv) with the
  /// network's live profiles after a `profile_version()` bump. Returns false
  /// when a profile field that feeds *per-edge* delays changed (region,
  /// coordinates, access latency, bandwidth) — those invalidate the
  /// pre-resolved δ arrays and require a rebuild. Changes confined to
  /// forwards / validation / hash power patch in place.
  bool refresh_profiles(const Network& network);

  /// Recomputes min/max δ and max Δv exactly from the live entries (pure
  /// array scan, no latency-model calls). `apply_deltas` invokes it
  /// periodically to keep the conservative bounds from drifting far below
  /// the truth after many removals.
  void refresh_bounds();

  /// Heap bytes behind this snapshot (arrays incl. slab slack; excludes the
  /// object header). `build` reports it through the `mem.csr_bytes` obs
  /// gauge so scale runs can audit their memory budget.
  std::size_t memory_bytes() const;

 private:
  CsrTopology() = default;

  bool append_entry(NodeId u, NodeId v, double delay, double control);
  bool remove_entry(NodeId u, NodeId v, std::uint32_t slot);

  /// Per-node copy of the profile fields that feed per-edge delay
  /// resolution; `refresh_profiles` compares against the live profiles to
  /// decide patch vs. rebuild.
  struct EdgeInputs {
    Region region;
    std::array<double, kMaxEmbedDim> coords;
    double access_ms;
    double bandwidth_mbps;
    bool operator==(const EdgeInputs&) const = default;
  };
  static EdgeInputs edge_inputs_of(const NodeProfile& profile);

  std::uint64_t version_ = 0;
  std::uint64_t profile_version_ = 0;
  std::uint64_t latency_version_ = 0;
  std::vector<std::size_t> offsets_;      ///< n+1 row slab boundaries
  std::vector<std::size_t> row_end_;      ///< per-row live end (absolute)
  std::vector<NodeId> peer_;              ///< flattened adjacency (+ slack)
  std::vector<double> delay_ms_;          ///< pre-resolved block δ per entry
  std::vector<double> control_ms_;        ///< pre-resolved control δ per entry
  std::vector<std::uint8_t> forwards_;    ///< per-node relay flag
  std::vector<double> validation_ms_;     ///< per-node Δv
  std::vector<EdgeInputs> edge_inputs_;   ///< per-node delay-input fingerprint
  std::size_t num_links_ = 0;             ///< live entries across all rows
  double min_delay_ms_ = 0.0;             ///< conservative min block δ
  double max_delay_ms_ = 0.0;             ///< conservative max block δ
  double max_validation_ms_ = 0.0;        ///< conservative max Δv
  std::size_t removals_since_refresh_ = 0;  ///< staleness of the δ bounds
};

/// Memory-compact, fixed-point snapshot for large-n scale runs.
///
/// `CsrTopology` spends 8 bytes per offset and 8 + 8 bytes per entry on
/// double block/control delays — the right trade for the paper-scale round
/// loop, but ~2.5x more than a single-source capacity study at n >= 10^5
/// needs to touch. `CompactCsr` repacks an existing snapshot for that path:
///
///  - 32-bit row offsets and 32-bit node ids (the entry count must fit u32,
///    asserted at build);
///  - per-edge block delays and per-node validation delays quantized to u32
///    fixed-point keys on one shared power-of-two grid
///    (`util::FixedPointScale::fit` targeting 31 bits for the largest
///    value, so any path sum of n terms stays far below 2^63);
///  - the forwards flags packed into a bitmap.
///
/// The fixed-point keys make the delta-stepping bucket index pure integer
/// math (`key >> shift`, see util/fixedpoint.hpp) — no double compare, no
/// clamp. Quantization is floor-directed, so compact arrivals are
/// order-consistent lower approximations of the double engine's: each value
/// underestimates by less than `scale().step()` per hop. The compact world
/// has its own exact parity oracle instead of byte-parity with the double
/// engines: `simulate_broadcast_compact` is invariant in the worker count,
/// held by tests/sim_engine_diff_test.cpp, and its error against the double
/// oracle is bounded by tests/sim_fixedpoint_test.cpp.
///
/// Rows are packed back to back with no slack; a compact snapshot is a
/// one-shot compile for a fixed topology (no journal patching — scale runs
/// recompile, the round loop keeps `CsrTopology`).
class CompactCsr {
 public:
  /// Repacks `csr` (pure array transcription + quantization; no
  /// latency-model calls). Reports `memory_bytes()` through the
  /// `mem.compact_csr_bytes` obs gauge.
  static CompactCsr build(const CsrTopology& csr);

  std::size_t size() const { return validation_q_.size(); }
  std::size_t num_links() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  /// The shared quantization grid (block delays and validation delays).
  const util::FixedPointScale& scale() const { return scale_; }

  /// Exact quantized min/max block delay over all entries (min is
  /// `UINT32_MAX` for an edgeless graph, max 0).
  std::uint32_t min_delay_q() const { return min_delay_q_; }
  std::uint32_t max_delay_q() const { return max_delay_q_; }
  /// Exact quantized max per-node validation delay.
  std::uint32_t max_validation_q() const { return max_validation_q_; }

  bool forwards(NodeId v) const {
    return (forwards_[v >> 6] >> (v & 63)) & 1;
  }
  std::uint32_t validation_q(NodeId v) const { return validation_q_[v]; }

  /// Raw arrays for the engine hot loop: row `v` spans
  /// `offsets()[v] .. offsets()[v + 1]` of `peer_data()` / `delay_data()`.
  const std::uint32_t* offsets() const { return offsets_.data(); }
  const std::uint32_t* peer_data() const { return peer_.data(); }
  const std::uint32_t* delay_data() const { return delay_q_.data(); }

  /// Heap bytes behind this snapshot.
  std::size_t memory_bytes() const;

 private:
  CompactCsr() = default;

  util::FixedPointScale scale_;
  std::vector<std::uint32_t> offsets_;       ///< n+1 packed row boundaries
  std::vector<std::uint32_t> peer_;          ///< flattened adjacency
  std::vector<std::uint32_t> delay_q_;       ///< quantized block δ per entry
  std::vector<std::uint32_t> validation_q_;  ///< quantized Δv per node
  std::vector<std::uint64_t> forwards_;      ///< relay-flag bitmap
  std::uint32_t min_delay_q_ = 0;
  std::uint32_t max_delay_q_ = 0;
  std::uint32_t max_validation_q_ = 0;
};

/// Refresh-on-demand cache: hands out a `CsrTopology` snapshot current for
/// the topology's mutation counter and the network's profile/latency
/// versions. The round loop calls `get` once per round: within a round every
/// version is stable, so K blocks share one snapshot; across rounds the
/// selectors' rewiring is absorbed by replaying the Topology's mutation
/// journal onto the snapshot (`apply_deltas`) instead of recompiling —
/// an O(changed edges) patch instead of O(n + m) latency-model calls.
///
/// `get` falls back to a full rebuild when patching cannot reproduce a fresh
/// compile or would not pay for itself: the journal no longer reaches back to
/// the snapshot's version, the delta volume exceeds `patch budget` (mass
/// join/leave churn epochs), the latency model was swapped, or a profile
/// edit touched per-edge delay inputs (bandwidth tiers, coordinates). All of
/// these are detected automatically through the version counters — no manual
/// `invalidate()` call is needed for latency-model or bandwidth edits.
class CsrCache {
 public:
  /// Returns a snapshot current for `topology.version()` and the network's
  /// live profile/latency versions, patching or rebuilding as needed. The
  /// reference stays valid until the next `get`/`invalidate`.
  const CsrTopology& get(const Topology& topology, const Network& network);

  /// Drops the snapshot; the next `get` rebuilds unconditionally. The
  /// version counters make every known staleness source automatic, so this
  /// is only a belt-and-braces escape hatch for exotic out-of-band mutation.
  void invalidate() { csr_.reset(); }

  /// Disables (or re-enables) the journal patch path: with `enabled` false
  /// every version change forces a full recompile, exactly the pre-journal
  /// behavior. The differential tests and the incremental-CSR benchmark use
  /// this to A/B the two paths on identical mutation sequences.
  void set_patching(bool enabled) { patching_ = enabled; }

  /// Full compiles performed so far (introspection for tests/benches).
  std::size_t rebuilds() const { return rebuilds_; }
  /// Journal patch applications performed so far.
  std::size_t patches() const { return patches_; }

 private:
  std::optional<CsrTopology> csr_;
  bool patching_ = true;
  std::size_t rebuilds_ = 0;
  std::size_t patches_ = 0;
};

}  // namespace perigee::net
