/// \file
/// \brief Compiled flat-graph (compressed sparse row) view of a Topology.
///
/// `Topology` is the *mutable* graph the protocol rewires between rounds; its
/// per-node link lists are the right shape for connect/disconnect but the
/// wrong shape for the broadcast hot loop, which visits every directed link of
/// the graph once per simulated block and pays a virtual `LatencyModel` call
/// per edge. `CsrTopology` is the immutable compiled form: one contiguous
/// offsets/peers/delay triplet with every per-edge δ(u,v) pre-resolved (infra
/// override or `Network::edge_delay_ms`), so the engine's inner loop is a
/// single array read per edge. Per-node attributes the engines consult
/// (validation delay Δv, the forwards flag) are cached alongside.
///
/// A CSR snapshot is built once per round — the topology is static within a
/// round (paper §4.1) — and invalidated by rewiring: `Topology` bumps a
/// version counter on every mutation and `CsrCache` rebuilds lazily when the
/// counter moved. Results computed over the CSR are bit-identical to walking
/// the `Topology` directly; `tests/sim_csr_parity_test.cpp` holds the legacy
/// engine as the reference oracle.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"

namespace perigee::net {

/// Immutable compressed-sparse-row snapshot of a `Topology` over a `Network`.
///
/// Row `v` lists the full relay adjacency of `v` (outgoing + incoming +
/// infra) in exactly `Topology::adjacency(v)` order, so index `i` of row `v`
/// corresponds to `adjacency(v)[i]` — consumers that captured neighbor lists
/// from the Topology (e.g. `ObservationTable`) can index CSR rows directly.
class CsrTopology {
 public:
  /// Compiles a snapshot. O(E) `edge_delay_ms`/`link_ms` evaluations; every
  /// later traversal is pure array reads. The snapshot records
  /// `topology.version()`; the Network must stay unchanged for the snapshot's
  /// lifetime (latency-model swaps happen during scenario build, before any
  /// simulation).
  static CsrTopology build(const Topology& topology, const Network& network);

  /// Number of nodes.
  std::size_t size() const { return offsets_.size() - 1; }
  /// Number of directed link entries (2x undirected edge count).
  std::size_t num_links() const { return peer_.size(); }
  /// `Topology::version()` at build time; used by `CsrCache` invalidation.
  std::uint64_t built_from_version() const { return version_; }

  /// Neighbors of `v`, in `Topology::adjacency(v)` order.
  std::span<const NodeId> peers(NodeId v) const {
    return {peer_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  /// Block delay δ(v, peer) per neighbor of `v` (infra override or
  /// propagation + transmission), parallel to `peers(v)`.
  std::span<const double> delays(NodeId v) const {
    return {delay_ms_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  /// Control-message delay per neighbor of `v`: infra override or pure
  /// propagation latency (no handshake factor, no transmission term). Used by
  /// the INV/GETDATA gossip engine.
  std::span<const double> control_delays(NodeId v) const {
    return {control_ms_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Cached `NodeProfile::forwards` (withholding nodes relay nothing).
  bool forwards(NodeId v) const { return forwards_[v] != 0; }
  /// Cached per-node validation delay Δv in ms.
  double validation_ms(NodeId v) const { return validation_ms_[v]; }

  /// Smallest block δ over all link entries (+inf when there are none).
  /// The batched engine derives its bucket-queue width from this; a
  /// non-positive value (a zero-latency infra edge) routes it to the heap
  /// fallback instead.
  double min_delay_ms() const { return min_delay_ms_; }
  /// Largest block δ over all link entries (0 when there are none).
  double max_delay_ms() const { return max_delay_ms_; }
  /// Largest per-node validation delay Δv (0 for an empty graph). Together
  /// with `max_delay_ms` this bounds how far one Dijkstra relaxation can
  /// reach past the key being settled.
  double max_validation_ms() const { return max_validation_ms_; }

  /// Raw arrays for the engine hot loop: `offsets()[v] .. offsets()[v+1]`
  /// indexes `peer_data()` / `delay_data()`.
  const std::size_t* offsets() const { return offsets_.data(); }
  const NodeId* peer_data() const { return peer_.data(); }
  const double* delay_data() const { return delay_ms_.data(); }

  /// Block delay of the (adjacent) pair — O(deg(u)) row scan. Both delay
  /// kinds are symmetric, so the u-side row answers for either direction.
  double block_delay(NodeId u, NodeId v) const;
  /// Control-message delay of the (adjacent) pair — O(deg(u)) row scan.
  double control_delay(NodeId u, NodeId v) const;

  /// True when the cached per-node attributes (forwards, Δv) still match the
  /// network's live profiles. O(n); used by CsrCache to catch mid-run profile
  /// mutations (e.g. a node turning withholding) that the topology version
  /// counter cannot see.
  bool profiles_current(const Network& network) const;

 private:
  CsrTopology() = default;

  std::uint64_t version_ = 0;
  std::vector<std::size_t> offsets_;      ///< n+1 row boundaries into arrays
  std::vector<NodeId> peer_;              ///< flattened adjacency
  std::vector<double> delay_ms_;          ///< pre-resolved block δ per entry
  std::vector<double> control_ms_;        ///< pre-resolved control δ per entry
  std::vector<std::uint8_t> forwards_;    ///< per-node relay flag
  std::vector<double> validation_ms_;     ///< per-node Δv
  double min_delay_ms_ = 0.0;             ///< min block δ over all entries
  double max_delay_ms_ = 0.0;             ///< max block δ over all entries
  double max_validation_ms_ = 0.0;        ///< max Δv over all nodes
};

/// Lazy rebuild-on-rewire cache: hands out a `CsrTopology` snapshot that is
/// current for the topology's version, rebuilding only when a mutation
/// (connect/disconnect/add_infra_edge) bumped the counter since the last
/// `get`. The round loop calls `get` once per round: within a round the
/// version is stable, so K blocks share one compile; across rounds the
/// selectors' rewiring invalidates it automatically.
///
/// Per-node profile changes (forwards, validation_ms) are detected by an
/// O(n) recheck on every `get` — cheap next to the O(E log V) blocks the
/// snapshot serves — so scenarios that flip nodes to withholding mid-run
/// (examples/eclipse_attack.cpp) stay exact even when nothing rewired.
/// Per-*edge* changes under an unchanged topology (a latency-model swap, a
/// bandwidth edit) are NOT detected: call `invalidate()` after those.
class CsrCache {
 public:
  /// Returns a snapshot current for `topology.version()` and the network's
  /// live per-node profiles, rebuilding if needed. The reference stays valid
  /// until the next `get`/`invalidate`.
  const CsrTopology& get(const Topology& topology, const Network& network);

  /// Drops the snapshot; next `get` rebuilds unconditionally. Call when
  /// per-edge inputs changed under an unchanged topology (e.g. a
  /// latency-model swap), which neither the version counter nor the profile
  /// recheck can see.
  void invalidate() { csr_.reset(); }

 private:
  std::optional<CsrTopology> csr_;
};

}  // namespace perigee::net
