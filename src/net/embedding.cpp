#include "net/embedding.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace perigee::net {

void embed_uniform(std::vector<NodeProfile>& profiles, int dim,
                   util::Rng& rng) {
  PERIGEE_ASSERT(dim >= 1 && dim <= kMaxEmbedDim);
  for (auto& p : profiles) {
    p.coords.fill(0.0);
    for (int i = 0; i < dim; ++i) {
      p.coords[static_cast<std::size_t>(i)] = rng.uniform();
    }
  }
}

double embed_distance(const NodeProfile& a, const NodeProfile& b, int dim) {
  PERIGEE_ASSERT(dim >= 1 && dim <= kMaxEmbedDim);
  double s2 = 0;
  for (int i = 0; i < dim; ++i) {
    const double d = a.coords[static_cast<std::size_t>(i)] -
                     b.coords[static_cast<std::size_t>(i)];
    s2 += d * d;
  }
  return std::sqrt(s2);
}

double geometric_threshold(std::size_t n, int dim, double factor) {
  PERIGEE_ASSERT(n >= 2);
  PERIGEE_ASSERT(dim >= 1);
  return factor * std::pow(std::log(static_cast<double>(n)) /
                               static_cast<double>(n),
                           1.0 / static_cast<double>(dim));
}

double random_graph_probability(std::size_t n, double c) {
  PERIGEE_ASSERT(n >= 2);
  return std::min(1.0, c * std::log(static_cast<double>(n)) /
                           static_cast<double>(n));
}

}  // namespace perigee::net
