/// \file
/// \brief Metric-space embedding utilities (paper §3.1): nodes as uniform
/// points in the d-dimensional unit hypercube, Euclidean point-to-point
/// latency.
#pragma once

#include <vector>

#include "net/profile.hpp"
#include "util/rng.hpp"

namespace perigee::net {

/// Assigns uniform [0,1]^dim coordinates to each profile (tail dims zeroed).
void embed_uniform(std::vector<NodeProfile>& profiles, int dim,
                   util::Rng& rng);

/// Euclidean distance over the first `dim` coordinates.
double embed_distance(const NodeProfile& a, const NodeProfile& b, int dim);

/// The geometric-graph connection threshold of Theorem 2:
/// r = factor * (log n / n)^(1/d).
double geometric_threshold(std::size_t n, int dim, double factor = 1.0);

/// The Erdős–Rényi edge probability of Theorem 1: p = c * log n / n.
double random_graph_probability(std::size_t n, double c = 1.0);

}  // namespace perigee::net
