#include "net/geo.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace perigee::net {
namespace {

// One-way delays in milliseconds, loosely calibrated against public
// inter-region RTT tables (RTT/2): intra-continent 12-35 ms, neighboring
// continents 60-110 ms, antipodal pairs 140-170 ms. The strong
// intra-vs-inter contrast is the feature Figure 5 of the paper shows the
// algorithms exploiting.
//                         NA   SA   EU   AS   CN   AF   OC
constexpr double kBase[kNumRegions][kNumRegions] = {
    /* NA */ {20, 90, 60, 110, 120, 140, 100},
    /* SA */ {90, 25, 105, 160, 170, 160, 140},
    /* EU */ {60, 105, 12, 90, 130, 80, 150},
    /* AS */ {110, 160, 90, 30, 60, 130, 70},
    /* CN */ {120, 170, 130, 60, 15, 160, 95},
    /* AF */ {140, 160, 80, 130, 160, 35, 160},
    /* OC */ {100, 140, 150, 70, 95, 160, 20},
};

constexpr std::array<double, kNumRegions> kWeights = {
    0.36,  // North America
    0.04,  // South America
    0.33,  // Europe
    0.10,  // Asia (ex-China)
    0.09,  // China
    0.03,  // Africa
    0.05,  // Oceania
};

}  // namespace

std::string_view region_name(Region r) {
  switch (r) {
    case Region::NorthAmerica:
      return "NorthAmerica";
    case Region::SouthAmerica:
      return "SouthAmerica";
    case Region::Europe:
      return "Europe";
    case Region::Asia:
      return "Asia";
    case Region::China:
      return "China";
    case Region::Africa:
      return "Africa";
    case Region::Oceania:
      return "Oceania";
  }
  return "Unknown";
}

double region_base_latency_ms(Region a, Region b) {
  const auto i = static_cast<int>(a);
  const auto j = static_cast<int>(b);
  PERIGEE_ASSERT(i >= 0 && i < kNumRegions && j >= 0 && j < kNumRegions);
  return kBase[i][j];
}

const std::array<double, kNumRegions>& region_weights() { return kWeights; }

double min_region_latency_ms() {
  double m = kBase[0][0];
  for (auto& row : kBase)
    for (double v : row) m = std::min(m, v);
  return m;
}

double max_region_latency_ms() {
  double m = kBase[0][0];
  for (auto& row : kBase)
    for (double v : row) m = std::max(m, v);
  return m;
}

}  // namespace perigee::net
