/// \file
/// \brief Geographic substrate: regions, inter-region delays, region sampling.
///
/// The paper places 1000 bitnodes across seven regions and draws pairwise
/// propagation delays from the iPlane measurement dataset. Neither dataset is
/// shipped here, so this module provides a synthetic equivalent (see
/// DESIGN.md §4): a symmetric 7x7 one-way latency matrix with realistic
/// magnitudes plus a bitnodes-like region mix. The structural property the
/// algorithms exploit — intra-continent links are several times cheaper than
/// inter-continent links (Figure 5's bimodality) — is preserved.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace perigee::net {

/// The seven coarse geographic regions of the synthetic substrate.
enum class Region : std::uint8_t {
  NorthAmerica = 0,
  SouthAmerica,
  Europe,
  Asia,
  China,
  Africa,
  Oceania,
};

/// Number of Region values.
inline constexpr int kNumRegions = 7;

/// Human-readable region name (for tables and histograms).
std::string_view region_name(Region r);

/// Mean one-way propagation delay in milliseconds between hosts in regions
/// a and b (symmetric). Diagonal entries are intra-region delays.
double region_base_latency_ms(Region a, Region b);

/// Bitnodes-like population mix (fractions summing to 1): NA/EU heavy,
/// long tail elsewhere.
const std::array<double, kNumRegions>& region_weights();

/// Smallest entry of the base matrix; handy for histogram axes and tests.
double min_region_latency_ms();
/// Largest entry of the base matrix; handy for histogram axes and tests.
double max_region_latency_ms();

}  // namespace perigee::net
