#include "net/latency.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace perigee::net {

GeoLatencyModel::GeoLatencyModel(const std::vector<NodeProfile>* profiles,
                                 std::uint64_t seed, double jitter_frac)
    : profiles_(profiles), seed_(seed), jitter_frac_(jitter_frac) {
  PERIGEE_ASSERT(profiles_ != nullptr);
  PERIGEE_ASSERT(jitter_frac_ >= 0.0 && jitter_frac_ < 1.0);
}

double GeoLatencyModel::link_ms(NodeId u, NodeId v) const {
  PERIGEE_ASSERT(u < profiles_->size() && v < profiles_->size());
  const NodeProfile& pu = (*profiles_)[u];
  const NodeProfile& pv = (*profiles_)[v];
  const double base = region_base_latency_ms(pu.region, pv.region);
  const NodeId lo = std::min(u, v);
  const NodeId hi = std::max(u, v);
  const std::uint64_t h = util::hash_combine(
      util::hash_combine(seed_, lo), static_cast<std::uint64_t>(hi) + 1);
  // Map the hash to [0,1), then to the jitter multiplier.
  const double x =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // 53-bit mantissa fill
  const double jitter = 1.0 + jitter_frac_ * (2.0 * x - 1.0);
  return base * jitter + pu.access_ms + pv.access_ms;
}

std::unique_ptr<LatencyModel> GeoLatencyModel::clone(
    const std::vector<NodeProfile>* profiles) const {
  return std::make_unique<GeoLatencyModel>(profiles, seed_, jitter_frac_);
}

EuclideanLatencyModel::EuclideanLatencyModel(
    const std::vector<NodeProfile>* profiles, int dim, double scale_ms)
    : profiles_(profiles), dim_(dim), scale_ms_(scale_ms) {
  PERIGEE_ASSERT(profiles_ != nullptr);
  PERIGEE_ASSERT(dim_ >= 1 && dim_ <= kMaxEmbedDim);
  PERIGEE_ASSERT(scale_ms_ > 0);
}

double EuclideanLatencyModel::link_ms(NodeId u, NodeId v) const {
  PERIGEE_ASSERT(u < profiles_->size() && v < profiles_->size());
  const auto& a = (*profiles_)[u].coords;
  const auto& b = (*profiles_)[v].coords;
  double s2 = 0;
  for (int i = 0; i < dim_; ++i) {
    const double d = a[static_cast<std::size_t>(i)] -
                     b[static_cast<std::size_t>(i)];
    s2 += d * d;
  }
  return scale_ms_ * std::sqrt(s2);
}

std::unique_ptr<LatencyModel> EuclideanLatencyModel::clone(
    const std::vector<NodeProfile>* profiles) const {
  return std::make_unique<EuclideanLatencyModel>(profiles, dim_, scale_ms_);
}

PairClassScaledModel::PairClassScaledModel(std::unique_ptr<LatencyModel> base,
                                           std::function<bool(NodeId)> in_class,
                                           double scale)
    : base_(std::move(base)), in_class_(std::move(in_class)), scale_(scale) {
  PERIGEE_ASSERT(base_ != nullptr);
  PERIGEE_ASSERT(scale_ > 0);
}

double PairClassScaledModel::link_ms(NodeId u, NodeId v) const {
  const double d = base_->link_ms(u, v);
  return (in_class_(u) && in_class_(v)) ? d * scale_ : d;
}

std::unique_ptr<LatencyModel> PairClassScaledModel::clone(
    const std::vector<NodeProfile>* profiles) const {
  return std::make_unique<PairClassScaledModel>(base_->clone(profiles),
                                                in_class_, scale_);
}

}  // namespace perigee::net
