/// \file
/// \brief Link propagation-latency models (paper §2.1: constant symmetric
/// δ(u,v)).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/profile.hpp"
#include "net/types.hpp"

namespace perigee::net {

/// Abstract symmetric link latency in milliseconds. Implementations must be
/// deterministic: repeated calls with the same (u, v) return the same value,
/// and link_ms(u, v) == link_ms(v, u).
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// One-way propagation latency between u and v in ms.
  virtual double link_ms(NodeId u, NodeId v) const = 0;
  /// Deep copy re-pointed at `profiles` (the cloning Network's own profile
  /// storage — models hold non-owning profile pointers, so a cloned network
  /// must not read the original's mutable profiles). The clone returns
  /// bit-identical link_ms values as long as the two profile vectors are
  /// equal.
  virtual std::unique_ptr<LatencyModel> clone(
      const std::vector<NodeProfile>* profiles) const = 0;
};

/// Region-matrix latency with deterministic per-pair jitter and per-node
/// access delay:
///   δ(u,v) = base(region_u, region_v) * jitter(u,v) + access_u + access_v
/// jitter(u,v) is a hash of (seed, min(u,v), max(u,v)) mapped into
/// [1-jitter_frac, 1+jitter_frac], so each unordered pair gets a stable
/// independent multiplier — the role the iPlane per-path measurements play in
/// the paper.
class GeoLatencyModel final : public LatencyModel {
 public:
  GeoLatencyModel(const std::vector<NodeProfile>* profiles, std::uint64_t seed,
                  double jitter_frac = 0.2);

  double link_ms(NodeId u, NodeId v) const override;
  std::unique_ptr<LatencyModel> clone(
      const std::vector<NodeProfile>* profiles) const override;

 private:
  const std::vector<NodeProfile>* profiles_;  // non-owning; outlives model
  std::uint64_t seed_;
  double jitter_frac_;
};

/// Euclidean latency over the metric embedding (§3.1): δ(u,v) =
/// scale_ms * ||X_u - X_v||_2 over the first `dim` coordinates.
class EuclideanLatencyModel final : public LatencyModel {
 public:
  EuclideanLatencyModel(const std::vector<NodeProfile>* profiles, int dim,
                        double scale_ms = 1.0);

  double link_ms(NodeId u, NodeId v) const override;
  std::unique_ptr<LatencyModel> clone(
      const std::vector<NodeProfile>* profiles) const override;
  /// The embedding dimension distances are computed over.
  int dim() const { return dim_; }

 private:
  const std::vector<NodeProfile>* profiles_;
  int dim_;
  double scale_ms_;
};

/// Decorator scaling the latency of links whose endpoints both satisfy a
/// predicate — e.g. Figure 4(b)'s "links between high-power miners are much
/// faster than default".
class PairClassScaledModel final : public LatencyModel {
 public:
  PairClassScaledModel(std::unique_ptr<LatencyModel> base,
                       std::function<bool(NodeId)> in_class, double scale);

  double link_ms(NodeId u, NodeId v) const override;
  std::unique_ptr<LatencyModel> clone(
      const std::vector<NodeProfile>* profiles) const override;

 private:
  std::unique_ptr<LatencyModel> base_;
  std::function<bool(NodeId)> in_class_;
  double scale_;
};

}  // namespace perigee::net
