#include "net/network.hpp"

#include <algorithm>

#include "net/embedding.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace perigee::net {

Network::Network(std::shared_ptr<std::vector<NodeProfile>> profiles,
                 std::unique_ptr<LatencyModel> latency, NetworkOptions options)
    : profiles_(std::move(profiles)),
      latency_(std::move(latency)),
      options_(options) {}

Network Network::build(const NetworkOptions& options) {
  PERIGEE_ASSERT(options.n >= 2);
  util::Rng rng(options.seed);
  util::Rng region_rng = rng.split(1);
  util::Rng access_rng = rng.split(2);
  util::Rng validation_rng = rng.split(3);
  util::Rng bandwidth_rng = rng.split(4);
  util::Rng embed_rng = rng.split(5);

  auto profiles = std::make_shared<std::vector<NodeProfile>>(options.n);

  // Region assignment from the bitnodes-like mix.
  const auto& weights = region_weights();
  std::vector<double> w(weights.begin(), weights.end());
  for (auto& p : *profiles) {
    p.region = static_cast<Region>(region_rng.weighted_index(w));
    p.access_ms =
        access_rng.uniform(options.access_min_ms, options.access_max_ms);
    const double lo = options.validation_mean_ms *
                      (1.0 - options.validation_spread);
    const double hi = options.validation_mean_ms *
                      (1.0 + options.validation_spread);
    p.validation_ms = validation_rng.uniform(lo, hi) * options.validation_scale;
    p.bandwidth_mbps =
        options.heterogeneous_bandwidth
            ? bandwidth_rng.log_uniform(options.bandwidth_min_mbps,
                                        options.bandwidth_max_mbps)
            : options.bandwidth_default_mbps;
    p.hash_power = 1.0 / static_cast<double>(options.n);
  }

  if (options.latency == NetworkOptions::LatencyKind::Euclidean) {
    embed_uniform(*profiles, options.embed_dim, embed_rng);
    // The embedding model owns the full latency; access delay would double
    // count, so zero it.
    for (auto& p : *profiles) p.access_ms = 0.0;
  }

  std::unique_ptr<LatencyModel> model;
  if (options.latency == NetworkOptions::LatencyKind::Geo) {
    model = std::make_unique<GeoLatencyModel>(profiles.get(), options.seed,
                                              options.jitter_frac);
  } else {
    model = std::make_unique<EuclideanLatencyModel>(
        profiles.get(), options.embed_dim, options.embed_scale_ms);
  }

  return Network(std::move(profiles), std::move(model), options);
}

Network Network::clone() const {
  // Fresh profile storage: the clone's mutable_profiles() must not alias the
  // original's (a churn round in one experiment would corrupt a sibling's
  // substrate). The latency model is re-pointed at the copy.
  auto profiles = std::make_shared<std::vector<NodeProfile>>(*profiles_);
  Network copy(profiles, latency_->clone(profiles.get()), options_);
  // Version counters carry over so snapshot caches treat the clone exactly
  // like the network it was copied from.
  copy.profile_version_ = profile_version_;
  copy.latency_version_ = latency_version_;
  return copy;
}

double Network::edge_delay_ms(NodeId u, NodeId v) const {
  return edge_delay_from_link_ms(latency_->link_ms(u, v), u, v);
}

double Network::edge_delay_from_link_ms(double link_ms, NodeId u,
                                        NodeId v) const {
  double delay = options_.handshake_factor * link_ms;
  if (options_.block_size_kb > 0.0) {
    const double bw = std::min((*profiles_)[u].bandwidth_mbps,
                               (*profiles_)[v].bandwidth_mbps);
    PERIGEE_ASSERT(bw > 0);
    // kilobits / (megabits/second) = milliseconds.
    delay += options_.block_size_kb * 8.0 / bw;
  }
  return delay;
}

void Network::set_latency_model(std::unique_ptr<LatencyModel> model) {
  PERIGEE_ASSERT(model != nullptr);
  latency_ = std::move(model);
  ++latency_version_;
}

std::unique_ptr<LatencyModel> Network::make_geo_model() const {
  return std::make_unique<GeoLatencyModel>(profiles_.get(), options_.seed,
                                           options_.jitter_frac);
}

}  // namespace perigee::net
