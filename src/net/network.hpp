/// \file
/// \brief Network: the immutable-per-experiment substrate of nodes + latency
/// model.
///
/// A Network owns the node profiles (region, Δv, bandwidth, hash power) and a
/// LatencyModel, and exposes the per-edge block delay
///   δ(u,v) = link_ms(u,v) + transmission_ms(u,v)
/// of the paper's §2.1 model. Topologies are separate objects
/// (net/topology.hpp) so many topologies can be evaluated over one Network.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/latency.hpp"
#include "net/profile.hpp"
#include "net/types.hpp"

namespace perigee::net {

/// Everything Network::build needs to sample a network deterministically.
struct NetworkOptions {
  /// Which latency substrate backs link_ms.
  enum class LatencyKind { Geo, Euclidean };

  std::size_t n = 1000;        ///< number of nodes
  std::uint64_t seed = 1;      ///< master sampling seed

  LatencyKind latency = LatencyKind::Geo;  ///< latency substrate selector

  // Geo model parameters.
  /// Per-pair multiplicative jitter: real measured paths (iPlane) scatter
  /// widely around the regional mean, and that scatter is the structure a
  /// learning protocol exploits beyond coarse geography.
  double jitter_frac = 0.4;
  double access_min_ms = 1.0;  ///< per-node access delay lower bound
  double access_max_ms = 6.0;  ///< per-node access delay upper bound

  // Euclidean model parameters (used when latency == Euclidean).
  int embed_dim = 2;               ///< embedding dimension d
  double embed_scale_ms = 100.0;   ///< ms per unit of embedded distance

  /// Block validation Δv ~ Uniform[mean*(1-spread), mean*(1+spread)] * scale.
  /// The paper's default is mean 50 ms; `validation_scale` implements the
  /// 0.1x/0.5x/5x/10x sweep of Figure 4(a).
  double validation_mean_ms = kDefaultValidationMs;
  double validation_spread = 0.2;   ///< relative half-width of the Δv draw
  double validation_scale = 1.0;    ///< Figure 4(a) sweep multiplier

  /// Per-hop protocol overhead. The paper's δ(u,v) "includes ... and
  /// protocol-specific message exchange overheads (e.g., inv, getdata
  /// exchange)" (§2.1): relaying a block over a TCP connection costs the
  /// INV -> GETDATA -> BLOCK round trips, i.e. about three one-way link
  /// traversals. edge_delay_ms multiplies the propagation latency by this
  /// factor; link_ms stays the pure one-way latency (used by the theory
  /// experiments and the explicit-handshake gossip engine).
  double handshake_factor = 3.0;

  /// Transmission model. The paper's default assumes blocks are small
  /// relative to bandwidth (block_size_kb = 0 disables the term). The
  /// bandwidth heterogeneity ablation draws per-node bandwidth log-uniformly
  /// from [bandwidth_min_mbps, bandwidth_max_mbps] (Croman et al.:
  /// 3-186 Mbit/s).
  double block_size_kb = 0.0;
  bool heterogeneous_bandwidth = false;  ///< draw per-node bandwidth if true
  double bandwidth_min_mbps = 3.0;       ///< log-uniform draw lower bound
  double bandwidth_max_mbps = 186.0;     ///< log-uniform draw upper bound
  double bandwidth_default_mbps = 33.0;  ///< homogeneous bandwidth value
};

/// The sampled substrate: profiles + latency model + options echo.
class Network {
 public:
  /// Builds a network of options.n nodes: regions sampled from the bitnodes
  /// mix (or coordinates embedded uniformly), validation/bandwidth drawn per
  /// node, hash power initialized uniform. Deterministic in options.seed.
  static Network build(const NetworkOptions& options);

  /// Deep copy: fresh profile storage plus the latency model cloned and
  /// re-pointed at it. The clone returns bit-identical link/edge delays and
  /// carries the version counters over, so it is indistinguishable from the
  /// original to snapshot caches — the sweep runner clones one scenario
  /// build across cells that share every topology axis (runner/sweep.hpp).
  Network clone() const;

  /// Number of nodes.
  std::size_t size() const { return profiles_->size(); }
  /// Profile of node v.
  const NodeProfile& profile(NodeId v) const { return (*profiles_)[v]; }
  /// All profiles, indexed by NodeId.
  const std::vector<NodeProfile>& profiles() const { return *profiles_; }
  /// Mutable access for hash-power assignment and scenario setup. Every call
  /// bumps `profile_version()`, so snapshot caches (net::CsrCache) notice
  /// profile edits automatically; mutate through a fresh call per logical
  /// update rather than a long-held reference.
  std::vector<NodeProfile>& mutable_profiles() {
    ++profile_version_;
    return *profiles_;
  }

  /// Monotone counter bumped by every `mutable_profiles()` access.
  /// `CsrCache` compares it to decide whether a compiled snapshot's cached
  /// per-node attributes (forwards, Δv) and per-edge delays (which fold in
  /// access latency and, with a transmission term, bandwidth) may be stale.
  std::uint64_t profile_version() const { return profile_version_; }

  /// Monotone counter bumped by every `set_latency_model()` swap. A snapshot
  /// compiled under an older latency model froze the old per-edge delays and
  /// must be rebuilt; `CsrCache` does so automatically.
  std::uint64_t latency_version() const { return latency_version_; }

  /// One-way propagation latency of the (u, v) link in ms.
  double link_ms(NodeId u, NodeId v) const { return latency_->link_ms(u, v); }

  /// Full per-edge block delay: propagation (times the handshake factor) +
  /// transmission (0 when block size is 0 or bandwidth infinite). Symmetric.
  double edge_delay_ms(NodeId u, NodeId v) const;

  /// edge_delay_ms with the propagation latency already resolved: callers
  /// that need both link_ms and the block delay of the same pair (the CSR
  /// compile) pay the latency model once. Bit-identical to edge_delay_ms
  /// when `link_ms` is this network's link_ms(u, v).
  double edge_delay_from_link_ms(double link_ms, NodeId u, NodeId v) const;

  /// Block validation delay Δv of node v in ms.
  double validation_ms(NodeId v) const { return (*profiles_)[v].validation_ms; }

  /// The options this network was built from.
  const NetworkOptions& options() const { return options_; }
  /// The live latency model.
  const LatencyModel& latency_model() const { return *latency_; }

  /// Replaces the latency model, e.g. wrapping it in PairClassScaledModel for
  /// the Figure 4(b) mining-pool scenario. The replacement must be built over
  /// this network's profiles. Bumps `latency_version()`, so `CsrCache`
  /// rebuilds snapshots compiled before the swap automatically (they froze
  /// the old per-edge delays).
  void set_latency_model(std::unique_ptr<LatencyModel> model);

  /// Convenience for decorators: a GeoLatencyModel over this network's
  /// profiles with this network's seed/jitter.
  std::unique_ptr<LatencyModel> make_geo_model() const;

 private:
  Network(std::shared_ptr<std::vector<NodeProfile>> profiles,
          std::unique_ptr<LatencyModel> latency, NetworkOptions options);

  // shared_ptr keeps the profile storage at a stable address so latency
  // models can hold a raw pointer across Network moves.
  std::shared_ptr<std::vector<NodeProfile>> profiles_;
  std::unique_ptr<LatencyModel> latency_;
  NetworkOptions options_;
  std::uint64_t profile_version_ = 0;
  std::uint64_t latency_version_ = 0;
};

}  // namespace perigee::net
