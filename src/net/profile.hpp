/// \file
/// \brief Per-node attributes (paper §2.1): region, validation delay Δv,
/// access bandwidth, hash power fv, and optional membership in a fast relay
/// overlay.
#pragma once

#include <array>

#include "net/geo.hpp"
#include "net/types.hpp"

namespace perigee::net {

/// Maximum embedding dimension supported by NodeProfile::coords. Experiments
/// use d in {2, .., 5}; the unused tail is zero so Euclidean distances remain
/// correct for any d <= kMaxEmbedDim.
inline constexpr int kMaxEmbedDim = 5;

/// Static per-node attributes drawn once at network construction.
struct NodeProfile {
  /// Geographic region (drives the base latency matrix).
  Region region = Region::NorthAmerica;

  /// Position in the metric-embedding model ([0,1]^d, §3.1). Only used by
  /// EuclideanLatencyModel-backed networks.
  std::array<double, kMaxEmbedDim> coords{};

  /// Per-node access delay added to every link touching this node (last-mile
  /// propagation component), in ms.
  double access_ms = 0.0;

  /// Time to cryptographically validate a block before relaying (Δv), ms.
  double validation_ms = kDefaultValidationMs;

  /// Access bandwidth in Mbit/s; with the default "small block" setting the
  /// transmission term is zero and this is unused.
  double bandwidth_mbps = 33.0;

  /// Fraction of total network hash power held by this node (sums to 1).
  double hash_power = 0.0;

  /// True for members of a fast block-distribution overlay (§5.4).
  bool relay = false;

  /// False for a misbehaving node that accepts blocks but never relays them
  /// (the protocol-deviation scenario of §1: such a node should be penalized
  /// by its neighbors' scoring and disconnected).
  bool forwards = true;
};

}  // namespace perigee::net
