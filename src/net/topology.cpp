#include "net/topology.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace perigee::net {

Topology::Topology(std::size_t n, TopologyLimits limits)
    : limits_(limits),
      out_(n),
      in_counts_(n, 0),
      adj_(n),
      infra_(n) {
  PERIGEE_ASSERT(limits_.out_cap > 0);
  PERIGEE_ASSERT(limits_.in_cap >= 0);
}

bool Topology::connect(NodeId u, NodeId v) {
  PERIGEE_ASSERT(u < size() && v < size());
  if (u == v) return false;
  if (out_full(u)) return false;
  if (in_full(v)) return false;  // v declines: incoming slots exhausted
  if (are_adjacent(u, v)) return false;
  out_[u].push_back(v);
  ++in_counts_[v];
  adj_add(u, v, -1.0);
  journal_push(EdgeDelta{EdgeDelta::Kind::Connect, u, v, 0, 0, -1.0});
  return true;
}

void Topology::disconnect(NodeId u, NodeId v) {
  PERIGEE_ASSERT(u < size() && v < size());
  auto& list = out_[u];
  auto it = std::find(list.begin(), list.end(), v);
  PERIGEE_ASSERT_MSG(it != list.end(), "disconnect of non-existent edge");
  list.erase(it);
  PERIGEE_ASSERT(in_counts_[v] > 0);
  --in_counts_[v];
  const auto [u_slot, v_slot] = adj_remove(u, v);
  journal_push(
      EdgeDelta{EdgeDelta::Kind::Disconnect, u, v, u_slot, v_slot, -1.0});
}

void Topology::disconnect_all(NodeId v) {
  PERIGEE_ASSERT(v < size());
  // Outgoing edges of v.
  while (!out_[v].empty()) disconnect(v, out_[v].back());
  // Incoming edges: collect dialers first (disconnect mutates adjacency).
  std::vector<NodeId> dialers;
  for (const auto& link : adj_[v]) {
    if (!link.is_infra() && has_out(link.peer, v)) dialers.push_back(link.peer);
  }
  for (NodeId u : dialers) disconnect(u, v);
}

bool Topology::add_infra_edge(NodeId u, NodeId v, double latency_ms) {
  PERIGEE_ASSERT(u < size() && v < size());
  PERIGEE_ASSERT(latency_ms >= 0.0);
  if (u == v || are_adjacent(u, v)) return false;
  infra_[u].emplace_back(v, latency_ms);
  infra_[v].emplace_back(u, latency_ms);
  adj_add(u, v, latency_ms);
  journal_push(EdgeDelta{EdgeDelta::Kind::InfraAdd, u, v, 0, 0, latency_ms});
  return true;
}

std::optional<std::span<const Topology::EdgeDelta>> Topology::deltas_since(
    std::uint64_t since_version) const {
  if (since_version < journal_base_ || since_version > version_) {
    return std::nullopt;  // truncated away (or from the future): recompile
  }
  const auto skip = static_cast<std::size_t>(since_version - journal_base_);
  return std::span<const EdgeDelta>(journal_.data() + skip,
                                    journal_.size() - skip);
}

bool Topology::apply_delta(const EdgeDelta& delta) {
  switch (delta.kind) {
    case EdgeDelta::Kind::Connect:
      return connect(delta.u, delta.v);
    case EdgeDelta::Kind::Disconnect:
      if (!has_out(delta.u, delta.v)) return false;
      disconnect(delta.u, delta.v);
      return true;
    case EdgeDelta::Kind::InfraAdd:
      return add_infra_edge(delta.u, delta.v, delta.infra_ms);
  }
  return false;
}

void Topology::journal_push(const EdgeDelta& delta) {
  if (journal_.size() >= journal_capacity()) {
    // Drop the oldest half in one amortized move; consumers whose snapshot
    // predates the surviving window fall back to a full recompile.
    const std::size_t half = journal_.size() / 2;
    journal_.erase(journal_.begin(),
                   journal_.begin() + static_cast<std::ptrdiff_t>(half));
    journal_base_ += half;
  }
  journal_.push_back(delta);
  ++version_;
}

bool Topology::has_out(NodeId u, NodeId v) const {
  const auto& list = out_[u];
  return std::find(list.begin(), list.end(), v) != list.end();
}

bool Topology::are_adjacent(NodeId u, NodeId v) const {
  // adj_ is the deduplicated union, so one lookup suffices.
  const auto& list = adj_[u];
  return std::any_of(list.begin(), list.end(),
                     [v](const Link& l) { return l.peer == v; });
}

std::optional<double> Topology::infra_latency(NodeId u, NodeId v) const {
  for (const auto& [peer, ms] : infra_[u]) {
    if (peer == v) return ms;
  }
  return std::nullopt;
}

std::vector<std::pair<NodeId, NodeId>> Topology::p2p_edges() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < size(); ++u) {
    for (NodeId v : out_[u]) edges.emplace_back(u, v);
  }
  return edges;
}

std::vector<std::pair<NodeId, NodeId>> Topology::infra_edges() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < size(); ++u) {
    for (const auto& [v, ms] : infra_[u]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

std::size_t Topology::num_p2p_edges() const {
  std::size_t n = 0;
  for (const auto& list : out_) n += list.size();
  return n;
}

void Topology::adj_add(NodeId a, NodeId b, double infra_ms) {
  adj_[a].push_back(Link{b, infra_ms});
  adj_[b].push_back(Link{a, infra_ms});
}

std::pair<std::uint32_t, std::uint32_t> Topology::adj_remove(NodeId a,
                                                             NodeId b) {
  auto erase_one = [](std::vector<Link>& list, NodeId peer) {
    auto it = std::find_if(list.begin(), list.end(),
                           [peer](const Link& l) { return l.peer == peer; });
    PERIGEE_ASSERT(it != list.end());
    const auto idx = static_cast<std::uint32_t>(it - list.begin());
    list.erase(it);
    return idx;
  };
  const std::uint32_t a_idx = erase_one(adj_[a], b);
  const std::uint32_t b_idx = erase_one(adj_[b], a);
  return {a_idx, b_idx};
}

void Topology::validate() const {
  std::vector<int> in_check(size(), 0);
  for (NodeId u = 0; u < size(); ++u) {
    PERIGEE_ASSERT(out_count(u) <= limits_.out_cap);
    for (NodeId v : out_[u]) {
      PERIGEE_ASSERT(v < size());
      PERIGEE_ASSERT(v != u);
      ++in_check[v];
      // No reverse p2p edge and no duplicate.
      PERIGEE_ASSERT(!has_out(v, u));
      PERIGEE_ASSERT(std::count(out_[u].begin(), out_[u].end(), v) == 1);
      PERIGEE_ASSERT(!infra_latency(u, v).has_value());
    }
  }
  for (NodeId v = 0; v < size(); ++v) {
    PERIGEE_ASSERT(in_check[v] == in_counts_[v]);
    PERIGEE_ASSERT(in_counts_[v] <= limits_.in_cap);
    // Adjacency must be exactly out + in + infra, duplicate-free.
    std::vector<NodeId> expect;
    for (NodeId w : out_[v]) expect.push_back(w);
    for (NodeId u = 0; u < size(); ++u) {
      if (has_out(u, v)) expect.push_back(u);
    }
    for (const auto& [w, ms] : infra_[v]) expect.push_back(w);
    std::vector<NodeId> got;
    for (const auto& l : adj_[v]) got.push_back(l.peer);
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    PERIGEE_ASSERT(expect == got);
    PERIGEE_ASSERT(std::adjacent_find(got.begin(), got.end()) == got.end());
  }
}

}  // namespace perigee::net
