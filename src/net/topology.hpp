// Topology: the evolving p2p connection graph (paper §2.1).
//
// Each node maintains up to `out_cap` outgoing connections (Bitcoin: 8) and
// accepts up to `in_cap` incoming connections (paper: 20); a node whose
// incoming slots are full declines further requests and the dialer must pick
// another peer. Communication over an established connection is
// bidirectional, so the relay adjacency of a node is the union of its
// outgoing, incoming, and infrastructure (relay-overlay) links.
//
// Infrastructure links model §5.4's fast block-distribution network: they are
// installed by the scenario (not by the protocol), do not count against
// either degree cap, and carry their own latency override.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "net/types.hpp"

namespace perigee::net {

struct TopologyLimits {
  int out_cap = kDefaultOutDegree;
  int in_cap = kDefaultInCap;
};

class Topology {
 public:
  // One adjacency entry: a neighbor plus, for infra links, the latency
  // override in ms (negative == ordinary p2p link, use the Network's δ).
  struct Link {
    NodeId peer;
    double infra_ms;  // < 0 for p2p links
    bool is_infra() const { return infra_ms >= 0.0; }
  };

  explicit Topology(std::size_t n, TopologyLimits limits = {});

  std::size_t size() const { return out_.size(); }
  const TopologyLimits& limits() const { return limits_; }

  // Establishes the outgoing connection u -> v. Returns false (and changes
  // nothing) if u == v, the pair is already adjacent in any direction or
  // layer, u's outgoing slots are full, or v declines (incoming cap).
  bool connect(NodeId u, NodeId v);

  // Tears down the outgoing connection u -> v (must exist).
  void disconnect(NodeId u, NodeId v);

  // Tears down every p2p connection touching v, in both directions (infra
  // links are left in place). Models a node leaving the network (churn).
  void disconnect_all(NodeId v);

  // Installs an undirected infrastructure link with explicit latency.
  // Returns false if the pair is already adjacent.
  bool add_infra_edge(NodeId u, NodeId v, double latency_ms);

  bool has_out(NodeId u, NodeId v) const;
  bool are_adjacent(NodeId u, NodeId v) const;
  std::optional<double> infra_latency(NodeId u, NodeId v) const;

  int out_count(NodeId v) const { return static_cast<int>(out_[v].size()); }
  int in_count(NodeId v) const { return in_counts_[v]; }
  bool in_full(NodeId v) const { return in_counts_[v] >= limits_.in_cap; }
  bool out_full(NodeId v) const { return out_count(v) >= limits_.out_cap; }

  // Outgoing neighbor list of v (insertion order preserved).
  const std::vector<NodeId>& out(NodeId v) const { return out_[v]; }

  // Full relay adjacency of v: outgoing + incoming + infra, duplicate-free.
  const std::vector<Link>& adjacency(NodeId v) const { return adj_[v]; }

  // All unique undirected p2p edges (u < v not guaranteed; each edge once,
  // oriented from the dialer). Infra edges excluded.
  std::vector<std::pair<NodeId, NodeId>> p2p_edges() const;
  std::vector<std::pair<NodeId, NodeId>> infra_edges() const;

  std::size_t num_p2p_edges() const;

  // Aborts if any internal invariant is violated (degree caps, adjacency
  // symmetry, duplicate-freeness). Tests call this after mutation storms.
  void validate() const;

 private:
  void adj_add(NodeId a, NodeId b, double infra_ms);
  void adj_remove(NodeId a, NodeId b);

  TopologyLimits limits_;
  std::vector<std::vector<NodeId>> out_;   // directed p2p: dialer -> acceptor
  std::vector<int> in_counts_;
  std::vector<std::vector<Link>> adj_;     // union adjacency with metadata
  std::vector<std::vector<std::pair<NodeId, double>>> infra_;
};

}  // namespace perigee::net
