/// \file
/// \brief Topology: the evolving p2p connection graph (paper §2.1).
///
/// Each node maintains up to `out_cap` outgoing connections (Bitcoin: 8) and
/// accepts up to `in_cap` incoming connections (paper: 20); a node whose
/// incoming slots are full declines further requests and the dialer must pick
/// another peer. Communication over an established connection is
/// bidirectional, so the relay adjacency of a node is the union of its
/// outgoing, incoming, and infrastructure (relay-overlay) links.
///
/// Infrastructure links model §5.4's fast block-distribution network: they are
/// installed by the scenario (not by the protocol), do not count against
/// either degree cap, and carry their own latency override.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/types.hpp"

namespace perigee::net {

/// Per-node connection caps (paper §2.1 / §5.1 defaults).
struct TopologyLimits {
  int out_cap = kDefaultOutDegree;  ///< dout: outgoing connection slots
  int in_cap = kDefaultInCap;       ///< din: incoming connection cap
};

/// Mutable connection graph with degree caps and an infra overlay.
///
/// Every mutation bumps `version()` and appends a typed `EdgeDelta` to the
/// mutation journal. `CsrCache` (net/csr.hpp) keys compiled flat-graph
/// snapshots on the version counter and consumes the journal to patch a
/// stale snapshot in place instead of recompiling the whole graph — a
/// round's handful of edge replacements becomes a handful of slot writes.
class Topology {
 public:
  /// One adjacency entry: a neighbor plus, for infra links, the latency
  /// override in ms (negative == ordinary p2p link, use the Network's δ).
  struct Link {
    NodeId peer;      ///< the adjacent node
    double infra_ms;  ///< infra latency override; < 0 for p2p links
    /// True when this is an infrastructure (relay-overlay) link.
    bool is_infra() const { return infra_ms >= 0.0; }
  };

  /// One journal record: the mutation that took the graph from version k to
  /// k + 1. Node join/leave and out-edge replacement are compositions of
  /// these primitives (a churn departure journals one Disconnect per torn
  /// edge, a rejoin one Connect per redial), so replaying a journal span onto
  /// a snapshot of version k reproduces any later version exactly.
  struct EdgeDelta {
    enum class Kind : std::uint8_t {
      Connect,     ///< directed p2p edge u -> v established
      Disconnect,  ///< directed p2p edge u -> v torn down
      InfraAdd,    ///< undirected infra link (u, v) with `infra_ms` installed
    };
    Kind kind;
    NodeId u;
    NodeId v;
    /// Disconnect only: the adjacency-list index the (u, v) / (v, u) entry
    /// occupied in `adjacency(u)` / `adjacency(v)` at erase time. Compiled
    /// rows mirror adjacency order, so a journal consumer can erase by slot
    /// instead of scanning the row for the peer. ~0 for other kinds.
    std::uint32_t u_slot;
    std::uint32_t v_slot;
    double infra_ms;  ///< InfraAdd latency override; -1 for p2p deltas
  };

  explicit Topology(std::size_t n, TopologyLimits limits = {});

  /// Number of nodes (fixed at construction).
  std::size_t size() const { return out_.size(); }
  /// The degree caps this graph enforces.
  const TopologyLimits& limits() const { return limits_; }

  /// Monotone mutation counter: bumped by every successful connect /
  /// disconnect / add_infra_edge. Snapshot consumers compare it to decide
  /// whether a compiled view (net::CsrTopology) is still current.
  std::uint64_t version() const { return version_; }

  /// The journaled mutations that took the graph from `since_version` to
  /// `version()`, oldest first — entry i is the delta that produced version
  /// `since_version + i + 1`. Returns nullopt when the journal no longer
  /// reaches back that far (it is capacity-bounded; see `journal_capacity`)
  /// or `since_version` is ahead of the live graph — consumers must then
  /// recompile from scratch. An up-to-date `since_version` yields an empty
  /// span.
  std::optional<std::span<const EdgeDelta>> deltas_since(
      std::uint64_t since_version) const;

  /// Journal retention bound: once more than this many deltas are pending,
  /// the oldest half is dropped (consumers further behind than the surviving
  /// window rebuild). Sized to hold several rounds of full-network rewiring
  /// at the fig3a grid scale.
  static constexpr std::size_t journal_capacity() { return 1u << 15; }

  /// Replays one journaled delta onto this graph: Connect dials, Disconnect
  /// tears down, InfraAdd installs. Returns false (changing nothing) when
  /// the delta does not apply cleanly (edge missing / already present / caps
  /// full), which cannot happen when replaying a journal span onto the exact
  /// version it was recorded against.
  bool apply_delta(const EdgeDelta& delta);

  /// Establishes the outgoing connection u -> v. Returns false (and changes
  /// nothing) if u == v, the pair is already adjacent in any direction or
  /// layer, u's outgoing slots are full, or v declines (incoming cap).
  bool connect(NodeId u, NodeId v);

  /// Tears down the outgoing connection u -> v (must exist).
  void disconnect(NodeId u, NodeId v);

  /// Tears down every p2p connection touching v, in both directions (infra
  /// links are left in place). Models a node leaving the network (churn).
  void disconnect_all(NodeId v);

  /// Installs an undirected infrastructure link with explicit latency.
  /// Returns false if the pair is already adjacent.
  bool add_infra_edge(NodeId u, NodeId v, double latency_ms);

  /// True when the directed p2p edge u -> v exists.
  bool has_out(NodeId u, NodeId v) const;
  /// True when u and v are connected in any direction or layer.
  bool are_adjacent(NodeId u, NodeId v) const;
  /// The infra-link latency override of (u, v), if such a link exists.
  std::optional<double> infra_latency(NodeId u, NodeId v) const;

  /// Current outgoing degree of v.
  int out_count(NodeId v) const { return static_cast<int>(out_[v].size()); }
  /// Current incoming degree of v.
  int in_count(NodeId v) const { return in_counts_[v]; }
  /// True when v declines further incoming connections.
  bool in_full(NodeId v) const { return in_counts_[v] >= limits_.in_cap; }
  /// True when v cannot dial further outgoing connections.
  bool out_full(NodeId v) const { return out_count(v) >= limits_.out_cap; }

  /// Outgoing neighbor list of v (insertion order preserved).
  const std::vector<NodeId>& out(NodeId v) const { return out_[v]; }

  /// Full relay adjacency of v: outgoing + incoming + infra, duplicate-free.
  const std::vector<Link>& adjacency(NodeId v) const { return adj_[v]; }

  /// All unique undirected p2p edges (u < v not guaranteed; each edge once,
  /// oriented from the dialer). Infra edges excluded.
  std::vector<std::pair<NodeId, NodeId>> p2p_edges() const;
  /// All unique undirected infra edges (u < v).
  std::vector<std::pair<NodeId, NodeId>> infra_edges() const;

  /// Number of p2p connections (each undirected edge counted once).
  std::size_t num_p2p_edges() const;

  /// Aborts if any internal invariant is violated (degree caps, adjacency
  /// symmetry, duplicate-freeness). Tests call this after mutation storms.
  void validate() const;

 private:
  void adj_add(NodeId a, NodeId b, double infra_ms);
  /// Erases the mirrored adjacency entries; returns the (a-side, b-side)
  /// indices they occupied, which the Disconnect journal record carries.
  std::pair<std::uint32_t, std::uint32_t> adj_remove(NodeId a, NodeId b);
  void journal_push(const EdgeDelta& delta);

  TopologyLimits limits_;
  std::uint64_t version_ = 0;
  std::vector<std::vector<NodeId>> out_;   // directed p2p: dialer -> acceptor
  std::vector<int> in_counts_;
  std::vector<std::vector<Link>> adj_;     // union adjacency with metadata
  std::vector<std::vector<std::pair<NodeId, double>>> infra_;
  std::vector<EdgeDelta> journal_;  // deltas for versions (base_, version_]
  std::uint64_t journal_base_ = 0;  // version journal_[0] was recorded at
};

}  // namespace perigee::net
