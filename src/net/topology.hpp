/// \file
/// \brief Topology: the evolving p2p connection graph (paper §2.1).
///
/// Each node maintains up to `out_cap` outgoing connections (Bitcoin: 8) and
/// accepts up to `in_cap` incoming connections (paper: 20); a node whose
/// incoming slots are full declines further requests and the dialer must pick
/// another peer. Communication over an established connection is
/// bidirectional, so the relay adjacency of a node is the union of its
/// outgoing, incoming, and infrastructure (relay-overlay) links.
///
/// Infrastructure links model §5.4's fast block-distribution network: they are
/// installed by the scenario (not by the protocol), do not count against
/// either degree cap, and carry their own latency override.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/types.hpp"

namespace perigee::net {

/// Per-node connection caps (paper §2.1 / §5.1 defaults).
struct TopologyLimits {
  int out_cap = kDefaultOutDegree;  ///< dout: outgoing connection slots
  int in_cap = kDefaultInCap;       ///< din: incoming connection cap
};

/// Mutable connection graph with degree caps and an infra overlay.
///
/// Every mutation bumps `version()`, which `CsrCache` (net/csr.hpp) uses to
/// invalidate compiled flat-graph snapshots on rewire.
class Topology {
 public:
  /// One adjacency entry: a neighbor plus, for infra links, the latency
  /// override in ms (negative == ordinary p2p link, use the Network's δ).
  struct Link {
    NodeId peer;      ///< the adjacent node
    double infra_ms;  ///< infra latency override; < 0 for p2p links
    /// True when this is an infrastructure (relay-overlay) link.
    bool is_infra() const { return infra_ms >= 0.0; }
  };

  explicit Topology(std::size_t n, TopologyLimits limits = {});

  /// Number of nodes (fixed at construction).
  std::size_t size() const { return out_.size(); }
  /// The degree caps this graph enforces.
  const TopologyLimits& limits() const { return limits_; }

  /// Monotone mutation counter: bumped by every successful connect /
  /// disconnect / add_infra_edge. Snapshot consumers compare it to decide
  /// whether a compiled view (net::CsrTopology) is still current.
  std::uint64_t version() const { return version_; }

  /// Establishes the outgoing connection u -> v. Returns false (and changes
  /// nothing) if u == v, the pair is already adjacent in any direction or
  /// layer, u's outgoing slots are full, or v declines (incoming cap).
  bool connect(NodeId u, NodeId v);

  /// Tears down the outgoing connection u -> v (must exist).
  void disconnect(NodeId u, NodeId v);

  /// Tears down every p2p connection touching v, in both directions (infra
  /// links are left in place). Models a node leaving the network (churn).
  void disconnect_all(NodeId v);

  /// Installs an undirected infrastructure link with explicit latency.
  /// Returns false if the pair is already adjacent.
  bool add_infra_edge(NodeId u, NodeId v, double latency_ms);

  /// True when the directed p2p edge u -> v exists.
  bool has_out(NodeId u, NodeId v) const;
  /// True when u and v are connected in any direction or layer.
  bool are_adjacent(NodeId u, NodeId v) const;
  /// The infra-link latency override of (u, v), if such a link exists.
  std::optional<double> infra_latency(NodeId u, NodeId v) const;

  /// Current outgoing degree of v.
  int out_count(NodeId v) const { return static_cast<int>(out_[v].size()); }
  /// Current incoming degree of v.
  int in_count(NodeId v) const { return in_counts_[v]; }
  /// True when v declines further incoming connections.
  bool in_full(NodeId v) const { return in_counts_[v] >= limits_.in_cap; }
  /// True when v cannot dial further outgoing connections.
  bool out_full(NodeId v) const { return out_count(v) >= limits_.out_cap; }

  /// Outgoing neighbor list of v (insertion order preserved).
  const std::vector<NodeId>& out(NodeId v) const { return out_[v]; }

  /// Full relay adjacency of v: outgoing + incoming + infra, duplicate-free.
  const std::vector<Link>& adjacency(NodeId v) const { return adj_[v]; }

  /// All unique undirected p2p edges (u < v not guaranteed; each edge once,
  /// oriented from the dialer). Infra edges excluded.
  std::vector<std::pair<NodeId, NodeId>> p2p_edges() const;
  /// All unique undirected infra edges (u < v).
  std::vector<std::pair<NodeId, NodeId>> infra_edges() const;

  /// Number of p2p connections (each undirected edge counted once).
  std::size_t num_p2p_edges() const;

  /// Aborts if any internal invariant is violated (degree caps, adjacency
  /// symmetry, duplicate-freeness). Tests call this after mutation storms.
  void validate() const;

 private:
  void adj_add(NodeId a, NodeId b, double infra_ms);
  void adj_remove(NodeId a, NodeId b);

  TopologyLimits limits_;
  std::uint64_t version_ = 0;
  std::vector<std::vector<NodeId>> out_;   // directed p2p: dialer -> acceptor
  std::vector<int> in_counts_;
  std::vector<std::vector<Link>> adj_;     // union adjacency with metadata
  std::vector<std::vector<std::pair<NodeId, double>>> infra_;
};

}  // namespace perigee::net
