/// \file
/// \brief Fundamental identifiers and protocol-wide constants (paper §2.1,
/// §5.1).
#pragma once

#include <cstdint>
#include <limits>

namespace perigee::net {

/// Dense node index; every module addresses nodes by NodeId.
using NodeId = std::uint32_t;
/// Sentinel for "no node" (empty address book, unset miner, ...).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Monotone block identifier.
using BlockId = std::uint64_t;

/// Bitcoin-like outgoing connection limit used throughout the evaluation.
inline constexpr int kDefaultOutDegree = 8;   // dout: outgoing connections
/// Bitcoin-like incoming connection cap used throughout the evaluation.
inline constexpr int kDefaultInCap = 20;      // din: incoming connection cap

/// Perigee round parameter (paper §4, §5.1): dv retained neighbors.
inline constexpr int kDefaultKeep = 6;
/// Perigee round parameter (paper §4, §5.1): ev random exploration slots.
inline constexpr int kDefaultExplore = 2;
/// Perigee round parameter (paper §4, §5.1): |B| blocks per round for
/// Vanilla/Subset.
inline constexpr int kDefaultBlocksPerRound = 100;

/// Scoring percentile: neighbors are rated by the 90th percentile of their
/// relative delivery times.
inline constexpr double kScorePercentile = 0.90;

/// Default mean block validation time (paper §5.1: 50 ms).
inline constexpr double kDefaultValidationMs = 50.0;

}  // namespace perigee::net
