// Fundamental identifiers and protocol-wide constants (paper §2.1, §5.1).
#pragma once

#include <cstdint>
#include <limits>

namespace perigee::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

using BlockId = std::uint64_t;

// Bitcoin-like connection limits used throughout the paper's evaluation.
inline constexpr int kDefaultOutDegree = 8;   // dout: outgoing connections
inline constexpr int kDefaultInCap = 20;      // din:  incoming connection cap

// Perigee round parameters (paper §4, §5.1).
inline constexpr int kDefaultKeep = 6;        // dv: retained neighbors
inline constexpr int kDefaultExplore = 2;     // ev: random exploration slots
inline constexpr int kDefaultBlocksPerRound = 100;  // |B| for Vanilla/Subset

// Scoring percentile: neighbors are rated by the 90th percentile of their
// relative delivery times.
inline constexpr double kScorePercentile = 0.90;

// Default mean block validation time (paper §5.1: 50 ms).
inline constexpr double kDefaultValidationMs = 50.0;

}  // namespace perigee::net
