#include "net/vivaldi.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace perigee::net {
namespace {

double norm(const std::array<double, 8>& a, const std::array<double, 8>& b,
            int dim) {
  double s2 = 0;
  for (int i = 0; i < dim; ++i) {
    const double d = a[static_cast<std::size_t>(i)] -
                     b[static_cast<std::size_t>(i)];
    s2 += d * d;
  }
  return std::sqrt(s2);
}

}  // namespace

VivaldiSystem::VivaldiSystem(std::size_t n, VivaldiParams params)
    : params_(params), coords_(n), errors_(n, 1.0) {
  PERIGEE_ASSERT(params_.dim >= 1 && params_.dim <= 8);
  PERIGEE_ASSERT(params_.ce > 0 && params_.ce <= 1);
  PERIGEE_ASSERT(params_.cc > 0 && params_.cc <= 1);
  for (auto& c : coords_) c.fill(0.0);
}

void VivaldiSystem::observe(NodeId self, NodeId /*peer*/, double rtt_ms,
                            double peer_error,
                            const std::array<double, 8>& peer_coords) {
  PERIGEE_ASSERT(self < coords_.size());
  PERIGEE_ASSERT(rtt_ms > 0);
  auto& x = coords_[self];
  double dist = norm(x, peer_coords, params_.dim);

  // Sample confidence: balance of the two nodes' current error estimates.
  const double denom = errors_[self] + peer_error;
  const double w = denom > 0 ? errors_[self] / denom : 0.5;

  // Update local error toward this sample's relative error.
  const double es = std::abs(dist - rtt_ms) / rtt_ms;
  errors_[self] = std::clamp(es * params_.ce * w +
                                 errors_[self] * (1.0 - params_.ce * w),
                             0.0, 10.0);

  // Move along the unit vector away from (or toward) the peer. Coincident
  // coordinates (the all-zero start) get a deterministic kick direction.
  std::array<double, 8> dir{};
  if (dist > 1e-9) {
    for (int i = 0; i < params_.dim; ++i) {
      dir[static_cast<std::size_t>(i)] =
          (x[static_cast<std::size_t>(i)] -
           peer_coords[static_cast<std::size_t>(i)]) /
          dist;
    }
  } else {
    dir[static_cast<std::size_t>(self % static_cast<NodeId>(params_.dim))] =
        1.0;
    dist = 0.0;
  }
  const double delta = params_.cc * w;
  const double force = rtt_ms - dist;  // positive: too close, push away
  for (int i = 0; i < params_.dim; ++i) {
    x[static_cast<std::size_t>(i)] +=
        delta * force * dir[static_cast<std::size_t>(i)];
  }
}

void VivaldiSystem::run(const Network& network, util::Rng& rng) {
  PERIGEE_ASSERT(network.size() == coords_.size());
  const std::size_t n = coords_.size();
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  for (int round = 0; round < params_.rounds; ++round) {
    rng.shuffle(order);
    for (NodeId self : order) {
      for (int p = 0; p < params_.probes_per_round; ++p) {
        auto peer = static_cast<NodeId>(rng.uniform_index(n));
        if (peer == self) continue;
        // Probe RTT = 2x one-way; Vivaldi conventionally works on RTTs but
        // any consistent scale embeds equally well.
        const double rtt = 2.0 * network.link_ms(self, peer);
        observe(self, peer, rtt, errors_[peer], coords_[peer]);
      }
    }
  }
}

double VivaldiSystem::estimated_distance(NodeId u, NodeId v) const {
  PERIGEE_ASSERT(u < coords_.size() && v < coords_.size());
  return norm(coords_[u], coords_[v], params_.dim);
}

double VivaldiSystem::mean_relative_error(const Network& network,
                                          util::Rng& rng,
                                          std::size_t samples) const {
  PERIGEE_ASSERT(samples > 0);
  const std::size_t n = coords_.size();
  double total = 0;
  std::size_t counted = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto u = static_cast<NodeId>(rng.uniform_index(n));
    const auto v = static_cast<NodeId>(rng.uniform_index(n));
    if (u == v) continue;
    const double truth = 2.0 * network.link_ms(u, v);
    total += std::abs(estimated_distance(u, v) - truth) / truth;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace perigee::net
