/// \file
/// \brief Vivaldi decentralized network coordinates (Dabek et al., SIGCOMM
/// 2004).
///
/// The paper's §3.1 theory rests on the observation that Internet hosts embed
/// into a low-dimensional metric space whose distances predict latency.
/// Vivaldi is the canonical decentralized algorithm that *learns* such an
/// embedding from pairwise probes: every node keeps a coordinate and a local
/// confidence, and each measurement pulls the pair of coordinates together or
/// apart like a spring relaxing toward the measured latency.
///
/// Here it powers the coordinate-greedy baseline (topo/coordinates.hpp): an
/// explicit-measurement alternative to Perigee that estimates coordinates
/// first and then dials the nearest peers. It inherits the weaknesses the
/// paper points out for explicit approaches — it models propagation latency
/// only (no validation/bandwidth/hash-power awareness) and trusts the
/// measurements it is fed.
#pragma once

#include <array>
#include <vector>

#include "net/network.hpp"
#include "net/types.hpp"
#include "util/rng.hpp"

namespace perigee::net {

/// Vivaldi tuning knobs.
struct VivaldiParams {
  int dim = 3;          ///< embedding dimension (paper cites R^5-ish spaces)
  double ce = 0.25;     ///< confidence adaptation gain
  double cc = 0.25;     ///< coordinate adaptation gain
  int rounds = 40;      ///< probe rounds
  int probes_per_round = 8;  ///< random peers probed per node per round
};

/// The full set of per-node coordinates plus the probing schedule.
class VivaldiSystem {
 public:
  explicit VivaldiSystem(std::size_t n, VivaldiParams params = {});

  /// One measurement: node `self` observed `rtt_ms` to `peer`. Updates only
  /// self's coordinate/error (the peer learns from its own probes).
  void observe(NodeId self, NodeId peer, double rtt_ms,
               double peer_error, const std::array<double, 8>& peer_coords);

  /// Runs the full probing schedule against the network's true latencies:
  /// params.rounds rounds, each node probing params.probes_per_round random
  /// peers. Deterministic in `rng`.
  void run(const Network& network, util::Rng& rng);

  /// Coordinate-space distance between the current estimates of u and v.
  double estimated_distance(NodeId u, NodeId v) const;
  /// Current coordinate of v (tail dimensions zero).
  const std::array<double, 8>& coords(NodeId v) const { return coords_[v]; }
  /// Current local error estimate of v.
  double error(NodeId v) const { return errors_[v]; }

  /// Mean |estimated - true| / true over sampled pairs; the usual Vivaldi
  /// quality metric (should drop well below 1 after convergence).
  double mean_relative_error(const Network& network, util::Rng& rng,
                             std::size_t samples = 2000) const;

  /// The parameters this system runs with.
  const VivaldiParams& params() const { return params_; }

 private:
  VivaldiParams params_;
  std::vector<std::array<double, 8>> coords_;
  std::vector<double> errors_;  // local error estimate in [0, 1+]
};

}  // namespace perigee::net
