#include "obs/meta.hpp"

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "runner/json.hpp"

// CMake injects these for this translation unit only (see the
// set_source_files_properties block in CMakeLists.txt). Fallbacks keep
// non-CMake builds (IDE single-file checks) compiling.
#ifndef PERIGEE_BUILD_TYPE
#define PERIGEE_BUILD_TYPE "unknown"
#endif
#ifndef PERIGEE_COMPILER_INFO
#define PERIGEE_COMPILER_INFO "unknown"
#endif
#ifndef PERIGEE_CXX_FLAGS_INFO
#define PERIGEE_CXX_FLAGS_INFO ""
#endif
#ifndef PERIGEE_GIT_SHA
#define PERIGEE_GIT_SHA "unknown"
#endif

namespace perigee::obs {

namespace {

// Anchored at static initialization, i.e. (close enough to) process start.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

}  // namespace

std::int64_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::int64_t kb = 0;
      fields >> kb;
      return kb;
    }
  }
  return 0;
}

RunMeta capture_run_meta() {
  RunMeta meta;
  meta.build_type = PERIGEE_BUILD_TYPE;
  meta.compiler = PERIGEE_COMPILER_INFO;
  meta.cxx_flags = PERIGEE_CXX_FLAGS_INFO;
  meta.git_sha = PERIGEE_GIT_SHA;
  meta.telemetry = telemetry_compiled();
  meta.num_cpus =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  meta.peak_rss_kb = peak_rss_kb();
  meta.wall_clock_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_process_start)
          .count();
  return meta;
}

void write_run_meta_fields(runner::JsonWriter& writer, const RunMeta& meta) {
  writer.field("build_type", meta.build_type);
  writer.field("compiler", meta.compiler);
  writer.field("cxx_flags", meta.cxx_flags);
  writer.field("git_sha", meta.git_sha);
  writer.field("telemetry", meta.telemetry);
  writer.field("num_cpus", meta.num_cpus);
  writer.field("peak_rss_kb", meta.peak_rss_kb);
  writer.field("wall_clock_sec", meta.wall_clock_sec);
}

}  // namespace perigee::obs
