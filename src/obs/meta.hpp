/// \file
/// \brief Run metadata capture: build/compiler/git provenance plus process
/// peak RSS and wall-clock.
///
/// Every sweep JSON and BENCH snapshot carries this under a top-level
/// `meta` key, so perf anchors are no longer anonymous numbers — the known
/// "debug-build anchors" caveat becomes machine-readable
/// (`scripts/check_bench_regression.py` warns on build-type mismatches).
///
/// Build-time facts (build type, compiler, flags, git sha) are injected by
/// CMake as compile definitions scoped to meta.cpp only, so editing a flag
/// or committing does not rebuild the whole tree. Runtime facts come from
/// `/proc/self/status` (VmHWM) and a process-start steady-clock anchor.
#pragma once

#include <cstdint>
#include <string>

namespace perigee::runner {
class JsonWriter;
}  // namespace perigee::runner

namespace perigee::obs {

/// Provenance attached to emitted result files. All strings are plain
/// facts, no formatting.
struct RunMeta {
  std::string build_type;    ///< CMAKE_BUILD_TYPE at configure time.
  std::string compiler;      ///< e.g. "GNU 12.2.0".
  std::string cxx_flags;     ///< Base + per-config flags.
  std::string git_sha;       ///< Short HEAD sha at configure time.
  bool telemetry = false;    ///< telemetry_compiled() of this binary.
  std::int64_t num_cpus = 0; ///< Online CPUs.
  std::int64_t peak_rss_kb = 0;  ///< VmHWM; 0 when /proc is unavailable.
  double wall_clock_sec = 0;     ///< Process uptime at capture.
};

/// Captures everything above at call time.
RunMeta capture_run_meta();

/// Peak resident set (VmHWM) in KiB from /proc/self/status; 0 on platforms
/// without procfs.
std::int64_t peak_rss_kb();

/// Emits `meta`'s fields into the writer's current object scope (the caller
/// brackets with key("meta") / begin_object / end_object as needed).
void write_run_meta_fields(runner::JsonWriter& writer, const RunMeta& meta);

}  // namespace perigee::obs
