#include "obs/metrics.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

#include "util/assert.hpp"

namespace perigee::obs {

// One writer thread per shard; scrape reads cross-thread with relaxed loads
// (monotonic counters — a torn snapshot can only lag, never invent counts).
// Owner-thread updates use load+store instead of fetch_add: there is exactly
// one writer per slot, so no RMW is needed and the store stays a plain
// register increment plus movq on x86.
struct Registry::Shard {
  std::atomic<std::uint64_t> counters[kMaxCounters];
  struct Hist {
    std::atomic<std::uint64_t> count;
    std::atomic<std::uint64_t> sum;
    std::atomic<std::uint64_t> buckets[kHistBuckets];
  };
  Hist histograms[kMaxHistograms];

  void bump(std::atomic<std::uint64_t>& slot, std::uint64_t delta) {
    slot.store(slot.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }
};

namespace {

struct RegistryState {
  std::mutex mu;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  // Shards are owned forever: a ThreadPool worker's counts must remain
  // scrapeable after the pool (and its threads) are gone.
  std::vector<std::unique_ptr<Registry::Shard>> shards;
  // Gauges are process-wide (last-writer-wins / high-water), not sharded.
  std::atomic<std::int64_t> gauges[Registry::kMaxGauges] = {};
};

RegistryState& state() {
  static RegistryState* s = new RegistryState();  // never destroyed: shards
  return *s;                                      // outlive static teardown
}

}  // namespace

Registry& Registry::instance() {
  static Registry* r = new Registry();
  return *r;
}

Registry::Shard& Registry::local_shard() {
  thread_local Shard* shard = nullptr;
  if (shard == nullptr) {
    auto owned = std::make_unique<Shard>();
    shard = owned.get();
    std::lock_guard<std::mutex> lock(state().mu);
    state().shards.push_back(std::move(owned));
  }
  return *shard;
}

MetricId Registry::intern(std::vector<std::string>& names,
                          std::size_t capacity, const char* kind,
                          std::string_view name) {
  (void)kind;
  std::lock_guard<std::mutex> lock(state().mu);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<MetricId>(i);
  }
  PERIGEE_ASSERT(names.size() < capacity);
  names.emplace_back(name);
  return static_cast<MetricId>(names.size() - 1);
}

MetricId Registry::counter(std::string_view name) {
  return intern(state().counter_names, kMaxCounters, "counter", name);
}

MetricId Registry::gauge(std::string_view name) {
  return intern(state().gauge_names, kMaxGauges, "gauge", name);
}

MetricId Registry::histogram(std::string_view name) {
  return intern(state().histogram_names, kMaxHistograms, "histogram", name);
}

void Registry::add(MetricId id, std::uint64_t delta) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  shard.bump(shard.counters[id], delta);
}

void Registry::observe(MetricId id, std::uint64_t value) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  Shard::Hist& h = shard.histograms[id];
  shard.bump(h.count, 1);
  shard.bump(h.sum, value);
  shard.bump(h.buckets[bucket_index(value)], 1);
}

void Registry::gauge_set(MetricId id, std::int64_t value) {
  if (!enabled()) return;
  state().gauges[id].store(value, std::memory_order_relaxed);
}

void Registry::gauge_max(MetricId id, std::int64_t value) {
  if (!enabled()) return;
  std::atomic<std::int64_t>& g = state().gauges[id];
  std::int64_t cur = g.load(std::memory_order_relaxed);
  while (cur < value &&
         !g.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

MetricsSnapshot Registry::scrape() const {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);

  MetricsSnapshot snap;
  snap.counters.reserve(s.counter_names.size());
  for (std::size_t i = 0; i < s.counter_names.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& shard : s.shards) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(s.counter_names[i], total);
  }

  snap.gauges.reserve(s.gauge_names.size());
  for (std::size_t i = 0; i < s.gauge_names.size(); ++i) {
    snap.gauges.emplace_back(s.gauge_names[i],
                             s.gauges[i].load(std::memory_order_relaxed));
  }

  snap.histograms.reserve(s.histogram_names.size());
  for (std::size_t i = 0; i < s.histogram_names.size(); ++i) {
    HistogramSnapshot h;
    h.buckets.assign(kHistBuckets, 0);
    for (const auto& shard : s.shards) {
      const Shard::Hist& sh = shard->histograms[i];
      h.count += sh.count.load(std::memory_order_relaxed);
      h.sum += sh.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        h.buckets[b] += sh.buckets[b].load(std::memory_order_relaxed);
      }
    }
    snap.histograms.emplace_back(s.histogram_names[i], std::move(h));
  }

  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset() {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& shard : s.shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard->histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : s.gauges) g.store(0, std::memory_order_relaxed);
}

}  // namespace perigee::obs
