/// \file
/// \brief Telemetry metrics registry: named counters, gauges and
/// power-of-two-bucket histograms with per-thread shards.
///
/// Design goals, in priority order:
///   1. **Zero cost when compiled out.** With `PERIGEE_TELEMETRY` undefined
///      (CMake `-DPERIGEE_TELEMETRY=OFF`) every instrumentation macro in this
///      header expands to nothing, so hot loops carry no extra instructions,
///      no TLS lookups, and no registry symbols survive dead-code
///      elimination. The registry API itself stays declared and linkable in
///      both modes so tests and tools compile unchanged;
///      `telemetry_compiled()` reports which mode was built.
///   2. **Lock-free on the hot path.** Each recording thread writes to its
///      own shard — fixed-size arrays of `std::atomic<uint64_t>` updated with
///      relaxed owner-thread load/store (not `fetch_add`; there is exactly
///      one writer per slot). The only lock is a mutex taken once per thread
///      on first touch (shard registration) and at scrape/reset time.
///   3. **Results stay byte-identical.** Metrics never feed back into the
///      simulation; they are scraped into sidecar trace files or stderr
///      tables only. The determinism suite compiles both modes and diffs
///      sweep curves to enforce this.
///
/// Shards are owned by the registry and retained after their thread exits,
/// so counts recorded by a `runner::ThreadPool` survive pool destruction and
/// scrape after `pool.wait()` sees every worker's contribution.
///
/// Histograms use power-of-two buckets: bucket 0 holds the value 0 and
/// bucket b >= 1 holds values in [2^(b-1), 2^b). 64 buckets cover the full
/// uint64 range.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace perigee::obs {

/// True when the library was built with PERIGEE_TELEMETRY (macros active).
constexpr bool telemetry_compiled() {
#ifdef PERIGEE_TELEMETRY
  return true;
#else
  return false;
#endif
}

/// Index of a registered metric within its kind's slot array.
using MetricId = std::uint32_t;

/// Point-in-time histogram state merged across shards.
struct HistogramSnapshot {
  std::uint64_t count = 0;  ///< Total observations.
  std::uint64_t sum = 0;    ///< Sum of observed values.
  /// buckets[0] counts zeros; buckets[b] counts values in [2^(b-1), 2^b).
  std::vector<std::uint64_t> buckets;
};

/// Everything the registry knows, merged across shards and sorted by name
/// (so emission order is deterministic regardless of registration order).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Counter value by name; 0 when absent.
  std::uint64_t counter(std::string_view name) const;
  /// Histogram by name; nullptr when absent.
  const HistogramSnapshot* histogram(std::string_view name) const;
};

/// Process-wide metrics registry. All methods are thread-safe; `add` and
/// `observe` are lock-free after a thread's first recording.
class Registry {
 public:
  static constexpr std::size_t kMaxCounters = 128;
  static constexpr std::size_t kMaxGauges = 32;
  static constexpr std::size_t kMaxHistograms = 32;
  static constexpr std::size_t kHistBuckets = 64;

  /// Per-thread slot array; defined in metrics.cpp only.
  struct Shard;

  static Registry& instance();

  /// Registers (or looks up) a metric by name. Names are interned: the same
  /// name always yields the same id. Exceeding the per-kind capacity is a
  /// programming error and asserts.
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId histogram(std::string_view name);

  /// Runtime gate. Recording is dropped while disabled; registration,
  /// scrape and reset still work. Defaults to enabled.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Adds `delta` to a counter on the calling thread's shard.
  void add(MetricId id, std::uint64_t delta);
  /// Records one histogram observation on the calling thread's shard.
  void observe(MetricId id, std::uint64_t value);
  /// Sets a gauge (process-wide last-writer-wins).
  void gauge_set(MetricId id, std::int64_t value);
  /// Raises a gauge to `value` if larger (process-wide high-water mark).
  void gauge_max(MetricId id, std::int64_t value);

  /// Merges every shard (relaxed reads; concurrent recording is tolerated
  /// and simply may or may not be included) into a name-sorted snapshot.
  /// Zero-valued counters/histograms are included — a registered metric
  /// that never fired is itself a signal.
  MetricsSnapshot scrape() const;

  /// Zeroes every shard slot and gauge. Registered names/ids survive (a
  /// sweep cell boundary resets values, not identities).
  void reset();

  /// Power-of-two bucket index for `v` (see file comment).
  static constexpr std::size_t bucket_index(std::uint64_t v) {
    if (v == 0) return 0;
    const int w = std::bit_width(v);
    return static_cast<std::size_t>(w) < kHistBuckets ? w : kHistBuckets - 1;
  }
  /// Inclusive lower bound of bucket `b` (0, 1, 2, 4, 8, ...).
  static constexpr std::uint64_t bucket_lower_bound(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

 private:
  Registry() = default;
  Shard& local_shard();
  MetricId intern(std::vector<std::string>& names, std::size_t capacity,
                  const char* kind, std::string_view name);

  std::atomic<bool> enabled_{true};
};

/// Cheap copyable handle binding a name to its id once. Intended to live in
/// a function-local `static const` (see the macros below) so name interning
/// happens on first call, not per record.
class Counter {
 public:
  explicit Counter(std::string_view name)
      : id_(Registry::instance().counter(name)) {}
  void add(std::uint64_t delta = 1) const {
    Registry::instance().add(id_, delta);
  }

 private:
  MetricId id_;
};

class Gauge {
 public:
  explicit Gauge(std::string_view name)
      : id_(Registry::instance().gauge(name)) {}
  void set(std::int64_t value) const {
    Registry::instance().gauge_set(id_, value);
  }
  void max(std::int64_t value) const {
    Registry::instance().gauge_max(id_, value);
  }

 private:
  MetricId id_;
};

class Histogram {
 public:
  explicit Histogram(std::string_view name)
      : id_(Registry::instance().histogram(name)) {}
  void observe(std::uint64_t value) const {
    Registry::instance().observe(id_, value);
  }

 private:
  MetricId id_;
};

}  // namespace perigee::obs

// ------------------------------------------------------------------ macros --
// The only instrumentation spellings hot paths should use. All of them
// vanish (no declaration, no evaluation of arguments) when telemetry is
// compiled out, so local tally variables must themselves be declared through
// PERIGEE_TELEMETRY_ONLY to avoid unused-variable warnings in OFF builds.
#ifdef PERIGEE_TELEMETRY

/// Emits its arguments verbatim in telemetry builds, nothing otherwise.
#define PERIGEE_TELEMETRY_ONLY(...) __VA_ARGS__

/// Adds `delta` to the counter `name` (a string literal). The handle is a
/// function-local static, so interning happens once.
#define PERIGEE_COUNTER_ADD(name, delta)                     \
  do {                                                       \
    static const ::perigee::obs::Counter perigee_c_{(name)}; \
    perigee_c_.add(static_cast<std::uint64_t>(delta));       \
  } while (0)

/// Records `value` into the histogram `name`.
#define PERIGEE_HISTOGRAM_OBSERVE(name, value)                 \
  do {                                                         \
    static const ::perigee::obs::Histogram perigee_h_{(name)}; \
    perigee_h_.observe(static_cast<std::uint64_t>(value));     \
  } while (0)

/// Raises the gauge `name` to `value` if larger.
#define PERIGEE_GAUGE_MAX(name, value)                     \
  do {                                                     \
    static const ::perigee::obs::Gauge perigee_g_{(name)}; \
    perigee_g_.max(static_cast<std::int64_t>(value));      \
  } while (0)

/// Sets the gauge `name` to `value` (last writer wins).
#define PERIGEE_GAUGE_SET(name, value)                     \
  do {                                                     \
    static const ::perigee::obs::Gauge perigee_g_{(name)}; \
    perigee_g_.set(static_cast<std::int64_t>(value));      \
  } while (0)

#else  // !PERIGEE_TELEMETRY

#define PERIGEE_TELEMETRY_ONLY(...)
#define PERIGEE_COUNTER_ADD(name, delta) \
  do {                                   \
  } while (0)
#define PERIGEE_HISTOGRAM_OBSERVE(name, value) \
  do {                                         \
  } while (0)
#define PERIGEE_GAUGE_MAX(name, value) \
  do {                                 \
  } while (0)
#define PERIGEE_GAUGE_SET(name, value) \
  do {                                 \
  } while (0)

#endif  // PERIGEE_TELEMETRY
