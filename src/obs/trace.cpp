#include "obs/trace.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "obs/meta.hpp"
#include "obs/metrics.hpp"
#include "runner/json.hpp"

namespace perigee::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Event {
  const char* name;
  std::int64_t ts_ns;
  std::int64_t dur_ns;
  int tid;
  std::string args;  // pre-serialized JSON object, or empty
};

void append_decimal(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out.append(buf, end);
}

void append_escaped(std::string& out, std::string_view v) {
  out += '"';
  for (const char c : v) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';  // control chars never appear in our labels
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

struct Tracer::ThreadBuffer {
  std::mutex mu;
  std::vector<Event> events;
  int tid = 0;
};

namespace {

struct TracerState {
  std::mutex mu;
  std::vector<std::unique_ptr<Tracer::ThreadBuffer>> buffers;
};

TracerState& state() {
  static TracerState* s = new TracerState();  // never destroyed, like the
  return *s;                                  // registry's shards
}

}  // namespace

// ------------------------------------------------------------- TraceArgs --

void TraceArgs::begin_member(std::string_view key) {
  if (body_.size() > 1) body_ += ',';
  append_escaped(body_, key);
  body_ += ':';
}

TraceArgs& TraceArgs::arg(std::string_view key, std::string_view value) {
  begin_member(key);
  append_escaped(body_, value);
  return *this;
}

TraceArgs& TraceArgs::arg(std::string_view key, std::int64_t value) {
  begin_member(key);
  if (value < 0) {
    body_ += '-';
    append_decimal(body_, static_cast<std::uint64_t>(-(value + 1)) + 1);
  } else {
    append_decimal(body_, static_cast<std::uint64_t>(value));
  }
  return *this;
}

TraceArgs& TraceArgs::arg(std::string_view key, double value) {
  begin_member(key);
  body_ += runner::format_double(value);
  return *this;
}

// ---------------------------------------------------------------- Tracer --

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();
  return *t;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    buffer = owned.get();
    std::lock_guard<std::mutex> lock(state().mu);
    buffer->tid = static_cast<int>(state().buffers.size());
    state().buffers.push_back(std::move(owned));
  }
  return *buffer;
}

bool Tracer::start(std::string path) {
  if (!telemetry_compiled()) return false;
  if (enabled()) return false;
  {
    std::lock_guard<std::mutex> lock(state().mu);
    for (const auto& buffer : state().buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->events.clear();
    }
  }
  path_ = std::move(path);
  epoch_ns_ = steady_now_ns();
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

std::int64_t Tracer::now_ns() const { return steady_now_ns() - epoch_ns_; }

void Tracer::record(const char* name, std::int64_t start_ns,
                    std::int64_t dur_ns, std::string args) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(
      Event{name, start_ns, dur_ns, buffer.tid, std::move(args)});
}

std::size_t Tracer::events_recorded() const {
  std::lock_guard<std::mutex> lock(state().mu);
  std::size_t total = 0;
  for (const auto& buffer : state().buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

bool Tracer::finish() {
  if (!enabled()) return false;
  enabled_.store(false, std::memory_order_relaxed);

  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(state().mu);
    for (const auto& buffer : state().buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      for (auto& event : buffer->events) events.push_back(std::move(event));
      buffer->events.clear();
    }
  }
  // Deterministic file order for a given set of events; chrome://tracing
  // sorts by ts anyway, this keeps diffs and tests stable.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return std::tie(a.ts_ns, a.tid, a.dur_ns) <
                            std::tie(b.ts_ns, b.tid, b.dur_ns);
                   });

  const RunMeta meta = capture_run_meta();
  const MetricsSnapshot metrics = Registry::instance().scrape();

  return runner::write_file_atomic(path_, [&](std::ostream& os) {
    runner::JsonWriter writer(os, /*indent=*/1);
    writer.begin_object();
    writer.field("displayTimeUnit", "ms");
    writer.key("metadata");
    writer.begin_object();
    write_run_meta_fields(writer, meta);
    writer.end_object();

    // Not part of the Chrome schema; viewers ignore unknown top-level keys
    // and summarize_trace.py prints this next to the per-phase table.
    writer.key("perigeeMetrics");
    writer.begin_object();
    writer.key("counters");
    writer.begin_object();
    for (const auto& [name, value] : metrics.counters) {
      writer.field(name, static_cast<std::int64_t>(value));
    }
    writer.end_object();
    writer.key("gauges");
    writer.begin_object();
    for (const auto& [name, value] : metrics.gauges) {
      writer.field(name, value);
    }
    writer.end_object();
    writer.key("histograms");
    writer.begin_object();
    for (const auto& [name, hist] : metrics.histograms) {
      writer.key(name);
      writer.begin_object();
      writer.field("count", static_cast<std::int64_t>(hist.count));
      writer.field("sum", static_cast<std::int64_t>(hist.sum));
      writer.key("buckets");
      writer.begin_object();
      for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
        if (hist.buckets[b] == 0) continue;
        writer.field(std::to_string(Registry::bucket_lower_bound(b)),
                     static_cast<std::int64_t>(hist.buckets[b]));
      }
      writer.end_object();
      writer.end_object();
    }
    writer.end_object();
    writer.end_object();

    writer.key("traceEvents");
    writer.begin_array();
    for (const Event& event : events) {
      writer.begin_object();
      writer.field("name", event.name);
      writer.field("cat", "perigee");
      writer.field("ph", "X");
      writer.field("pid", std::int64_t{1});
      writer.field("tid", static_cast<std::int64_t>(event.tid));
      // Chrome trace timestamps are microseconds; fractional values keep
      // nanosecond resolution.
      writer.field("ts", static_cast<double>(event.ts_ns) / 1000.0);
      writer.field("dur", static_cast<double>(event.dur_ns) / 1000.0);
      if (!event.args.empty()) {
        writer.key("args");
        writer.raw_value(event.args);
      }
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
    os << "\n";
  });
}

}  // namespace perigee::obs
