/// \file
/// \brief Structured span tracer emitting Chrome `trace_event` JSON.
///
/// `Tracer::start(path)` arms collection; `PERIGEE_TRACE_SPAN` sites then
/// record complete ("ph":"X") events into per-thread buffers (one mutex per
/// buffer, uncontended: each thread locks only its own). `Tracer::finish()`
/// merges the buffers, embeds the metrics registry snapshot and the run
/// metadata, and writes the file crash-safely via
/// `runner::write_file_atomic`. The output loads directly in
/// chrome://tracing and Perfetto, and `scripts/summarize_trace.py` turns it
/// into a per-phase time table.
///
/// Span names must be string literals (stored as `const char*`); per-span
/// detail goes into `args`, built lazily — the builder callable passed to
/// `Span` runs only when the tracer is armed, so disarmed runs never pay
/// for string formatting.
///
/// Like the metrics registry, span sites compile to nothing when
/// `PERIGEE_TELEMETRY` is off, and a disarmed tracer costs one relaxed
/// atomic load per site when it is on. Tracing never alters simulation
/// output: the determinism suite diffs sweep curves with tracing on and
/// off.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace perigee::obs {

/// Tiny JSON-object builder for span args ("{\"k\":v,...}"). Handles string
/// escaping; numeric values print in decimal.
class TraceArgs {
 public:
  TraceArgs& arg(std::string_view key, std::string_view value);
  TraceArgs& arg(std::string_view key, const char* value) {
    return arg(key, std::string_view(value));
  }
  TraceArgs& arg(std::string_view key, std::int64_t value);
  TraceArgs& arg(std::string_view key, int value) {
    return arg(key, static_cast<std::int64_t>(value));
  }
  TraceArgs& arg(std::string_view key, std::uint64_t value) {
    return arg(key, static_cast<std::int64_t>(value));
  }
  TraceArgs& arg(std::string_view key, double value);

  /// The finished object, e.g. `{"cell":"n1000/ucb","seed":3}`. Call last;
  /// consumes the builder.
  std::string json() {
    body_ += '}';
    return std::move(body_);
  }

 private:
  void begin_member(std::string_view key);
  std::string body_ = "{";
};

/// Process-wide trace collector.
class Tracer {
 public:
  static Tracer& instance();

  /// Arms collection; the file is written on `finish()`. Returns false (and
  /// stays disarmed) when telemetry is compiled out or a trace is already
  /// armed.
  bool start(std::string path);

  /// True while armed — span sites check this before doing any work.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since `start()` on the steady clock.
  std::int64_t now_ns() const;

  /// Records a complete event. `name` must outlive the tracer (string
  /// literal); `args` is a pre-serialized JSON object or empty. No-op while
  /// disarmed. Must not race with `finish()` — callers join workers first.
  void record(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
              std::string args = std::string());

  /// Merges all thread buffers, appends the metrics snapshot and run
  /// metadata, and atomically writes the armed path. Disarms and clears
  /// buffers. Returns false when disarmed or the write failed.
  bool finish();

  /// Events currently buffered across threads (test hook).
  std::size_t events_recorded() const;

  /// Per-thread event buffer; defined in trace.cpp only.
  struct ThreadBuffer;

 private:
  Tracer() = default;
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::string path_;
  std::int64_t epoch_ns_ = 0;
};

/// RAII complete-event span. Construct on scope entry; the destructor
/// records [ctor, dtor) when the tracer was armed at entry.
class Span {
 public:
  explicit Span(const char* name) : name_(name) {
    if (Tracer::instance().enabled()) {
      armed_ = true;
      start_ns_ = Tracer::instance().now_ns();
    }
  }

  /// `make_args` is invoked only when armed; it must return a
  /// `std::string` holding a JSON object (typically via `TraceArgs`).
  template <typename F>
  Span(const char* name, F&& make_args) : name_(name) {
    if (Tracer::instance().enabled()) {
      armed_ = true;
      args_ = make_args();
      start_ns_ = Tracer::instance().now_ns();
    }
  }

  ~Span() {
    if (armed_) {
      Tracer& t = Tracer::instance();
      t.record(name_, start_ns_, t.now_ns() - start_ns_, std::move(args_));
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::string args_;
  std::int64_t start_ns_ = 0;
  bool armed_ = false;
};

}  // namespace perigee::obs

// ------------------------------------------------------------------ macros --
#ifdef PERIGEE_TELEMETRY

/// Scoped span covering the rest of the enclosing block.
#define PERIGEE_TRACE_SPAN(var, name) ::perigee::obs::Span var((name))

/// Scoped span with lazily-built args: the trailing expression (typically a
/// `TraceArgs` chain ending in `.json()`-less form is not required — pass
/// any expression convertible to std::string) is evaluated only while a
/// trace is armed.
#define PERIGEE_TRACE_SPAN_ARGS(var, name, ...) \
  ::perigee::obs::Span var((name), [&]() -> std::string { return __VA_ARGS__; })

#else  // !PERIGEE_TELEMETRY

#define PERIGEE_TRACE_SPAN(var, name) \
  do {                                \
  } while (0)
#define PERIGEE_TRACE_SPAN_ARGS(var, name, ...) \
  do {                                          \
  } while (0)

#endif  // PERIGEE_TELEMETRY
