#include "runner/checkpoint.hpp"

#include <charconv>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "runner/json.hpp"

namespace perigee::runner {
namespace fs = std::filesystem;
namespace {

// ------------------------------------------------------- config signatures

// Everything build_scenario reads from the network options. `options` is
// expected to be pre-adjusted (seed stamped, adjust_network_options applied)
// so the signature matches what the build actually consumes.
void write_net_options(JsonWriter& w, const net::NetworkOptions& options) {
  w.key("net");
  w.begin_object();
  w.field("n", static_cast<std::int64_t>(options.n));
  w.field("seed", static_cast<std::int64_t>(options.seed));
  w.field("latency", static_cast<std::int64_t>(options.latency));
  w.field("jitter_frac", options.jitter_frac);
  w.field("access_min_ms", options.access_min_ms);
  w.field("access_max_ms", options.access_max_ms);
  w.field("embed_dim", static_cast<std::int64_t>(options.embed_dim));
  w.field("embed_scale_ms", options.embed_scale_ms);
  w.field("validation_mean_ms", options.validation_mean_ms);
  w.field("validation_spread", options.validation_spread);
  w.field("validation_scale", options.validation_scale);
  w.field("handshake_factor", options.handshake_factor);
  w.field("block_size_kb", options.block_size_kb);
  w.field("heterogeneous_bandwidth", options.heterogeneous_bandwidth);
  w.field("bandwidth_min_mbps", options.bandwidth_min_mbps);
  w.field("bandwidth_max_mbps", options.bandwidth_max_mbps);
  w.field("bandwidth_default_mbps", options.bandwidth_default_mbps);
  w.end_object();
}

// The build axes: the subset of the config that determines the output of
// build_scenario (and therefore which jobs may share one scenario build).
void write_build_fields(JsonWriter& w, const core::ExperimentConfig& config,
                        const net::NetworkOptions& adjusted_net) {
  write_net_options(w, adjusted_net);
  w.field("out_cap", static_cast<std::int64_t>(config.limits.out_cap));
  w.field("in_cap", static_cast<std::int64_t>(config.limits.in_cap));
  w.field("hash_model", mining::hash_model_name(config.hash_model));
  w.field("pool_fraction", config.pools.pool_fraction);
  w.field("pool_share", config.pools.pool_share);
  w.field("pool_latency_scale", config.pool_latency_scale);
  w.field("relay", config.relay);
  w.field("relay_members",
          static_cast<std::int64_t>(config.relay_config.members));
  w.field("relay_link_ms", config.relay_config.link_ms);
  w.field("relay_validation_scale", config.relay_config.validation_scale);
  w.field("relay_fanout", static_cast<std::int64_t>(config.relay_config.fanout));
  w.field("geo_concentration", config.scenario.geo.concentration);
  w.field("geo_hub", static_cast<std::int64_t>(config.scenario.geo.hub));
  const scenario::HeteroRegime& hetero = config.scenario.hetero;
  w.field("hetero", scenario::hetero_profile_name(hetero.profile));
  w.field("hetero_fast_fraction", hetero.fast_fraction);
  w.field("hetero_fast_bandwidth_mbps", hetero.fast_bandwidth_mbps);
  w.field("hetero_slow_bandwidth_mbps", hetero.slow_bandwidth_mbps);
  w.field("hetero_fast_validation_scale", hetero.fast_validation_scale);
  w.field("hetero_slow_validation_scale", hetero.slow_validation_scale);
  w.field("hetero_fast_hash_share", hetero.fast_hash_share);
  w.field("hetero_block_size_kb", hetero.block_size_kb);
  w.field("withhold_fraction", config.scenario.adversary.withhold_fraction);
  w.field("withhold_zero_hash", config.scenario.adversary.zero_hash);
}

// The remaining result-relevant fields: how the learning loop and the λ
// evaluations run on top of the built scenario. Wall-clock-only knobs
// (engine_jobs, incremental_csr, relax_engine) are deliberately absent —
// they are byte-parity-pinned elsewhere and must not invalidate resumes.
void write_policy_fields(JsonWriter& w, const core::ExperimentConfig& config) {
  w.field("algorithm", core::algorithm_name(config.algorithm));
  w.field("keep", static_cast<std::int64_t>(config.params.keep));
  w.field("explore", static_cast<std::int64_t>(config.params.explore));
  w.field("percentile", config.params.percentile);
  w.field("ucb_c", config.params.ucb_c);
  w.field("ucb_window", static_cast<std::int64_t>(config.params.ucb_window));
  w.field("rounds", static_cast<std::int64_t>(config.rounds));
  w.field("blocks_per_round",
          static_cast<std::int64_t>(config.blocks_per_round));
  w.field("churn_rate", config.scenario.churn.rate);
  w.field("churn_start_round",
          static_cast<std::int64_t>(config.scenario.churn.start_round));
  w.field("churn_downtime_rounds",
          static_cast<std::int64_t>(config.scenario.churn.downtime_rounds));
  const scenario::TransmissionRegime& tx = config.scenario.transmission;
  w.field("transmission", scenario::transmission_model_name(tx.model));
  w.field("tx_block_kb", tx.block_kb);
  w.field("tx_control_kb", tx.control_kb);
  w.field("tx_compact_blocks", tx.compact_blocks);
  w.field("tx_rate_scale", tx.rate_scale);
  w.field("tx_burst_kb", tx.burst_kb);
  w.field("partial_view", config.partial_view);
  w.field("addrman_capacity",
          static_cast<std::int64_t>(config.addrman_capacity));
  w.field("addrman_bootstrap",
          static_cast<std::int64_t>(config.addrman_bootstrap));
  w.field("message_level", config.message_level);
  w.field("coverage", config.coverage);
  w.field("checkpoints", static_cast<std::int64_t>(config.checkpoints));
}

// The exact options build_scenario hands to Network::build: seed stamped,
// scenario adjustments applied.
net::NetworkOptions adjusted_net_options(const core::ExperimentConfig& config) {
  net::NetworkOptions options = config.net;
  options.seed = config.seed;
  scenario::adjust_network_options(options, config.scenario);
  return options;
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value, 16);
  (void)ec;  // 16 bytes always fit a 64-bit hex value
  return std::string(buf, ptr);
}

// -------------------------------------------------------------- slot codec

// λ of an unreachable node is +inf; JSON numbers cannot carry non-finite
// values (the curve writer maps them to null for plotting, which does not
// round-trip). Checkpoints must restore the exact doubles the job computed,
// so non-finite entries are spelled as strings.
void write_lambda_array(JsonWriter& w, std::string_view key,
                        const std::vector<double>& values) {
  w.key(key);
  w.begin_array();
  for (const double v : values) {
    if (std::isfinite(v)) {
      w.value(v);
    } else if (std::isnan(v)) {
      w.value("nan");
    } else {
      w.value(v > 0 ? "inf" : "-inf");
    }
  }
  w.end_array();
}

std::vector<double> read_lambda_array(const JsonValue* value,
                                      const std::string& what) {
  if (value == nullptr || value->kind != JsonValue::Kind::Array) {
    throw std::runtime_error(what + ": missing λ array");
  }
  std::vector<double> out;
  out.reserve(value->items.size());
  for (const JsonValue& item : value->items) {
    if (item.kind == JsonValue::Kind::Number) {
      out.push_back(item.number);
    } else if (item.kind == JsonValue::Kind::String) {
      if (item.string == "inf") {
        out.push_back(std::numeric_limits<double>::infinity());
      } else if (item.string == "-inf") {
        out.push_back(-std::numeric_limits<double>::infinity());
      } else if (item.string == "nan") {
        out.push_back(std::numeric_limits<double>::quiet_NaN());
      } else {
        throw std::runtime_error(what + ": bad λ entry '" + item.string + "'");
      }
    } else {
      throw std::runtime_error(what + ": bad λ entry kind");
    }
  }
  return out;
}

void write_slot_body(JsonWriter& w, const SlotCurves& slot) {
  w.field("cell", static_cast<std::int64_t>(slot.cell));
  w.field("seed", static_cast<std::int64_t>(slot.seed));
  write_lambda_array(w, "lambda", slot.lambda);
  write_lambda_array(w, "lambda50", slot.lambda50);
}

std::size_t read_index(const JsonValue* value, const std::string& what) {
  if (value == nullptr || value->kind != JsonValue::Kind::Number ||
      value->number < 0 ||
      value->number != std::floor(value->number)) {
    throw std::runtime_error(what + ": bad index");
  }
  return static_cast<std::size_t>(value->number);
}

SlotCurves read_slot_body(const JsonValue& doc, const std::string& what) {
  SlotCurves slot;
  slot.cell = read_index(doc.find("cell"), what);
  slot.seed = read_index(doc.find("seed"), what);
  slot.lambda = read_lambda_array(doc.find("lambda"), what);
  slot.lambda50 = read_lambda_array(doc.find("lambda50"), what);
  return slot;
}

std::string slot_filename(std::size_t cell, std::size_t seed) {
  return "cell" + std::to_string(cell) + "_seed" + std::to_string(seed) +
         ".json";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

void check_fingerprint(const JsonValue& doc, const std::string& expected,
                       const std::string& what) {
  const JsonValue* fp = doc.find("fingerprint");
  if (fp == nullptr || fp->kind != JsonValue::Kind::String) {
    throw std::runtime_error(what + ": not a sweep checkpoint/shard file");
  }
  if (fp->string != expected) {
    throw std::runtime_error(
        what + ": grid fingerprint " + fp->string +
        " does not match this sweep's " + expected +
        " — it was produced by a different spec (axes, base config, seeds "
        "or seed base changed) and cannot be folded in");
  }
}

}  // namespace

std::string grid_fingerprint(const SweepSpec& spec) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.field("sig_version", static_cast<std::int64_t>(1));
  w.field("seeds", static_cast<std::int64_t>(spec.seeds));
  w.key("base");
  w.begin_object();
  // The fingerprint hashes the *raw* base (plus every axis) rather than the
  // expanded cells: cells are a pure function of exactly these inputs.
  net::NetworkOptions base_net = spec.base.net;
  base_net.seed = spec.base.seed;
  write_build_fields(w, spec.base, base_net);
  write_policy_fields(w, spec.base);
  w.end_object();
  w.key("axes");
  w.begin_object();
  w.key("algorithms");
  w.begin_array();
  for (const auto a : spec.algorithms) w.value(core::algorithm_name(a));
  w.end_array();
  w.key("nodes");
  w.begin_array();
  for (const auto n : spec.nodes) w.value(static_cast<std::int64_t>(n));
  w.end_array();
  w.key("rounds");
  w.begin_array();
  for (const auto r : spec.rounds) w.value(static_cast<std::int64_t>(r));
  w.end_array();
  w.key("hash_models");
  w.begin_array();
  for (const auto m : spec.hash_models) w.value(mining::hash_model_name(m));
  w.end_array();
  w.key("validation_scales");
  w.begin_array();
  for (const auto v : spec.validation_scales) w.value(v);
  w.end_array();
  w.key("relay");
  w.begin_array();
  for (const bool r : spec.relay) w.value(r);
  w.end_array();
  w.key("churn_rates");
  w.begin_array();
  for (const auto c : spec.churn_rates) w.value(c);
  w.end_array();
  w.key("hetero_profiles");
  w.begin_array();
  for (const auto h : spec.hetero_profiles) {
    w.value(scenario::hetero_profile_name(h));
  }
  w.end_array();
  w.key("withhold_fractions");
  w.begin_array();
  for (const auto f : spec.withhold_fractions) w.value(f);
  w.end_array();
  w.key("transmission_models");
  w.begin_array();
  for (const auto t : spec.transmission_models) {
    w.value(scenario::transmission_model_name(t));
  }
  w.end_array();
  w.end_object();
  w.end_object();
  return hex64(fnv1a(os.str()));
}

std::string scenario_signature(const core::ExperimentConfig& config) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  // The adjusted options are what Network::build actually consumes, so two
  // configs whose raw options differ only in ways the adjustment cancels
  // (e.g. transmission=queue suppressing the hetero block-size patch when
  // no bandwidth tiers exist) still share a build.
  write_build_fields(w, config, adjusted_net_options(config));
  w.end_object();
  return os.str();
}

CheckpointStore::CheckpointStore(std::string dir, std::string fingerprint)
    : dir_(std::move(dir)), fingerprint_(std::move(fingerprint)) {}

void CheckpointStore::prepare() const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("cannot create checkpoint directory " + dir_);
  }
}

bool CheckpointStore::save(const SlotCurves& slot) const {
  const std::string path =
      (fs::path(dir_) / slot_filename(slot.cell, slot.seed)).string();
  return write_file_atomic(path, [&](std::ostream& os) {
    JsonWriter w(os, 0);
    w.begin_object();
    w.field("fingerprint", fingerprint_);
    write_slot_body(w, slot);
    w.end_object();
    os << '\n';
  });
}

std::vector<SlotCurves> CheckpointStore::load_all() const {
  std::vector<SlotCurves> slots;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) return slots;  // no directory yet: nothing to resume
  for (const auto& entry : it) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") {
      continue;  // .tmp staging leftovers and foreign files
    }
    const std::string path = entry.path().string();
    // write_file_atomic guarantees any present .json is complete, so a
    // parse failure means foreign or corrupted data — refuse, don't guess.
    const JsonValue doc = JsonValue::parse(read_file(path));
    check_fingerprint(doc, fingerprint_, path);
    slots.push_back(read_slot_body(doc, path));
  }
  return slots;
}

void CheckpointStore::remove_all() const {
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) return;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    const bool ours = name.rfind("cell", 0) == 0 &&
                      name.find("_seed") != std::string::npos &&
                      (entry.path().extension() == ".json" ||
                       entry.path().extension() == ".tmp");
    if (ours) fs::remove(entry.path(), ec);
  }
  fs::remove(dir_, ec);  // only succeeds when empty; foreign files keep it
}

bool write_shard_file(const std::string& path, const std::string& fingerprint,
                      const ShardFile& shard) {
  return write_file_atomic(path, [&](std::ostream& os) {
    JsonWriter w(os, 0);
    w.begin_object();
    w.field("fingerprint", fingerprint);
    w.field("shard", static_cast<std::int64_t>(shard.shard_index));
    w.field("of", static_cast<std::int64_t>(shard.shard_count));
    w.key("slots");
    w.begin_array();
    for (const SlotCurves& slot : shard.slots) {
      w.begin_object();
      write_slot_body(w, slot);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
  });
}

ShardFile read_shard_file(const std::string& path,
                          const std::string& fingerprint) {
  const JsonValue doc = JsonValue::parse(read_file(path));
  check_fingerprint(doc, fingerprint, path);
  ShardFile shard;
  shard.shard_index = static_cast<int>(read_index(doc.find("shard"), path));
  shard.shard_count = static_cast<int>(read_index(doc.find("of"), path));
  const JsonValue* slots = doc.find("slots");
  if (slots == nullptr || slots->kind != JsonValue::Kind::Array) {
    throw std::runtime_error(path + ": missing slots array");
  }
  shard.slots.reserve(slots->items.size());
  for (const JsonValue& item : slots->items) {
    shard.slots.push_back(read_slot_body(item, path));
  }
  return shard;
}

}  // namespace perigee::runner
