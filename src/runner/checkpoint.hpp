// Crash-safe checkpoint store and shard exchange format for the sweep
// service (runner/sweep.hpp).
//
// The unit of persistence is one completed (cell, seed) job's raw λ vectors
// — exactly the payload the runner aggregates into curves. Every file is
// written through write_file_atomic and tagged with the grid fingerprint, a
// 64-bit hash over every result-relevant field of the spec, so a resumed or
// merged run either reproduces the uninterrupted output byte for byte or
// refuses loudly: a checkpoint from a different grid can never be folded in
// silently. Doubles round-trip exactly (to_chars shortest form; non-finite
// λ — unreachable nodes — is spelled "inf"/"-inf"/"nan" because JSON
// numbers cannot carry it).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runner/sweep.hpp"

namespace perigee::runner {

// The persisted unit is SlotCurves (runner/sweep.hpp): one completed
// (cell, seed) job's raw λ vectors.

// Hex FNV-1a over a canonical serialization of everything that determines
// the grid's results: seed count, the full base config (network options,
// limits, protocol params, scenario regimes, ...) and every swept axis.
// Wall-clock-only knobs (engine_jobs, incremental_csr, relax_engine) are
// excluded — a checkpoint taken under one engine resumes under another.
std::string grid_fingerprint(const SweepSpec& spec);

// Canonical serialization of the fields build_scenario reads (network
// options, seed, hash model, relay, static scenario regimes, transmission —
// not algorithm/rounds/churn, which act only after the build). Jobs with
// equal signatures share one scenario build; see SweepOptions::reuse_builds.
std::string scenario_signature(const core::ExperimentConfig& config);

// Per-run checkpoint directory: one "cell<c>_seed<s>.json" per completed
// job. All methods throw std::runtime_error on malformed or foreign data;
// plain io failure on save is reported by return value so a full disk
// mid-sweep degrades to "no checkpoint for this job" instead of aborting
// the run.
class CheckpointStore {
 public:
  CheckpointStore(std::string dir, std::string fingerprint);

  const std::string& dir() const { return dir_; }

  // Creates the directory (and parents). Throws when creation fails.
  void prepare() const;

  // Atomically persists one completed job. Returns false on io error.
  bool save(const SlotCurves& slot) const;

  // Loads every job file in the directory. A missing directory is an empty
  // resume; a job file whose fingerprint differs from this run's throws —
  // it belongs to a different grid and must not be folded in.
  std::vector<SlotCurves> load_all() const;

  // Deletes the store's job files (by naming pattern) and the directory if
  // that leaves it empty. Foreign files are left alone. Best-effort: io
  // errors are swallowed — cleanup must never fail a finished sweep.
  void remove_all() const;

 private:
  std::string dir_;
  std::string fingerprint_;
};

// One shard's output: the slots of every job j (in expansion order,
// j = cell * seeds + seed) with j % shard_count == shard_index.
struct ShardFile {
  int shard_index = 0;
  int shard_count = 1;
  std::vector<SlotCurves> slots;  // sorted by (cell, seed)
};

// Atomically writes a shard exchange file. Returns false on io error.
bool write_shard_file(const std::string& path, const std::string& fingerprint,
                      const ShardFile& shard);

// Reads and validates a shard file. Throws std::runtime_error when the file
// is unreadable, malformed, or fingerprinted for a different grid.
ShardFile read_shard_file(const std::string& path,
                          const std::string& fingerprint);

}  // namespace perigee::runner
