#include "runner/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace perigee::runner {

// ------------------------------------------------------------------ writer

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  PERIGEE_ASSERT_MSG(stack_.back() == Scope::Array,
                     "object members need key() first");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope::Object);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  PERIGEE_ASSERT(!stack_.empty() && stack_.back() == Scope::Object);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope::Array);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  PERIGEE_ASSERT(!stack_.empty() && stack_.back() == Scope::Array);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
}

void JsonWriter::key(std::string_view k) {
  PERIGEE_ASSERT(!stack_.empty() && stack_.back() == Scope::Object);
  PERIGEE_ASSERT(!after_key_);
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
  write_string(k);
  os_ << (indent_ > 0 ? ": " : ":");
  after_key_ = true;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral doubles print without an exponent or trailing ".0" — matches
  // what a reader expects for counts; everything else uses the shortest
  // round-trip form from to_chars.
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  PERIGEE_ASSERT(ec == std::errc());
  return std::string(buf, ptr);
}

bool write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& produce) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    try {
      produce(os);
    } catch (...) {
      // A throwing producer must not leak the staging file (or clobber an
      // intact previous result, which the early return already guarantees).
      os.close();
      std::remove(tmp.c_str());
      throw;
    }
    os.flush();
    if (!os.good()) {
      os.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  // POSIX rename replaces an existing `path` atomically: readers see either
  // the complete old file or the complete new one, never a torn write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void JsonWriter::value(double v) {
  before_value();
  os_ << format_double(v);
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(std::string_view v) {
  before_value();
  write_string(v);
}

void JsonWriter::raw_value(std::string_view v) {
  before_value();
  os_ << v;
}

void JsonWriter::write_string(std::string_view v) {
  os_ << '"';
  for (const char c : v) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

void JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

void JsonWriter::field(std::string_view k, double v) {
  key(k);
  value(v);
}

void JsonWriter::field(std::string_view k, std::int64_t v) {
  key(k);
  value(v);
}

void JsonWriter::field(std::string_view k, std::string_view v) {
  key(k);
  value(v);
}

void JsonWriter::field(std::string_view k, bool v) {
  key(k);
  value(v);
}

void JsonWriter::field(std::string_view k, const std::vector<double>& v) {
  key(k);
  begin_array();
  for (const double x : v) value(x);
  end_array();
}

// ------------------------------------------------------------------ parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        const bool truth = peek() == 't';
        if (!consume_literal(truth ? "true" : "false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = truth;
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string k = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(k), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // Full \uXXXX support, surrogate pairs included: resume and merge
          // re-read the runner's own output, so any label a writer can emit
          // must parse back — including ones escaped by stricter writers.
          unsigned code = parse_hex4();
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, code);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  // Four hex digits at pos_ (the body of a \uXXXX escape), advancing past
  // them.
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    const auto [ptr, ec] = std::from_chars(
        text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
    if (ec != std::errc() || ptr != text_.data() + pos_ + 4) {
      fail("bad \\u escape");
    }
    pos_ += 4;
    return code;
  }

  // Appends the code point as UTF-8 (1-4 bytes). The writer emits strings
  // as raw UTF-8, so escaped and unescaped spellings of the same text parse
  // to identical bytes.
  static void append_utf8(std::string& out, unsigned cp) {
    if (cp <= 0x7F) {
      out.push_back(static_cast<char>(cp));
    } else if (cp <= 0x7FF) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp <= 0xFFFF) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) fail("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace perigee::runner
