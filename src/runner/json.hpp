// Dependency-free JSON emit/parse for sweep results (BENCH_<name>.json).
//
// The writer is a streaming state machine (objects/arrays/fields) whose
// number formatting goes through std::to_chars, so output is byte-identical
// across runs and thread counts — the property the determinism acceptance
// check diffs on. The parser is the recursive-descent inverse used by tests,
// by tools that read checked-in BENCH files, and by the sweep service's
// resume/merge paths (which must round-trip the runner's own output —
// \uXXXX escapes decode fully, surrogate pairs included, to the raw UTF-8
// the writer emits). It is not a general-purpose validator (no duplicate-
// key detection).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace perigee::runner {

class JsonWriter {
 public:
  // indent = 0 emits compact single-line JSON; > 0 pretty-prints.
  explicit JsonWriter(std::ostream& os, int indent = 2);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Inside an object: emits the key; the next value/begin_* call is its
  // value.
  void key(std::string_view k);

  void value(double v);  // non-finite values emit null
  void value(std::int64_t v);
  void value(std::string_view v);
  void value(bool v);
  // String literals would otherwise decay to the bool overload.
  void value(const char* v) { value(std::string_view(v)); }
  void null();
  // Emits `v` verbatim as the next value. `v` must itself be well-formed
  // JSON (the trace writer splices pre-serialized span args this way).
  void raw_value(std::string_view v);

  // key + value in one call.
  void field(std::string_view k, double v);
  void field(std::string_view k, std::int64_t v);
  void field(std::string_view k, std::string_view v);
  void field(std::string_view k, bool v);
  void field(std::string_view k, const char* v) {
    field(k, std::string_view(v));
  }
  void field(std::string_view k, const std::vector<double>& v);

 private:
  enum class Scope { Object, Array };
  void before_value();
  void newline_indent();
  void write_string(std::string_view v);

  std::ostream& os_;
  int indent_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool after_key_ = false;
};

// Formats a double exactly as JsonWriter does (shortest round-trip form).
std::string format_double(double v);

// Crash-safe file write: streams `produce(os)` into `path + ".tmp"`, flushes,
// and atomically renames over `path` — an interrupted run (SIGKILL, full
// disk, crash mid-serialization) can never leave a truncated or unparsable
// file at the final path; at worst a stale `.tmp` remains next to the intact
// previous result. Returns false (removing the temp file, leaving any
// existing `path` untouched) when the stream errors or the rename fails.
bool write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& produce);

// Parsed JSON document. Object member order is preserved.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;                            // Array
  std::vector<std::pair<std::string, JsonValue>> members;  // Object

  // Throws std::runtime_error (with offset) on malformed input.
  static JsonValue parse(std::string_view text);

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

}  // namespace perigee::runner
