#include "runner/sweep.hpp"

#include <atomic>
#include <functional>
#include <string>
#include <utility>

#include "obs/meta.hpp"
#include "obs/trace.hpp"
#include "runner/json.hpp"
#include "runner/thread_pool.hpp"
#include "util/assert.hpp"

namespace perigee::runner {
namespace {

// One value of one expansion axis: how to stamp it into a cell config, and
// its label fragment ("" when the axis is not swept).
struct AxisOption {
  std::function<void(core::ExperimentConfig&)> apply;
  std::string label;
};
using Axis = std::vector<AxisOption>;

// Builds one axis: the swept values (each labeled), or the unswept base
// value with no label. Adding a sweep axis is one make_axis call in
// expand_grid plus the SweepSpec field — nothing else.
template <typename T, typename Setter, typename Labeler>
Axis make_axis(const std::vector<T>& swept, const T& base, Setter set,
               Labeler label) {
  Axis axis;
  if (swept.empty()) {
    axis.push_back({[set, base](core::ExperimentConfig& c) { set(c, base); },
                    std::string()});
    return axis;
  }
  axis.reserve(swept.size());
  for (const T& value : swept) {
    axis.push_back(
        {[set, value](core::ExperimentConfig& c) { set(c, value); },
         label(value)});
  }
  return axis;
}

void append_label(std::string& label, std::string_view part) {
  if (part.empty()) return;
  if (!label.empty()) label += ' ';
  label += part;
}

}  // namespace

std::vector<SweepCell> expand_grid(const SweepSpec& spec) {
  // Axis declaration order == expansion nesting order (outermost first) ==
  // label order. Every axis is either swept (labeled values) or pinned to
  // the base config's value (single unlabeled option).
  const std::vector<Axis> axes = {
      make_axis(
          spec.algorithms, spec.base.algorithm,
          [](core::ExperimentConfig& c, core::Algorithm v) {
            c.algorithm = v;
          },
          [](core::Algorithm v) {
            return "algorithm=" + std::string(core::algorithm_name(v));
          }),
      make_axis(
          spec.nodes, spec.base.net.n,
          [](core::ExperimentConfig& c, std::size_t v) { c.net.n = v; },
          [](std::size_t v) { return "n=" + std::to_string(v); }),
      make_axis(
          spec.rounds, spec.base.rounds,
          [](core::ExperimentConfig& c, int v) { c.rounds = v; },
          [](int v) { return "rounds=" + std::to_string(v); }),
      make_axis(
          spec.hash_models, spec.base.hash_model,
          [](core::ExperimentConfig& c, mining::HashPowerModel v) {
            c.hash_model = v;
          },
          [](mining::HashPowerModel v) {
            return "hash=" + std::string(mining::hash_model_name(v));
          }),
      make_axis(
          spec.validation_scales, spec.base.net.validation_scale,
          [](core::ExperimentConfig& c, double v) {
            c.net.validation_scale = v;
          },
          [](double v) { return "vscale=" + format_double(v); }),
      make_axis(
          spec.relay, spec.base.relay,
          [](core::ExperimentConfig& c, bool v) { c.relay = v; },
          [](bool v) { return std::string("relay=") + (v ? "on" : "off"); }),
      make_axis(
          spec.churn_rates, spec.base.scenario.churn.rate,
          [](core::ExperimentConfig& c, double v) {
            c.scenario.churn.rate = v;
          },
          [](double v) { return "churn=" + format_double(v); }),
      make_axis(
          spec.hetero_profiles, spec.base.scenario.hetero.profile,
          [](core::ExperimentConfig& c, scenario::HeteroProfile v) {
            c.scenario.hetero.profile = v;
          },
          [](scenario::HeteroProfile v) {
            return "hetero=" + std::string(scenario::hetero_profile_name(v));
          }),
      make_axis(
          spec.withhold_fractions,
          spec.base.scenario.adversary.withhold_fraction,
          [](core::ExperimentConfig& c, double v) {
            c.scenario.adversary.withhold_fraction = v;
          },
          [](double v) { return "withhold=" + format_double(v); }),
      make_axis(
          spec.transmission_models, spec.base.scenario.transmission.model,
          [](core::ExperimentConfig& c, scenario::TransmissionModel v) {
            c.scenario.transmission.model = v;
          },
          [](scenario::TransmissionModel v) {
            return "transmission=" +
                   std::string(scenario::transmission_model_name(v));
          }),
  };

  std::size_t total = 1;
  for (const Axis& axis : axes) total *= axis.size();

  // Mixed-radix decode of the cell index, first axis most significant —
  // exactly the order nested loops would visit.
  std::vector<SweepCell> cells;
  cells.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    SweepCell cell;
    cell.index = i;
    cell.config = spec.base;
    std::size_t radix = total;
    std::size_t rest = i;
    for (const Axis& axis : axes) {
      radix /= axis.size();
      const AxisOption& option = axis[rest / radix];
      rest %= radix;
      option.apply(cell.config);
      append_label(cell.label, option.label);
    }
    if (cell.label.empty()) cell.label = "base";
    cells.push_back(std::move(cell));
  }
  return cells;
}

SweepRunner::SweepRunner(int jobs) : workers_(resolve_jobs(jobs)) {}

SweepResult SweepRunner::run(const SweepSpec& spec,
                             const Progress& progress) const {
  PERIGEE_ASSERT(spec.seeds >= 1);
  std::vector<SweepCell> cells = expand_grid(spec);
  const auto seeds = static_cast<std::size_t>(spec.seeds);
  const std::size_t total = cells.size() * seeds;

  // One pre-assigned slot per (cell, seed): jobs never contend on shared
  // state, and aggregation order below is fixed — this is what makes the
  // result independent of worker count and scheduling.
  std::vector<std::vector<std::vector<double>>> lambda(cells.size());
  std::vector<std::vector<std::vector<double>>> lambda50(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    lambda[c].resize(seeds);
    lambda50[c].resize(seeds);
  }

  std::atomic<std::size_t> done{0};
  ThreadPool pool(workers_);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t s = 0; s < seeds; ++s) {
      pool.submit([&, c, s] {
        core::ExperimentConfig config = cells[c].config;
        config.seed += static_cast<std::uint64_t>(s);
        PERIGEE_TRACE_SPAN_ARGS(cell_span, "sweep_cell",
                                obs::TraceArgs()
                                    .arg("cell", cells[c].label)
                                    .arg("seed", config.seed)
                                    .json());
        if (config.algorithm == core::Algorithm::Ideal) {
          core::IdealResult r = core::run_ideal_both(config);
          lambda[c][s] = std::move(r.lambda);
          lambda50[c][s] = std::move(r.lambda50);
        } else {
          core::ExperimentResult r = core::run_experiment(config);
          lambda[c][s] = std::move(r.lambda);
          lambda50[c][s] = std::move(r.lambda50);
        }
        if (progress) {
          progress(done.fetch_add(1, std::memory_order_relaxed) + 1, total);
        }
      });
    }
  }
  pool.wait();

  SweepResult result;
  result.cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellResult cr;
    cr.cell = std::move(cells[c]);
    cr.curve = metrics::aggregate_sorted_curves(std::move(lambda[c]));
    cr.curve50 = metrics::aggregate_sorted_curves(std::move(lambda50[c]));
    result.cells.push_back(std::move(cr));
  }
  return result;
}

namespace {

void write_curve(JsonWriter& w, const metrics::Curve& curve) {
  w.begin_object();
  w.field("mean", curve.mean);
  w.field("stddev", curve.stddev);
  w.end_object();
}

}  // namespace

void write_json(std::ostream& os, const SweepSpec& spec,
                const SweepResult& result, const obs::RunMeta* meta) {
  JsonWriter w(os);
  w.begin_object();
  w.field("name", spec.name);
  w.key("spec");
  w.begin_object();
  w.field("seeds", static_cast<std::int64_t>(spec.seeds));
  w.field("base_seed", static_cast<std::int64_t>(spec.base.seed));
  w.field("coverage", spec.base.coverage);
  w.end_object();
  // `meta` is provenance, not results: it holds volatile facts (wall-clock,
  // RSS), so the golden fixture and the byte-determinism diffs run without
  // it and CI strips it (scripts/strip_meta.py) before comparing files.
  if (meta != nullptr) {
    w.key("meta");
    w.begin_object();
    obs::write_run_meta_fields(w, *meta);
    w.end_object();
  }
  w.key("cells");
  w.begin_array();
  for (const CellResult& cr : result.cells) {
    const core::ExperimentConfig& config = cr.cell.config;
    w.begin_object();
    w.field("label", cr.cell.label);
    w.field("algorithm", core::algorithm_name(config.algorithm));
    w.field("nodes", static_cast<std::int64_t>(config.net.n));
    w.field("rounds", static_cast<std::int64_t>(config.rounds));
    w.field("hash_model", mining::hash_model_name(config.hash_model));
    w.field("validation_scale", config.net.validation_scale);
    w.field("relay", config.relay);
    w.field("churn", config.scenario.churn.rate);
    w.field("hetero",
            scenario::hetero_profile_name(config.scenario.hetero.profile));
    w.field("withhold", config.scenario.adversary.withhold_fraction);
    w.field("transmission",
            scenario::transmission_model_name(
                config.scenario.transmission.model));
    w.key("curve");
    write_curve(w, cr.curve);
    w.key("curve50");
    write_curve(w, cr.curve50);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

bool write_json_file(const std::string& path, const SweepSpec& spec,
                     const SweepResult& result, const obs::RunMeta* meta) {
  // Atomic temp-and-rename: a sweep interrupted mid-write (hours of cells
  // already computed elsewhere, ctrl-C, OOM kill) never leaves a truncated
  // results file where downstream tooling expects parsable JSON.
  return write_file_atomic(
      path, [&](std::ostream& os) { write_json(os, spec, result, meta); });
}

std::string default_json_path(const SweepSpec& spec) {
  return "BENCH_" + spec.name + ".json";
}

}  // namespace perigee::runner
