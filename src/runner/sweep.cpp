#include "runner/sweep.hpp"

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/meta.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/checkpoint.hpp"
#include "runner/json.hpp"
#include "runner/thread_pool.hpp"
#include "util/assert.hpp"

namespace perigee::runner {
namespace {

// One value of one expansion axis: how to stamp it into a cell config, and
// its label fragment ("" when the axis is not swept).
struct AxisOption {
  std::function<void(core::ExperimentConfig&)> apply;
  std::string label;
};
using Axis = std::vector<AxisOption>;

// Builds one axis: the swept values (each labeled), or the unswept base
// value with no label. Adding a sweep axis is one make_axis call in
// expand_grid plus the SweepSpec field — nothing else.
template <typename T, typename Setter, typename Labeler>
Axis make_axis(const std::vector<T>& swept, const T& base, Setter set,
               Labeler label) {
  Axis axis;
  if (swept.empty()) {
    axis.push_back({[set, base](core::ExperimentConfig& c) { set(c, base); },
                    std::string()});
    return axis;
  }
  axis.reserve(swept.size());
  for (const T& value : swept) {
    axis.push_back(
        {[set, value](core::ExperimentConfig& c) { set(c, value); },
         label(value)});
  }
  return axis;
}

void append_label(std::string& label, std::string_view part) {
  if (part.empty()) return;
  if (!label.empty()) label += ' ';
  label += part;
}

}  // namespace

std::vector<SweepCell> expand_grid(const SweepSpec& spec) {
  // Axis declaration order == expansion nesting order (outermost first) ==
  // label order. Every axis is either swept (labeled values) or pinned to
  // the base config's value (single unlabeled option).
  const std::vector<Axis> axes = {
      make_axis(
          spec.algorithms, spec.base.algorithm,
          [](core::ExperimentConfig& c, core::Algorithm v) {
            c.algorithm = v;
          },
          [](core::Algorithm v) {
            return "algorithm=" + std::string(core::algorithm_name(v));
          }),
      make_axis(
          spec.nodes, spec.base.net.n,
          [](core::ExperimentConfig& c, std::size_t v) { c.net.n = v; },
          [](std::size_t v) { return "n=" + std::to_string(v); }),
      make_axis(
          spec.rounds, spec.base.rounds,
          [](core::ExperimentConfig& c, int v) { c.rounds = v; },
          [](int v) { return "rounds=" + std::to_string(v); }),
      make_axis(
          spec.hash_models, spec.base.hash_model,
          [](core::ExperimentConfig& c, mining::HashPowerModel v) {
            c.hash_model = v;
          },
          [](mining::HashPowerModel v) {
            return "hash=" + std::string(mining::hash_model_name(v));
          }),
      make_axis(
          spec.validation_scales, spec.base.net.validation_scale,
          [](core::ExperimentConfig& c, double v) {
            c.net.validation_scale = v;
          },
          [](double v) { return "vscale=" + format_double(v); }),
      make_axis(
          spec.relay, spec.base.relay,
          [](core::ExperimentConfig& c, bool v) { c.relay = v; },
          [](bool v) { return std::string("relay=") + (v ? "on" : "off"); }),
      make_axis(
          spec.churn_rates, spec.base.scenario.churn.rate,
          [](core::ExperimentConfig& c, double v) {
            c.scenario.churn.rate = v;
          },
          [](double v) { return "churn=" + format_double(v); }),
      make_axis(
          spec.hetero_profiles, spec.base.scenario.hetero.profile,
          [](core::ExperimentConfig& c, scenario::HeteroProfile v) {
            c.scenario.hetero.profile = v;
          },
          [](scenario::HeteroProfile v) {
            return "hetero=" + std::string(scenario::hetero_profile_name(v));
          }),
      make_axis(
          spec.withhold_fractions,
          spec.base.scenario.adversary.withhold_fraction,
          [](core::ExperimentConfig& c, double v) {
            c.scenario.adversary.withhold_fraction = v;
          },
          [](double v) { return "withhold=" + format_double(v); }),
      make_axis(
          spec.transmission_models, spec.base.scenario.transmission.model,
          [](core::ExperimentConfig& c, scenario::TransmissionModel v) {
            c.scenario.transmission.model = v;
          },
          [](scenario::TransmissionModel v) {
            return "transmission=" +
                   std::string(scenario::transmission_model_name(v));
          }),
  };

  std::size_t total = 1;
  for (const Axis& axis : axes) total *= axis.size();

  // Mixed-radix decode of the cell index, first axis most significant —
  // exactly the order nested loops would visit.
  std::vector<SweepCell> cells;
  cells.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    SweepCell cell;
    cell.index = i;
    cell.config = spec.base;
    std::size_t radix = total;
    std::size_t rest = i;
    for (const Axis& axis : axes) {
      radix /= axis.size();
      const AxisOption& option = axis[rest / radix];
      rest %= radix;
      option.apply(cell.config);
      append_label(cell.label, option.label);
    }
    if (cell.label.empty()) cell.label = "base";
    cells.push_back(std::move(cell));
  }
  return cells;
}

SweepRunner::SweepRunner(int jobs) : workers_(resolve_jobs(jobs)) {}

SweepResult SweepRunner::run(const SweepSpec& spec,
                             const Progress& progress) const {
  return run(spec, SweepOptions{}, progress);
}

SweepResult SweepRunner::run(const SweepSpec& spec, const SweepOptions& options,
                             const Progress& progress) const {
  // A single shard only covers its 1/k of the grid; aggregate_slots would
  // (rightly) refuse the gap. Shard callers go run_slots -> write_shard_file.
  PERIGEE_ASSERT(options.shard_count == 1);
  return aggregate_slots(spec, run_slots(spec, options, progress));
}

std::vector<SlotCurves> SweepRunner::run_slots(const SweepSpec& spec,
                                               const SweepOptions& options,
                                               const Progress& progress) const {
  PERIGEE_ASSERT(spec.seeds >= 1);
  PERIGEE_ASSERT(options.shard_count >= 1);
  PERIGEE_ASSERT(options.shard_index >= 0 &&
                 options.shard_index < options.shard_count);
  PERIGEE_ASSERT(!options.resume || !options.checkpoint_dir.empty());

  const std::vector<SweepCell> cells = expand_grid(spec);
  const auto seeds = static_cast<std::size_t>(spec.seeds);
  const std::size_t jobs_total = cells.size() * seeds;
  const auto shard_count = static_cast<std::size_t>(options.shard_count);
  const auto shard_index = static_cast<std::size_t>(options.shard_index);
  const auto mine = [&](std::size_t j) { return j % shard_count == shard_index; };

  std::optional<CheckpointStore> store;
  if (!options.checkpoint_dir.empty()) {
    store.emplace(options.checkpoint_dir, grid_fingerprint(spec));
    store->prepare();
  }

  // One pre-assigned slot per job j = cell * seeds + seed: jobs never
  // contend on shared state, and downstream aggregation order is fixed —
  // this is what makes the result independent of worker count, scheduling,
  // shard splits, and crash/resume boundaries.
  std::vector<SlotCurves> slots(jobs_total);
  std::vector<char> have(jobs_total, 0);

  if (options.resume && store) {
    for (SlotCurves& slot : store->load_all()) {
      // The fingerprint matched, so the checkpoint addresses this exact
      // grid; out-of-range indices mean a corrupted file, not a stale grid.
      if (slot.cell >= cells.size() || slot.seed >= seeds) {
        throw std::runtime_error("checkpoint slot (cell " +
                                 std::to_string(slot.cell) + ", seed " +
                                 std::to_string(slot.seed) +
                                 ") is outside the grid");
      }
      const std::size_t j = slot.cell * seeds + slot.seed;
      have[j] = 1;
      slots[j] = std::move(slot);
    }
  }

  std::size_t total = 0;    // this shard's share of the grid
  std::size_t resumed = 0;  // ... of which already checkpointed
  for (std::size_t j = 0; j < jobs_total; ++j) {
    if (!mine(j)) continue;
    ++total;
    if (have[j]) ++resumed;
  }
  PERIGEE_COUNTER_ADD("sweep.resume_skips",
                      static_cast<std::int64_t>(resumed));

  // Cross-cell build reuse: jobs that agree on every scenario-determining
  // axis (same scenario_signature — policy axes like algorithm, rounds and
  // churn excluded) share one lazily built master scenario. The first job
  // of a group builds it, the rest clone; the last one through frees it.
  struct BuildGroup {
    std::once_flag once;
    std::shared_ptr<const core::Scenario> scenario;
    std::atomic<std::size_t> remaining{0};
  };
  std::vector<std::unique_ptr<BuildGroup>> groups;
  std::vector<BuildGroup*> group_of(jobs_total, nullptr);
  if (options.reuse_builds) {
    std::map<std::string, std::vector<std::size_t>> by_signature;
    for (std::size_t j = 0; j < jobs_total; ++j) {
      if (!mine(j) || have[j]) continue;
      core::ExperimentConfig config = cells[j / seeds].config;
      config.seed += static_cast<std::uint64_t>(j % seeds);
      by_signature[scenario_signature(config)].push_back(j);
    }
    for (auto& [signature, members] : by_signature) {
      if (members.size() < 2) continue;  // nothing to share
      auto group = std::make_unique<BuildGroup>();
      group->remaining.store(members.size(), std::memory_order_relaxed);
      for (const std::size_t j : members) group_of[j] = group.get();
      groups.push_back(std::move(group));
    }
  }

  std::atomic<std::size_t> done{resumed};
  // Resumed slots count as instantly done; plain runs keep the historical
  // contract of exactly one progress call per completed job.
  if (progress && resumed > 0) progress(resumed, total);
  ThreadPool pool(workers_);
  for (std::size_t j = 0; j < jobs_total; ++j) {
    if (!mine(j) || have[j]) continue;
    pool.submit([&, j] {
      const std::size_t c = j / seeds;
      const std::size_t s = j % seeds;
      core::ExperimentConfig config = cells[c].config;
      config.seed += static_cast<std::uint64_t>(s);
      PERIGEE_TRACE_SPAN_ARGS(cell_span, "sweep_cell",
                              obs::TraceArgs()
                                  .arg("cell", cells[c].label)
                                  .arg("seed", config.seed)
                                  .json());
      BuildGroup* group = group_of[j];
      std::shared_ptr<const core::Scenario> prebuilt;
      if (group != nullptr) {
        bool built = false;
        std::call_once(group->once, [&] {
          group->scenario = std::make_shared<const core::Scenario>(
              core::build_scenario(config));
          built = true;
          PERIGEE_COUNTER_ADD("sweep.scenario_builds", 1);
        });
        if (!built) PERIGEE_COUNTER_ADD("sweep.scenario_reuses", 1);
        prebuilt = group->scenario;
      }
      core::CellCurves curves = core::run_cell_curves(config, prebuilt.get());
      if (group != nullptr &&
          group->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        group->scenario.reset();  // last user; `prebuilt` copies keep theirs
      }
      slots[j] = SlotCurves{c, s, std::move(curves.lambda),
                            std::move(curves.lambda50)};
      have[j] = 1;
      if (store && store->save(slots[j])) {
        PERIGEE_COUNTER_ADD("sweep.checkpoint_writes", 1);
      }
      if (progress) {
        progress(done.fetch_add(1, std::memory_order_relaxed) + 1, total);
      }
    });
  }
  pool.wait();

  std::vector<SlotCurves> out;
  out.reserve(total);
  for (std::size_t j = 0; j < jobs_total; ++j) {
    if (!mine(j)) continue;
    PERIGEE_ASSERT(have[j]);
    out.push_back(std::move(slots[j]));
  }
  return out;
}

SweepResult aggregate_slots(const SweepSpec& spec,
                            std::vector<SlotCurves> slots) {
  std::vector<SweepCell> cells = expand_grid(spec);
  const auto seeds = static_cast<std::size_t>(spec.seeds);

  std::vector<std::vector<std::vector<double>>> lambda(cells.size());
  std::vector<std::vector<std::vector<double>>> lambda50(cells.size());
  std::vector<std::vector<char>> have(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    lambda[c].resize(seeds);
    lambda50[c].resize(seeds);
    have[c].assign(seeds, 0);
  }

  for (SlotCurves& slot : slots) {
    if (slot.cell >= cells.size() || slot.seed >= seeds) {
      throw std::runtime_error("slot (cell " + std::to_string(slot.cell) +
                               ", seed " + std::to_string(slot.seed) +
                               ") is outside the grid");
    }
    if (have[slot.cell][slot.seed]) {
      throw std::runtime_error("duplicate slot (cell " +
                               std::to_string(slot.cell) + ", seed " +
                               std::to_string(slot.seed) + ")");
    }
    have[slot.cell][slot.seed] = 1;
    lambda[slot.cell][slot.seed] = std::move(slot.lambda);
    lambda50[slot.cell][slot.seed] = std::move(slot.lambda50);
  }

  std::size_t missing = 0;
  for (const auto& cell_have : have) {
    for (const char h : cell_have) missing += h == 0;
  }
  if (missing > 0) {
    throw std::runtime_error(
        "incomplete sweep coverage: " + std::to_string(missing) + " of " +
        std::to_string(cells.size() * seeds) + " (cell, seed) slots missing");
  }

  SweepResult result;
  result.cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellResult cr;
    cr.cell = std::move(cells[c]);
    cr.curve = metrics::aggregate_sorted_curves(std::move(lambda[c]));
    cr.curve50 = metrics::aggregate_sorted_curves(std::move(lambda50[c]));
    result.cells.push_back(std::move(cr));
  }
  return result;
}

SweepResult merge_shards(const SweepSpec& spec,
                         const std::vector<std::string>& paths) {
  if (paths.empty()) throw std::runtime_error("merge: no shard files given");
  const std::string fingerprint = grid_fingerprint(spec);
  const int shard_count = static_cast<int>(paths.size());
  std::vector<char> seen(paths.size(), 0);
  std::vector<SlotCurves> slots;
  for (const std::string& path : paths) {
    ShardFile shard = read_shard_file(path, fingerprint);
    if (shard.shard_count != shard_count) {
      throw std::runtime_error(path + ": written as shard of " +
                               std::to_string(shard.shard_count) + " but " +
                               std::to_string(shard_count) + " files given");
    }
    if (shard.shard_index < 0 || shard.shard_index >= shard_count) {
      throw std::runtime_error(path + ": shard index out of range");
    }
    if (seen[static_cast<std::size_t>(shard.shard_index)]) {
      throw std::runtime_error(path + ": duplicate shard " +
                               std::to_string(shard.shard_index));
    }
    seen[static_cast<std::size_t>(shard.shard_index)] = 1;
    for (SlotCurves& slot : shard.slots) slots.push_back(std::move(slot));
  }
  // aggregate_slots rejects any remaining gap or overlap between shards.
  return aggregate_slots(spec, std::move(slots));
}

std::string default_shard_path(const SweepSpec& spec, int shard_index,
                               int shard_count) {
  return "BENCH_" + spec.name + ".shard" + std::to_string(shard_index) +
         "of" + std::to_string(shard_count) + ".json";
}

ProgressPrinter::ProgressPrinter(std::ostream& os, std::string label)
    : os_(os), label_(std::move(label)) {}

void ProgressPrinter::operator()(std::size_t done, std::size_t total) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // fetch_add in the runner and this lock are not one atomic step, so a
  // larger count can arrive first; printing the straggler would make the
  // meter jump backwards.
  if (dirty_ && done < last_done_) return;
  last_done_ = done;
  dirty_ = true;
  os_ << '\r' << label_ << done << '/' << total << std::flush;
}

void ProgressPrinter::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!dirty_) return;
  os_ << '\n' << std::flush;
  dirty_ = false;
}

namespace {

void write_curve(JsonWriter& w, const metrics::Curve& curve) {
  w.begin_object();
  w.field("mean", curve.mean);
  w.field("stddev", curve.stddev);
  w.end_object();
}

}  // namespace

void write_json(std::ostream& os, const SweepSpec& spec,
                const SweepResult& result, const obs::RunMeta* meta) {
  JsonWriter w(os);
  w.begin_object();
  w.field("name", spec.name);
  w.key("spec");
  w.begin_object();
  w.field("seeds", static_cast<std::int64_t>(spec.seeds));
  w.field("base_seed", static_cast<std::int64_t>(spec.base.seed));
  w.field("coverage", spec.base.coverage);
  w.end_object();
  // `meta` is provenance, not results: it holds volatile facts (wall-clock,
  // RSS), so the golden fixture and the byte-determinism diffs run without
  // it and CI strips it (scripts/strip_meta.py) before comparing files.
  if (meta != nullptr) {
    w.key("meta");
    w.begin_object();
    obs::write_run_meta_fields(w, *meta);
    w.end_object();
  }
  w.key("cells");
  w.begin_array();
  for (const CellResult& cr : result.cells) {
    const core::ExperimentConfig& config = cr.cell.config;
    w.begin_object();
    w.field("label", cr.cell.label);
    w.field("algorithm", core::algorithm_name(config.algorithm));
    w.field("nodes", static_cast<std::int64_t>(config.net.n));
    w.field("rounds", static_cast<std::int64_t>(config.rounds));
    w.field("hash_model", mining::hash_model_name(config.hash_model));
    w.field("validation_scale", config.net.validation_scale);
    w.field("relay", config.relay);
    w.field("churn", config.scenario.churn.rate);
    w.field("hetero",
            scenario::hetero_profile_name(config.scenario.hetero.profile));
    w.field("withhold", config.scenario.adversary.withhold_fraction);
    w.field("transmission",
            scenario::transmission_model_name(
                config.scenario.transmission.model));
    w.key("curve");
    write_curve(w, cr.curve);
    w.key("curve50");
    write_curve(w, cr.curve50);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

bool write_json_file(const std::string& path, const SweepSpec& spec,
                     const SweepResult& result, const obs::RunMeta* meta) {
  // Atomic temp-and-rename: a sweep interrupted mid-write (hours of cells
  // already computed elsewhere, ctrl-C, OOM kill) never leaves a truncated
  // results file where downstream tooling expects parsable JSON.
  return write_file_atomic(
      path, [&](std::ostream& os) { write_json(os, spec, result, meta); });
}

std::string default_json_path(const SweepSpec& spec) {
  return "BENCH_" + spec.name + ".json";
}

}  // namespace perigee::runner
