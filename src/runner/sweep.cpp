#include "runner/sweep.hpp"

#include <atomic>
#include <fstream>
#include <string>
#include <utility>

#include "runner/json.hpp"
#include "runner/thread_pool.hpp"
#include "util/assert.hpp"

namespace perigee::runner {
namespace {

template <typename T>
std::vector<T> axis_or(const std::vector<T>& axis, const T& base) {
  if (!axis.empty()) return axis;
  return {base};
}

void append_label(std::string& label, std::string_view part) {
  if (!label.empty()) label += ' ';
  label += part;
}

}  // namespace

std::vector<SweepCell> expand_grid(const SweepSpec& spec) {
  const auto algorithms = axis_or(spec.algorithms, spec.base.algorithm);
  const auto nodes = axis_or(spec.nodes, spec.base.net.n);
  const auto rounds = axis_or(spec.rounds, spec.base.rounds);
  const auto hash_models = axis_or(spec.hash_models, spec.base.hash_model);
  const auto validation_scales =
      axis_or(spec.validation_scales, spec.base.net.validation_scale);
  const auto relay = axis_or(spec.relay, spec.base.relay);

  std::vector<SweepCell> cells;
  cells.reserve(algorithms.size() * nodes.size() * rounds.size() *
                hash_models.size() * validation_scales.size() * relay.size());
  for (const auto algorithm : algorithms) {
    for (const auto n : nodes) {
      for (const auto r : rounds) {
        for (const auto hash : hash_models) {
          for (const auto vscale : validation_scales) {
            for (const bool rl : relay) {
              SweepCell cell;
              cell.index = cells.size();
              cell.config = spec.base;
              cell.config.algorithm = algorithm;
              cell.config.net.n = n;
              cell.config.rounds = r;
              cell.config.hash_model = hash;
              cell.config.net.validation_scale = vscale;
              cell.config.relay = rl;
              // Label only the axes that are actually swept.
              if (!spec.algorithms.empty()) {
                append_label(cell.label, std::string("algorithm=") +
                                             std::string(core::algorithm_name(
                                                 algorithm)));
              }
              if (!spec.nodes.empty()) {
                append_label(cell.label, "n=" + std::to_string(n));
              }
              if (!spec.rounds.empty()) {
                append_label(cell.label, "rounds=" + std::to_string(r));
              }
              if (!spec.hash_models.empty()) {
                append_label(cell.label,
                             std::string("hash=") +
                                 std::string(mining::hash_model_name(hash)));
              }
              if (!spec.validation_scales.empty()) {
                append_label(cell.label,
                             "vscale=" + format_double(vscale));
              }
              if (!spec.relay.empty()) {
                append_label(cell.label,
                             std::string("relay=") + (rl ? "on" : "off"));
              }
              if (cell.label.empty()) cell.label = "base";
              cells.push_back(std::move(cell));
            }
          }
        }
      }
    }
  }
  return cells;
}

SweepRunner::SweepRunner(int jobs) : workers_(resolve_jobs(jobs)) {}

SweepResult SweepRunner::run(const SweepSpec& spec,
                             const Progress& progress) const {
  PERIGEE_ASSERT(spec.seeds >= 1);
  std::vector<SweepCell> cells = expand_grid(spec);
  const auto seeds = static_cast<std::size_t>(spec.seeds);
  const std::size_t total = cells.size() * seeds;

  // One pre-assigned slot per (cell, seed): jobs never contend on shared
  // state, and aggregation order below is fixed — this is what makes the
  // result independent of worker count and scheduling.
  std::vector<std::vector<std::vector<double>>> lambda(cells.size());
  std::vector<std::vector<std::vector<double>>> lambda50(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    lambda[c].resize(seeds);
    lambda50[c].resize(seeds);
  }

  std::atomic<std::size_t> done{0};
  ThreadPool pool(workers_);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t s = 0; s < seeds; ++s) {
      pool.submit([&, c, s] {
        core::ExperimentConfig config = cells[c].config;
        config.seed += static_cast<std::uint64_t>(s);
        if (config.algorithm == core::Algorithm::Ideal) {
          core::IdealResult r = core::run_ideal_both(config);
          lambda[c][s] = std::move(r.lambda);
          lambda50[c][s] = std::move(r.lambda50);
        } else {
          core::ExperimentResult r = core::run_experiment(config);
          lambda[c][s] = std::move(r.lambda);
          lambda50[c][s] = std::move(r.lambda50);
        }
        if (progress) {
          progress(done.fetch_add(1, std::memory_order_relaxed) + 1, total);
        }
      });
    }
  }
  pool.wait();

  SweepResult result;
  result.cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellResult cr;
    cr.cell = std::move(cells[c]);
    cr.curve = metrics::aggregate_sorted_curves(std::move(lambda[c]));
    cr.curve50 = metrics::aggregate_sorted_curves(std::move(lambda50[c]));
    result.cells.push_back(std::move(cr));
  }
  return result;
}

namespace {

void write_curve(JsonWriter& w, const metrics::Curve& curve) {
  w.begin_object();
  w.field("mean", curve.mean);
  w.field("stddev", curve.stddev);
  w.end_object();
}

}  // namespace

void write_json(std::ostream& os, const SweepSpec& spec,
                const SweepResult& result) {
  JsonWriter w(os);
  w.begin_object();
  w.field("name", spec.name);
  w.key("spec");
  w.begin_object();
  w.field("seeds", static_cast<std::int64_t>(spec.seeds));
  w.field("base_seed", static_cast<std::int64_t>(spec.base.seed));
  w.field("coverage", spec.base.coverage);
  w.end_object();
  w.key("cells");
  w.begin_array();
  for (const CellResult& cr : result.cells) {
    const core::ExperimentConfig& config = cr.cell.config;
    w.begin_object();
    w.field("label", cr.cell.label);
    w.field("algorithm", core::algorithm_name(config.algorithm));
    w.field("nodes", static_cast<std::int64_t>(config.net.n));
    w.field("rounds", static_cast<std::int64_t>(config.rounds));
    w.field("hash_model", mining::hash_model_name(config.hash_model));
    w.field("validation_scale", config.net.validation_scale);
    w.field("relay", config.relay);
    w.key("curve");
    write_curve(w, cr.curve);
    w.key("curve50");
    write_curve(w, cr.curve50);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

bool write_json_file(const std::string& path, const SweepSpec& spec,
                     const SweepResult& result) {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os, spec, result);
  return os.good();
}

std::string default_json_path(const SweepSpec& spec) {
  return "BENCH_" + spec.name + ".json";
}

}  // namespace perigee::runner
