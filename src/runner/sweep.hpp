// Declarative experiment grids over ExperimentConfig, executed in parallel.
//
// A SweepSpec names the axes to sweep (algorithm, n, rounds, hash model,
// validation scale, relay, and the scenario axes: churn rate, heterogeneity
// profile, withholding fraction, transmission model); expand_grid() turns
// it into the cartesian
// list of cells in a fixed nesting order, and SweepRunner executes every
// (cell, seed) pair as an independent job on a work-stealing ThreadPool.
// Each job derives its seed as base seed + seed index and writes into a
// pre-assigned slot, so the aggregated per-cell Curves are bit-identical at
// any --jobs value — including --jobs 1, which is the sequential reference.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "metrics/curves.hpp"
#include "scenario/scenario.hpp"

namespace perigee::obs {
struct RunMeta;
}  // namespace perigee::obs

namespace perigee::runner {

struct SweepSpec {
  // Used for the default output path BENCH_<name>.json.
  std::string name = "sweep";

  // Values for every field that is not swept below, including the base seed
  // (seed s of a cell runs with base.seed + s) and the λ coverage.
  core::ExperimentConfig base;

  // Swept axes, outermost first in the expansion order. An empty axis means
  // "not swept": the cell inherits the base value and the axis is left out
  // of cell labels.
  std::vector<core::Algorithm> algorithms;
  std::vector<std::size_t> nodes;
  std::vector<int> rounds;
  std::vector<mining::HashPowerModel> hash_models;
  std::vector<double> validation_scales;
  std::vector<bool> relay;

  // Scenario axes (src/scenario): each value overwrites the corresponding
  // field of base.scenario. Churn rates are per-round node fractions;
  // withhold fractions mark that share of nodes as never-forwarding
  // adversaries; hetero profiles select a named two-tier capability mix.
  std::vector<double> churn_rates;
  std::vector<scenario::HeteroProfile> hetero_profiles;
  std::vector<double> withhold_fractions;
  // Transmission models select the broadcast engine per cell: "delay" is
  // the pure-propagation default, "queue" the egress queuing engine
  // (docs/TRANSMISSION_MODEL.md). A result axis, echoed in cell JSON.
  std::vector<scenario::TransmissionModel> transmission_models;

  // Independent repetitions per cell (aggregated into mean/stddev curves).
  int seeds = 1;
};

struct SweepCell {
  std::size_t index = 0;  // position in expansion order
  std::string label;      // swept axes only, e.g. "algorithm=random n=600"
  core::ExperimentConfig config;  // seed = spec.base.seed (jobs add s)
};

// Cartesian expansion in the axis order declared above. Algorithm::Ideal is
// a valid axis value: its cells are evaluated analytically via run_ideal.
std::vector<SweepCell> expand_grid(const SweepSpec& spec);

struct CellResult {
  SweepCell cell;
  metrics::Curve curve;    // sorted-λ at spec.base.coverage
  metrics::Curve curve50;  // sorted-λ at 50% coverage
};

struct SweepResult {
  std::vector<CellResult> cells;  // expansion order, independent of --jobs
};

class SweepRunner {
 public:
  // jobs semantics match resolve_jobs: > 0 exact, <= 0 all hardware threads.
  explicit SweepRunner(int jobs = 0);

  unsigned workers() const { return workers_; }

  // Runs the full grid. `progress` (optional) is invoked after every
  // completed job as progress(done, total); it may be called concurrently
  // from worker threads.
  using Progress = std::function<void(std::size_t done, std::size_t total)>;
  SweepResult run(const SweepSpec& spec, const Progress& progress = {}) const;

 private:
  unsigned workers_;
};

// Serializes a sweep result (spec echo + per-cell curves) as deterministic
// JSON: no timestamps, no timings, to_chars number formatting — files from
// different --jobs runs diff clean. A non-null `meta` adds a top-level
// "meta" provenance object (build/compiler/git/RSS/wall-clock); callers
// that byte-compare output (tests, the determinism CI diffs) pass null or
// strip it first.
void write_json(std::ostream& os, const SweepSpec& spec,
                const SweepResult& result,
                const obs::RunMeta* meta = nullptr);

// write_json to `path` (BENCH_<name>.json convention). Returns false when
// the file cannot be opened.
bool write_json_file(const std::string& path, const SweepSpec& spec,
                     const SweepResult& result,
                     const obs::RunMeta* meta = nullptr);

std::string default_json_path(const SweepSpec& spec);

}  // namespace perigee::runner
