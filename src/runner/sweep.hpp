// Declarative experiment grids over ExperimentConfig, executed in parallel.
//
// A SweepSpec names the axes to sweep (algorithm, n, rounds, hash model,
// validation scale, relay, and the scenario axes: churn rate, heterogeneity
// profile, withholding fraction, transmission model); expand_grid() turns
// it into the cartesian
// list of cells in a fixed nesting order, and SweepRunner executes every
// (cell, seed) pair as an independent job on a work-stealing ThreadPool.
// Each job derives its seed as base seed + seed index and writes into a
// pre-assigned slot, so the aggregated per-cell Curves are bit-identical at
// any --jobs value — including --jobs 1, which is the sequential reference.
//
// The same slot discipline is what makes the sweep a restartable service
// rather than an all-or-nothing batch: a job's output is a pure function of
// (spec, cell, seed), so completed slots can be persisted as they finish
// (SweepOptions::checkpoint_dir, runner/checkpoint.hpp), reloaded on resume,
// computed by k coordination-free shard processes (jobs split round-robin by
// job index), and folded back together (merge_shards) — all byte-identical
// to one uninterrupted single-process run.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "metrics/curves.hpp"
#include "scenario/scenario.hpp"

namespace perigee::obs {
struct RunMeta;
}  // namespace perigee::obs

namespace perigee::runner {

struct SweepSpec {
  // Used for the default output path BENCH_<name>.json.
  std::string name = "sweep";

  // Values for every field that is not swept below, including the base seed
  // (seed s of a cell runs with base.seed + s) and the λ coverage.
  core::ExperimentConfig base;

  // Swept axes, outermost first in the expansion order. An empty axis means
  // "not swept": the cell inherits the base value and the axis is left out
  // of cell labels.
  std::vector<core::Algorithm> algorithms;
  std::vector<std::size_t> nodes;
  std::vector<int> rounds;
  std::vector<mining::HashPowerModel> hash_models;
  std::vector<double> validation_scales;
  std::vector<bool> relay;

  // Scenario axes (src/scenario): each value overwrites the corresponding
  // field of base.scenario. Churn rates are per-round node fractions;
  // withhold fractions mark that share of nodes as never-forwarding
  // adversaries; hetero profiles select a named two-tier capability mix.
  std::vector<double> churn_rates;
  std::vector<scenario::HeteroProfile> hetero_profiles;
  std::vector<double> withhold_fractions;
  // Transmission models select the broadcast engine per cell: "delay" is
  // the pure-propagation default, "queue" the egress queuing engine
  // (docs/TRANSMISSION_MODEL.md). A result axis, echoed in cell JSON.
  std::vector<scenario::TransmissionModel> transmission_models;

  // Independent repetitions per cell (aggregated into mean/stddev curves).
  int seeds = 1;
};

struct SweepCell {
  std::size_t index = 0;  // position in expansion order
  std::string label;      // swept axes only, e.g. "algorithm=random n=600"
  core::ExperimentConfig config;  // seed = spec.base.seed (jobs add s)
};

// Cartesian expansion in the axis order declared above. Algorithm::Ideal is
// a valid axis value: its cells are evaluated analytically via run_ideal.
std::vector<SweepCell> expand_grid(const SweepSpec& spec);

struct CellResult {
  SweepCell cell;
  metrics::Curve curve;    // sorted-λ at spec.base.coverage
  metrics::Curve curve50;  // sorted-λ at 50% coverage
};

struct SweepResult {
  std::vector<CellResult> cells;  // expansion order, independent of --jobs
};

// One completed (cell, seed) job's raw λ vectors — the unit of
// checkpointing, shard exchange, and merging (runner/checkpoint.hpp
// persists exactly this).
struct SlotCurves {
  std::size_t cell = 0;  // cell index in expansion order
  std::size_t seed = 0;  // seed index (job ran with base.seed + seed)
  std::vector<double> lambda;    // per-node λ at spec.base.coverage
  std::vector<double> lambda50;  // per-node λ at 50% coverage
};

// Service options for SweepRunner. Defaults reproduce the plain batch run.
struct SweepOptions {
  // When non-empty, every completed job is persisted there as
  // cell<c>_seed<s>.json through write_file_atomic, tagged with the grid
  // fingerprint. A crash loses at most the jobs in flight.
  std::string checkpoint_dir;

  // Load completed slots from checkpoint_dir before running and skip them.
  // Requires checkpoint_dir. Files fingerprinted for a different grid make
  // the run throw rather than fold in foreign data.
  bool resume = false;

  // Deterministic shard split: this process runs only the jobs j
  // (= cell_index * seeds + seed_index, expansion order) with
  // j % shard_count == shard_index. Round-robin by job index balances load
  // across shards without any cross-process coordination.
  int shard_index = 0;
  int shard_count = 1;

  // Build each distinct scenario (same topology axes + seed) once per run
  // and clone it across the cells that share it, instead of resampling the
  // identical network per cell. Byte-identical either way (the clone
  // contract, pinned by tests); purely a wall-clock saver for policy-axis
  // grids (algorithm, rounds, churn).
  bool reuse_builds = true;
};

class SweepRunner {
 public:
  // jobs semantics match resolve_jobs: > 0 exact, <= 0 all hardware threads.
  explicit SweepRunner(int jobs = 0);

  unsigned workers() const { return workers_; }

  // Runs the full grid. `progress` (optional) is invoked after every
  // completed job as progress(done, total); it may be called concurrently
  // from worker threads (ProgressPrinter below serializes terminal output).
  using Progress = std::function<void(std::size_t done, std::size_t total)>;
  SweepResult run(const SweepSpec& spec, const Progress& progress = {}) const;

  // run with service options. shard_count must be 1 here — a single shard
  // cannot aggregate the full grid; run run_slots + write_shard_file per
  // shard, then merge_shards.
  SweepResult run(const SweepSpec& spec, const SweepOptions& options,
                  const Progress& progress = {}) const;

  // The service core: executes this shard's share of the grid (all of it at
  // shard_count == 1), honoring resume (checkpointed slots are loaded, not
  // recomputed) and per-job checkpointing, and returns the shard's slots
  // sorted by (cell, seed). progress counts resumed slots as instantly done.
  std::vector<SlotCurves> run_slots(const SweepSpec& spec,
                                    const SweepOptions& options,
                                    const Progress& progress = {}) const;

 private:
  unsigned workers_;
};

// Folds raw slots into the final per-cell curves, aggregating in expansion
// order — the exact code path of an uninterrupted run, so resumed and merged
// results are byte-identical to it. Throws std::runtime_error unless the
// slots cover every (cell, seed) of the grid exactly once.
SweepResult aggregate_slots(const SweepSpec& spec,
                            std::vector<SlotCurves> slots);

// Reads k shard files (write_shard_file in runner/checkpoint.hpp) and folds
// them into the single-process result. Throws std::runtime_error when a file
// is malformed, fingerprinted for a different grid, shard metadata is
// inconsistent (mixed k, duplicate or missing shard indices), or coverage is
// incomplete.
SweepResult merge_shards(const SweepSpec& spec,
                         const std::vector<std::string>& paths);

// "BENCH_<name>.shard<i>of<k>.json" next to default_json_path.
std::string default_shard_path(const SweepSpec& spec, int shard_index,
                               int shard_count);

// Thread-safe "\r done/total" progress meter for SweepRunner::Progress.
// Workers report completions concurrently; a mutex serializes the stream
// writes and stale updates (a lower count arriving after a higher one) are
// dropped, so the displayed counter is monotone and lines never interleave.
class ProgressPrinter {
 public:
  // `label` prefixes the counter, e.g. "sweep 12/40".
  explicit ProgressPrinter(std::ostream& os, std::string label = {});

  // SweepRunner::Progress-compatible; safe from any thread. Bind with
  // std::ref — the printer owns a mutex and must not be copied.
  void operator()(std::size_t done, std::size_t total);

  // Terminates the \r line with a newline (once) if anything was printed.
  void finish();

 private:
  std::mutex mutex_;
  std::ostream& os_;
  std::string label_;
  std::size_t last_done_ = 0;
  bool dirty_ = false;
};

// Serializes a sweep result (spec echo + per-cell curves) as deterministic
// JSON: no timestamps, no timings, to_chars number formatting — files from
// different --jobs runs diff clean. A non-null `meta` adds a top-level
// "meta" provenance object (build/compiler/git/RSS/wall-clock); callers
// that byte-compare output (tests, the determinism CI diffs) pass null or
// strip it first.
void write_json(std::ostream& os, const SweepSpec& spec,
                const SweepResult& result,
                const obs::RunMeta* meta = nullptr);

// write_json to `path` (BENCH_<name>.json convention). Returns false when
// the file cannot be opened.
bool write_json_file(const std::string& path, const SweepSpec& spec,
                     const SweepResult& result,
                     const obs::RunMeta* meta = nullptr);

std::string default_json_path(const SweepSpec& spec);

}  // namespace perigee::runner
