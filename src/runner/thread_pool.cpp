#include "runner/thread_pool.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace perigee::runner {

unsigned resolve_jobs(int requested) {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers) {
  PERIGEE_ASSERT(workers >= 1);
  queues_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back(
        [this, i](std::stop_token stop) { worker_loop(stop, i); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) w.request_stop();
  work_cv_.notify_all();
  // jthread joins on destruction.
}

void ThreadPool::submit(std::function<void()> job) {
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(queues_[target]->mutex);
    queues_[target]->jobs.push_back(std::move(job));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Fence against a worker that just saw an empty queue and is about to
  // block: once we hold sleep_mutex_ it is either fully asleep (the notify
  // wakes it) or re-checking the predicate (it sees queued_ > 0).
  { std::lock_guard lock(sleep_mutex_); }
  work_cv_.notify_one();
}

bool ThreadPool::try_acquire(unsigned self, std::function<void()>& out) {
  const std::size_t k = queues_.size();
  // Own deque first, newest job (LIFO: warm caches for fan-out helpers) ...
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard lock(own.mutex);
    if (!own.jobs.empty()) {
      out = std::move(own.jobs.back());
      own.jobs.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      PERIGEE_COUNTER_ADD("pool.self_pops", 1);
      return true;
    }
  }
  // ... then steal the oldest job from a sibling (FIFO: take the chunk its
  // owner would touch last).
  for (std::size_t d = 1; d < k; ++d) {
    WorkerQueue& victim = *queues_[(self + d) % k];
    std::lock_guard lock(victim.mutex);
    if (!victim.jobs.empty()) {
      out = std::move(victim.jobs.front());
      victim.jobs.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      PERIGEE_COUNTER_ADD("pool.steals", 1);
      return true;
    }
  }
  return false;
}

void ThreadPool::run_job(std::function<void()>& job) {
  try {
    job();
  } catch (...) {
    std::lock_guard lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  job = nullptr;  // release captures before signalling completion
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(done_mutex_);
    done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(std::stop_token stop, unsigned self) {
  std::function<void()> job;
  while (!stop.stop_requested()) {
    if (try_acquire(self, job)) {
      run_job(job);
      continue;
    }
    // Idle transition: the worker found every deque empty and blocks until
    // the next submit. High counts with low steals mean submission is too
    // bursty for the worker count.
    PERIGEE_COUNTER_ADD("pool.sleeps", 1);
    std::unique_lock lock(sleep_mutex_);
    work_cv_.wait(lock, stop, [this] {
      return queued_.load(std::memory_order_acquire) > 0;
    });
  }
}

void ThreadPool::wait() {
  {
    std::unique_lock lock(done_mutex_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr error;
  {
    std::lock_guard lock(error_mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait();
}

void run_team(ThreadPool& pool, unsigned members,
              const std::function<void(unsigned)>& fn) {
  PERIGEE_ASSERT_MSG(members <= pool.size(),
                     "a barrier team larger than the pool would deadlock");
  for (unsigned m = 0; m < members; ++m) {
    pool.submit([&fn, m] { fn(m); });
  }
  pool.wait();
}

}  // namespace perigee::runner
