// Work-stealing thread pool for embarrassingly-parallel experiment grids.
//
// Fixed worker count (std::jthread). Each worker owns a deque: it pops its
// own work LIFO (cache-warm) and steals FIFO from its siblings when idle, so
// a burst of unevenly-sized experiment jobs keeps every core busy without a
// single contended queue. Determinism is the caller's job — jobs must write
// results into pre-assigned slots; the pool guarantees only completion.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace perigee::runner {

// Maps a user-facing --jobs value to a worker count: values > 0 pass
// through; 0 (and negatives) mean "all hardware threads", never less than 1.
unsigned resolve_jobs(int requested);

class ThreadPool {
 public:
  // workers must be >= 1 (use resolve_jobs to map a --jobs flag).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues a job. Round-robins across worker deques so independent
  // submissions spread out even before stealing kicks in.
  void submit(std::function<void()> job);

  // Blocks until every submitted job has finished, then rethrows the first
  // exception any job raised (if any). Call from the owning thread, not from
  // inside a job. The pool is reusable after wait() returns or throws.
  void wait();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> jobs;
  };

  bool try_acquire(unsigned self, std::function<void()>& out);
  void worker_loop(std::stop_token stop, unsigned self);
  void run_job(std::function<void()>& job);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::size_t> queued_{0};   // jobs sitting in deques
  std::atomic<std::size_t> pending_{0};  // queued + currently running

  std::mutex sleep_mutex_;
  std::condition_variable_any work_cv_;

  std::mutex done_mutex_;
  std::condition_variable done_cv_;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;

  // Last member: workers start after every queue exists and must be gone
  // before the queues are destroyed.
  std::vector<std::jthread> workers_;
};

// Runs fn(0), ..., fn(n-1) across the pool and blocks until all complete.
// Rethrows the first exception. Iteration-to-thread assignment is arbitrary;
// determinism comes from fn writing to its own index.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

// Runs fn(0), ..., fn(members-1) as one cooperating *team*: unlike
// parallel_for's independent jobs, team members may synchronize with each
// other (std::barrier phases — the bucket-synchronous relaxation engine is
// the client). Safe on this pool because members <= pool.size() is required
// (asserted): every member blocked on a barrier occupies a distinct worker
// thread, and a worker never picks up a second job while one is in flight,
// so the remaining members always find a free worker and the barrier cannot
// deadlock. Blocks until the whole team finishes; rethrows the first
// exception (note: a member that throws between barrier phases strands its
// teammates, so member bodies must not throw mid-phase — same contract as
// any barrier group).
void run_team(ThreadPool& pool, unsigned members,
              const std::function<void(unsigned member)>& fn);

}  // namespace perigee::runner
