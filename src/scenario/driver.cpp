#include "scenario/driver.hpp"

#include "topo/builders.hpp"
#include "util/assert.hpp"

namespace perigee::scenario {

namespace {
// Dedicated stream tag for the churn schedule (cf. the core experiment's
// 0x4A5 / 0x7090 / 0xB007 streams).
constexpr std::uint64_t kChurnStream = 0xC4E2;
}  // namespace

ChurnDriver::ChurnDriver(const ChurnRegime& regime, net::Topology& topology,
                         net::Network& network, std::uint64_t seed,
                         net::AddrMan* addrman, std::size_t addrman_bootstrap,
                         std::size_t rounds_per_epoch)
    : regime_(regime),
      topology_(&topology),
      network_(&network),
      addrman_(addrman),
      addrman_bootstrap_(addrman_bootstrap),
      rounds_per_epoch_(rounds_per_epoch),
      rng_(util::Rng(seed).split(kChurnStream)),
      down_until_(topology.size(), -1),
      stashed_hash_(topology.size(), 0.0) {
  PERIGEE_ASSERT(topology.size() == network.size());
  PERIGEE_ASSERT(regime_.rate >= 0.0 && regime_.rate <= 1.0);
  PERIGEE_ASSERT(regime_.downtime_rounds >= 0);
  PERIGEE_ASSERT(rounds_per_epoch_ >= 1);
}

void ChurnDriver::rejoin(net::NodeId v) {
  // A rejoining node is a brand-new participant at the same address: fresh
  // random outgoing dials and a fresh bootstrap-server address book.
  topo::dial_random_peers(*topology_, v, topology_->limits().out_cap, rng_);
  if (addrman_ != nullptr) {
    addrman_->rebootstrap(v, rng_, addrman_bootstrap_);
  }
  last_rejoined_.push_back(v);
}

std::size_t ChurnDriver::currently_down() const {
  std::size_t count = 0;
  for (const auto until : down_until_) count += until >= 0 ? 1 : 0;
  return count;
}

bool ChurnDriver::before_round(std::size_t round_index) {
  last_rejoined_.clear();
  bool hash_changed = false;
  // The schedule (rejoins, departures) lands only on epoch boundaries, but
  // the dead-IP sweep below runs every round: UCB's selectors rewire after
  // every single-block round and a dark node must never relay.
  const bool epoch_boundary = round_index % rounds_per_epoch_ == 0;
  const auto epoch =
      static_cast<std::int64_t>(round_index / rounds_per_epoch_);
  const std::size_t n = topology_->size();
  // Profiles are fetched only when a mutation actually lands: every
  // mutable_profiles() access bumps the network's profile version, and quiet
  // rounds must leave it untouched so the round loop's CsrCache keeps its
  // snapshot without even a per-node recheck.
  const auto profiles = [this]() -> std::vector<net::NodeProfile>& {
    return network_->mutable_profiles();
  };

  // 1. Downtime elapsed: restore hash power and rejoin.
  if (epoch_boundary) {
    for (net::NodeId v = 0; v < n; ++v) {
      if (down_until_[v] < 0 || down_until_[v] > epoch) continue;
      profiles()[v].hash_power = stashed_hash_[v];
      stashed_hash_[v] = 0.0;
      down_until_[v] = -1;
      hash_changed = true;
      rejoin(v);
    }
  }

  // 2. Still dark: exploration may have dialed the dead address since last
  // round; those connections fail. Guard on adjacency so an untouched dark
  // node does not bump the topology version (no spurious CSR recompile).
  for (net::NodeId v = 0; v < n; ++v) {
    if (down_until_[v] >= 0 && !topology_->adjacency(v).empty()) {
      topology_->disconnect_all(v);
    }
  }

  // 3. Scheduled departures.
  if (!epoch_boundary || !regime_.enabled() ||
      epoch < static_cast<std::int64_t>(regime_.start_round)) {
    return hash_changed;
  }
  const auto k =
      static_cast<std::size_t>(regime_.rate * static_cast<double>(n));
  for (std::size_t idx : rng_.sample_indices(n, k)) {
    const auto v = static_cast<net::NodeId>(idx);
    if (down_until_[v] >= 0) continue;  // already dark; nothing to tear down
    topology_->disconnect_all(v);
    ++departures_;
    if (regime_.downtime_rounds == 0) {
      rejoin(v);  // reset churn: leave + instant rejoin as a fresh node
    } else {
      stashed_hash_[v] = profiles()[v].hash_power;
      profiles()[v].hash_power = 0.0;
      down_until_[v] = epoch + regime_.downtime_rounds;
      hash_changed = true;
    }
  }
  return hash_changed;
}

}  // namespace perigee::scenario
