/// \file
/// \brief ChurnDriver: executes a `ChurnRegime`'s seeded join/leave schedule
/// between rounds.
///
/// The driver is wired into `sim::RoundRunner` through its pre-round hook:
/// every topology mutation it makes bumps `net::Topology::version()`, so the
/// runner's `net::CsrCache` recompiles the flat-graph snapshot exactly when
/// the graph actually changed — churn-free rounds still reuse the cached
/// snapshot. All randomness comes from one `util::Rng::split` stream of the
/// experiment seed, preserving the sweep runner's `--jobs` determinism.
#pragma once

#include <cstdint>
#include <vector>

#include "net/addrman.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "scenario/scenario.hpp"
#include "util/rng.hpp"

namespace perigee::scenario {

/// Applies a churn schedule to a live (topology, network) pair.
///
/// Per round, in order: (1) nodes whose downtime elapsed rejoin — hash power
/// restored, `out_cap` fresh random dials, address book re-bootstrapped;
/// (2) nodes still dark get connections dialed at them since last round torn
/// down again (their IP is dead); (3) up to a seeded `rate` fraction of
/// nodes leaves (dark nodes sampled again by the schedule are skipped) —
/// every p2p edge torn down, then either an instant rejoin
/// (`downtime_rounds == 0`, the "reset churn" model) or `downtime_rounds`
/// dark rounds with hash power stashed away.
class ChurnDriver {
 public:
  /// Topology, network, and (optional) addrman are borrowed and must outlive
  /// the driver. `addrman_bootstrap` is the book size handed to a rejoining
  /// node (ignored without an addrman). `rounds_per_epoch` maps runner
  /// rounds onto schedule epochs: the regime's rate / start_round /
  /// downtime_rounds are all in *epoch* units, and churn lands only on
  /// epoch boundaries. UCB runs rounds * blocks_per_round single-block
  /// rounds for the same block budget, so the experiment harness passes
  /// blocks_per_round there — every algorithm in a grid endures the same
  /// number of churn events at the same rate.
  ChurnDriver(const ChurnRegime& regime, net::Topology& topology,
              net::Network& network, std::uint64_t seed,
              net::AddrMan* addrman = nullptr,
              std::size_t addrman_bootstrap = 0,
              std::size_t rounds_per_epoch = 1);

  /// Applies the schedule for `round_index` (0-based, the round about to
  /// run). Returns true when hash power changed — the caller must then
  /// rebuild its miner sampler (`sim::RoundRunner::refresh_hash_power`).
  bool before_round(std::size_t round_index);

  /// Nodes that (re)joined in the last before_round call; the round loop
  /// resets their selector state (a rejoining node is a fresh node).
  const std::vector<net::NodeId>& last_rejoined() const {
    return last_rejoined_;
  }

  /// Total departures executed so far.
  std::size_t departures() const { return departures_; }
  /// Nodes currently dark (downtime_rounds > 0 schedules only).
  std::size_t currently_down() const;
  /// True when node v is currently dark.
  bool is_down(net::NodeId v) const { return down_until_[v] >= 0; }

 private:
  void rejoin(net::NodeId v);

  ChurnRegime regime_;
  net::Topology* topology_;
  net::Network* network_;
  net::AddrMan* addrman_;
  std::size_t addrman_bootstrap_;
  std::size_t rounds_per_epoch_;
  util::Rng rng_;
  // Rejoin epoch per node; < 0 means live.
  std::vector<std::int64_t> down_until_;
  std::vector<double> stashed_hash_;
  std::vector<net::NodeId> last_rejoined_;
  std::size_t departures_ = 0;
};

}  // namespace perigee::scenario
