#include "scenario/scenario.hpp"

#include <vector>

#include "mining/hashpower.hpp"
#include "util/assert.hpp"

namespace perigee::scenario {
namespace {

// Disjoint Rng::split streams, one per regime, so composing regimes never
// perturbs each other's draws (same discipline as core::build_scenario).
constexpr std::uint64_t kGeoStream = 0x5CE0;
constexpr std::uint64_t kHeteroStream = 0x5CE1;
constexpr std::uint64_t kAdversaryStream = 0x5CE2;

std::size_t fraction_count(double fraction, std::size_t n) {
  PERIGEE_ASSERT(fraction >= 0.0 && fraction <= 1.0);
  return static_cast<std::size_t>(fraction * static_cast<double>(n));
}

void apply_geo(net::Network& network, const GeoClusterRegime& regime,
               util::Rng& rng) {
  auto& profiles = network.mutable_profiles();
  const std::size_t n = profiles.size();
  const std::size_t k = fraction_count(regime.concentration, n);
  // GeoLatencyModel reads regions per call, so moving nodes changes link_ms
  // live — no rebuild. (Invalidate any CSR snapshot compiled before this.)
  for (std::size_t idx : rng.sample_indices(n, k)) {
    profiles[idx].region = regime.hub;
  }
}

void apply_hetero(net::Network& network, const HeteroRegime& regime,
                  util::Rng& rng) {
  auto& profiles = network.mutable_profiles();
  const std::size_t n = profiles.size();
  const std::size_t k = fraction_count(regime.fast_fraction, n);
  std::vector<bool> fast(n, false);
  for (std::size_t idx : rng.sample_indices(n, k)) fast[idx] = true;

  for (std::size_t v = 0; v < n; ++v) {
    if (regime.tiers_bandwidth()) {
      profiles[v].bandwidth_mbps =
          fast[v] ? regime.fast_bandwidth_mbps : regime.slow_bandwidth_mbps;
    }
    if (regime.tiers_validation()) {
      profiles[v].validation_ms *= fast[v] ? regime.fast_validation_scale
                                           : regime.slow_validation_scale;
    }
  }

  if (regime.profile == HeteroProfile::Datacenter && k > 0 && k < n) {
    // Pools-style concentration: the fast tier shares `fast_hash_share`
    // equally; the slow tier splits the remainder.
    std::vector<net::NodeId> members;
    members.reserve(k);
    for (std::size_t v = 0; v < n; ++v) {
      if (fast[v]) members.push_back(static_cast<net::NodeId>(v));
    }
    mining::concentrate_hash_power(network, members, regime.fast_hash_share);
  }
}

void apply_adversary(net::Network& network, const AdversaryRegime& regime,
                     util::Rng& rng) {
  auto& profiles = network.mutable_profiles();
  const std::size_t n = profiles.size();
  const std::size_t k = fraction_count(regime.withhold_fraction, n);
  std::vector<bool> withholds(n, false);
  for (std::size_t idx : rng.sample_indices(n, k)) withholds[idx] = true;

  for (std::size_t v = 0; v < n; ++v) {
    if (!withholds[v]) continue;
    profiles[v].forwards = false;
    if (regime.zero_hash) profiles[v].hash_power = 0.0;
  }
  if (regime.zero_hash && k > 0 && k < n) {
    // Keep total hash power at 1 so λ's coverage thresholds stay comparable
    // across withholding fractions.
    double honest_total = 0.0;
    for (const auto& p : profiles) honest_total += p.hash_power;
    PERIGEE_ASSERT(honest_total > 0.0);
    for (auto& p : profiles) p.hash_power /= honest_total;
  }
}

}  // namespace

std::string_view hetero_profile_name(HeteroProfile profile) {
  switch (profile) {
    case HeteroProfile::Off:
      return "off";
    case HeteroProfile::Bandwidth:
      return "bandwidth";
    case HeteroProfile::Validation:
      return "validation";
    case HeteroProfile::Datacenter:
      return "datacenter";
  }
  return "unknown";
}

std::optional<HeteroProfile> hetero_profile_from_name(std::string_view name) {
  for (const auto profile :
       {HeteroProfile::Off, HeteroProfile::Bandwidth, HeteroProfile::Validation,
        HeteroProfile::Datacenter}) {
    if (hetero_profile_name(profile) == name) return profile;
  }
  return std::nullopt;
}

std::string_view transmission_model_name(TransmissionModel model) {
  switch (model) {
    case TransmissionModel::Delay:
      return "delay";
    case TransmissionModel::Queue:
      return "queue";
  }
  return "unknown";
}

std::optional<TransmissionModel> transmission_model_from_name(
    std::string_view name) {
  for (const auto model :
       {TransmissionModel::Delay, TransmissionModel::Queue}) {
    if (transmission_model_name(model) == name) return model;
  }
  return std::nullopt;
}

void adjust_network_options(net::NetworkOptions& options,
                            const ScenarioSpec& spec) {
  // The queuing engine charges serialization per message from the same
  // bandwidth profiles; folding the analytic block term into δ as well
  // would double-count transmission, so the bandwidth-tier patch only
  // applies under the delay-only model.
  if (spec.transmission.enabled()) return;
  if (spec.hetero.enabled() && spec.hetero.tiers_bandwidth() &&
      options.block_size_kb == 0.0) {
    options.block_size_kb = spec.hetero.block_size_kb;
  }
}

void apply_static_regimes(net::Network& network, const ScenarioSpec& spec,
                          std::uint64_t seed) {
  if (!spec.has_static()) return;
  const util::Rng master(seed);
  if (spec.geo.enabled()) {
    util::Rng rng = master.split(kGeoStream);
    apply_geo(network, spec.geo, rng);
  }
  if (spec.hetero.enabled()) {
    util::Rng rng = master.split(kHeteroStream);
    apply_hetero(network, spec.hetero, rng);
  }
  if (spec.adversary.enabled()) {
    util::Rng rng = master.split(kAdversaryStream);
    apply_adversary(network, spec.adversary, rng);
  }
}

}  // namespace perigee::scenario
