/// \file
/// \brief Declarative scenario layer: composable regimes (churn,
/// heterogeneity, geographic clustering, adversarial withholding, queued
/// transmission) applied on top of any `core::ExperimentConfig`.
///
/// The paper evaluates Perigee on static, homogeneous, honest networks and
/// leaves churn / limited views / incentives to §6. A `ScenarioSpec` makes
/// those conditions first-class experiment inputs: static regimes mutate the
/// sampled `net::Network` once after construction (bandwidth/validation
/// tiers, region concentration, withholding fraction), while the dynamic
/// churn regime is driven between rounds by `scenario::ChurnDriver`
/// (scenario/driver.hpp). Every regime draws from its own
/// `util::Rng::split` stream of the experiment seed, so scenarios preserve
/// the sweep runner's bit-identical `--jobs N` contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "net/geo.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace perigee::scenario {

/// Node churn (paper §6): every round at or after `start_round`, a seeded
/// `rate` fraction of nodes leaves the network. With `downtime_rounds == 0` a
/// leaver rejoins immediately as a fresh node (edges torn down, out_cap
/// random redials, address book re-bootstrapped, selector state reset) — the
/// "reset churn" model. With `downtime_rounds > 0` the node stays dark for
/// that many rounds first: its hash power is stashed and zeroed, and
/// connections dialed at it while dark are torn down again (dead IP).
/// All three fields are in *update-epoch* units: one epoch is one
/// connection-update round of the |B|=100 methods. UCB spreads an epoch over
/// blocks_per_round single-block rounds, and the driver lands churn only on
/// epoch boundaries, so every algorithm in a grid endures the same schedule.
struct ChurnRegime {
  double rate = 0.0;        ///< fraction of nodes churned per epoch
  int start_round = 1;      ///< first 0-based epoch churn applies to
  int downtime_rounds = 0;  ///< epochs a leaver stays dark before rejoining
  /// True when this regime does anything.
  bool enabled() const { return rate > 0.0; }
};

/// Named heterogeneity mixes (cf. "Blockchain Nodes are Heterogeneous and
/// Your P2P Overlay Should be Too"): which per-node attributes the tier
/// split applies to.
enum class HeteroProfile {
  Off,         ///< regime disabled
  Bandwidth,   ///< fast/slow access-bandwidth tiers (transmission term on)
  Validation,  ///< fast/slow block-validation tiers
  Datacenter,  ///< bandwidth + validation tiers, hash power concentrated on
               ///< the fast tier
};

/// Two-tier node heterogeneity: a seeded `fast_fraction` of nodes gets
/// datacenter-class attributes, the rest residential-class ones.
struct HeteroRegime {
  HeteroProfile profile = HeteroProfile::Off;  ///< which attributes to tier
  double fast_fraction = 0.2;           ///< fraction of fast-tier nodes
  double fast_bandwidth_mbps = 500.0;   ///< fast-tier access bandwidth
  double slow_bandwidth_mbps = 5.0;     ///< slow-tier access bandwidth
  double fast_validation_scale = 0.25;  ///< multiplier on fast-tier Δv
  double slow_validation_scale = 2.0;   ///< multiplier on slow-tier Δv
  /// Datacenter profile only: share of total hash power held (equally) by
  /// the fast tier; the slow tier splits the remainder.
  double fast_hash_share = 0.8;
  /// Block size forced into `NetworkOptions` when bandwidth tiers are active
  /// (the default 0 KB would make bandwidth irrelevant).
  double block_size_kb = 200.0;
  /// True when this regime does anything.
  bool enabled() const { return profile != HeteroProfile::Off; }
  /// True when the mix includes bandwidth tiers.
  bool tiers_bandwidth() const {
    return profile == HeteroProfile::Bandwidth ||
           profile == HeteroProfile::Datacenter;
  }
  /// True when the mix includes validation tiers.
  bool tiers_validation() const {
    return profile == HeteroProfile::Validation ||
           profile == HeteroProfile::Datacenter;
  }
};

/// "bandwidth" / "validation" / "datacenter" / "off" (sweep labels, CLI).
std::string_view hetero_profile_name(HeteroProfile profile);
/// Inverse of hetero_profile_name; nullopt for unknown names.
std::optional<HeteroProfile> hetero_profile_from_name(std::string_view name);

/// Geographic clustering: a seeded `concentration` fraction of all nodes is
/// moved into the `hub` region (overriding the bitnodes-like mix), modelling
/// mining concentration in one geography. Latency models read regions live,
/// so the move changes link_ms without rebuilding the network.
struct GeoClusterRegime {
  double concentration = 0.0;  ///< fraction of nodes moved into `hub`
  net::Region hub = net::Region::Asia;  ///< destination region
  /// True when this regime does anything.
  bool enabled() const { return concentration > 0.0; }
};

/// Adversarial withholding (paper §1's protocol-deviation discussion): a
/// seeded `withhold_fraction` of nodes accepts blocks but never relays them
/// (`NodeProfile::forwards = false`). Perigee's scoring should route around
/// and disconnect them; static baselines cannot.
struct AdversaryRegime {
  double withhold_fraction = 0.0;  ///< fraction of withholding nodes
  /// When true (default), withholders also hold no hash power and the
  /// honest remainder is renormalized to sum to 1.
  bool zero_hash = true;
  /// True when this regime does anything.
  bool enabled() const { return withhold_fraction > 0.0; }
};

/// Which transmission model broadcasts run under — a result axis, unlike
/// the wall-clock-only `--engine` knob.
enum class TransmissionModel {
  /// Pure propagation: every edge costs its fixed δ, senders relay to all
  /// neighbors simultaneously. The default and the parity oracle.
  Delay,
  /// Event-driven egress queuing (`sim/egress.{hpp,cpp}`): per-node
  /// token-bucket rate limits derived from bandwidth profiles plus a
  /// three-band priority FIFO per sender; serialization + queue wait stack
  /// on top of δ. See docs/TRANSMISSION_MODEL.md.
  Queue,
};

/// Queued-transmission regime: the user-facing (KB-denominated) mirror of
/// `sim::EgressConfig`, carried on `ScenarioSpec` and swept through the
/// `--transmission` axis. Inert by default (`model == Delay`); the
/// experiment layer converts KB fields to bytes (×1000) when dispatching to
/// the egress engine.
struct TransmissionRegime {
  TransmissionModel model = TransmissionModel::Delay;  ///< which engine
  double block_kb = 200.0;   ///< block payload size, KB (Bitcoin-like)
  double control_kb = 1.0;   ///< per-neighbor INV/header chatter, KB
  /// Route the payload through the compact-block band (pair with a smaller
  /// `block_kb` to model compact-block relay).
  bool compact_blocks = false;
  double rate_scale = 1.0;  ///< multiplier on profile-derived egress rates
  double burst_kb = 0.0;    ///< token-bucket depth, KB (0 = pure serialize)
  /// True when the queuing engine is active.
  bool enabled() const { return model == TransmissionModel::Queue; }
};

/// "delay" / "queue" (sweep labels, CLI).
std::string_view transmission_model_name(TransmissionModel model);
/// Inverse of transmission_model_name; nullopt for unknown names.
std::optional<TransmissionModel> transmission_model_from_name(
    std::string_view name);

/// A composable scenario: any subset of the five regimes may be active.
/// Default-constructed specs are inert — experiments without scenarios are
/// bit-identical to builds that predate this layer.
struct ScenarioSpec {
  ChurnRegime churn;          ///< dynamic regime (between rounds)
  HeteroRegime hetero;        ///< static regime (applied at build)
  GeoClusterRegime geo;       ///< static regime (applied at build)
  AdversaryRegime adversary;  ///< static regime (applied at build)
  /// Engine regime (selects the broadcast transmission model per round and
  /// per λ evaluation); mutates neither topology nor profiles.
  TransmissionRegime transmission;

  /// True when any regime is active.
  bool any() const {
    return churn.enabled() || hetero.enabled() || geo.enabled() ||
           adversary.enabled() || transmission.enabled();
  }
  /// True when a regime that mutates the built Network is active.
  bool has_static() const {
    return hetero.enabled() || geo.enabled() || adversary.enabled();
  }
};

/// Pre-build adjustment: regimes that need different `NetworkOptions` (the
/// bandwidth tiers require a non-zero block size for the transmission term)
/// patch the options before `net::Network::build`. No-op for inert specs.
/// Under the queued transmission regime the bandwidth-tier block-size patch
/// is skipped entirely: the egress engine charges serialization explicitly,
/// and folding `block_size_kb` into the analytic per-edge δ as well would
/// double-count the transmission term.
void adjust_network_options(net::NetworkOptions& options,
                            const ScenarioSpec& spec);

/// Applies the static regimes (geo clustering, then heterogeneity tiers,
/// then adversarial withholding) to a freshly built network whose hash power
/// is already assigned. Deterministic in `seed`; regimes draw from disjoint
/// split streams, so enabling one never perturbs another's draws. Inert
/// specs leave the network untouched (and consume no randomness).
void apply_static_regimes(net::Network& network, const ScenarioSpec& spec,
                          std::uint64_t seed);

}  // namespace perigee::scenario
