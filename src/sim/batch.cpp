#include "sim/batch.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/thread_pool.hpp"
#include "sim/dary_heap.hpp"
#include "util/assert.hpp"
#include "util/prefetch.hpp"
#include "util/stats.hpp"

namespace perigee::sim {

// The false-sharing guard the SoA audit added: a lane must claim whole
// cache lines so no two workers' lane state straddles one.
static_assert(alignof(MultiSourceScratch::Lane) >= 64,
              "scratch lanes must be cache-line aligned");

namespace {

// Per-batch relaxation plan, derived once from the snapshot's cached delay
// bounds: bucket width w <= min δ / 2 gives every relaxation a >= 2w key
// increase, so a candidate can never land in the bucket being drained even
// after floating-point index rounding (see bucket_queue.hpp). Three tiers,
// best first:
//  - fixed-point buckets: u32 quantized keys, integer-only pop/push path;
//  - double-width buckets: the replay oracle, for graphs whose key span
//    overflows the u32 grid but still fits the ring;
//  - 4-ary heap: degenerate delays (zero/non-finite) or an unbucketable
//    span.
struct BatchPlan {
  bool use_buckets = false;
  bool fixed = false;
  double width = 0.0;                 // double-width mode
  BucketQueue::FixedPlan fixed_plan;  // fixed-point mode
};

BatchPlan make_plan(const net::CsrTopology& csr) {
  BatchPlan plan;
  if (csr.num_links() == 0) return plan;
  const double min_delay = csr.min_delay_ms();
  const double max_reach = csr.max_delay_ms() + csr.max_validation_ms();
  // Conservative key ceiling: a settled chain is at most n nodes deep and
  // each relaxation adds at most max_reach; doubled for slack (same bound
  // the parallel plan uses).
  const double max_key =
      (static_cast<double>(csr.size()) + 1.0) * max_reach * 2.0;
  if (const auto fixed = BucketQueue::plan_fixed(min_delay, max_reach,
                                                 max_key)) {
    plan.use_buckets = true;
    plan.fixed = true;
    plan.fixed_plan = *fixed;
    return plan;
  }
  if (BucketQueue::viable(min_delay, max_reach)) {
    plan.use_buckets = true;
    plan.width = BucketQueue::preferred_width(min_delay, max_reach);
  }
  return plan;
}

// Branchless settled/stale gate: a pop is live iff its key still equals the
// node's arrival (bit compare — both doubles share provenance, and neither
// is NaN) and the node forwards (or mined the block). Collapsing the row to
// empty instead of branching turns the two unpredictable per-pop branches
// into a select the compiler lowers to cmov.
inline bool pop_is_fresh(double t, double arrival_u) {
  return std::bit_cast<std::uint64_t>(t) ==
         std::bit_cast<std::uint64_t>(arrival_u);
}

// One source's Dijkstra relaxation into caller-provided stripes. The inner
// loop matches the single-source CSR engine except for three proven-equal
// transformations:
//  - the per-edge `settled[v]` skip is dropped — a settled v has
//    arrival <= the key being drained, so `cand < arrival[v]` is already
//    false;
//  - the settled flag array itself is dropped — a node's queue entries
//    carry strictly decreasing keys (each push strictly improved arrival),
//    so an entry is the settling one iff its key equals the node's current
//    arrival, and no later entry can match again (post-settle relaxations
//    never improve a settled node);
//  - ready is filled in one pass afterwards (skipped when the caller only
//    consumes arrival): the last per-edge store the reference engine makes
//    is exactly final-arrival + Δv, and +inf + Δv == +inf keeps unreached
//    nodes exact.
// The Release-mode micro-pass adds three more, all order-preserving (no
// comparison outcome and no store sequence changes, so the byte-parity
// argument is untouched): the stale/forwards gate is evaluated branchlessly
// by collapsing the row to empty, the next pop's row metadata is software-
// prefetched during the current row scan, and the queue itself buckets by
// u32 fixed-point keys when the plan admits it (pop order is still exact
// (key, node) order — see bucket_queue.hpp).
void solve_one(const net::CsrTopology& csr, const BatchPlan& plan,
               MultiSourceScratch::Lane& lane, net::NodeId src,
               double* arrival, double* ready) {
  const std::size_t n = csr.size();
  PERIGEE_ASSERT(src < n);
  std::fill_n(arrival, n, util::kInf);
  arrival[src] = 0.0;

  const std::size_t* offsets = csr.offsets();
  const std::size_t* row_ends = csr.row_ends();
  const net::NodeId* peers = csr.peer_data();
  const double* delays = csr.delay_data();

  // Telemetry tallies stay in registers inside the drain loop and flush to
  // the registry once per source — the per-pop cost in telemetry builds is
  // a local increment, and OFF builds compile all of this away.
  PERIGEE_TELEMETRY_ONLY(std::uint64_t tally_pops = 0);
  PERIGEE_TELEMETRY_ONLY(std::uint64_t tally_stale = 0);

  if (plan.use_buckets) {
    BucketQueue& queue = lane.queue;
    if (plan.fixed) {
      queue.reset(plan.fixed_plan);
    } else {
      queue.reset(plan.width);
    }
    queue.push(0.0, src);
    while (!queue.empty()) {
      const BucketQueue::Entry top = queue.pop();
      const double t = top.key;
      const net::NodeId u = top.node;
      // Overlap the next pop's data-dependent loads (its row bounds and
      // arrival slot) with this row's scan; on a bucket boundary peek_next
      // degrades to re-hinting u, which costs nothing.
      const net::NodeId nxt = queue.peek_next(u);
      PERIGEE_PREFETCH(&offsets[nxt]);
      PERIGEE_PREFETCH(&arrival[nxt]);
      PERIGEE_TELEMETRY_ONLY(++tally_pops;)
      // Branchless settle: stale or non-forwarding pops scan an empty row
      // (row_end collapsed onto row_begin) instead of taking a branch the
      // predictor can't learn.
      const bool fresh = pop_is_fresh(t, arrival[u]);
      const bool live = fresh & (csr.forwards(u) | (u == src));
      PERIGEE_TELEMETRY_ONLY(tally_stale += fresh ? 0 : 1;)
      const std::size_t row_begin = offsets[u];
      const std::size_t row_end = live ? row_ends[u] : row_begin;
      const double ready_u = u == src ? 0.0 : t + csr.validation_ms(u);
      for (std::size_t e = row_begin; e < row_end; ++e) {
        if (e + util::kEdgePrefetchDistance < row_end) {
          PERIGEE_PREFETCH(&arrival[peers[e + util::kEdgePrefetchDistance]]);
        }
        const net::NodeId v = peers[e];
        const double cand = ready_u + delays[e];
        if (cand < arrival[v]) {
          arrival[v] = cand;
          queue.push(cand, v);
        }
      }
    }
    PERIGEE_COUNTER_ADD("engine.bucket.sources", 1);
    PERIGEE_COUNTER_ADD("engine.bucket.fixed_sources", plan.fixed ? 1 : 0);
    PERIGEE_COUNTER_ADD("engine.bucket.pops", tally_pops);
    PERIGEE_COUNTER_ADD("engine.bucket.stale_pops", tally_stale);
    PERIGEE_COUNTER_ADD("engine.bucket.empty_skips", queue.empty_skips());
  } else {
    std::vector<HeapItem>& heap = lane.heap;
    heap.clear();
    heap_push(heap, {0.0, src});
    while (!heap.empty()) {
      const auto [t, u] = heap_pop(heap);
      PERIGEE_TELEMETRY_ONLY(++tally_pops;)
      const bool fresh = pop_is_fresh(t, arrival[u]);
      const bool live = fresh & (csr.forwards(u) | (u == src));
      PERIGEE_TELEMETRY_ONLY(tally_stale += fresh ? 0 : 1;)
      const std::size_t row_begin = offsets[u];
      const std::size_t row_end = live ? row_ends[u] : row_begin;
      const double ready_u = u == src ? 0.0 : t + csr.validation_ms(u);
      for (std::size_t e = row_begin; e < row_end; ++e) {
        if (e + util::kEdgePrefetchDistance < row_end) {
          PERIGEE_PREFETCH(&arrival[peers[e + util::kEdgePrefetchDistance]]);
        }
        const net::NodeId v = peers[e];
        const double cand = ready_u + delays[e];
        if (cand < arrival[v]) {
          arrival[v] = cand;
          heap_push(heap, {cand, v});
        }
      }
    }
    // Heap sources = both bucket plans failed for this snapshot (degenerate
    // delays or too wide a key span).
    PERIGEE_COUNTER_ADD("engine.heap.sources", 1);
    PERIGEE_COUNTER_ADD("engine.heap.pops", tally_pops);
    PERIGEE_COUNTER_ADD("engine.heap.stale_pops", tally_stale);
  }

  if (ready != nullptr) {
    for (std::size_t v = 0; v < n; ++v) {
      ready[v] = arrival[v] + csr.validation_ms(static_cast<net::NodeId>(v));
    }
    ready[src] = 0.0;  // the miner does not validate its own block
  }
}

// Fans `count` sources across the pool as contiguous per-worker ranges;
// work(lane, s) must write only s-indexed output. Worker count never
// affects results — it only changes which lane's scratch a source borrows.
void dispatch(std::size_t count, MultiSourceScratch& scratch,
              runner::ThreadPool* pool,
              const std::function<void(std::size_t lane, std::size_t s)>&
                  work) {
  std::size_t workers =
      pool != nullptr ? std::min<std::size_t>(pool->size(), count) : 1;
  if (workers == 0) workers = 1;
  scratch.ensure_lanes(workers);
  PERIGEE_COUNTER_ADD("engine.batches", 1);
  PERIGEE_HISTOGRAM_OBSERVE("engine.batch.sources", count);
  // Lane occupancy: how many scratch lanes (== workers) the batch actually
  // spread across. A stuck-at-1 distribution under --jobs N flags a
  // dispatch problem, not a pool problem.
  PERIGEE_HISTOGRAM_OBSERVE("engine.batch.lanes", workers);
  if (workers <= 1) {
    for (std::size_t s = 0; s < count; ++s) work(0, s);
    return;
  }
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = w * chunk;
    const std::size_t hi = std::min(count, lo + chunk);
    if (lo >= hi) break;
    pool->submit([&work, w, lo, hi] {
      for (std::size_t s = lo; s < hi; ++s) work(w, s);
    });
  }
  pool->wait();
}

}  // namespace

void MultiSourceResult::extract(std::size_t s, BroadcastResult& out) const {
  PERIGEE_ASSERT(s < sources.size());
  out.miner = sources[s];
  const auto a = arrival_of(s);
  const auto r = ready_of(s);
  out.arrival.assign(a.begin(), a.end());
  out.ready.assign(r.begin(), r.end());
}

MultiSourceScratch::MultiSourceScratch() = default;
MultiSourceScratch::~MultiSourceScratch() = default;
MultiSourceScratch::MultiSourceScratch(MultiSourceScratch&&) noexcept =
    default;
MultiSourceScratch& MultiSourceScratch::operator=(
    MultiSourceScratch&&) noexcept = default;

MultiSourceScratch::Lane& MultiSourceScratch::lane(std::size_t i) {
  PERIGEE_ASSERT(i < lanes_.size());
  return *lanes_[i];
}

std::size_t MultiSourceScratch::lanes() const { return lanes_.size(); }

void MultiSourceScratch::ensure_lanes(std::size_t count) {
  while (lanes_.size() < count) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

std::size_t MultiSourceScratch::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& lane : lanes_) {
    bytes += lane->queue.memory_bytes() +
             lane->heap.capacity() * sizeof(HeapItem) +
             (lane->arrival.capacity() + lane->ready.capacity()) *
                 sizeof(double) +
             (lane->by_arrival.capacity() + lane->sort_scratch.capacity()) *
                 sizeof(std::pair<double, double>);
  }
  return bytes;
}

void simulate_broadcast_batch(const net::CsrTopology& csr,
                              std::span<const net::NodeId> sources,
                              MultiSourceScratch& scratch,
                              MultiSourceResult& out,
                              runner::ThreadPool* pool) {
  const std::size_t n = csr.size();
  PERIGEE_TRACE_SPAN_ARGS(batch_span, "broadcast_batch",
                          obs::TraceArgs()
                              .arg("sources", sources.size())
                              .arg("nodes", n)
                              .json());
  out.prepare(n, sources);
  const BatchPlan plan = make_plan(csr);
  dispatch(sources.size(), scratch, pool,
           [&](std::size_t lane_idx, std::size_t s) {
             solve_one(csr, plan, scratch.lane(lane_idx), sources[s],
                       out.arrival_data(s), out.ready_data(s));
           });
  PERIGEE_GAUGE_MAX("mem.batch_scratch_bytes", scratch.memory_bytes());
}

void for_each_source_broadcast(const net::CsrTopology& csr,
                               std::span<const net::NodeId> sources,
                               MultiSourceScratch& scratch,
                               const SourceSink& sink,
                               runner::ThreadPool* pool, bool need_ready) {
  const std::size_t n = csr.size();
  const BatchPlan plan = make_plan(csr);
  dispatch(sources.size(), scratch, pool,
           [&](std::size_t lane_idx, std::size_t s) {
             MultiSourceScratch::Lane& lane = scratch.lane(lane_idx);
             lane.arrival.resize(n);
             double* ready = nullptr;
             if (need_ready) {
               lane.ready.resize(n);
               ready = lane.ready.data();
             }
             solve_one(csr, plan, lane, sources[s], lane.arrival.data(),
                       ready);
             sink(lane_idx, s, lane.arrival,
                  need_ready ? std::span<const double>(lane.ready)
                             : std::span<const double>());
           });
}

}  // namespace perigee::sim
