/// \file
/// \brief Batched multi-source broadcast engine.
///
/// Every figure and ablation reduces to "broadcast |B| blocks from
/// hash-weighted sources over one static graph": the round loop simulates
/// all blocks of a round on one `net::CsrTopology` snapshot, and the λ
/// metric broadcasts from every node of the network. This engine runs all
/// sources of such a batch through one compile and one arena-backed scratch
/// pool:
///
///  - arrival/ready outputs are laid out SoA, one contiguous per-source
///    stripe of an arena each (`MultiSourceResult`), so a batch performs two
///    allocations total instead of 2·|sources|;
///  - the per-source relaxation replaces the 4-ary heap with a monotone
///    `BucketQueue` whose width derives from the snapshot's minimum edge
///    delay (graphs where that is degenerate — a zero-latency infra edge, an
///    edgeless topology — fall back to the shared `dary_heap.hpp` path);
///  - the ready vector is filled in one vectorizable pass after the
///    relaxation (`ready[v] = arrival[v] + Δv`), which is bit-identical to
///    the reference engines' per-relaxation stores because the last value
///    they store is exactly final-arrival + Δv;
///  - sources fan out across an optional `runner::ThreadPool`: each worker
///    lane owns its queue/settled scratch, every source writes its
///    pre-assigned stripe, and results are therefore byte-identical at any
///    worker count — the same determinism contract as the sweep runner.
///
/// Outputs are byte-for-byte identical to both the legacy Topology-walking
/// engine and the single-source CSR engine; `tests/sim_engine_diff_test.cpp`
/// holds all three to that across every scenario regime.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/csr.hpp"
#include "net/types.hpp"
#include "sim/broadcast.hpp"
#include "sim/bucket_queue.hpp"
#include "sim/dary_heap.hpp"
#include "util/aligned.hpp"

namespace perigee::runner {
class ThreadPool;
}  // namespace perigee::runner

namespace perigee::sim {

/// SoA outcome of one batch: per-source stripes of two shared arenas.
/// Stripe `s` of each arena holds what `BroadcastResult::arrival` / `ready`
/// would for `sources[s]`. Stripes are padded to a whole cache line
/// (`stride()` doubles apart, >= nodes) and the arenas themselves are
/// line-aligned (util::AlignedDoubles) — both halves are needed for two
/// pool workers writing adjacent stripes to never false-share the line
/// straddling their boundary. The pad tail is never read (every accessor
/// spans exactly `nodes`).
struct MultiSourceResult {
  /// Doubles per cache line — the stripe padding quantum.
  static constexpr std::size_t kLineDoubles = 64 / sizeof(double);

  std::size_t nodes = 0;               ///< stripe length (without padding)
  std::vector<net::NodeId> sources;    ///< batch echo, stripe index -> source
  util::AlignedDoubles arrival;        ///< sources.size() stripes of stride()
  util::AlignedDoubles ready;          ///< sources.size() stripes of stride()

  /// `nodes` rounded up to a whole cache line of doubles.
  static std::size_t stride_for(std::size_t nodes) {
    return (nodes + (kLineDoubles - 1)) & ~(kLineDoubles - 1);
  }
  /// Doubles between consecutive stripes' starts in each arena.
  std::size_t stride() const { return stride_for(nodes); }

  /// Sets the batch shape and sizes both arenas (`sources × stride()`).
  /// The engines call this before fanning out stripe writers.
  void prepare(std::size_t node_count, std::span<const net::NodeId> srcs) {
    nodes = node_count;
    sources.assign(srcs.begin(), srcs.end());
    arrival.resize(sources.size() * stride());
    ready.resize(sources.size() * stride());
  }

  /// Mutable start of stripe `s` (engine writers only).
  double* arrival_data(std::size_t s) { return arrival.data() + s * stride(); }
  double* ready_data(std::size_t s) { return ready.data() + s * stride(); }

  /// Arrival stripe of batch entry `s`.
  std::span<const double> arrival_of(std::size_t s) const {
    return {arrival.data() + s * stride(), nodes};
  }
  /// Ready stripe of batch entry `s`.
  std::span<const double> ready_of(std::size_t s) const {
    return {ready.data() + s * stride(), nodes};
  }
  /// Copies stripe `s` into the single-source result shape (block hooks,
  /// tests). `out`'s vectors are reused.
  void extract(std::size_t s, BroadcastResult& out) const;
};

/// Reusable arena of per-worker scratch lanes (bucket queue, heap fallback,
/// settled flags, one stripe pair for the streaming form, λ sort buffer).
/// Lanes are grown on demand and survive across batches, so a sweep cell
/// running thousands of rounds performs no steady-state allocation. Not
/// thread-safe to share across concurrent *batches*; within one batch each
/// worker owns one lane.
class MultiSourceScratch {
 public:
  MultiSourceScratch();
  ~MultiSourceScratch();
  MultiSourceScratch(MultiSourceScratch&&) noexcept;
  MultiSourceScratch& operator=(MultiSourceScratch&&) noexcept;

  struct Lane;
  /// Lane `i`, valid until the next `ensure_lanes`. Exposed for the λ
  /// evaluation, which keeps a per-lane sort buffer next to the engine's
  /// scratch.
  Lane& lane(std::size_t i);
  std::size_t lanes() const;
  /// Grows the pool to at least `count` lanes.
  void ensure_lanes(std::size_t count);

  /// Heap bytes across all lanes; reported through the
  /// `mem.batch_scratch_bytes` obs gauge after each batch (memory-budget
  /// accounting for the scale path, next to `mem.csr_bytes` and
  /// `mem.parallel_scratch_bytes`).
  std::size_t memory_bytes() const;

 private:
  std::vector<std::unique_ptr<Lane>> lanes_;
};

/// Per-worker scratch: engine internals plus a caller-usable sort buffer.
/// (No settled array: the engine detects stale queue entries by comparing
/// the popped key against the node's current arrival instead.)
///
/// alignas(64): each lane object starts on its own cache line, so the hot
/// scalar state of two workers' lanes (queue cursors, vector headers) never
/// shares one — the vectors' heap blocks are naturally distinct already.
/// `tests/sim_batch_layout_test.cpp` guards both this and the stripe
/// padding above against regression.
struct alignas(64) MultiSourceScratch::Lane {
  BucketQueue queue;                  ///< fast-path relaxation queue
  std::vector<HeapItem> heap;         ///< fallback 4-ary heap storage
  std::vector<double> arrival;        ///< streaming-form stripe
  std::vector<double> ready;          ///< streaming-form stripe
  /// (arrival, hash power) pairs for the λ coverage accumulation; lives here
  /// so metrics::eval_all_sources is allocation-free per source too.
  std::vector<std::pair<double, double>> by_arrival;
  /// Ping-pong buffer for the radix sort of `by_arrival`.
  std::vector<std::pair<double, double>> sort_scratch;
};

/// Simulates a broadcast from every entry of `sources` over one compiled
/// snapshot, materializing all stripes (the round loop's shape: |B| miners,
/// observation recording wants every result at once). With a pool, sources
/// are partitioned into contiguous per-worker ranges; without one the batch
/// runs inline. Byte-identical to per-source `simulate_broadcast` at any
/// worker count.
void simulate_broadcast_batch(const net::CsrTopology& csr,
                              std::span<const net::NodeId> sources,
                              MultiSourceScratch& scratch,
                              MultiSourceResult& out,
                              runner::ThreadPool* pool = nullptr);

/// Streaming form for batches whose per-source outputs reduce immediately
/// (the λ metric: n sources would otherwise materialize O(n²) doubles).
/// Each source's stripes live in its lane and are valid only during the
/// `sink` call; `sink(lane, s, arrival, ready)` may run concurrently from
/// pool workers for distinct `s` and must write only `s`-indexed slots to
/// preserve the determinism contract. With `need_ready` false the ready
/// fill pass is skipped and the sink receives an empty ready span — the λ
/// evaluation only consumes arrival.
using SourceSink = std::function<void(
    std::size_t lane, std::size_t s, std::span<const double> arrival,
    std::span<const double> ready)>;
void for_each_source_broadcast(const net::CsrTopology& csr,
                               std::span<const net::NodeId> sources,
                               MultiSourceScratch& scratch,
                               const SourceSink& sink,
                               runner::ThreadPool* pool = nullptr,
                               bool need_ready = true);

}  // namespace perigee::sim
