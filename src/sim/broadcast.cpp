#include "sim/broadcast.hpp"

#include <cmath>
#include <queue>

#include "sim/dary_heap.hpp"
#include "util/assert.hpp"
#include "util/prefetch.hpp"
#include "util/stats.hpp"

namespace perigee::sim {

double link_delay_ms(const net::Topology::Link& link, net::NodeId from,
                     const net::Network& network) {
  return link.is_infra() ? link.infra_ms
                         : network.edge_delay_ms(from, link.peer);
}

BroadcastResult simulate_broadcast(const net::Topology& topology,
                                   const net::Network& network,
                                   net::NodeId miner) {
  PERIGEE_ASSERT(topology.size() == network.size());
  PERIGEE_ASSERT(miner < network.size());
  const std::size_t n = network.size();

  BroadcastResult result;
  result.miner = miner;
  result.arrival.assign(n, util::kInf);
  result.ready.assign(n, util::kInf);
  result.arrival[miner] = 0.0;
  result.ready[miner] = 0.0;  // the miner does not validate its own block

  using Item = std::pair<double, net::NodeId>;  // (arrival, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  queue.emplace(0.0, miner);
  std::vector<bool> settled(n, false);

  while (!queue.empty()) {
    const auto [t, u] = queue.top();
    queue.pop();
    if (settled[u]) continue;
    settled[u] = true;
    // A withholding node receives blocks but never relays them; its own
    // blocks still propagate (otherwise mining would be pointless).
    if (!network.profile(u).forwards && u != miner) continue;
    const double ready = result.ready[u];
    for (const auto& link : topology.adjacency(u)) {
      const net::NodeId v = link.peer;
      if (settled[v]) continue;
      const double cand = ready + link_delay_ms(link, u, network);
      if (cand < result.arrival[v]) {
        result.arrival[v] = cand;
        result.ready[v] = cand + network.validation_ms(v);
        queue.emplace(cand, v);
      }
    }
  }
  return result;
}

void simulate_broadcast(const net::CsrTopology& csr, net::NodeId miner,
                        BroadcastScratch& scratch, BroadcastResult& result) {
  const std::size_t n = csr.size();
  PERIGEE_ASSERT(miner < n);

  result.miner = miner;
  result.arrival.assign(n, util::kInf);
  result.ready.assign(n, util::kInf);
  result.arrival[miner] = 0.0;
  result.ready[miner] = 0.0;  // the miner does not validate its own block

  scratch.settled.assign(n, 0);
  scratch.heap.clear();
  heap_push(scratch.heap, {0.0, miner});

  const std::size_t* offsets = csr.offsets();
  const std::size_t* row_ends = csr.row_ends();
  const net::NodeId* peers = csr.peer_data();
  const double* delays = csr.delay_data();

  // Same micro-pass as the batched engine's hot loop (see batch.cpp): the
  // settled/forwards gate collapses the row to empty instead of branching,
  // and upcoming arrival slots are software-prefetched. The per-edge
  // settled[v] skip is dropped — for a settled v, arrival[v] <= ready <=
  // cand already makes the improvement test false, so no store sequence
  // changes (the parity suites pin this engine to the legacy walker).
  while (!scratch.heap.empty()) {
    const net::NodeId u = heap_pop(scratch.heap).second;
    const std::uint8_t was_settled = scratch.settled[u];
    scratch.settled[u] = 1;
    const bool live =
        (was_settled == 0) & (csr.forwards(u) | (u == miner));
    const std::size_t row_begin = offsets[u];
    const std::size_t row_end = live ? row_ends[u] : row_begin;
    const double ready = result.ready[u];
    for (std::size_t e = row_begin; e < row_end; ++e) {
      if (e + util::kEdgePrefetchDistance < row_end) {
        PERIGEE_PREFETCH(&result.arrival[peers[e + util::kEdgePrefetchDistance]]);
      }
      const net::NodeId v = peers[e];
      const double cand = ready + delays[e];
      if (cand < result.arrival[v]) {
        result.arrival[v] = cand;
        result.ready[v] = cand + csr.validation_ms(v);
        heap_push(scratch.heap, {cand, v});
      }
    }
  }
}

BroadcastResult simulate_broadcast(const net::CsrTopology& csr,
                                   net::NodeId miner) {
  BroadcastScratch scratch;
  BroadcastResult result;
  simulate_broadcast(csr, miner, scratch, result);
  return result;
}

double delivery_time(const BroadcastResult& result,
                     const net::Topology::Link& link_from_v, net::NodeId v,
                     const net::Network& network) {
  const net::NodeId u = link_from_v.peer;
  if (!network.profile(u).forwards && u != result.miner) return util::kInf;
  const double ready = result.ready[u];
  if (std::isinf(ready)) return util::kInf;
  // δ is symmetric, so the v-side link entry carries the right cost.
  return ready + link_delay_ms(link_from_v, v, network);
}

}  // namespace perigee::sim
