/// \file
/// \brief Fast per-block broadcast engine (paper §2.1 dynamics).
///
/// When a node u mines or finishes validating a block it immediately starts
/// relaying to every adjacent node v, the copy arriving after δ(u,v). Arrival
/// times therefore satisfy
///   arrival(v)  = min over adjacent u of ready(u) + δ(u,v)
///   ready(u)    = arrival(u) + Δu          (the miner skips validation)
/// which a Dijkstra-style relaxation computes exactly in O(E log V).
///
/// Three interchangeable engines compute that relaxation:
///  - the reference engine walks `net::Topology` link lists through a
///    binary `std::priority_queue`, resolving δ per edge visit;
///  - the single-source CSR engine runs on a compiled `net::CsrTopology`
///    (pre-resolved δ, contiguous rows) with a 4-ary heap and caller-owned
///    reusable scratch buffers, and serves as the parity oracle for
///  - the batched multi-source engine (sim/batch.hpp): all sources of a
///    round or a λ evaluation over one compile, a monotone bucket queue in
///    place of the heap, SoA per-source result stripes, and optional
///    source-level `runner::ThreadPool` parallelism — the one the round
///    loop and the metrics use.
/// Their outputs are bit-identical — arrival is the exact minimum over
/// identical per-path sums, independent of relaxation order — and
/// `tests/sim_csr_parity_test.cpp` + `tests/sim_engine_diff_test.cpp`
/// enforce it byte for byte.
#pragma once

#include <utility>
#include <vector>

#include "net/csr.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"

namespace perigee::sim {

/// Outcome of one block broadcast.
struct BroadcastResult {
  net::NodeId miner = net::kInvalidNode;  ///< the mining node
  /// Time (ms after mining) each node first holds the block; +inf if
  /// unreachable; arrival[miner] == 0.
  std::vector<double> arrival;
  /// Time each node starts relaying: arrival + validation (miner: 0).
  std::vector<double> ready;
};

/// Reusable per-worker arena for the single-source CSR engine: the heap and
/// settled buffers survive across calls, so a caller simulating many blocks
/// allocates them once. Not thread-safe; give each worker its own instance.
/// (The round loop and the multi-source eval run on the batched engine's
/// `MultiSourceScratch` arena instead — this one serves the parity oracle
/// and single-shot callers.)
struct BroadcastScratch {
  std::vector<std::pair<double, net::NodeId>> heap;  ///< 4-ary (arrival, node)
  std::vector<std::uint8_t> settled;                 ///< per-node visited flag
};

/// Reference engine over the mutable Topology (kept as the parity oracle).
BroadcastResult simulate_broadcast(const net::Topology& topology,
                                   const net::Network& network,
                                   net::NodeId miner);

/// CSR fast path: relaxation over pre-resolved δ arrays with a 4-ary heap.
/// Reuses `scratch` buffers and writes into `result` (vectors are resized as
/// needed), so a caller looping over miners performs no steady-state
/// allocation. Bit-identical to the reference engine.
void simulate_broadcast(const net::CsrTopology& csr, net::NodeId miner,
                        BroadcastScratch& scratch, BroadcastResult& result);

/// Convenience CSR overload allocating its own scratch and result.
BroadcastResult simulate_broadcast(const net::CsrTopology& csr,
                                   net::NodeId miner);

/// δ used by the engine for a specific adjacency link (infra override or the
/// network's edge delay). Exposed so observation collection and tests use the
/// exact same edge costs; `net::CsrTopology::build` resolves the same value
/// into its delay array.
double link_delay_ms(const net::Topology::Link& link, net::NodeId from,
                     const net::Network& network);

/// Time at which u's copy of the block reaches v (u adjacent to v):
/// ready[u] + δ(u,v); +inf if u never got the block.
double delivery_time(const BroadcastResult& result,
                     const net::Topology::Link& link_from_v,
                     net::NodeId v, const net::Network& network);

}  // namespace perigee::sim
