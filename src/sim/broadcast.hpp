// Fast per-block broadcast engine (paper §2.1 dynamics).
//
// When a node u mines or finishes validating a block it immediately starts
// relaying to every adjacent node v, the copy arriving after δ(u,v). Arrival
// times therefore satisfy
//   arrival(v)  = min over adjacent u of ready(u) + δ(u,v)
//   ready(u)    = arrival(u) + Δu          (the miner skips validation)
// which a Dijkstra-style relaxation computes exactly in O(E log V).
#pragma once

#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"

namespace perigee::sim {

struct BroadcastResult {
  net::NodeId miner = net::kInvalidNode;
  // Time (ms after mining) each node first holds the block; +inf if
  // unreachable; arrival[miner] == 0.
  std::vector<double> arrival;
  // Time each node starts relaying: arrival + validation (miner: 0).
  std::vector<double> ready;
};

BroadcastResult simulate_broadcast(const net::Topology& topology,
                                   const net::Network& network,
                                   net::NodeId miner);

// δ used by the engine for a specific adjacency link (infra override or the
// network's edge delay). Exposed so observation collection and tests use the
// exact same edge costs.
double link_delay_ms(const net::Topology::Link& link, net::NodeId from,
                     const net::Network& network);

// Time at which u's copy of the block reaches v (u adjacent to v):
// ready[u] + δ(u,v); +inf if u never got the block.
double delivery_time(const BroadcastResult& result,
                     const net::Topology::Link& link_from_v,
                     net::NodeId v, const net::Network& network);

}  // namespace perigee::sim
