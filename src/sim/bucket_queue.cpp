#include "sim/bucket_queue.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/assert.hpp"

namespace perigee::sim {

bool BucketQueue::viable(double min_delay, double max_reach) {
  if (!(min_delay > 0.0) || !std::isfinite(min_delay)) return false;
  if (!(max_reach >= 0.0) || !std::isfinite(max_reach)) return false;
  // The widest correct width is min_delay / 2; the ring must hold every
  // pending bucket, and pending keys span at most one relaxation reach
  // past the current bucket.
  return max_reach / (min_delay * 0.5) + 4.0 <
         static_cast<double>(kPreferredBuckets);
}

double BucketQueue::preferred_width(double min_delay, double max_reach) {
  double width = min_delay / kOccupancyDivisor;
  const double floor = max_reach / static_cast<double>(kPreferredBuckets);
  if (width < floor) width = floor;
  // Never above the correctness ceiling (viable() guarantees the floor
  // itself is below it).
  return std::min(width, min_delay * 0.5);
}

std::optional<BucketQueue::FixedPlan> BucketQueue::plan_fixed(
    double min_delay, double max_reach, double max_key) {
  if (!(min_delay > 0.0) || !std::isfinite(min_delay)) return std::nullopt;
  if (!(max_reach >= 0.0) || !std::isfinite(max_reach)) return std::nullopt;
  if (!(max_key > 0.0) || !std::isfinite(max_key)) return std::nullopt;
  // Grid resolving the smallest delay into ~2^9 units (same derivation as
  // the parallel engine's plan), coarsened until every key the relaxation
  // can conceivably form quantizes below 2^32 — the bound that makes the
  // u32 qkey image lossless.
  util::FixedPointScale grid = util::FixedPointScale::fit(min_delay, 10);
  while (grid.exponent > -1060 && max_key * grid.scale >= 0x1p32) {
    --grid.exponent;
    grid.scale = std::ldexp(1.0, grid.exponent);
  }
  if (max_key * grid.scale >= 0x1p32) return std::nullopt;
  // The width ceiling (<= min-delay / 2) as an exact integer inequality; a
  // min delay that quantizes below 2 admits no correct power-of-two width
  // on this grid.
  const std::uint64_t min_q = grid.quantize(min_delay);
  const std::optional<int> ceiling = util::bucket_width_shift(min_q);
  if (!ceiling.has_value()) return std::nullopt;
  // Start from the occupancy sweet spot double mode runs at — the widest
  // power-of-two width not above min-delay / kOccupancyDivisor, i.e. 3
  // shifts under the delta-stepping ceiling (<= min-delay / 2). Thin
  // buckets keep the active-bucket insertion sort near-free; starting at
  // the ceiling measurably slows the batched all-sources eval. Then widen
  // until one relaxation reach of pending buckets fits the same ring
  // budget double mode steers to. Wider buckets stay order-correct here:
  // the sequential queue drains its active bucket sorted, so width only
  // trades scan cost against in-bucket insert cost.
  int shift = *ceiling >= 3 ? *ceiling - 3 : 0;
  const std::uint64_t reach_q = grid.quantize(max_reach);
  while (shift < 40 && (reach_q >> shift) + 4 >= kPreferredBuckets) ++shift;
  if ((reach_q >> shift) + 4 >= kPreferredBuckets) return std::nullopt;
  FixedPlan plan;
  plan.grid = grid;
  plan.shift = shift;
  return plan;
}

void BucketQueue::clear_and_rewind() {
  if (size_ != 0) {
    for (std::size_t w = 0; w < occupied_.size(); ++w) {
      std::uint64_t bits = occupied_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        ring_[w * 64 + static_cast<std::size_t>(b)].clear();
      }
      occupied_[w] = 0;
    }
    size_ = 0;
  }
  cur_ = 0;
  cur_sorted_ = false;
#ifdef PERIGEE_TELEMETRY
  empty_skips_ = 0;
#endif
  if (ring_.empty()) grow(0);  // keeps the ring check out of push()
}

void BucketQueue::reset(double width) {
  PERIGEE_ASSERT(width > 0.0 && std::isfinite(width));
  clear_and_rewind();
  fixed_ = false;
  width_ = width;
  inv_width_ = 1.0 / width;
}

void BucketQueue::reset(const FixedPlan& plan) {
  PERIGEE_ASSERT(plan.grid.scale > 0.0 && plan.shift >= 0);
  clear_and_rewind();
  fixed_ = true;
  scale_ = plan.grid.scale;
  shift_ = plan.shift;
  width_ = plan.width();
}

void BucketQueue::sort_bucket(std::vector<Entry>& bucket) {
  // Only reached for buckets too large for pop()'s inline insertion sort.
  std::sort(bucket.begin(), bucket.end(), greater);
}

void BucketQueue::push_sorted(std::vector<Entry>& bucket, Entry entry) {
  bucket.insert(
      std::upper_bound(bucket.begin(), bucket.end(), entry, greater), entry);
}

void BucketQueue::grow(std::uint64_t span_needed) {
  std::size_t capacity = std::max<std::size_t>(mask_ + 1, 64);
  while (capacity <= span_needed) capacity *= 2;
  PERIGEE_ASSERT_MSG(capacity <= kMaxBuckets,
                     "bucket queue span exceeds kMaxBuckets; the caller "
                     "should have used BucketQueue::viable");
  std::vector<std::vector<Entry>> fresh(capacity);
  const std::uint64_t new_mask = capacity - 1;
  // Remap live buckets: every entry of a slot shares one absolute bucket
  // index (pending keys span < old capacity), recoverable from any entry
  // via the mode-aware bucket_of_entry.
  for (auto& bucket : ring_) {
    if (bucket.empty()) continue;
    const std::uint64_t abs_bucket = bucket_of_entry(bucket.front());
    fresh[abs_bucket & new_mask] = std::move(bucket);
  }
  ring_ = std::move(fresh);
  mask_ = new_mask;
  occupied_.assign(capacity / 64, 0);
  for (std::uint64_t s = 0; s < capacity; ++s) {
    if (!ring_[s].empty()) occupied_[s >> 6] |= std::uint64_t{1} << (s & 63);
  }
}

void BucketQueue::advance_to_nonempty() {
  // Scan the occupancy bitmap cyclically from cur_'s slot. Pending buckets
  // span less than the ring capacity, so the first occupied slot in ring
  // order is the smallest pending absolute bucket.
  const std::uint64_t capacity = mask_ + 1;
  const std::uint64_t start = cur_ & mask_;
  std::uint64_t word = start >> 6;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (start & 63));
  std::uint64_t scanned = 0;
  const std::uint64_t words = capacity / 64;
  while (bits == 0) {
    word = (word + 1) % words;
    bits = occupied_[word];
    scanned += 64;
    PERIGEE_ASSERT_MSG(scanned <= capacity, "bitmap desync: size_ > 0 but "
                                            "no occupied bucket");
  }
  const std::uint64_t s =
      word * 64 + static_cast<std::uint64_t>(std::countr_zero(bits));
  // Distance from cur_'s slot to s in ring order == absolute index delta.
  const std::uint64_t delta = (s - start + capacity) & mask_;
  if (delta != 0) {
    cur_ += delta;
    cur_sorted_ = false;
#ifdef PERIGEE_TELEMETRY
    empty_skips_ += delta;
#endif
  }
}

}  // namespace perigee::sim
