#include "sim/bucket_queue.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/assert.hpp"

namespace perigee::sim {

bool BucketQueue::viable(double min_delay, double max_reach) {
  if (!(min_delay > 0.0) || !std::isfinite(min_delay)) return false;
  if (!(max_reach >= 0.0) || !std::isfinite(max_reach)) return false;
  // The widest correct width is min_delay / 2; the ring must hold every
  // pending bucket, and pending keys span at most one relaxation reach
  // past the current bucket.
  return max_reach / (min_delay * 0.5) + 4.0 <
         static_cast<double>(kPreferredBuckets);
}

double BucketQueue::preferred_width(double min_delay, double max_reach) {
  double width = min_delay / kOccupancyDivisor;
  const double floor = max_reach / static_cast<double>(kPreferredBuckets);
  if (width < floor) width = floor;
  // Never above the correctness ceiling (viable() guarantees the floor
  // itself is below it).
  return std::min(width, min_delay * 0.5);
}

void BucketQueue::reset(double width) {
  PERIGEE_ASSERT(width > 0.0 && std::isfinite(width));
  if (size_ != 0) {
    for (std::size_t w = 0; w < occupied_.size(); ++w) {
      std::uint64_t bits = occupied_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        ring_[w * 64 + static_cast<std::size_t>(b)].clear();
      }
      occupied_[w] = 0;
    }
    size_ = 0;
  }
  width_ = width;
  inv_width_ = 1.0 / width;
  cur_ = 0;
  cur_sorted_ = false;
#ifdef PERIGEE_TELEMETRY
  empty_skips_ = 0;
#endif
  if (ring_.empty()) grow(0);  // keeps the ring check out of push()
}

void BucketQueue::sort_bucket(std::vector<Entry>& bucket) {
  // Only reached for buckets too large for pop()'s inline insertion sort.
  std::sort(bucket.begin(), bucket.end(), greater);
}

void BucketQueue::push_sorted(std::vector<Entry>& bucket, Entry entry) {
  bucket.insert(
      std::upper_bound(bucket.begin(), bucket.end(), entry, greater), entry);
}

void BucketQueue::grow(std::uint64_t span_needed) {
  std::size_t capacity = std::max<std::size_t>(mask_ + 1, 64);
  while (capacity <= span_needed) capacity *= 2;
  PERIGEE_ASSERT_MSG(capacity <= kMaxBuckets,
                     "bucket queue span exceeds kMaxBuckets; the caller "
                     "should have used BucketQueue::viable");
  std::vector<std::vector<Entry>> fresh(capacity);
  const std::uint64_t new_mask = capacity - 1;
  // Remap live buckets: every entry of a slot shares one absolute bucket
  // index (pending keys span < old capacity), recoverable from any key —
  // except a clamped fp-slop entry in the active bucket, whose key maps one
  // low; the max with cur_ restores the slot it was actually stored in.
  for (auto& bucket : ring_) {
    if (bucket.empty()) continue;
    const std::uint64_t abs_bucket =
        std::max(bucket_of(bucket.front().key), cur_);
    fresh[abs_bucket & new_mask] = std::move(bucket);
  }
  ring_ = std::move(fresh);
  mask_ = new_mask;
  occupied_.assign(capacity / 64, 0);
  for (std::uint64_t s = 0; s < capacity; ++s) {
    if (!ring_[s].empty()) occupied_[s >> 6] |= std::uint64_t{1} << (s & 63);
  }
}

void BucketQueue::advance_to_nonempty() {
  // Scan the occupancy bitmap cyclically from cur_'s slot. Pending buckets
  // span less than the ring capacity, so the first occupied slot in ring
  // order is the smallest pending absolute bucket.
  const std::uint64_t capacity = mask_ + 1;
  const std::uint64_t start = cur_ & mask_;
  std::uint64_t word = start >> 6;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (start & 63));
  std::uint64_t scanned = 0;
  const std::uint64_t words = capacity / 64;
  while (bits == 0) {
    word = (word + 1) % words;
    bits = occupied_[word];
    scanned += 64;
    PERIGEE_ASSERT_MSG(scanned <= capacity, "bitmap desync: size_ > 0 but "
                                            "no occupied bucket");
  }
  const std::uint64_t s =
      word * 64 + static_cast<std::uint64_t>(std::countr_zero(bits));
  // Distance from cur_'s slot to s in ring order == absolute index delta.
  const std::uint64_t delta = (s - start + capacity) & mask_;
  if (delta != 0) {
    cur_ += delta;
    cur_sorted_ = false;
#ifdef PERIGEE_TELEMETRY
    empty_skips_ += delta;
#endif
  }
}

}  // namespace perigee::sim
