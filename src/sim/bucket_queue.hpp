/// \file
/// \brief Monotone bucket queue (delta-stepping style) for the batched
/// broadcast engine's Dijkstra relaxation.
///
/// A Dijkstra pass over a graph whose edge weights are all >= some δmin only
/// ever inserts keys >= the key it last popped (each candidate is
/// `settled arrival + validation + edge delay`). A bucket queue exploits that
/// monotonicity: entries land in uniform-width buckets indexed by
/// `floor(key / width)`, pops drain buckets in index order, and with
/// `width <= δmin / 2` no insertion can ever land in a bucket that is already
/// being drained — so a push is O(1) amortized instead of the 4-ary heap's
/// O(log n) sift.
///
/// Unlike classic Dial/delta-stepping, the active bucket is sorted
/// lexicographically by (key, node) before it is drained. Buckets are small
/// (edge weights spread pushes across many buckets), so the sort is cheap,
/// and it buys the property the engines' byte-parity contract is easiest to
/// reason about with: **pop order is exactly
/// `std::priority_queue<pair, greater<>>` order** for any monotone push
/// sequence — `tests/sim_bucketq_test.cpp` asserts this equivalence
/// directly, and the batched engine therefore settles nodes in exactly the
/// reference engine's sequence.
///
/// The bucket array is a power-of-two ring over *absolute* bucket indices
/// (slot = index & mask), valid because pending keys span less than the ring
/// capacity; a bitmap over slots makes skipping empty buckets O(ring/64) in
/// the worst case. Storage is reused across `reset()` calls, so a worker
/// draining thousands of single-source passes performs no steady-state
/// allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/types.hpp"

namespace perigee::sim {

class BucketQueue {
 public:
  /// One queued element: (arrival-time key, node).
  struct Entry {
    double key;
    net::NodeId node;
  };

  /// Hard ring-size ceiling enforced by `grow`.
  static constexpr std::uint64_t kMaxBuckets = std::uint64_t{1} << 20;
  /// Ring size `preferred_width` steers towards (memory/scan sweet spot).
  static constexpr std::uint64_t kPreferredBuckets = std::uint64_t{1} << 16;
  /// Denominator of the default width min_delay / 16: several buckets per
  /// smallest edge delay keeps buckets thin (~1–3 entries), so the active-
  /// bucket sort stays negligible even when edge delays cluster.
  static constexpr double kOccupancyDivisor = 16.0;

  /// True when a graph with smallest edge delay `min_delay` and largest
  /// single-relaxation key increase `max_reach` (max edge delay + max
  /// validation) admits a correct width (<= min_delay / 2) whose ring stays
  /// within `kPreferredBuckets`. False for zero/negative/non-finite delays —
  /// those graphs use the heap path.
  static bool viable(double min_delay, double max_reach);

  /// The width the engine should run a `viable` graph at: min_delay / 16,
  /// floored so the ring holds at most `kPreferredBuckets` buckets, capped
  /// at the min_delay / 2 correctness ceiling.
  static double preferred_width(double min_delay, double max_reach);

  /// Empties the queue and sets the bucket width. Keeps previously grown
  /// storage. `width` must be > 0 and finite; pair it with `viable` so the
  /// span of keys reachable from one relaxation fits `kMaxBuckets`.
  void reset(double width);

  /// Pending entries (including not-yet-skipped duplicates).
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// The width `reset` installed.
  double width() const { return width_; }

  /// Empty buckets skipped by `advance_to_nonempty` since the last `reset`.
  /// Telemetry only (flushed into the obs registry per source by the batch
  /// engine); always 0 when telemetry is compiled out.
  std::uint64_t empty_skips() const {
#ifdef PERIGEE_TELEMETRY
    return empty_skips_;
#else
    return 0;
#endif
  }

  /// Heap bytes behind the ring (slot vectors keep their capacity across
  /// `reset`, so this is the lane's steady-state footprint).
  std::size_t memory_bytes() const {
    std::size_t bytes = ring_.capacity() * sizeof(ring_[0]) +
                        occupied_.capacity() * sizeof(std::uint64_t);
    for (const auto& vec : ring_) bytes += vec.capacity() * sizeof(Entry);
    return bytes;
  }

  /// Inserts an entry. Contract (unchecked in the hot path): `reset` was
  /// called at least once, and `key` is finite, >= 0, and >= the key of the
  /// last `pop` (the Dijkstra monotonicity this queue is built for).
  /// Inline: a sparse relaxation pushes a few thousand times per source, so
  /// the O(1) body must not cost a call.
  void push(double key, net::NodeId node) {
    std::uint64_t bucket = bucket_of(key);
    // Monotone contract gives bucket >= cur_ up to a sub-ulp rounding of
    // key * inv_width_, which can map an equal key one bucket low; clamping
    // preserves exact pop order (the key belongs among the current bucket's
    // remainder either way).
    if (bucket < cur_) bucket = cur_;
    if (bucket - cur_ >= mask_ + 1) grow(bucket - cur_);
    std::vector<Entry>& vec = slot(bucket);
    if (vec.empty()) mark_occupied(bucket);
    const Entry entry{key, node};
    if (bucket == cur_ && cur_sorted_) {
      // Rare (the engine's width margin makes it impossible there, see the
      // file comment): keep the active bucket's descending order intact.
      push_sorted(vec, entry);
    } else {
      vec.push_back(entry);
    }
    ++size_;
  }

  /// Removes and returns the lexicographically smallest (key, node) pending
  /// entry. Precondition: `!empty()`.
  Entry pop() {
    std::vector<Entry>* vec = &slot(cur_);
    if (vec->empty()) {
      advance_to_nonempty();
      vec = &slot(cur_);
    }
    if (!cur_sorted_) {
      // Thin buckets are the norm (width is a fraction of the smallest
      // edge delay): single-entry buckets skip sorting entirely, small
      // ones insertion-sort inline (descending, so pops drain ascending
      // from the back), the rest go out of line.
      const std::size_t count = vec->size();
      if (count > 1) {
        if (count <= 16) {
          Entry* data = vec->data();
          for (std::size_t i = 1; i < count; ++i) {
            const Entry e = data[i];
            std::size_t j = i;
            while (j > 0 && greater(e, data[j - 1])) {
              data[j] = data[j - 1];
              --j;
            }
            data[j] = e;
          }
        } else {
          sort_bucket(*vec);
        }
      }
      cur_sorted_ = true;
    }
    const Entry e = vec->back();
    vec->pop_back();
    --size_;
    if (vec->empty()) mark_empty(cur_);
    return e;
  }

 private:
  /// Descending (key, node) order — the drain-from-back sort order.
  static bool greater(const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key > b.key : a.node > b.node;
  }
  std::uint64_t bucket_of(double key) const {
    return static_cast<std::uint64_t>(key * inv_width_);
  }
  std::vector<Entry>& slot(std::uint64_t bucket) {
    return ring_[bucket & mask_];
  }
  void mark_occupied(std::uint64_t bucket) {
    const std::uint64_t s = bucket & mask_;
    occupied_[s >> 6] |= std::uint64_t{1} << (s & 63);
  }
  void mark_empty(std::uint64_t bucket) {
    const std::uint64_t s = bucket & mask_;
    occupied_[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
  }
  static void sort_bucket(std::vector<Entry>& bucket);
  static void push_sorted(std::vector<Entry>& bucket, Entry entry);
  void grow(std::uint64_t span_needed);
  void advance_to_nonempty();

  double width_ = 1.0;
  double inv_width_ = 1.0;
  std::uint64_t cur_ = 0;    ///< absolute index of the bucket being drained
  bool cur_sorted_ = false;  ///< true once `cur_`'s slot was sorted
  std::size_t size_ = 0;
  std::uint64_t mask_ = 0;  ///< ring capacity - 1 (capacity is a power of 2)
  std::vector<std::vector<Entry>> ring_;
  std::vector<std::uint64_t> occupied_;  ///< per-slot non-empty bitmap
#ifdef PERIGEE_TELEMETRY
  std::uint64_t empty_skips_ = 0;  ///< see empty_skips(); plain member — the
                                   ///< queue is single-threaded by design
#endif
};

}  // namespace perigee::sim
