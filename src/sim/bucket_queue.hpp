/// \file
/// \brief Monotone bucket queue (delta-stepping style) for the batched
/// broadcast engine's Dijkstra relaxation.
///
/// A Dijkstra pass over a graph whose edge weights are all >= some δmin only
/// ever inserts keys >= the key it last popped (each candidate is
/// `settled arrival + validation + edge delay`). A bucket queue exploits that
/// monotonicity: entries land in uniform-width buckets indexed by
/// `floor(key / width)`, pops drain buckets in index order, and with
/// `width <= δmin / 2` no insertion can ever land in a bucket that is already
/// being drained — so a push is O(1) amortized instead of the 4-ary heap's
/// O(log n) sift.
///
/// Unlike classic Dial/delta-stepping, the active bucket is sorted
/// lexicographically by (key, node) before it is drained. Buckets are small
/// (edge weights spread pushes across many buckets), so the sort is cheap,
/// and it buys the property the engines' byte-parity contract is easiest to
/// reason about with: **pop order is exactly
/// `std::priority_queue<pair, greater<>>` order** for any monotone push
/// sequence — `tests/sim_bucketq_test.cpp` asserts this equivalence
/// directly, and the batched engine therefore settles nodes in exactly the
/// reference engine's sequence.
///
/// Two bucketing modes share the ring (selected per `reset` overload):
///
///  - **u32 fixed-point** (the engine's hot path): keys are quantized onto a
///    power-of-two grid (`util::FixedPointScale`, exact floor) at push time
///    and the bucket index is `qkey >> shift` — pure integer math. The exact
///    floor is monotone, so a push can never land below the bucket being
///    drained and the double-rounding clamp disappears from `push`; the
///    active-bucket sort compares the stored u32 qkey first and only breaks
///    qkey ties through the key's IEEE bit pattern (for finite nonnegative
///    doubles, unsigned bit-pattern order *is* numeric order), so the hot
///    pop/sort path performs no double compares at all. `plan_fixed` derives
///    a grid whose largest conceivable key fits u32.
///  - **double width** (the replay oracle): the original `floor(key *
///    inv_width)` indexing, kept for graphs whose key span overflows the u32
///    grid and as the independently-verified oracle the fixed-point mode is
///    property-tested against.
///
/// Pop order is identical in both modes — the mode only decides how entries
/// are *grouped*, never how they compare — which is what lets the engines
/// switch modes per snapshot without breaking the byte-parity bar.
///
/// The bucket array is a power-of-two ring over *absolute* bucket indices
/// (slot = index & mask), valid because pending keys span less than the ring
/// capacity; a bitmap over slots makes skipping empty buckets O(ring/64) in
/// the worst case. Storage is reused across `reset()` calls, so a worker
/// draining thousands of single-source passes performs no steady-state
/// allocation.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/types.hpp"
#include "util/fixedpoint.hpp"

namespace perigee::sim {

class BucketQueue {
 public:
  /// One queued element: (arrival-time key, fixed-point image, node). `qkey`
  /// is `floor(key * scale)` in fixed-point mode and 0 in double mode; it is
  /// the primary sort key either way (all-zero qkeys defer to the exact
  /// bit-pattern compare, so double mode orders identically).
  struct Entry {
    double key;
    std::uint32_t qkey;
    net::NodeId node;
  };
  static_assert(sizeof(Entry) == 16, "keep bucket entries two per load pair");

  /// Hard ring-size ceiling enforced by `grow`.
  static constexpr std::uint64_t kMaxBuckets = std::uint64_t{1} << 20;
  /// Ring size `preferred_width`/`plan_fixed` steer towards (memory/scan
  /// sweet spot).
  static constexpr std::uint64_t kPreferredBuckets = std::uint64_t{1} << 16;
  /// Denominator of the default width min_delay / 16: several buckets per
  /// smallest edge delay keeps buckets thin (~1–3 entries), so the active-
  /// bucket sort stays negligible even when edge delays cluster.
  static constexpr double kOccupancyDivisor = 16.0;

  /// True when a graph with smallest edge delay `min_delay` and largest
  /// single-relaxation key increase `max_reach` (max edge delay + max
  /// validation) admits a correct width (<= min_delay / 2) whose ring stays
  /// within `kPreferredBuckets`. False for zero/negative/non-finite delays —
  /// those graphs use the heap path.
  static bool viable(double min_delay, double max_reach);

  /// The width the engine should run a `viable` graph at: min_delay / 16,
  /// floored so the ring holds at most `kPreferredBuckets` buckets, capped
  /// at the min_delay / 2 correctness ceiling.
  static double preferred_width(double min_delay, double max_reach);

  /// A fixed-point bucketing plan: the quantization grid plus the power-of-
  /// two bucket width (`2^shift` grid units).
  struct FixedPlan {
    util::FixedPointScale grid;
    int shift = 0;
    /// Bucket width in key units (milliseconds) — exact, both factors are
    /// powers of two.
    double width() const { return std::ldexp(1.0, shift - grid.exponent); }
  };

  /// Derives the fixed-point plan for a graph whose keys never exceed
  /// `max_key` (callers bound it by n relaxations of `max_reach` each, with
  /// slack): the finest power-of-two grid that resolves `min_delay` to ~2^9
  /// units, coarsened until `max_key` quantizes below 2^32 so every qkey
  /// fits u32; the bucket width starts at the occupancy sweet spot
  /// (<= min_delay / kOccupancyDivisor, matching double mode's preferred
  /// width) and widens until one relaxation reach fits the
  /// `kPreferredBuckets` ring budget. nullopt when no grid works —
  /// degenerate delays, or a key span over ~2^31x the min delay, where the
  /// u32 image cannot both hold `max_key` and resolve `min_delay` to the
  /// >= 2 units a bucket width needs — and callers fall back to the
  /// double-width mode or the heap.
  static std::optional<FixedPlan> plan_fixed(double min_delay,
                                             double max_reach, double max_key);

  /// Empties the queue and selects **double-width mode**. Keeps previously
  /// grown storage. `width` must be > 0 and finite; pair it with `viable` so
  /// the span of keys reachable from one relaxation fits `kMaxBuckets`.
  void reset(double width);

  /// Empties the queue and selects **fixed-point mode** with `plan` (from
  /// `plan_fixed`). Keeps previously grown storage.
  void reset(const FixedPlan& plan);

  /// Pending entries (including not-yet-skipped duplicates).
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// The bucket width the last `reset` installed (exact in both modes).
  double width() const { return width_; }
  /// True when the last `reset` selected fixed-point mode.
  bool fixed_point() const { return fixed_; }

  /// Empty buckets skipped by `advance_to_nonempty` since the last `reset`.
  /// Telemetry only (flushed into the obs registry per source by the batch
  /// engine); always 0 when telemetry is compiled out.
  std::uint64_t empty_skips() const {
#ifdef PERIGEE_TELEMETRY
    return empty_skips_;
#else
    return 0;
#endif
  }

  /// Heap bytes behind the ring (slot vectors keep their capacity across
  /// `reset`, so this is the lane's steady-state footprint).
  std::size_t memory_bytes() const {
    std::size_t bytes = ring_.capacity() * sizeof(ring_[0]) +
                        occupied_.capacity() * sizeof(std::uint64_t);
    for (const auto& vec : ring_) bytes += vec.capacity() * sizeof(Entry);
    return bytes;
  }

  /// Inserts an entry. Contract (unchecked in the hot path): `reset` was
  /// called at least once, and `key` is finite, >= 0 (never -0.0 — its bit
  /// pattern would sort above every positive key), and >= the key of the
  /// last `pop` (the Dijkstra monotonicity this queue is built for). In
  /// fixed-point mode the caller's plan additionally bounds `key * scale`
  /// below 2^32 (`plan_fixed` guarantees it for in-plan graphs).
  /// Inline: a sparse relaxation pushes a few thousand times per source, so
  /// the O(1) body must not cost a call.
  void push(double key, net::NodeId node) {
    std::uint32_t qkey = 0;
    std::uint64_t bucket;
    if (fixed_) {
      // Exact floor onto the grid (scale is a power of two); monotone, so
      // the bucket can never fall below cur_ — no clamp.
      qkey = static_cast<std::uint32_t>(key * scale_);
      bucket = qkey >> shift_;
    } else {
      bucket = static_cast<std::uint64_t>(key * inv_width_);
      // Monotone contract gives bucket >= cur_ up to a sub-ulp rounding of
      // key * inv_width_, which can map an equal key one bucket low;
      // clamping preserves exact pop order (the key belongs among the
      // current bucket's remainder either way).
      if (bucket < cur_) bucket = cur_;
    }
    if (bucket - cur_ >= mask_ + 1) grow(bucket - cur_);
    std::vector<Entry>& vec = slot(bucket);
    if (vec.empty()) mark_occupied(bucket);
    const Entry entry{key, qkey, node};
    if (bucket == cur_ && cur_sorted_) {
      // Rare (the engine's width margin makes it impossible there, see the
      // file comment): keep the active bucket's descending order intact.
      push_sorted(vec, entry);
    } else {
      vec.push_back(entry);
    }
    ++size_;
  }

  /// Removes and returns the lexicographically smallest (key, node) pending
  /// entry. Precondition: `!empty()`.
  Entry pop() {
    std::vector<Entry>* vec = &slot(cur_);
    if (vec->empty()) {
      advance_to_nonempty();
      vec = &slot(cur_);
    }
    if (!cur_sorted_) {
      // Thin buckets are the norm (width is a fraction of the smallest
      // edge delay): single-entry buckets skip sorting entirely, small
      // ones insertion-sort inline (descending, so pops drain ascending
      // from the back), the rest go out of line.
      const std::size_t count = vec->size();
      if (count > 1) {
        if (count <= 16) {
          Entry* data = vec->data();
          for (std::size_t i = 1; i < count; ++i) {
            const Entry e = data[i];
            std::size_t j = i;
            while (j > 0 && greater(e, data[j - 1])) {
              data[j] = data[j - 1];
              --j;
            }
            data[j] = e;
          }
        } else {
          sort_bucket(*vec);
        }
      }
      cur_sorted_ = true;
    }
    const Entry e = vec->back();
    vec->pop_back();
    --size_;
    if (vec->empty()) mark_empty(cur_);
    return e;
  }

  /// Node id the next `pop` would return *if* it sits in the bucket being
  /// drained, else `fallback`. O(1): the active bucket drains sorted from
  /// the back, and the engines' width margin keeps concurrent pushes out of
  /// it, so `back()` right after a pop *is* the next pop. The engines feed
  /// this to a software prefetch of the next CSR row while the current one
  /// is scanned — a wrong-but-harmless `fallback` on bucket boundaries
  /// costs one redundant prefetch hint, nothing more.
  net::NodeId peek_next(net::NodeId fallback) const {
    const std::vector<Entry>& vec = ring_[cur_ & mask_];
    return (cur_sorted_ && !vec.empty()) ? vec.back().node : fallback;
  }

 private:
  /// Descending (key, node) order — the drain-from-back sort order. The u32
  /// qkey image decides first (0 for every entry in double mode); a qkey tie
  /// falls through to the exact key via its IEEE bit pattern — for finite
  /// nonnegative doubles the unsigned bit-pattern order equals the numeric
  /// order, so ties and 1-ulp-apart keys resolve exactly, with no double
  /// compare anywhere on the path.
  static bool greater(const Entry& a, const Entry& b) {
    if (a.qkey != b.qkey) return a.qkey > b.qkey;
    const std::uint64_t ab = std::bit_cast<std::uint64_t>(a.key);
    const std::uint64_t bb = std::bit_cast<std::uint64_t>(b.key);
    return ab != bb ? ab > bb : a.node > b.node;
  }
  /// Mode-aware recompute of an entry's absolute bucket (grow's remap).
  std::uint64_t bucket_of_entry(const Entry& e) const {
    if (fixed_) return std::uint64_t{e.qkey} >> shift_;
    // The max with cur_ restores the slot a clamped fp-slop entry in the
    // active bucket was actually stored in.
    const auto bucket = static_cast<std::uint64_t>(e.key * inv_width_);
    return bucket < cur_ ? cur_ : bucket;
  }
  std::vector<Entry>& slot(std::uint64_t bucket) {
    return ring_[bucket & mask_];
  }
  void mark_occupied(std::uint64_t bucket) {
    const std::uint64_t s = bucket & mask_;
    occupied_[s >> 6] |= std::uint64_t{1} << (s & 63);
  }
  void mark_empty(std::uint64_t bucket) {
    const std::uint64_t s = bucket & mask_;
    occupied_[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
  }
  static void sort_bucket(std::vector<Entry>& bucket);
  static void push_sorted(std::vector<Entry>& bucket, Entry entry);
  void clear_and_rewind();
  void grow(std::uint64_t span_needed);
  void advance_to_nonempty();

  double width_ = 1.0;
  double inv_width_ = 1.0;   ///< double mode only
  double scale_ = 1.0;       ///< fixed-point mode: the grid's 2^exponent
  int shift_ = 0;            ///< fixed-point mode: log2 bucket width (units)
  bool fixed_ = false;       ///< mode selected by the last reset
  std::uint64_t cur_ = 0;    ///< absolute index of the bucket being drained
  bool cur_sorted_ = false;  ///< true once `cur_`'s slot was sorted
  std::size_t size_ = 0;
  std::uint64_t mask_ = 0;  ///< ring capacity - 1 (capacity is a power of 2)
  std::vector<std::vector<Entry>> ring_;
  std::vector<std::uint64_t> occupied_;  ///< per-slot non-empty bitmap
#ifdef PERIGEE_TELEMETRY
  std::uint64_t empty_skips_ = 0;  ///< see empty_skips(); plain member — the
                                   ///< queue is single-threaded by design
#endif
};

}  // namespace perigee::sim
