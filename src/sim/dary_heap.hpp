/// \file
/// \brief 4-ary min-heap over (key, node) pairs, shared by the single-source
/// CSR engine and the batched engine's fallback path.
///
/// Ordered lexicographically — the same total order
/// `std::priority_queue<pair, greater<>>` pops in, so every engine built on
/// it settles nodes in exactly the reference engine's sequence. d=4 halves
/// the tree height of a binary heap and keeps each child scan in one cache
/// line, which pays off at the push-heavy workload of a sparse Dijkstra.
#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/types.hpp"

namespace perigee::sim {

inline constexpr std::size_t kHeapArity = 4;

/// One heap element: (arrival-time key, node). The functions below are
/// templated so the compact fixed-point engine can reuse them with
/// integer-keyed items; lexicographic `operator<` defines the order either
/// way.
using HeapItem = std::pair<double, net::NodeId>;

/// Sift-up insertion. The item parameter is a non-deduced context so braced
/// initializers keep working at call sites; `Item` comes from the vector.
template <typename Item>
inline void heap_push(std::vector<Item>& heap,
                      std::type_identity_t<Item> item) {
  std::size_t i = heap.size();
  heap.push_back(item);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!(item < heap[parent])) break;
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = item;
}

/// Pops the lexicographic minimum. Precondition: `!heap.empty()`.
template <typename Item>
inline Item heap_pop(std::vector<Item>& heap) {
  const Item top = heap.front();
  const Item last = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size();
  if (n == 0) return top;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = i * kHeapArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + kHeapArity, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap[c] < heap[best]) best = c;
    }
    if (!(heap[best] < last)) break;
    heap[i] = heap[best];
    i = best;
  }
  heap[i] = last;
  return top;
}

}  // namespace perigee::sim
