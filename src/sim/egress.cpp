#include "sim/egress.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/thread_pool.hpp"
#include "sim/dary_heap.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace perigee::sim {
namespace {

// Event kinds, in the order they are documented in
// docs/TRANSMISSION_MODEL.md. Values never leak outside this file.
constexpr std::uint8_t kArrival = 0;   // a block copy reaches a node
constexpr std::uint8_t kReady = 1;     // a node starts relaying
constexpr std::uint8_t kSendDone = 2;  // a sender's uplink frees up

// One source's discrete-event simulation into caller-provided stripes.
//
// The loop is a pure function of (csr, config, plan, src): events pop in
// (time, seq) order where seq is the monotone schedule counter, so equal
// times resolve FIFO by schedule order — the deterministic tie-break rule.
// In the delay-only configuration (unlimited rate, or every size zero) the
// send pump delivers each payload inline at its dequeue instant with no
// rate arithmetic at all, and every candidate is the identical
// `ready_u + delays[e]` double addition solve_one performs — which is what
// makes the diff harness's byte-parity bar provable rather than
// approximate.
void solve_egress(const net::CsrTopology& csr, const EgressConfig& config,
                  const EgressPlan& plan, EgressScratch::Lane& lane,
                  net::NodeId src, double* arrival, double* ready) {
  const std::size_t n = csr.size();
  PERIGEE_ASSERT(src < n);
  PERIGEE_ASSERT(plan.size() == n);
  std::fill_n(arrival, n, util::kInf);
  arrival[src] = 0.0;

  lane.settled.assign(n, 0);
  // Sender cursors are initialized by each node's Ready event before any
  // read, so a bare resize (no clear) suffices.
  lane.segment.resize(n);
  lane.edge.resize(n);
  lane.tokens.resize(n);
  lane.refill_time.resize(n);
  std::vector<EgressEvent>& events = lane.events;
  events.clear();

  const std::size_t* offsets = csr.offsets();
  const std::size_t* row_ends = csr.row_ends();
  const net::NodeId* peers = csr.peer_data();
  const double* delays = csr.delay_data();

  // Dequeue segments: the message class on the lower band drains first
  // (pfifo_fast); on a band tie controls go first — they were enqueued
  // first, and within a band the scheduler is FIFO.
  const std::uint8_t payload_segment =
      config.payload_band() < config.control_band() ? 0 : 1;
  const double payload_bytes = config.block_bytes;
  const double control_bytes = config.control_bytes;
  const bool unlimited = config.unlimited_rate;

  std::uint64_t seq = 0;
  PERIGEE_TELEMETRY_ONLY(std::uint64_t tally_events = 0);
  PERIGEE_TELEMETRY_ONLY(std::uint64_t tally_sends = 0);
  PERIGEE_TELEMETRY_ONLY(std::uint64_t tally_suppressed = 0);
  PERIGEE_TELEMETRY_ONLY(std::uint64_t tally_token_waits = 0);
  PERIGEE_TELEMETRY_ONLY(std::uint64_t tally_band[3] = {0, 0, 0});
  PERIGEE_TELEMETRY_ONLY(std::int64_t backlog = 0);
  PERIGEE_TELEMETRY_ONLY(std::int64_t peak_backlog = 0);

  const auto relax = [&](net::NodeId v, double cand) {
    if (cand < arrival[v]) {
      arrival[v] = cand;
      heap_push(events, {cand, seq++, v, kArrival});
    }
  };

  // Drains node u's send queue from its current (segment, edge) cursor at
  // time `now`. Zero-cost sends (unlimited rate, zero size, or a bucket
  // that absorbs the whole message) deliver inline; the first send that
  // must serialize schedules one SendDone and leaves the cursor on it, so
  // at most one event per sender is ever in flight.
  const auto pump = [&](net::NodeId u, double now) {
    const std::size_t begin = offsets[u];
    const std::size_t deg = row_ends[u] - begin;
    std::uint8_t& segi = lane.segment[u];
    std::uint32_t& edgei = lane.edge[u];
    while (segi < 2) {
      if (edgei >= deg) {
        ++segi;
        edgei = 0;
        continue;
      }
      const bool is_payload = segi == payload_segment;
      const std::size_t e = begin + edgei;
      if (is_payload && lane.settled[peers[e]] != 0) {
        // Receiver already holds the block: suppress the payload entirely,
        // spending no bandwidth. Lossless — the receiver settled at an
        // event no later than `now`, so this candidate could never win.
        PERIGEE_TELEMETRY_ONLY(++tally_suppressed; --backlog;)
        ++edgei;
        continue;
      }
      const double size = is_payload ? payload_bytes : control_bytes;
      double finish = now;
      if (!unlimited && size > 0.0) {
        double& tokens = lane.tokens[u];
        double& refill = lane.refill_time[u];
        const double rate = plan.rate(u);
        if (now > refill) {
          tokens =
              std::min(config.burst_bytes, tokens + rate * (now - refill));
          refill = now;
        }
        if (tokens >= size) {
          tokens -= size;  // burst-absorbed: completes instantly
        } else {
          finish = now + (size - tokens) / rate;
          tokens = 0.0;
          refill = finish;
          PERIGEE_TELEMETRY_ONLY(++tally_token_waits;)
        }
      }
      PERIGEE_TELEMETRY_ONLY(
          ++tally_sends;
          ++tally_band[is_payload ? config.payload_band()
                                  : config.control_band()];)
      if (finish > now) {
        heap_push(events, {finish, seq++, u, kSendDone});
        return;
      }
      PERIGEE_TELEMETRY_ONLY(--backlog;)
      if (is_payload) relax(peers[e], now + delays[e]);
      ++edgei;
    }
  };

  // The source holds the block at t=0 and relays immediately — it skips
  // validation and ignores its own forwards flag, exactly like solve_one.
  lane.settled[src] = 1;
  heap_push(events, {0.0, seq++, src, kReady});

  while (!events.empty()) {
    const EgressEvent ev = heap_pop(events);
    PERIGEE_TELEMETRY_ONLY(++tally_events;)
    const net::NodeId u = ev.node;
    switch (ev.kind) {
      case kArrival: {
        // Stale entries carry a key the node has since improved on
        // (solve_one's rule); the first non-stale pop settles the node.
        if (lane.settled[u] != 0 || ev.time != arrival[u]) break;
        lane.settled[u] = 1;
        if (!csr.forwards(u)) break;  // withholder: receives, never relays
        heap_push(events, {ev.time + csr.validation_ms(u), seq++, u, kReady});
        break;
      }
      case kReady: {
        lane.segment[u] = 0;
        lane.edge[u] = 0;
        lane.tokens[u] = config.burst_bytes;
        lane.refill_time[u] = ev.time;
        PERIGEE_TELEMETRY_ONLY(
            backlog +=
            2 * static_cast<std::int64_t>(row_ends[u] - offsets[u]);
            peak_backlog = std::max(peak_backlog, backlog);)
        pump(u, ev.time);
        break;
      }
      case kSendDone: {
        const std::size_t e = offsets[u] + lane.edge[u];
        PERIGEE_TELEMETRY_ONLY(--backlog;)
        if (lane.segment[u] == payload_segment) {
          relax(peers[e], ev.time + delays[e]);
        }
        ++lane.edge[u];
        pump(u, ev.time);
        break;
      }
      default:
        break;
    }
  }

  PERIGEE_COUNTER_ADD("egress.sources", 1);
  PERIGEE_COUNTER_ADD("egress.events", tally_events);
  PERIGEE_COUNTER_ADD("egress.sends", tally_sends);
  PERIGEE_COUNTER_ADD("egress.suppressed_payloads", tally_suppressed);
  PERIGEE_COUNTER_ADD("egress.tokens_exhausted", tally_token_waits);
  PERIGEE_COUNTER_ADD("egress.band0_dequeues", tally_band[0]);
  PERIGEE_COUNTER_ADD("egress.band1_dequeues", tally_band[1]);
  PERIGEE_COUNTER_ADD("egress.band2_dequeues", tally_band[2]);
  PERIGEE_HISTOGRAM_OBSERVE("egress.queue_depth", peak_backlog);

  if (ready != nullptr) {
    for (std::size_t v = 0; v < n; ++v) {
      ready[v] = arrival[v] + csr.validation_ms(static_cast<net::NodeId>(v));
    }
    ready[src] = 0.0;  // the miner does not validate its own block
  }
}

// Same contiguous-range fan-out as batch.cpp's dispatch: work(lane, s) must
// write only s-indexed output, so worker count never affects results.
void dispatch(std::size_t count, EgressScratch& scratch,
              runner::ThreadPool* pool,
              const std::function<void(std::size_t lane, std::size_t s)>&
                  work) {
  std::size_t workers =
      pool != nullptr ? std::min<std::size_t>(pool->size(), count) : 1;
  if (workers == 0) workers = 1;
  scratch.ensure_lanes(workers);
  PERIGEE_COUNTER_ADD("egress.batches", 1);
  if (workers <= 1) {
    for (std::size_t s = 0; s < count; ++s) work(0, s);
    return;
  }
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = w * chunk;
    const std::size_t hi = std::min(count, lo + chunk);
    if (lo >= hi) break;
    pool->submit([&work, w, lo, hi] {
      for (std::size_t s = lo; s < hi; ++s) work(w, s);
    });
  }
  pool->wait();
}

}  // namespace

EgressPlan EgressPlan::build(const net::Network& network,
                             const EgressConfig& config) {
  EgressPlan plan;
  plan.profile_version_ = network.profile_version();
  const std::size_t n = network.size();
  plan.rates_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    // 1 Mbit/s = 125 bytes/ms; negative profile values clamp to zero
    // (a zero-rate sender serializes forever, which IEEE propagates as
    // +inf finish times — never delivering, never dividing by zero
    // elsewhere).
    const double mbps =
        std::max(0.0, network.profile(static_cast<net::NodeId>(v))
                          .bandwidth_mbps);
    plan.rates_[v] = mbps * 125.0 * config.rate_scale;
  }
  return plan;
}

const EgressPlan& EgressPlanCache::get(const net::Network& network,
                                       const EgressConfig& config) {
  if (!valid_ || plan_.profile_version() != network.profile_version() ||
      plan_.size() != network.size()) {
    plan_ = EgressPlan::build(network, config);
    valid_ = true;
  }
  return plan_;
}

EgressScratch::EgressScratch() = default;
EgressScratch::~EgressScratch() = default;
EgressScratch::EgressScratch(EgressScratch&&) noexcept = default;
EgressScratch& EgressScratch::operator=(EgressScratch&&) noexcept = default;

EgressScratch::Lane& EgressScratch::lane(std::size_t i) {
  PERIGEE_ASSERT(i < lanes_.size());
  return *lanes_[i];
}

std::size_t EgressScratch::lanes() const { return lanes_.size(); }

void EgressScratch::ensure_lanes(std::size_t count) {
  while (lanes_.size() < count) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

std::size_t EgressScratch::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& lane : lanes_) {
    bytes += lane->events.capacity() * sizeof(EgressEvent) +
             lane->settled.capacity() + lane->segment.capacity() +
             lane->edge.capacity() * sizeof(std::uint32_t) +
             (lane->tokens.capacity() + lane->refill_time.capacity() +
              lane->arrival.capacity() + lane->ready.capacity()) *
                 sizeof(double) +
             (lane->by_arrival.capacity() + lane->sort_scratch.capacity()) *
                 sizeof(std::pair<double, double>);
  }
  return bytes;
}

void simulate_broadcast_egress(const net::CsrTopology& csr,
                               const EgressConfig& config,
                               const EgressPlan& plan, net::NodeId source,
                               EgressScratch& scratch,
                               BroadcastResult& result) {
  const std::size_t n = csr.size();
  scratch.ensure_lanes(1);
  result.miner = source;
  result.arrival.resize(n);
  result.ready.resize(n);
  solve_egress(csr, config, plan, scratch.lane(0), source,
               result.arrival.data(), result.ready.data());
}

void simulate_broadcast_egress_batch(const net::CsrTopology& csr,
                                     const EgressConfig& config,
                                     const EgressPlan& plan,
                                     std::span<const net::NodeId> sources,
                                     EgressScratch& scratch,
                                     MultiSourceResult& out,
                                     runner::ThreadPool* pool) {
  const std::size_t n = csr.size();
  PERIGEE_TRACE_SPAN_ARGS(egress_span, "egress_batch",
                          obs::TraceArgs()
                              .arg("sources", sources.size())
                              .arg("nodes", n)
                              .json());
  out.prepare(n, sources);
  dispatch(sources.size(), scratch, pool,
           [&](std::size_t lane_idx, std::size_t s) {
             solve_egress(csr, config, plan, scratch.lane(lane_idx),
                          sources[s], out.arrival_data(s),
                          out.ready_data(s));
           });
  PERIGEE_GAUGE_MAX("mem.egress_scratch_bytes", scratch.memory_bytes());
}

void for_each_source_broadcast_egress(const net::CsrTopology& csr,
                                      const EgressConfig& config,
                                      const EgressPlan& plan,
                                      std::span<const net::NodeId> sources,
                                      EgressScratch& scratch,
                                      const SourceSink& sink,
                                      runner::ThreadPool* pool,
                                      bool need_ready) {
  const std::size_t n = csr.size();
  dispatch(sources.size(), scratch, pool,
           [&](std::size_t lane_idx, std::size_t s) {
             EgressScratch::Lane& lane = scratch.lane(lane_idx);
             lane.arrival.resize(n);
             double* ready = nullptr;
             if (need_ready) {
               lane.ready.resize(n);
               ready = lane.ready.data();
             }
             solve_egress(csr, config, plan, lane, sources[s],
                          lane.arrival.data(), ready);
             sink(lane_idx, s, lane.arrival,
                  need_ready ? std::span<const double>(lane.ready)
                             : std::span<const double>());
           });
}

}  // namespace perigee::sim
