/// \file
/// \brief Event-driven egress transmission engine: token-bucket rate limits
/// + a pfifo_fast-style priority-band scheduler per sender.
///
/// The delay-only engines charge every edge a fixed propagation delay δ and
/// let a node relay to all neighbors simultaneously. Real gossip contends
/// for finite uplink capacity: messages serialize one at a time through the
/// sender's NIC and queue behind each other. This engine adds that axis on
/// top of the same compiled `net::CsrTopology` snapshot:
///
///  - each node has an egress rate (bytes/ms, derived from its
///    `net::NodeProfile::bandwidth_mbps` by `EgressPlan`) and a token bucket
///    of depth `EgressConfig::burst_bytes` refilled at that rate;
///  - when a node becomes ready it enqueues one control message (INV/header
///    chatter) and one block payload per CSR neighbor, in adjacency order;
///    messages drain through a three-band priority FIFO (pfifo_fast's
///    band map: lower band drains fully before a higher band sends) one at
///    a time, each occupying the uplink for size/rate ms (minus whatever
///    the bucket absorbs);
///  - a payload that finishes serializing at time f arrives at the peer at
///    f + δ(u,v) — serialization + queue wait stack on top of the same
///    per-edge propagation the delay-only engines charge;
///  - control messages consume egress bandwidth but never deliver the
///    block, and a payload whose receiver already holds the block is
///    suppressed at dequeue time (compact-relay semantics) — suppression is
///    provably lossless because the receiver settled at an earlier event.
///
/// Determinism: the simulation is a single-threaded discrete-event loop per
/// source over a (time, sequence) min-heap — ties in time break FIFO by
/// schedule order, so one source's outcome is a pure function of
/// (snapshot, config, plan, source). Batches fan sources across an optional
/// `runner::ThreadPool` with pre-assigned result stripes exactly like
/// `sim/batch.hpp`, so output is byte-identical at any worker count.
///
/// Parity bar (enforced by tests/sim_engine_diff_test.cpp): with
/// `unlimited_rate` (or all-zero message sizes) every send completes at its
/// dequeue instant with no floating-point work, each candidate arrival is
/// the identical single `ready_u + δ` addition the delay-only relaxation
/// performs, and the engine's arrival/ready bytes equal the legacy, CSR,
/// and batched engines' exactly. See docs/TRANSMISSION_MODEL.md for the
/// full model semantics.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "net/csr.hpp"
#include "net/network.hpp"
#include "net/types.hpp"
#include "sim/batch.hpp"
#include "sim/broadcast.hpp"

namespace perigee::runner {
class ThreadPool;
}  // namespace perigee::runner

namespace perigee::sim {

/// Message sizes, band assignment and rate shaping for the egress engine.
/// All sizes are bytes and all rates derive from node bandwidth profiles
/// (`EgressPlan`); the scenario layer owns the KB-denominated user-facing
/// mirror (`scenario::TransmissionRegime`) and converts.
struct EgressConfig {
  /// Block payload size in bytes (Bitcoin-like default: 200 KB).
  double block_bytes = 200'000.0;
  /// Control-plane message size in bytes (INV/headers chatter) charged per
  /// neighbor per broadcast. Controls consume egress bandwidth but never
  /// deliver the block — the propagation δ already folds the request round
  /// trip (`net::NetworkOptions::handshake_factor`).
  double control_bytes = 0.0;
  /// True routes the payload through the compact-block band of `band_map`
  /// instead of the full-block band. Pair with a smaller `block_bytes` to
  /// model compact-block relay.
  bool compact_blocks = false;
  /// Multiplier applied to every node's profile-derived rate; 1.0 uses
  /// `bandwidth_mbps` as-is.
  double rate_scale = 1.0;
  /// Token-bucket depth in bytes. 0 (default) disables bursting: every
  /// message serializes for exactly size/rate ms. A bucket larger than a
  /// sender's whole backlog makes that sender effectively delay-only.
  double burst_bytes = 0.0;
  /// True short-circuits all rate/token arithmetic: every send completes at
  /// its dequeue instant. This is the delay-only parity configuration.
  bool unlimited_rate = false;
  /// pfifo_fast-style priority→band map: `band_map[0]` is the band of
  /// control messages, `[1]` compact-block payloads, `[2]` full-block
  /// payloads. Lower bands drain strictly first; within a band messages
  /// are FIFO in enqueue order (controls before payloads, each in CSR
  /// adjacency order).
  std::array<std::uint8_t, 3> band_map = {0, 1, 2};

  /// Band the control messages ride.
  std::uint8_t control_band() const { return band_map[0]; }
  /// Band the block payload rides (honoring `compact_blocks`).
  std::uint8_t payload_band() const { return band_map[compact_blocks ? 1 : 2]; }
};

/// Per-node egress rates compiled from a network's profiles:
/// `rate = bandwidth_mbps * 125 bytes/ms * rate_scale` (consistent with the
/// analytic `block_size_kb * 8 / mbps` ms transmission term of
/// `net::Network::edge_delay_from_link_ms`, which must stay disabled when
/// this engine runs — see `scenario::adjust_network_options`). Rebuild when
/// `net::Network::profile_version()` moves; `EgressPlanCache` automates
/// that.
class EgressPlan {
 public:
  /// Compiles per-node rates from `network`'s current profiles.
  static EgressPlan build(const net::Network& network,
                          const EgressConfig& config);

  /// Egress rate of node `v` in bytes/ms.
  double rate(net::NodeId v) const { return rates_[v]; }
  /// Number of nodes the plan covers.
  std::size_t size() const { return rates_.size(); }
  /// `profile_version()` of the network the plan was built from.
  std::uint64_t profile_version() const { return profile_version_; }

 private:
  std::vector<double> rates_;
  std::uint64_t profile_version_ = 0;
};

/// Rebuilds an `EgressPlan` only when the network's profiles actually
/// changed (churn rejoin, hetero tier edits) — the same version-counter
/// pattern `net::CsrCache` uses for snapshots.
class EgressPlanCache {
 public:
  /// Cached plan for `network`'s current profiles; rebuilds on
  /// `profile_version()` or size mismatch.
  const EgressPlan& get(const net::Network& network,
                        const EgressConfig& config);

 private:
  EgressPlan plan_;
  bool valid_ = false;
};

/// Reusable arena of per-worker scratch lanes for the egress engine,
/// mirroring `MultiSourceScratch`: lanes grow on demand, survive across
/// batches, and each concurrent worker owns exactly one.
class EgressScratch {
 public:
  EgressScratch();
  ~EgressScratch();
  EgressScratch(EgressScratch&&) noexcept;
  EgressScratch& operator=(EgressScratch&&) noexcept;

  struct Lane;
  /// Lane `i`, valid until the next `ensure_lanes`.
  Lane& lane(std::size_t i);
  /// Lanes currently allocated.
  std::size_t lanes() const;
  /// Grows the pool to at least `count` lanes.
  void ensure_lanes(std::size_t count);
  /// Heap bytes across all lanes (reported through the
  /// `mem.egress_scratch_bytes` obs gauge after each batch).
  std::size_t memory_bytes() const;

 private:
  std::vector<std::unique_ptr<Lane>> lanes_;
};

/// One discrete event: (time, schedule sequence) orders the heap — equal
/// times break FIFO by `seq`, which is the engine's deterministic tie-break
/// rule (documented in docs/TRANSMISSION_MODEL.md).
struct EgressEvent {
  double time = 0.0;       ///< event timestamp, ms
  std::uint64_t seq = 0;   ///< monotone schedule order, breaks time ties
  net::NodeId node = 0;    ///< subject node
  std::uint8_t kind = 0;   ///< EgressEventKind
  bool operator<(const EgressEvent& other) const {
    if (time != other.time) return time < other.time;
    return seq < other.seq;
  }
};

/// Per-worker scratch: the event heap, arrival state, per-sender scheduler
/// state, and the same caller-usable λ sort buffers `MultiSourceScratch`
/// lanes carry (so `metrics::eval_all_sources` stays allocation-free over
/// this engine too).
struct EgressScratch::Lane {
  std::vector<EgressEvent> events;      ///< 4-ary event heap storage
  std::vector<std::uint8_t> settled;    ///< per-node "holds the block" flag
  std::vector<std::uint8_t> segment;    ///< per-sender dequeue segment index
  std::vector<std::uint32_t> edge;      ///< per-sender index into its CSR row
  std::vector<double> tokens;           ///< per-sender bucket fill, bytes
  std::vector<double> refill_time;      ///< per-sender last bucket refill, ms
  std::vector<double> arrival;          ///< streaming-form stripe
  std::vector<double> ready;            ///< streaming-form stripe
  /// (arrival, hash power) pairs for the λ coverage accumulation.
  std::vector<std::pair<double, double>> by_arrival;
  /// Ping-pong buffer for the radix sort of `by_arrival`.
  std::vector<std::pair<double, double>> sort_scratch;
};

/// Simulates one broadcast from `source` under the queuing model, writing
/// into `result` (vectors resized as needed). Deterministic: repeated calls
/// with identical inputs produce identical bytes.
void simulate_broadcast_egress(const net::CsrTopology& csr,
                               const EgressConfig& config,
                               const EgressPlan& plan, net::NodeId source,
                               EgressScratch& scratch,
                               BroadcastResult& result);

/// Batch form mirroring `simulate_broadcast_batch`: all sources over one
/// snapshot into per-source stripes of `out`, fanned across `pool` as
/// contiguous pre-assigned ranges — byte-identical at any worker count.
void simulate_broadcast_egress_batch(const net::CsrTopology& csr,
                                     const EgressConfig& config,
                                     const EgressPlan& plan,
                                     std::span<const net::NodeId> sources,
                                     EgressScratch& scratch,
                                     MultiSourceResult& out,
                                     runner::ThreadPool* pool = nullptr);

/// Streaming form mirroring `for_each_source_broadcast` (λ evaluation: n
/// sources must not materialize O(n²) doubles). `sink(lane, s, arrival,
/// ready)` may run concurrently for distinct `s` and must write only
/// s-indexed slots; with `need_ready` false the ready fill is skipped and
/// the sink receives an empty ready span.
void for_each_source_broadcast_egress(const net::CsrTopology& csr,
                                      const EgressConfig& config,
                                      const EgressPlan& plan,
                                      std::span<const net::NodeId> sources,
                                      EgressScratch& scratch,
                                      const SourceSink& sink,
                                      runner::ThreadPool* pool = nullptr,
                                      bool need_ready = true);

}  // namespace perigee::sim
