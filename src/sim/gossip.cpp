#include "sim/gossip.hpp"

#include <cmath>
#include <queue>

#include "sim/broadcast.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace perigee::sim {
namespace {

enum class MsgType : std::uint8_t { Inv, Getdata, Block };

struct Event {
  double time;
  MsgType type;
  net::NodeId from;
  net::NodeId to;

  bool operator>(const Event& other) const { return time > other.time; }
};

// Control messages (INV, GETDATA) carry a hash, not the block: they pay the
// propagation latency only, never the transmission term.
double control_delay(const net::Topology& topology, const net::Network& network,
                     net::NodeId u, net::NodeId v) {
  if (auto infra = topology.infra_latency(u, v)) return *infra;
  return network.link_ms(u, v);
}

double block_delay(const net::Topology& topology, const net::Network& network,
                   net::NodeId u, net::NodeId v) {
  if (auto infra = topology.infra_latency(u, v)) return *infra;
  return network.edge_delay_ms(u, v);
}

}  // namespace

GossipResult simulate_gossip(const net::Topology& topology,
                             const net::Network& network, net::NodeId miner,
                             const GossipConfig& config) {
  PERIGEE_ASSERT(topology.size() == network.size());
  PERIGEE_ASSERT(miner < network.size());
  const std::size_t n = network.size();

  GossipResult result;
  result.miner = miner;
  result.arrival.assign(n, util::kInf);
  result.first_announce.assign(n, util::kInf);

  std::vector<bool> has_block(n, false);
  std::vector<bool> requested(n, false);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;

  auto on_validated = [&](net::NodeId u, double t_ready) {
    // Relay to every neighbor. Push mode sends the block itself; handshake
    // mode announces with an INV.
    for (const auto& link : topology.adjacency(u)) {
      const net::NodeId v = link.peer;
      if (config.mode == GossipConfig::Mode::Push) {
        queue.push(Event{t_ready + block_delay(topology, network, u, v),
                         MsgType::Block, u, v});
      } else {
        queue.push(Event{t_ready + control_delay(topology, network, u, v),
                         MsgType::Inv, u, v});
      }
    }
  };

  auto record_announce = [&](net::NodeId v, net::NodeId u, double t) {
    result.first_announce[v] = std::min(result.first_announce[v], t);
    if (config.record_edge_times) {
      result.edge_times.push_back(GossipEdgeTime{v, u, t});
    }
  };

  auto accept_block = [&](net::NodeId v, double t) {
    if (has_block[v]) return;
    has_block[v] = true;
    result.arrival[v] = t;
    if (!network.profile(v).forwards) return;  // withholding node
    on_validated(v, t + network.validation_ms(v));
  };

  // The miner holds its freshly mined block at t=0 and relays immediately
  // (no validation of its own block).
  has_block[miner] = true;
  result.arrival[miner] = 0.0;
  result.first_announce[miner] = 0.0;
  on_validated(miner, 0.0);

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    ++result.messages_processed;
    switch (ev.type) {
      case MsgType::Inv:
        record_announce(ev.to, ev.from, ev.time);
        if (!has_block[ev.to] && !requested[ev.to]) {
          // Request from the first announcer only; honest senders always
          // deliver, so no re-request timeout is modeled.
          requested[ev.to] = true;
          queue.push(Event{
              ev.time + control_delay(topology, network, ev.to, ev.from),
              MsgType::Getdata, ev.to, ev.from});
        }
        break;
      case MsgType::Getdata:
        // ev.to is the node holding the block (it sent the INV).
        PERIGEE_ASSERT(has_block[ev.to]);
        queue.push(Event{ev.time + block_delay(topology, network, ev.to,
                                               ev.from),
                         MsgType::Block, ev.to, ev.from});
        break;
      case MsgType::Block:
        if (config.mode == GossipConfig::Mode::Push) {
          record_announce(ev.to, ev.from, ev.time);
        }
        accept_block(ev.to, ev.time);
        break;
    }
  }
  return result;
}

}  // namespace perigee::sim
