#include "sim/gossip.hpp"

#include <cmath>
#include <queue>

#include "sim/broadcast.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace perigee::sim {
namespace {

enum class MsgType : std::uint8_t { Inv, Getdata, Block };

struct Event {
  double time;
  MsgType type;
  net::NodeId from;
  net::NodeId to;

  bool operator>(const Event& other) const { return time > other.time; }
};

}  // namespace

GossipResult simulate_gossip(const net::CsrTopology& csr, net::NodeId miner,
                             const GossipConfig& config) {
  const std::size_t n = csr.size();
  PERIGEE_ASSERT(miner < n);

  GossipResult result;
  result.miner = miner;
  result.arrival.assign(n, util::kInf);
  result.first_announce.assign(n, util::kInf);

  std::vector<bool> has_block(n, false);
  std::vector<bool> requested(n, false);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;

  auto on_validated = [&](net::NodeId u, double t_ready) {
    // Relay to every neighbor. Push mode sends the block itself (full edge
    // delay); handshake mode announces with an INV (control delay). Both
    // costs are one pre-resolved array read per link.
    const auto peers = csr.peers(u);
    const auto costs = config.mode == GossipConfig::Mode::Push
                           ? csr.delays(u)
                           : csr.control_delays(u);
    const MsgType type = config.mode == GossipConfig::Mode::Push
                             ? MsgType::Block
                             : MsgType::Inv;
    for (std::size_t i = 0; i < peers.size(); ++i) {
      queue.push(Event{t_ready + costs[i], type, u, peers[i]});
    }
  };

  auto record_announce = [&](net::NodeId v, net::NodeId u, double t) {
    result.first_announce[v] = std::min(result.first_announce[v], t);
    if (config.record_edge_times) {
      result.edge_times.push_back(GossipEdgeTime{v, u, t});
    }
  };

  auto accept_block = [&](net::NodeId v, double t) {
    if (has_block[v]) return;
    has_block[v] = true;
    result.arrival[v] = t;
    if (!csr.forwards(v)) return;  // withholding node
    on_validated(v, t + csr.validation_ms(v));
  };

  // The miner holds its freshly mined block at t=0 and relays immediately
  // (no validation of its own block).
  has_block[miner] = true;
  result.arrival[miner] = 0.0;
  result.first_announce[miner] = 0.0;
  on_validated(miner, 0.0);

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    ++result.messages_processed;
    switch (ev.type) {
      case MsgType::Inv:
        record_announce(ev.to, ev.from, ev.time);
        if (!has_block[ev.to] && !requested[ev.to]) {
          // Request from the first announcer only; honest senders always
          // deliver, so no re-request timeout is modeled.
          requested[ev.to] = true;
          queue.push(Event{ev.time + csr.control_delay(ev.to, ev.from),
                           MsgType::Getdata, ev.to, ev.from});
        }
        break;
      case MsgType::Getdata:
        // ev.to is the node holding the block (it sent the INV).
        PERIGEE_ASSERT(has_block[ev.to]);
        queue.push(Event{ev.time + csr.block_delay(ev.to, ev.from),
                         MsgType::Block, ev.to, ev.from});
        break;
      case MsgType::Block:
        if (config.mode == GossipConfig::Mode::Push) {
          record_announce(ev.to, ev.from, ev.time);
        }
        accept_block(ev.to, ev.time);
        break;
    }
  }
  return result;
}

GossipResult simulate_gossip(const net::Topology& topology,
                             const net::Network& network, net::NodeId miner,
                             const GossipConfig& config) {
  PERIGEE_ASSERT(topology.size() == network.size());
  return simulate_gossip(net::CsrTopology::build(topology, network), miner,
                         config);
}

}  // namespace perigee::sim
