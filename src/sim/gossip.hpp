/// \file
/// \brief Message-level gossip engine (paper §1.1.2).
///
/// Simulates the Bitcoin relay handshake event-by-event: a node that has
/// validated a block announces it (INV) to all neighbors; a neighbor lacking
/// the block requests it (GETDATA) from the first announcer; the block is then
/// transferred. In Push mode the handshake is skipped and blocks are pushed
/// directly — in that mode arrival times coincide exactly with the fast
/// engine's (sim/broadcast.hpp), which the test suite asserts.
///
/// Control messages (INV/GETDATA) travel at the link's propagation latency;
/// the block transfer pays the full edge delay (propagation + transmission).
/// Both delay kinds are pre-resolved into the `net::CsrTopology` the event
/// loop runs on; the Topology-based overload compiles a throwaway snapshot
/// and delegates, while the round loop hands in its per-round snapshot.
#pragma once

#include <vector>

#include "net/csr.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"

namespace perigee::sim {

/// Gossip engine knobs.
struct GossipConfig {
  /// Relay protocol variant.
  enum class Mode {
    Push,        ///< validated block is pushed to all neighbors directly
    InvGetdata,  ///< full INV -> GETDATA -> BLOCK handshake
  };
  Mode mode = Mode::InvGetdata;
  /// Record per-edge announcement times (one entry per INV/push received).
  bool record_edge_times = false;
};

/// One announcement (INV or pushed copy) as received on an edge.
struct GossipEdgeTime {
  net::NodeId to;    ///< receiving node v
  net::NodeId from;  ///< announcing neighbor u
  double time_ms;    ///< when the announcement (or pushed copy) reached v
};

/// Outcome of one message-level broadcast.
struct GossipResult {
  net::NodeId miner = net::kInvalidNode;  ///< the mining node
  std::vector<double> arrival;        ///< block in hand; +inf if unreachable
  std::vector<double> first_announce; ///< first INV/push heard; +inf if none
  std::vector<GossipEdgeTime> edge_times;  ///< per-edge announcements, if on
  std::size_t messages_processed = 0;      ///< total events drained
};

/// Event loop over a compiled snapshot (delays read from the CSR arrays).
GossipResult simulate_gossip(const net::CsrTopology& csr, net::NodeId miner,
                             const GossipConfig& config = {});

/// Convenience overload: compiles a snapshot of `topology` and delegates.
/// Bit-identical to running on the snapshot directly.
GossipResult simulate_gossip(const net::Topology& topology,
                             const net::Network& network, net::NodeId miner,
                             const GossipConfig& config = {});

}  // namespace perigee::sim
