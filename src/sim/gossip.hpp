// Message-level gossip engine (paper §1.1.2).
//
// Simulates the Bitcoin relay handshake event-by-event: a node that has
// validated a block announces it (INV) to all neighbors; a neighbor lacking
// the block requests it (GETDATA) from the first announcer; the block is then
// transferred. In Push mode the handshake is skipped and blocks are pushed
// directly — in that mode arrival times coincide exactly with the fast
// engine's (sim/broadcast.hpp), which the test suite asserts.
//
// Control messages (INV/GETDATA) travel at the link's propagation latency;
// the block transfer pays the full edge delay (propagation + transmission).
#pragma once

#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"

namespace perigee::sim {

struct GossipConfig {
  enum class Mode {
    Push,        // validated block is pushed to all neighbors directly
    InvGetdata,  // full INV -> GETDATA -> BLOCK handshake
  };
  Mode mode = Mode::InvGetdata;
  // Record per-edge announcement times (one entry per INV/push received).
  bool record_edge_times = false;
};

struct GossipEdgeTime {
  net::NodeId to;    // receiving node v
  net::NodeId from;  // announcing neighbor u
  double time_ms;    // when the announcement (or pushed copy) reached v
};

struct GossipResult {
  net::NodeId miner = net::kInvalidNode;
  std::vector<double> arrival;        // block in hand; +inf if unreachable
  std::vector<double> first_announce; // first INV/push heard; +inf if none
  std::vector<GossipEdgeTime> edge_times;
  std::size_t messages_processed = 0;
};

GossipResult simulate_gossip(const net::Topology& topology,
                             const net::Network& network, net::NodeId miner,
                             const GossipConfig& config = {});

}  // namespace perigee::sim
