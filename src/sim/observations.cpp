#include "sim/observations.hpp"

#include <algorithm>
#include <cmath>

#include "sim/gossip.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace perigee::sim {

void ObservationTable::begin_round(const net::Topology& topology,
                                   std::size_t blocks_per_round) {
  PERIGEE_ASSERT(blocks_per_round > 0);
  blocks_per_round_ = blocks_per_round;
  blocks_recorded_ = 0;
  nodes_.assign(topology.size(), {});
  for (net::NodeId v = 0; v < topology.size(); ++v) {
    PerNode& pn = nodes_[v];
    const auto& adj = topology.adjacency(v);
    pn.neighbors.reserve(adj.size());
    pn.links.reserve(adj.size());
    pn.outgoing.reserve(adj.size());
    for (const auto& link : adj) {
      pn.neighbors.push_back(link.peer);
      pn.links.push_back(link);
      pn.outgoing.push_back(topology.has_out(v, link.peer) ? 1 : 0);
    }
    pn.rel.assign(pn.neighbors.size() * blocks_per_round_, util::kInf);
  }
}

void ObservationTable::record_block(const net::Topology& topology,
                                    const net::Network& network,
                                    const BroadcastResult& result) {
  PERIGEE_ASSERT(blocks_recorded_ < blocks_per_round_);
  PERIGEE_ASSERT(nodes_.size() == topology.size());
  const std::size_t b = blocks_recorded_;
  for (net::NodeId v = 0; v < topology.size(); ++v) {
    PerNode& pn = nodes_[v];
    const std::size_t deg = pn.neighbors.size();
    if (deg == 0) continue;
    scratch_.resize(deg);
    double t_min = util::kInf;
    for (std::size_t i = 0; i < deg; ++i) {
      const double t = delivery_time(result, pn.links[i], v, network);
      scratch_[i] = t;
      t_min = std::min(t_min, t);
    }
    for (std::size_t i = 0; i < deg; ++i) {
      // Unreached neighbor (or fully unreached v): t̃ stays +inf.
      const double rel = std::isinf(scratch_[i]) || std::isinf(t_min)
                             ? util::kInf
                             : scratch_[i] - t_min;
      pn.rel[i * blocks_per_round_ + b] = rel;
    }
  }
  ++blocks_recorded_;
}

void ObservationTable::record_block(const net::CsrTopology& csr,
                                    const BroadcastResult& result) {
  record_block(csr, result.miner, result.ready);
}

void ObservationTable::record_block(const net::CsrTopology& csr,
                                    net::NodeId miner,
                                    std::span<const double> ready_times) {
  PERIGEE_ASSERT(blocks_recorded_ < blocks_per_round_);
  PERIGEE_ASSERT(nodes_.size() == csr.size());
  PERIGEE_ASSERT(ready_times.size() == nodes_.size());
  const std::size_t b = blocks_recorded_;
  for (net::NodeId v = 0; v < nodes_.size(); ++v) {
    PerNode& pn = nodes_[v];
    const std::size_t deg = pn.neighbors.size();
    if (deg == 0) continue;
    // Row v of the snapshot is adjacency(v) in capture order, so entry i is
    // exactly the δ delivery_time would resolve for pn.links[i].
    const auto delays = csr.delays(v);
    PERIGEE_ASSERT(delays.size() == deg);
    scratch_.resize(deg);
    double t_min = util::kInf;
    for (std::size_t i = 0; i < deg; ++i) {
      const net::NodeId u = pn.neighbors[i];
      const double ready = ready_times[u];
      const double t = (!csr.forwards(u) && u != miner) || std::isinf(ready)
                           ? util::kInf
                           : ready + delays[i];
      scratch_[i] = t;
      t_min = std::min(t_min, t);
    }
    for (std::size_t i = 0; i < deg; ++i) {
      // Unreached neighbor (or fully unreached v): t̃ stays +inf.
      const double rel = std::isinf(scratch_[i]) || std::isinf(t_min)
                             ? util::kInf
                             : scratch_[i] - t_min;
      pn.rel[i * blocks_per_round_ + b] = rel;
    }
  }
  ++blocks_recorded_;
}

void ObservationTable::record_gossip_block(const GossipResult& result) {
  PERIGEE_ASSERT(blocks_recorded_ < blocks_per_round_);
  PERIGEE_ASSERT_MSG(!result.edge_times.empty() ||
                         result.arrival.size() == nodes_.size(),
                     "gossip result must carry edge times");
  const std::size_t b = blocks_recorded_;
  // Absolute announcement time per (node, neighbor-slot); +inf by default.
  scratch_.assign(0, 0.0);
  std::vector<std::vector<double>> abs(nodes_.size());
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    abs[v].assign(nodes_[v].neighbors.size(), util::kInf);
  }
  for (const auto& et : result.edge_times) {
    PERIGEE_ASSERT(et.to < nodes_.size());
    auto& pn = nodes_[et.to];
    for (std::size_t i = 0; i < pn.neighbors.size(); ++i) {
      if (pn.neighbors[i] == et.from) {
        abs[et.to][i] = std::min(abs[et.to][i], et.time_ms);
        break;
      }
    }
  }
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    PerNode& pn = nodes_[v];
    double t_min = util::kInf;
    for (double t : abs[v]) t_min = std::min(t_min, t);
    for (std::size_t i = 0; i < pn.neighbors.size(); ++i) {
      pn.rel[i * blocks_per_round_ + b] =
          std::isinf(abs[v][i]) || std::isinf(t_min) ? util::kInf
                                                     : abs[v][i] - t_min;
    }
  }
  ++blocks_recorded_;
}

std::span<const net::NodeId> ObservationTable::neighbors(net::NodeId v) const {
  PERIGEE_ASSERT(v < nodes_.size());
  return nodes_[v].neighbors;
}

std::size_t ObservationTable::neighbor_count(net::NodeId v) const {
  PERIGEE_ASSERT(v < nodes_.size());
  return nodes_[v].neighbors.size();
}

bool ObservationTable::is_outgoing(net::NodeId v, std::size_t idx) const {
  PERIGEE_ASSERT(v < nodes_.size());
  PERIGEE_ASSERT(idx < nodes_[v].outgoing.size());
  return nodes_[v].outgoing[idx] != 0;
}

std::span<const double> ObservationTable::rel_times(net::NodeId v,
                                                    std::size_t idx) const {
  PERIGEE_ASSERT(v < nodes_.size());
  const PerNode& pn = nodes_[v];
  PERIGEE_ASSERT(idx < pn.neighbors.size());
  return std::span<const double>(pn.rel.data() + idx * blocks_per_round_,
                                 blocks_recorded_);
}

}  // namespace perigee::sim
