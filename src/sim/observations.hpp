/// \file
/// \brief Observation collection (paper §4.1, Eq. 2).
///
/// During a round each node v records, for every neighbor u and block b, the
/// time t(b,u,v) at which u's copy of b reached v. Scores consume the
/// time-normalized values  t̃ = t(b,u,v) − min_u t(b,u,v).
///
/// The neighbor list of each node is captured at round start (the topology is
/// static within a round) and includes outgoing, incoming and infra
/// neighbors; only outgoing neighbors are marked selectable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/csr.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/broadcast.hpp"

namespace perigee::sim {

/// Per-round matrix of relative block delivery times, indexed by
/// (node, neighbor slot, block).
class ObservationTable {
 public:
  /// Captures neighbor lists and sizes the timestamp matrix for
  /// `blocks_per_round` upcoming blocks.
  void begin_round(const net::Topology& topology,
                   std::size_t blocks_per_round);

  /// Appends one block's delivery times for every (node, neighbor) pair,
  /// resolving δ per link through the Network (reference path).
  void record_block(const net::Topology& topology,
                    const net::Network& network,
                    const BroadcastResult& result);

  /// CSR fast path: same appends, but δ(v, neighbor i) is the pre-resolved
  /// entry i of the snapshot's row v — valid because the snapshot preserves
  /// `Topology::adjacency` order and the topology is static within a round.
  /// Bit-identical to the reference overload; the snapshot must be built
  /// from the same topology captured by begin_round.
  void record_block(const net::CsrTopology& csr, const BroadcastResult& result);

  /// Stripe form of the CSR fast path: consumes one source's slice of a
  /// batched result (sim/batch.hpp) without copying it into a
  /// `BroadcastResult`. The round loop records every block of a batch
  /// through this.
  void record_block(const net::CsrTopology& csr, net::NodeId miner,
                    std::span<const double> ready);

  /// Message-level variant: one block's per-edge announcement times from the
  /// gossip engine (run with record_edge_times = true). Neighbors that never
  /// announced stay +inf. The paper's footnote 3: scoring can equally use
  /// the times block advertisements (INVs) were received.
  void record_gossip_block(const struct GossipResult& result);

  /// Blocks recorded so far this round.
  std::size_t blocks_recorded() const { return blocks_recorded_; }
  /// Capacity declared by begin_round.
  std::size_t blocks_capacity() const { return blocks_per_round_; }

  /// Neighbors of v as captured at round start.
  std::span<const net::NodeId> neighbors(net::NodeId v) const;
  /// Number of captured neighbors of v.
  std::size_t neighbor_count(net::NodeId v) const;
  /// True when neighbor `idx` of v is an outgoing (selectable) connection.
  bool is_outgoing(net::NodeId v, std::size_t idx) const;

  /// Relative delivery times t̃ of neighbor `idx` of v, one entry per recorded
  /// block; +inf when the neighbor never delivered.
  std::span<const double> rel_times(net::NodeId v, std::size_t idx) const;

 private:
  struct PerNode {
    std::vector<net::NodeId> neighbors;
    std::vector<std::uint8_t> outgoing;       // parallel to neighbors
    std::vector<net::Topology::Link> links;   // parallel; cached link metadata
    std::vector<double> rel;                  // [idx * blocks_per_round + b]
  };

  std::vector<PerNode> nodes_;
  std::size_t blocks_per_round_ = 0;
  std::size_t blocks_recorded_ = 0;
  std::vector<double> scratch_;  // per-neighbor absolute times of one block
};

}  // namespace perigee::sim
