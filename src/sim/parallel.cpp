#include "sim/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <bit>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/thread_pool.hpp"
#include "sim/dary_heap.hpp"
#include "util/assert.hpp"
#include "util/fixedpoint.hpp"
#include "util/prefetch.hpp"
#include "util/stats.hpp"

namespace perigee::sim {
namespace {

/// "No pending bucket" sentinel for the next-bucket vote.
constexpr std::uint64_t kNoBucket = std::numeric_limits<std::uint64_t>::max();
/// Hard per-lane ring ceiling, matching BucketQueue::kMaxBuckets.
constexpr std::uint64_t kMaxRingBuckets = std::uint64_t{1} << 20;

}  // namespace

/// Per-worker lane. The ring is a power-of-two window over absolute bucket
/// indices (slot = index & mask) holding bare node ids — settled-once means
/// entries need no keys; a stale duplicate is skipped by the settled bitmap.
///
/// alignas(64): team members hammer their own lane's cursors and outboxes
/// every bucket round; starting each lane on its own cache line keeps that
/// traffic private (same guard as MultiSourceScratch::Lane).
struct alignas(64) ParallelScratch::Lane {
  /// A buffered remote relaxation: the target node and the candidate key's
  /// bit pattern (doubles are carried through std::bit_cast so one buffer
  /// type serves both the double and the u64 fixed-point world).
  struct Candidate {
    std::uint32_t node;
    std::uint64_t key_bits;
  };

  std::vector<std::vector<std::uint32_t>> ring;  ///< bucket slots (node ids)
  std::vector<std::uint64_t> occupied;           ///< per-slot non-empty bits
  std::uint64_t mask = 0;
  std::size_t pending = 0;
  std::vector<std::vector<Candidate>> outbox;  ///< per target worker
  std::vector<std::uint8_t> settled;           ///< per owned node
  std::vector<HeapItem> heap;                  ///< double fallback storage
  std::vector<std::pair<std::uint64_t, std::uint32_t>> heap_q;  ///< compact

  void ensure_ring(std::uint64_t cap) {
    if (!ring.empty() && mask + 1 >= cap) return;
    ring.resize(cap);
    occupied.assign(cap >> 6, 0);
    mask = cap - 1;
  }

  void insert(std::uint64_t bucket, std::uint32_t node) {
    const std::uint64_t slot = bucket & mask;
    std::vector<std::uint32_t>& vec = ring[slot];
    if (vec.empty()) occupied[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    vec.push_back(node);
    ++pending;
  }

  /// Drains bookkeeping for the just-relaxed bucket.
  void drop_bucket(std::uint64_t bucket) {
    const std::uint64_t slot = bucket & mask;
    pending -= ring[slot].size();
    ring[slot].clear();
    occupied[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }

  /// Smallest non-empty absolute bucket index > `cur`; kNoBucket when the
  /// lane is drained. All pending entries lie within (cur, cur + capacity]
  /// (inserts are bounded by one relaxation reach, which the ring was sized
  /// to), so one pass over the window suffices. The word scan is aligned:
  /// ring capacity is a multiple of 64, so within any occupancy word the
  /// absolute indices are contiguous.
  std::uint64_t next_nonempty_after(std::uint64_t cur) const {
    if (pending == 0) return kNoBucket;
    const std::uint64_t cap = mask + 1;
    std::uint64_t idx = cur + 1;
    const std::uint64_t end = cur + cap;
    while (idx <= end) {
      const std::uint64_t slot = idx & mask;
      const std::uint64_t word = occupied[slot >> 6] >> (slot & 63);
      if (word != 0) {
        return idx + static_cast<std::uint64_t>(std::countr_zero(word));
      }
      idx += 64 - (slot & 63);
    }
    return kNoBucket;
  }

  std::size_t memory_bytes() const {
    std::size_t bytes = ring.capacity() * sizeof(ring[0]) +
                        occupied.capacity() * sizeof(std::uint64_t) +
                        settled.capacity() +
                        outbox.capacity() * sizeof(outbox[0]) +
                        heap.capacity() * sizeof(HeapItem) +
                        heap_q.capacity() * sizeof(heap_q[0]);
    for (const auto& slot : ring) {
      bytes += slot.capacity() * sizeof(std::uint32_t);
    }
    for (const auto& box : outbox) {
      bytes += box.capacity() * sizeof(Candidate);
    }
    return bytes;
  }
};

static_assert(alignof(ParallelScratch::Lane) >= 64,
              "parallel lanes must be cache-line aligned");

ParallelScratch::ParallelScratch() = default;
ParallelScratch::~ParallelScratch() = default;
ParallelScratch::ParallelScratch(ParallelScratch&&) noexcept = default;
ParallelScratch& ParallelScratch::operator=(ParallelScratch&&) noexcept =
    default;

ParallelScratch::Lane& ParallelScratch::lane(std::size_t i) {
  PERIGEE_ASSERT(i < lanes_.size());
  return *lanes_[i];
}

std::size_t ParallelScratch::lanes() const { return lanes_.size(); }

void ParallelScratch::ensure_lanes(std::size_t count) {
  while (lanes_.size() < count) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

std::size_t ParallelScratch::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& lane : lanes_) bytes += lane->memory_bytes();
  return bytes;
}

const char* relax_engine_name(RelaxEngine engine) {
  switch (engine) {
    case RelaxEngine::Batched:
      return "batched";
    case RelaxEngine::ParallelDelta:
      return "parallel-delta";
  }
  return "batched";
}

std::optional<RelaxEngine> relax_engine_from_name(std::string_view name) {
  if (name == "batched") return RelaxEngine::Batched;
  if (name == "parallel-delta" || name == "parallel") {
    return RelaxEngine::ParallelDelta;
  }
  return std::nullopt;
}

namespace {

/// Exact-bucketing plan for the double world: a power-of-two grid whose
/// bucket width respects the min-δ/2 ceiling as an integer inequality, with
/// headroom guards so every bucket boundary is an exactly representable
/// double (see the file comment in parallel.hpp).
struct ParallelPlan {
  bool use_buckets = false;
  double scale = 1.0;
  int shift = 0;
  std::uint64_t ring_cap = 64;
};

ParallelPlan make_parallel_plan(const net::CsrTopology& csr) {
  ParallelPlan plan;
  const double min_delay = csr.min_delay_ms();
  const double max_reach = csr.max_delay_ms() + csr.max_validation_ms();
  if (csr.num_links() == 0 || !(min_delay > 0.0) ||
      !std::isfinite(min_delay) || !std::isfinite(max_reach)) {
    return plan;  // degenerate delays: heap fallback
  }
  // Grid resolving the smallest delay into ~2^9 units...
  util::FixedPointScale grid = util::FixedPointScale::fit(min_delay, 10);
  // ... coarsened until the largest conceivable key (<= n relaxations of
  // max_reach each, doubled for slack) quantizes below 2^52 — the bound
  // under which bucket boundaries (index * width / scale) are exact doubles
  // and the settled-once argument is airtight rather than probabilistic.
  const double max_key_bound =
      (static_cast<double>(csr.size()) + 1.0) * max_reach * 2.0;
  while (grid.exponent > -1060 && max_key_bound * grid.scale >= 0x1p52) {
    --grid.exponent;
    grid.scale = std::ldexp(1.0, grid.exponent);
  }
  if (max_key_bound * grid.scale >= 0x1p52) return plan;
  const std::uint64_t min_q = grid.quantize(min_delay);
  const std::optional<int> shift = util::bucket_width_shift(min_q);
  if (!shift.has_value()) return plan;  // grid too coarse for this graph
  const std::uint64_t reach_buckets =
      (grid.quantize(max_reach) >> *shift) + 4;
  if (reach_buckets > kMaxRingBuckets) return plan;
  plan.use_buckets = true;
  plan.scale = grid.scale;
  plan.shift = *shift;
  plan.ring_cap = std::bit_ceil(std::max<std::uint64_t>(reach_buckets, 64));
  return plan;
}

/// The two instantiations of the bucket-synchronous core. A world bundles
/// the graph arrays and the key arithmetic; `Key` is double (bit-parity
/// world) or u64 (compact fixed-point world).
struct DoubleWorld {
  using Key = double;
  const net::CsrTopology* csr;
  double scale;
  int shift;
  std::size_t n;
  const std::size_t* offsets;
  const std::size_t* row_ends;
  const net::NodeId* peers;
  const double* delays;

  static constexpr Key unreached() { return util::kInf; }
  std::size_t row_begin(std::uint32_t u) const { return offsets[u]; }
  std::size_t row_end(std::uint32_t u) const { return row_ends[u]; }
  std::uint32_t peer(std::size_t e) const { return peers[e]; }
  bool forwards(std::uint32_t u) const { return csr->forwards(u); }
  Key ready_of(Key t, std::uint32_t u) const {
    return t + csr->validation_ms(u);
  }
  Key cand_of(Key ready, std::size_t e) const { return ready + delays[e]; }
  /// Exact: key * scale is an exponent shift (scale is a power of two), the
  /// cast truncation is the true floor.
  std::uint64_t bucket_of(Key key) const {
    return static_cast<std::uint64_t>(key * scale) >> shift;
  }
  static std::uint64_t to_bits(Key key) {
    return std::bit_cast<std::uint64_t>(key);
  }
  static Key from_bits(std::uint64_t bits) {
    return std::bit_cast<Key>(bits);
  }
};

struct CompactWorld {
  using Key = std::uint64_t;
  const net::CompactCsr* csr;
  int shift;
  std::size_t n;
  const std::uint32_t* offsets;
  const std::uint32_t* peers;
  const std::uint32_t* delays;

  static constexpr Key unreached() { return kUnreachedQ; }
  std::size_t row_begin(std::uint32_t u) const { return offsets[u]; }
  std::size_t row_end(std::uint32_t u) const { return offsets[u + 1]; }
  std::uint32_t peer(std::size_t e) const { return peers[e]; }
  bool forwards(std::uint32_t u) const { return csr->forwards(u); }
  Key ready_of(Key t, std::uint32_t u) const {
    return t + csr->validation_q(u);
  }
  Key cand_of(Key ready, std::size_t e) const { return ready + delays[e]; }
  std::uint64_t bucket_of(Key key) const { return key >> shift; }
  static std::uint64_t to_bits(Key key) { return key; }
  static Key from_bits(std::uint64_t bits) { return bits; }
};

/// The bucket-synchronous team. Every member owns the contiguous node range
/// [member * chunk, ...): it is the only writer of those arrival entries and
/// of its own lane. Each non-empty bucket costs two barrier phases:
///
///   relax:  drain my slice of the current bucket; owned targets update in
///           place, remote targets buffer into per-owner outboxes (no
///           cross-range reads — a pre-check against the owner's arrival
///           would race);
///   merge:  apply the inboxes addressed to me in fixed member order, then
///           vote my next non-empty bucket; the second barrier's completion
///           picks the global minimum.
///
/// Settled-once (see parallel.hpp) makes any relax interleaving produce the
/// same bytes, so worker count never shows in the output.
template <typename World>
void delta_step_team(const World& world, std::uint32_t src,
                     ParallelScratch& scratch, unsigned members,
                     std::uint64_t ring_cap, typename World::Key* arrival,
                     runner::ThreadPool* pool) {
  using Key = typename World::Key;
  const std::size_t n = world.n;
  const std::size_t chunk = (n + members - 1) / members;

  struct Shared {
    std::vector<std::uint64_t> next_of;
    std::uint64_t cur = 0;
    bool done = false;
  } shared;
  shared.next_of.assign(members, kNoBucket);
  auto pick_next = [&shared]() noexcept {
    std::uint64_t best = kNoBucket;
    for (const std::uint64_t next : shared.next_of) {
      best = std::min(best, next);
    }
    shared.cur = best;
    shared.done = best == kNoBucket;
  };
  std::barrier relax_done(members);
  std::barrier merge_done(members, pick_next);

  auto member = [&](unsigned w) {
    ParallelScratch::Lane& lane = scratch.lane(w);
    const std::uint32_t lo =
        static_cast<std::uint32_t>(std::min(w * chunk, n));
    const std::uint32_t hi =
        static_cast<std::uint32_t>(std::min(lo + chunk, n));
    lane.ensure_ring(ring_cap);
    lane.outbox.resize(members);
    lane.settled.assign(hi - lo, 0);
    std::fill(arrival + lo, arrival + hi, World::unreached());
    if (src >= lo && src < hi) {
      arrival[src] = Key{};
      lane.insert(0, src);
    }
    PERIGEE_TELEMETRY_ONLY(std::uint64_t tally_relaxed = 0);
    PERIGEE_TELEMETRY_ONLY(std::uint64_t tally_remote = 0);
    PERIGEE_TELEMETRY_ONLY(std::uint64_t tally_buckets = 0);
    while (true) {
      const std::uint64_t cur = shared.cur;
      PERIGEE_TELEMETRY_ONLY(++tally_buckets;)
      for (unsigned t = 0; t < members; ++t) lane.outbox[t].clear();
      const std::vector<std::uint32_t>& slot = lane.ring[cur & lane.mask];
      for (std::size_t i = 0; i < slot.size(); ++i) {
        const std::uint32_t u = slot[i];
        if (i + 1 < slot.size()) {
          // Overlap the next entry's data-dependent loads with this row.
          PERIGEE_PREFETCH(&arrival[slot[i + 1]]);
          PERIGEE_PREFETCH(&lane.settled[slot[i + 1] - lo]);
        }
        // Branchless settle (same transform as batch.cpp): a stale
        // duplicate or non-forwarding node scans an empty row instead of
        // branching. Settled-once semantics are preserved — the flag is
        // written unconditionally, and a stale entry's arrival reads are
        // harmless (its computed candidates are never used).
        const std::uint8_t was_settled = lane.settled[u - lo];
        lane.settled[u - lo] = 1;
        const bool live =
            (was_settled == 0) & (world.forwards(u) | (u == src));
        const Key t = arrival[u];
        const Key ready_u = u == src ? Key{} : world.ready_of(t, u);
        const std::size_t row_begin = world.row_begin(u);
        const std::size_t row_end = live ? world.row_end(u) : row_begin;
        PERIGEE_TELEMETRY_ONLY(tally_relaxed += live ? 1 : 0;)
        for (std::size_t e = row_begin; e < row_end; ++e) {
          const std::uint32_t v = world.peer(e);
          const Key cand = world.cand_of(ready_u, e);
          if (v >= lo && v < hi) {
            if (cand < arrival[v]) {
              arrival[v] = cand;
              // The exact-grid argument puts every candidate in a bucket
              // > cur already; the max is belt-and-braces, not a rounding
              // repair.
              lane.insert(std::max(world.bucket_of(cand), cur + 1), v);
            }
          } else {
            PERIGEE_TELEMETRY_ONLY(++tally_remote;)
            lane.outbox[v / chunk].push_back({v, World::to_bits(cand)});
          }
        }
      }
      lane.drop_bucket(cur);
      relax_done.arrive_and_wait();
      // Merge: inboxes in fixed member order — deterministic, though
      // settled-once means any order would yield the same bytes.
      for (unsigned w2 = 0; w2 < members; ++w2) {
        for (const auto& c : scratch.lane(w2).outbox[w]) {
          const Key cand = World::from_bits(c.key_bits);
          if (cand < arrival[c.node]) {
            arrival[c.node] = cand;
            lane.insert(std::max(world.bucket_of(cand), cur + 1), c.node);
          }
        }
      }
      shared.next_of[w] = lane.next_nonempty_after(cur);
      merge_done.arrive_and_wait();
      if (shared.done) break;
    }
    PERIGEE_COUNTER_ADD("engine.parallel.relaxed", tally_relaxed);
    PERIGEE_COUNTER_ADD("engine.parallel.remote_candidates", tally_remote);
    if (w == 0) {
      PERIGEE_COUNTER_ADD("engine.parallel.bucket_rounds", tally_buckets);
    }
  };

  if (members == 1) {
    member(0);
  } else {
    runner::run_team(*pool, members, member);
  }
}

/// Sequential heap fallback for the double world — the same relaxation the
/// batched engine runs on non-viable graphs, so the bytes agree with it by
/// construction (identical operation sequence), not just by the fixed-point
/// argument.
void solve_heap(const net::CsrTopology& csr, net::NodeId src,
                std::vector<HeapItem>& heap, double* arrival) {
  const std::size_t n = csr.size();
  std::fill_n(arrival, n, util::kInf);
  arrival[src] = 0.0;
  const std::size_t* offsets = csr.offsets();
  const std::size_t* row_ends = csr.row_ends();
  const net::NodeId* peers = csr.peer_data();
  const double* delays = csr.delay_data();
  heap.clear();
  heap_push(heap, {0.0, src});
  while (!heap.empty()) {
    const auto [t, u] = heap_pop(heap);
    if (t != arrival[u]) continue;  // stale: u settled at a smaller key
    if (!csr.forwards(u) && u != src) continue;
    const double ready_u = u == src ? 0.0 : t + csr.validation_ms(u);
    const std::size_t row_end = row_ends[u];
    for (std::size_t e = offsets[u]; e < row_end; ++e) {
      const net::NodeId v = peers[e];
      const double cand = ready_u + delays[e];
      if (cand < arrival[v]) {
        arrival[v] = cand;
        heap_push(heap, {cand, v});
      }
    }
  }
  PERIGEE_COUNTER_ADD("engine.parallel.heap_sources", 1);
}

/// Integer-key analogue for the compact world's degenerate graphs (a delay
/// that quantizes to 0 or 1 admits no correct bucket width).
void solve_heap_compact(const net::CompactCsr& csr, net::NodeId src,
                        std::vector<std::pair<std::uint64_t, std::uint32_t>>&
                            heap,
                        std::uint64_t* arrival) {
  const std::size_t n = csr.size();
  std::fill_n(arrival, n, kUnreachedQ);
  arrival[src] = 0;
  const std::uint32_t* offsets = csr.offsets();
  const std::uint32_t* peers = csr.peer_data();
  const std::uint32_t* delays = csr.delay_data();
  heap.clear();
  heap_push(heap, {std::uint64_t{0}, src});
  while (!heap.empty()) {
    const auto [t, u] = heap_pop(heap);
    if (t != arrival[u]) continue;
    if (!csr.forwards(u) && u != src) continue;
    const std::uint64_t ready_u = u == src ? 0 : t + csr.validation_q(u);
    const std::uint32_t row_end = offsets[u + 1];
    for (std::uint32_t e = offsets[u]; e < row_end; ++e) {
      const std::uint32_t v = peers[e];
      const std::uint64_t cand = ready_u + delays[e];
      if (cand < arrival[v]) {
        arrival[v] = cand;
        heap_push(heap, {cand, v});
      }
    }
  }
  PERIGEE_COUNTER_ADD("engine.parallel.heap_sources", 1);
}

unsigned team_size(runner::ThreadPool* pool, std::size_t n) {
  const unsigned workers = pool != nullptr ? pool->size() : 1;
  const std::size_t cap = n > 0 ? n : 1;
  return static_cast<unsigned>(
      std::min<std::size_t>(workers > 0 ? workers : 1, cap));
}

}  // namespace

void simulate_broadcast_parallel(const net::CsrTopology& csr, net::NodeId src,
                                 ParallelScratch& scratch, double* arrival,
                                 double* ready, runner::ThreadPool* pool) {
  const std::size_t n = csr.size();
  PERIGEE_ASSERT(src < n);
  PERIGEE_TRACE_SPAN_ARGS(parallel_span, "broadcast_parallel",
                          obs::TraceArgs().arg("nodes", n).json());
  const ParallelPlan plan = make_parallel_plan(csr);
  const unsigned members = plan.use_buckets ? team_size(pool, n) : 1;
  scratch.ensure_lanes(members);
  if (plan.use_buckets) {
    DoubleWorld world{&csr,          plan.scale,      plan.shift,
                      n,             csr.offsets(),   csr.row_ends(),
                      csr.peer_data(), csr.delay_data()};
    delta_step_team(world, src, scratch, members, plan.ring_cap, arrival,
                    pool);
    PERIGEE_COUNTER_ADD("engine.parallel.sources", 1);
    PERIGEE_HISTOGRAM_OBSERVE("engine.parallel.workers", members);
  } else {
    solve_heap(csr, src, scratch.lane(0).heap, arrival);
  }
  if (ready != nullptr) {
    // Same one-pass fill as the batched engine: the last value the
    // reference engines store per node is exactly final-arrival + Δv.
    for (std::size_t v = 0; v < n; ++v) {
      ready[v] = arrival[v] + csr.validation_ms(static_cast<net::NodeId>(v));
    }
    ready[src] = 0.0;  // the miner does not validate its own block
  }
  PERIGEE_GAUGE_MAX("mem.parallel_scratch_bytes", scratch.memory_bytes());
}

void simulate_broadcast_parallel(const net::CsrTopology& csr, net::NodeId src,
                                 ParallelScratch& scratch,
                                 BroadcastResult& out,
                                 runner::ThreadPool* pool) {
  out.miner = src;
  out.arrival.resize(csr.size());
  out.ready.resize(csr.size());
  simulate_broadcast_parallel(csr, src, scratch, out.arrival.data(),
                              out.ready.data(), pool);
}

void simulate_broadcast_compact(const net::CompactCsr& csr, net::NodeId src,
                                ParallelScratch& scratch,
                                std::uint64_t* arrival_q,
                                runner::ThreadPool* pool) {
  const std::size_t n = csr.size();
  PERIGEE_ASSERT(src < n);
  const std::uint32_t min_q = csr.min_delay_q();
  const std::optional<int> shift =
      csr.num_links() > 0 ? util::bucket_width_shift(min_q) : std::nullopt;
  std::uint64_t ring_cap = 0;
  if (shift.has_value()) {
    // Key sums are exact u64 arithmetic; the only sizing concern is the
    // ring window of one relaxation's reach.
    const std::uint64_t reach =
        (static_cast<std::uint64_t>(csr.max_delay_q()) +
         csr.max_validation_q()) >>
        *shift;
    ring_cap = std::bit_ceil(std::max<std::uint64_t>(reach + 4, 64));
  }
  const bool use_buckets =
      shift.has_value() && ring_cap <= kMaxRingBuckets;
  const unsigned members = use_buckets ? team_size(pool, n) : 1;
  scratch.ensure_lanes(members);
  if (use_buckets) {
    CompactWorld world{&csr, *shift,          n,
                       csr.offsets(), csr.peer_data(), csr.delay_data()};
    delta_step_team(world, src, scratch, members, ring_cap, arrival_q, pool);
    PERIGEE_COUNTER_ADD("engine.compact.sources", 1);
    PERIGEE_HISTOGRAM_OBSERVE("engine.parallel.workers", members);
  } else {
    solve_heap_compact(csr, src, scratch.lane(0).heap_q, arrival_q);
  }
  PERIGEE_GAUGE_MAX("mem.parallel_scratch_bytes", scratch.memory_bytes());
}

}  // namespace perigee::sim
