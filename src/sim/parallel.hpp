/// \file
/// \brief Bucket-synchronous parallel delta-stepping broadcast engine.
///
/// The batched engine (sim/batch.hpp) parallelizes *across* sources; one
/// n >= 10^5 single-source broadcast still runs on one core. This engine
/// parallelizes *within* one source while keeping the repo's byte-parity
/// contract, by restructuring the relaxation around exact fixed-point
/// bucketing (util/fixedpoint.hpp):
///
///  - keys are bucketed by the exact integer index
///    `quantize(key) >> width_shift`, with the power-of-two bucket width
///    chosen so `2 * width <= min-delay` holds as an integer inequality.
///    Since bucket boundaries are exactly representable doubles, every
///    candidate generated while draining bucket `b` is provably >= the
///    start of bucket `b + 1` — not merely up to rounding, *exactly* (the
///    candidate's true sum is >= that representable boundary, and rounding
///    to nearest is monotone). Hence a node's tentative distance is final
///    when its bucket starts draining, and each node relaxes exactly once
///    (settled-once delta stepping: a settled bitmap replaces the stale-key
///    compare);
///  - settled-once makes the relax order *within* a bucket irrelevant to
///    the outputs: every arrival is the unique fixed point of the Bellman
///    recurrence computed through identical double additions (the PR 1
///    argument), so the engine is free to drain one bucket from several
///    workers at once;
///  - nodes are owner-partitioned into contiguous per-worker ranges. In the
///    relax phase each worker drains its own slice of the current bucket,
///    applies candidates for nodes it owns directly, and buffers candidates
///    for remote nodes per target worker — workers never read or write
///    another worker's arrival entries. A barrier later, the merge phase
///    applies each owner's inbox in fixed worker order and the next
///    non-empty bucket is agreed on (two barrier crossings per non-empty
///    bucket, see runner::run_team). The merge order is deterministic but —
///    by settled-once — any order would produce the same bytes, which is
///    why the result is byte-identical to the sequential oracle at *any*
///    worker count. tests/sim_engine_diff_test.cpp pins that across jobs in
///    {1, 2, 4}.
///
/// Graphs the exact bucketing cannot serve (a zero/degenerate minimum
/// delay, a key range the guards reject) fall back to the sequential heap
/// relaxation — byte-identical to the batched engine's own fallback — so
/// the engine is total over every regime the tests throw at it.
///
/// The same templated core instantiates over `net::CompactCsr` with u64
/// fixed-point arrivals (`simulate_broadcast_compact`): there the bucket
/// math is pure integer arithmetic and the invariants above hold trivially.
/// Compact arrivals are *not* byte-comparable to the double engines
/// (floor-quantized inputs); their oracle is the compact engine itself at
/// worker count 1, plus the error bound in tests/sim_fixedpoint_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "net/csr.hpp"
#include "net/types.hpp"
#include "sim/broadcast.hpp"

namespace perigee::runner {
class ThreadPool;
}  // namespace perigee::runner

namespace perigee::sim {

/// Relaxation backend for the round loop's Fast engine: the sequential
/// batched bucket-queue engine (parallel across sources, the parity
/// oracle) or this file's parallel delta-stepping engine (parallel within
/// each source). Outputs are byte-identical either way; the knob is a
/// wall-clock A/B switch plumbed through `core::ExperimentConfig`,
/// `RoundRunner` and `perigee_sweep --engine`.
enum class RelaxEngine {
  Batched,
  ParallelDelta,
};

/// CLI spelling of `engine` ("batched" / "parallel-delta").
const char* relax_engine_name(RelaxEngine engine);
/// Inverse of `relax_engine_name`; nullopt for unknown spellings.
std::optional<RelaxEngine> relax_engine_from_name(std::string_view name);

/// Sentinel for unreached nodes in compact (u64 fixed-point) arrival
/// arrays — the integer analogue of util::kInf.
inline constexpr std::uint64_t kUnreachedQ =
    std::numeric_limits<std::uint64_t>::max();

/// Reusable per-worker scratch for the parallel engine: bucket rings,
/// remote-candidate outboxes, settled bitmap, heap-fallback storage. Grown
/// on demand and reused across broadcasts (steady state allocates
/// nothing). Not thread-safe to share across concurrent broadcasts; within
/// one broadcast each worker owns one lane.
class ParallelScratch {
 public:
  ParallelScratch();
  ~ParallelScratch();
  ParallelScratch(ParallelScratch&&) noexcept;
  ParallelScratch& operator=(ParallelScratch&&) noexcept;

  struct Lane;
  Lane& lane(std::size_t i);
  std::size_t lanes() const;
  /// Grows the pool to at least `count` lanes.
  void ensure_lanes(std::size_t count);

  /// Heap bytes across all lanes; reported through the
  /// `mem.parallel_scratch_bytes` obs gauge after each broadcast.
  std::size_t memory_bytes() const;

 private:
  std::vector<std::unique_ptr<Lane>> lanes_;
};

/// Single-source broadcast over the double-delay snapshot, byte-identical
/// to `simulate_broadcast` / `simulate_broadcast_batch` at any worker
/// count. `arrival`/`ready` are caller-provided stripes of `csr.size()`
/// doubles; `ready` may be null to skip the ready fill. With a null pool
/// (or one worker) the engine runs inline on the calling thread.
void simulate_broadcast_parallel(const net::CsrTopology& csr, net::NodeId src,
                                 ParallelScratch& scratch, double* arrival,
                                 double* ready,
                                 runner::ThreadPool* pool = nullptr);

/// Convenience form filling a `BroadcastResult` (tests, block hooks).
void simulate_broadcast_parallel(const net::CsrTopology& csr, net::NodeId src,
                                 ParallelScratch& scratch,
                                 BroadcastResult& out,
                                 runner::ThreadPool* pool = nullptr);

/// Single-source broadcast over the compact fixed-point snapshot.
/// `arrival_q` receives `csr.size()` quantized arrival keys (`kUnreachedQ`
/// for unreached nodes); dequantize through `csr.scale()`. Invariant in
/// the worker count (exact integer arithmetic end to end).
void simulate_broadcast_compact(const net::CompactCsr& csr, net::NodeId src,
                                ParallelScratch& scratch,
                                std::uint64_t* arrival_q,
                                runner::ThreadPool* pool = nullptr);

}  // namespace perigee::sim
