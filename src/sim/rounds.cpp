#include "sim/rounds.hpp"

#include <numeric>

#include "obs/trace.hpp"
#include "sim/broadcast.hpp"
#include "sim/gossip.hpp"
#include "util/assert.hpp"

namespace perigee::sim {

RoundRunner::RoundRunner(const net::Network& network, net::Topology& topology,
                         std::vector<std::unique_ptr<NeighborSelector>> selectors,
                         int blocks_per_round, std::uint64_t seed,
                         Engine engine)
    : network_(&network),
      topology_(&topology),
      selectors_(std::move(selectors)),
      blocks_per_round_(blocks_per_round),
      engine_(engine),
      sampler_(mining::AliasSampler::from_hash_power(network)),
      miner_rng_(util::Rng(seed).split(0xB10C)),
      update_rng_(util::Rng(seed).split(0x5E1E)) {
  PERIGEE_ASSERT(topology_->size() == network_->size());
  PERIGEE_ASSERT(selectors_.size() == network_->size());
  PERIGEE_ASSERT(blocks_per_round_ > 0);
  for (const auto& s : selectors_) PERIGEE_ASSERT(s != nullptr);
}

void RoundRunner::refresh_hash_power() {
  sampler_ = mining::AliasSampler::from_hash_power(*network_);
}

void RoundRunner::run_round() {
  PERIGEE_TRACE_SPAN_ARGS(round_span, "round",
                          obs::TraceArgs()
                              .arg("round", rounds_run_)
                              .arg("blocks", blocks_per_round_)
                              .json());
  // Scenario mutations (churn joins/leaves) land before the observation
  // capture and the CSR compile, so the whole round sees the mutated graph.
  if (pre_round_hook_) pre_round_hook_(rounds_run_);
  obs_.begin_round(*topology_, static_cast<std::size_t>(blocks_per_round_));
  // One flat-graph refresh for the whole round: the topology only mutates in
  // the update phase below, so the cache replays last round's mutation
  // journal onto the standing snapshot (a full recompile only on mass churn
  // or journal truncation) and is free when nothing rewired at all.
  const net::CsrTopology& csr = csr_cache_.get(*topology_, *network_);
  if (engine_ == Engine::Fast) {
    // Miner sampling is independent of the block simulations, so the whole
    // round's miners are drawn up front (same draw sequence as the old
    // per-block loop) and dispatched as one multi-source batch. Hooks and
    // observation recording then replay the stripes in block order, which
    // keeps every downstream byte identical at any worker count.
    miners_.resize(static_cast<std::size_t>(blocks_per_round_));
    for (auto& miner : miners_) {
      miner = static_cast<net::NodeId>(sampler_.sample(miner_rng_));
    }
    if (egress_config_.has_value()) {
      // Queued-transmission regime: the egress engine replaces the
      // delay-only relaxation outright (it owns serialization + queue wait,
      // so the relax-engine A/B knob does not apply). Stripe layout is
      // identical, so hooks and observation recording are untouched.
      const EgressPlan& plan =
          egress_plans_.get(*network_, *egress_config_);
      simulate_broadcast_egress_batch(csr, *egress_config_, plan, miners_,
                                      egress_scratch_, batch_result_, pool_);
    } else if (relax_engine_ == RelaxEngine::ParallelDelta) {
      // Same stripe layout as the batched engine, but each source runs
      // through the delta-stepping team (workers cooperate *within* a
      // block instead of fanning out across blocks — the winning shape
      // when n is large and K small). Stripe bytes are identical either
      // way, so everything downstream is too.
      batch_result_.prepare(csr.size(), miners_);
      for (std::size_t b = 0; b < miners_.size(); ++b) {
        simulate_broadcast_parallel(csr, miners_[b], parallel_scratch_,
                                    batch_result_.arrival_data(b),
                                    batch_result_.ready_data(b),
                                    pool_);
      }
    } else {
      simulate_broadcast_batch(csr, miners_, batch_scratch_, batch_result_,
                               pool_);
    }
    for (std::size_t b = 0; b < miners_.size(); ++b) {
      if (block_hook_) {
        batch_result_.extract(b, block_result_);
        block_hook_(block_result_);
      }
      obs_.record_block(csr, miners_[b], batch_result_.ready_of(b));
    }
  } else {
    for (int b = 0; b < blocks_per_round_; ++b) {
      const auto miner = static_cast<net::NodeId>(sampler_.sample(miner_rng_));
      GossipConfig config;
      config.mode = GossipConfig::Mode::InvGetdata;
      config.record_edge_times = true;
      const GossipResult result = simulate_gossip(csr, miner, config);
      if (block_hook_) {
        // Present the gossip outcome through the fast engine's result shape
        // so hooks (convergence tracking, tests) work with either engine.
        BroadcastResult shim;
        shim.miner = miner;
        shim.arrival = result.arrival;
        shim.ready = result.arrival;
        for (net::NodeId v = 0; v < network_->size(); ++v) {
          if (v != miner && std::isfinite(shim.ready[v])) {
            shim.ready[v] += network_->validation_ms(v);
          }
        }
        block_hook_(shim);
      }
      obs_.record_gossip_block(result);
    }
  }

  std::vector<net::NodeId> order(topology_->size());
  std::iota(order.begin(), order.end(), 0);
  update_rng_.shuffle(order);

  RoundContext ctx{obs_,        *topology_,  *network_,
                   update_rng_, rounds_run_, addrman_};
  for (net::NodeId v : order) {
    selectors_[v]->on_round_end(v, ctx);
  }
  if (addrman_ != nullptr) {
    addrman_->gossip_round(*topology_, update_rng_);
  }
  ++rounds_run_;
}

void RoundRunner::run_rounds(int count) {
  for (int i = 0; i < count; ++i) run_round();
}

}  // namespace perigee::sim
