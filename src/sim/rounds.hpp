/// \file
/// \brief Round runner (paper §4.1, Algorithm 1's outer loop).
///
/// A round mines K blocks (miner drawn proportionally to hash power), collects
/// every node's observations, then executes the synchronous connection update
/// at all nodes in a freshly shuffled order.
///
/// The topology is static within a round, so the runner refreshes one
/// `net::CsrTopology` snapshot per round (via a `net::CsrCache` keyed on the
/// topology's mutation counter — between rounds the cache replays the
/// topology's mutation journal onto the snapshot instead of recompiling,
/// so a round's rewiring costs O(changed edges), not O(n + m)), samples the
/// round's miners up front, and
/// dispatches all K blocks as one batch through the multi-source engine
/// (sim/batch.hpp) over reusable arena scratch — the engine's steady state
/// performs no allocation and no per-edge latency-model calls, and an
/// optional `runner::ThreadPool` fans the round's blocks across workers
/// without changing a single output byte.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include <optional>

#include "mining/sampler.hpp"
#include "net/csr.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/batch.hpp"
#include "sim/egress.hpp"
#include "sim/observations.hpp"
#include "sim/parallel.hpp"
#include "sim/selector.hpp"

namespace perigee::runner {
class ThreadPool;
}  // namespace perigee::runner

namespace perigee::sim {

/// Drives learning rounds: mine, observe, update.
class RoundRunner {
 public:
  /// Which simulation backs the observations: the fast analytic engine
  /// (default; δ(u,v) folds the handshake in) or the message-level gossip
  /// engine, where neighbors are scored by INV announcement times.
  enum class Engine { Fast, Gossip };

  /// `selectors` holds one policy instance per node (index == NodeId), letting
  /// policies carry per-node state (UCB history) and letting experiments mix
  /// policies (incremental-deployment ablation). Selector and topology are
  /// borrowed; the caller keeps them alive.
  RoundRunner(const net::Network& network, net::Topology& topology,
              std::vector<std::unique_ptr<NeighborSelector>> selectors,
              int blocks_per_round, std::uint64_t seed,
              Engine engine = Engine::Fast);

  /// Mines one round of blocks and runs the update at every node.
  void run_round();

  /// Runs `count` consecutive rounds.
  void run_rounds(int count);

  /// Rounds completed so far.
  std::size_t rounds_run() const { return rounds_run_; }
  /// The current round's observation matrix.
  const ObservationTable& observations() const { return obs_; }
  /// The mutable topology being learned.
  net::Topology& topology() { return *topology_; }

  /// Rebuilds the miner sampler; call after mutating hash power mid-run.
  void refresh_hash_power();

  /// The snapshot current for the live topology/network, served from the
  /// runner's own cache. Checkpoint evaluations between rounds use this so
  /// the compile is shared with the next round's `run_round` instead of
  /// being paid twice for the same topology version.
  const net::CsrTopology& current_csr() {
    return csr_cache_.get(*topology_, *network_);
  }

  /// Fans each round's block batch across `pool` workers (borrowed; null
  /// restores inline execution). Results are byte-identical at any worker
  /// count, so this only changes wall-clock.
  void set_thread_pool(runner::ThreadPool* pool) { pool_ = pool; }

  /// Selects the relaxation backend for the Fast engine's block batch:
  /// the sequential batched bucket-queue engine (default, parallel across
  /// the round's K sources) or the parallel delta-stepping engine
  /// (parallel within each source — the scale path for large n with small
  /// K). Outputs are byte-identical either way (the engine-diff suite pins
  /// it), so like `set_thread_pool` this only changes wall-clock.
  void set_relax_engine(RelaxEngine engine) { relax_engine_ = engine; }
  RelaxEngine relax_engine() const { return relax_engine_; }

  /// Routes the Fast engine's block batches through the queued-transmission
  /// egress engine (sim/egress.hpp) with this configuration. Unlike the
  /// wall-clock-only engine knobs above, this is a *result* axis: arrival
  /// times gain serialization + queue wait. Takes precedence over
  /// `set_relax_engine` (the delta-stepping backend models propagation
  /// only). Pass nullopt to restore delay-only broadcasts.
  void set_transmission(std::optional<EgressConfig> config) {
    egress_config_ = std::move(config);
  }
  /// Active queued-transmission configuration, if any.
  const std::optional<EgressConfig>& transmission() const {
    return egress_config_;
  }

  /// Disables (or re-enables) the incremental journal-patch path of the
  /// runner's CSR cache: with `enabled` false every rewired round pays a
  /// full flat-graph recompile, the pre-journal behavior. Patched and
  /// recompiled snapshots are byte-identical, so this only changes
  /// wall-clock; the differential harness A/Bs the two paths with it.
  void set_csr_patching(bool enabled) { csr_cache_.set_patching(enabled); }

  /// Resets node v's selector state (a churned-out node is replaced by a
  /// fresh participant with no learned history).
  void reset_selector(net::NodeId v) { selectors_[v]->on_reset(v); }

  /// Pre-round hook (round index about to run): scenario drivers apply
  /// scheduled topology/profile mutations here, *before* the round's
  /// observation capture and CSR compile. Mutations bump
  /// `net::Topology::version()`, so the round's `CsrCache` lookup recompiles
  /// exactly when the hook changed the graph.
  using PreRoundHook = std::function<void(std::size_t round_index)>;
  /// Installs (or clears) the pre-round hook.
  void set_pre_round_hook(PreRoundHook hook) {
    pre_round_hook_ = std::move(hook);
  }

  /// Attaches a peer-discovery service: selectors explore from per-node
  /// address books, and one gossip exchange runs after each round's updates.
  /// The AddrMan is borrowed and must outlive the runner.
  void set_addrman(net::AddrMan* addrman) { addrman_ = addrman; }

  /// Per-block hook (miner id, broadcast result); used by convergence
  /// tracking and tests. Called before observations are recorded.
  using BlockHook = std::function<void(const BroadcastResult&)>;
  /// Installs (or clears) the per-block hook.
  void set_block_hook(BlockHook hook) { block_hook_ = std::move(hook); }

 private:
  const net::Network* network_;
  net::Topology* topology_;
  std::vector<std::unique_ptr<NeighborSelector>> selectors_;
  int blocks_per_round_;
  Engine engine_;
  mining::AliasSampler sampler_;
  util::Rng miner_rng_;
  util::Rng update_rng_;
  ObservationTable obs_;
  net::CsrCache csr_cache_;         // one compile per round (or fewer)
  std::vector<net::NodeId> miners_; // the round's pre-sampled miner batch
  MultiSourceScratch batch_scratch_;  // engine arena, reused across rounds
  MultiSourceResult batch_result_;    // SoA stripes, reused across rounds
  RelaxEngine relax_engine_ = RelaxEngine::Batched;
  ParallelScratch parallel_scratch_;  // delta-stepping lanes, lazily grown
  std::optional<EgressConfig> egress_config_;  // queued-transmission regime
  EgressPlanCache egress_plans_;      // per-node rates, profile-versioned
  EgressScratch egress_scratch_;      // event-heap lanes, reused across rounds
  BroadcastResult block_result_;    // reused per-block shim for hooks
  std::size_t rounds_run_ = 0;
  runner::ThreadPool* pool_ = nullptr;  // borrowed; null = inline blocks
  BlockHook block_hook_;
  PreRoundHook pre_round_hook_;
  net::AddrMan* addrman_ = nullptr;
};

}  // namespace perigee::sim
