/// \file
/// \brief Extension point connecting the round runner to neighbor-selection
/// policies. Perigee's scoring methods (src/core) implement this interface;
/// static baselines use StaticSelector.
#pragma once

#include <cstddef>

#include "net/addrman.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/observations.hpp"
#include "util/rng.hpp"

namespace perigee::sim {

/// Everything a selector may consult (and mutate) during the update phase.
struct RoundContext {
  const ObservationTable& obs;   ///< this round's delivery observations
  net::Topology& topology;       ///< the graph to rewire
  const net::Network& network;   ///< substrate (read-only)
  util::Rng& rng;                ///< shared update-phase randomness
  std::size_t round_index;       ///< 0-based index of the finished round
  /// Non-null when the experiment runs under partial views: exploration must
  /// sample from each node's address book instead of the global node set.
  const net::AddrMan* addrman = nullptr;
};

/// Per-node neighbor-selection policy invoked at the end of every round.
class NeighborSelector {
 public:
  virtual ~NeighborSelector() = default;

  /// Invoked once per node per round, after all blocks of the round have been
  /// observed. The implementation may rewire `ctx.topology` for node `self`
  /// (its own outgoing connections only).
  virtual void on_round_end(net::NodeId self, RoundContext& ctx) = 0;

  /// Invoked when node `self` is replaced by a fresh participant (churn
  /// rejoin): stateful policies must drop any learned per-neighbor history.
  /// Default: no state, nothing to drop.
  virtual void on_reset(net::NodeId self) { (void)self; }

  /// Short policy name for tables and logs.
  virtual const char* name() const = 0;
};

/// Baseline policy: never rewires (random/geographic/Kademlia topologies stay
/// as built).
class StaticSelector final : public NeighborSelector {
 public:
  void on_round_end(net::NodeId, RoundContext&) override {}
  const char* name() const override { return "static"; }
};

}  // namespace perigee::sim
