// Baseline topology constructions (paper §3 and §5.1).
//
// All builders mutate a fresh Topology. Builders that model the Bitcoin
// overlay (random, geographic, Kademlia) respect the dout/din caps carried by
// the Topology; theory-model builders (Erdős–Rényi, geometric threshold) are
// meant to be used with caps set to n.
#pragma once

#include <vector>

#include "net/addrman.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace perigee::topo {

// §3.1 random connection policy: every node dials `out_cap` peers sampled
// uniformly from all nodes, re-sampling when a peer declines. Nodes dial in
// a random order.
void build_random(net::Topology& topology, util::Rng& rng);

// §3.2 geography-aware policy: a fraction of each node's connections go to
// random same-region peers, the rest to random peers anywhere.
void build_geo_clusters(net::Topology& topology, const net::Network& network,
                        util::Rng& rng, double local_fraction = 0.5);

// Kademlia/Kadcast-style structured overlay (§5 baseline): nodes get random
// ids; each node dials one random member of each XOR-distance bucket, widest
// buckets first, until its outgoing slots are full.
void build_kademlia(net::Topology& topology, util::Rng& rng, int id_bits = 30);

// §3.3 geometric graph: connect every pair with link latency below
// `threshold_ms`. Theory model — pass a Topology with caps of size n.
void build_geometric_threshold(net::Topology& topology,
                               const net::Network& network,
                               double threshold_ms);

// Degree-capped geometric heuristic: each node dials its nearest peers by
// link latency plus `random_links` random long links for connectivity (an
// oracle upper-bound for what Perigee can learn).
void build_k_nearest(net::Topology& topology, const net::Network& network,
                     util::Rng& rng, int random_links = 2);

// Theorem-1 model: Erdős–Rényi with edge probability p. Theory model — pass
// a Topology with caps of size n.
void build_erdos_renyi(net::Topology& topology, double p, util::Rng& rng);

// Dials `count` random outgoing connections for a single node (used by churn
// and by selectors' exploration); returns how many were established.
int dial_random_peers(net::Topology& topology, net::NodeId dialer, int count,
                      util::Rng& rng, int max_attempts_per_peer = 64);

// Partial-view variant: candidates are sampled from the dialer's address
// book instead of the global node set. Returns how many connections were
// established (possibly fewer than `count` for a small or stale book).
int dial_peers_from_book(net::Topology& topology, net::NodeId dialer,
                         int count, const net::AddrMan& addrman,
                         util::Rng& rng, int max_attempts_per_peer = 64);

}  // namespace perigee::topo
