#include "topo/coordinates.hpp"

#include <algorithm>
#include <numeric>

#include "topo/builders.hpp"
#include "util/assert.hpp"

namespace perigee::topo {

void build_coordinate_greedy(net::Topology& topology,
                             const net::Network& network,
                             const net::VivaldiSystem& vivaldi,
                             util::Rng& rng, int random_links) {
  PERIGEE_ASSERT(topology.size() == network.size());
  PERIGEE_ASSERT(random_links >= 0 &&
                 random_links < topology.limits().out_cap);
  const std::size_t n = network.size();
  std::vector<net::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::vector<net::NodeId> candidates;
  candidates.reserve(n);
  for (net::NodeId v : order) {
    candidates.clear();
    for (net::NodeId u = 0; u < n; ++u) {
      if (u != v) candidates.push_back(u);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](net::NodeId a, net::NodeId b) {
                return vivaldi.estimated_distance(v, a) <
                       vivaldi.estimated_distance(v, b);
              });
    const int near_budget = topology.limits().out_cap - random_links;
    for (net::NodeId u : candidates) {
      if (topology.out_count(v) >= near_budget) break;
      topology.connect(v, u);
    }
    dial_random_peers(topology, v,
                      topology.limits().out_cap - topology.out_count(v), rng);
  }
}

void build_coordinate_greedy(net::Topology& topology,
                             const net::Network& network, util::Rng& rng,
                             const net::VivaldiParams& params,
                             int random_links) {
  net::VivaldiSystem vivaldi(network.size(), params);
  util::Rng probe_rng = rng.split(0x71BA1D1);
  vivaldi.run(network, probe_rng);
  build_coordinate_greedy(topology, network, vivaldi, rng, random_links);
}

}  // namespace perigee::topo
