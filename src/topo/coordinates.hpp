// Coordinate-greedy baseline: measure-first, connect-nearest.
//
// Runs Vivaldi to estimate network coordinates, then each node dials its
// nearest peers *by estimated distance* (plus random long links for
// connectivity, mirroring build_k_nearest). This is the strongest
// explicit-measurement competitor to Perigee: unlike the geographic
// heuristic it reflects real latencies, but like all coordinate schemes it
// sees only propagation delay — validation speed, bandwidth and hash-power
// placement stay invisible, and in deployment the probes it trusts are
// spoofable.
#pragma once

#include "net/network.hpp"
#include "net/topology.hpp"
#include "net/vivaldi.hpp"
#include "util/rng.hpp"

namespace perigee::topo {

void build_coordinate_greedy(net::Topology& topology,
                             const net::Network& network,
                             const net::VivaldiSystem& vivaldi, util::Rng& rng,
                             int random_links = 2);

// Convenience: run Vivaldi with `params` and build in one call.
void build_coordinate_greedy(net::Topology& topology,
                             const net::Network& network, util::Rng& rng,
                             const net::VivaldiParams& params = {},
                             int random_links = 2);

}  // namespace perigee::topo
