#include <array>
#include <numeric>

#include "topo/builders.hpp"
#include "util/assert.hpp"

namespace perigee::topo {

void build_geo_clusters(net::Topology& topology, const net::Network& network,
                        util::Rng& rng, double local_fraction) {
  PERIGEE_ASSERT(topology.size() == network.size());
  PERIGEE_ASSERT(local_fraction >= 0.0 && local_fraction <= 1.0);

  // Bucket nodes by region for in-cluster sampling.
  std::array<std::vector<net::NodeId>, net::kNumRegions> by_region;
  for (net::NodeId v = 0; v < network.size(); ++v) {
    by_region[static_cast<std::size_t>(network.profile(v).region)].push_back(v);
  }

  std::vector<net::NodeId> order(topology.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  for (net::NodeId v : order) {
    const auto& local =
        by_region[static_cast<std::size_t>(network.profile(v).region)];
    const int total = topology.limits().out_cap - topology.out_count(v);
    const int want_local =
        static_cast<int>(local_fraction * static_cast<double>(total) + 0.5);
    int made_local = 0;
    // In-cluster dials; a region that is too small simply yields fewer local
    // edges and the remainder becomes global.
    if (local.size() > 1) {
      for (int i = 0; i < want_local; ++i) {
        for (int attempt = 0; attempt < 64; ++attempt) {
          const net::NodeId target = local[rng.uniform_index(local.size())];
          if (topology.connect(v, target)) {
            ++made_local;
            break;
          }
        }
      }
    }
    dial_random_peers(topology, v, total - made_local, rng);
  }
}

}  // namespace perigee::topo
