#include <algorithm>
#include <numeric>

#include "topo/builders.hpp"
#include "util/assert.hpp"

namespace perigee::topo {

void build_geometric_threshold(net::Topology& topology,
                               const net::Network& network,
                               double threshold_ms) {
  PERIGEE_ASSERT(topology.size() == network.size());
  PERIGEE_ASSERT(threshold_ms > 0);
  const std::size_t n = network.size();
  for (net::NodeId u = 0; u < n; ++u) {
    for (net::NodeId v = u + 1; v < n; ++v) {
      if (network.link_ms(u, v) < threshold_ms) topology.connect(u, v);
    }
  }
}

void build_k_nearest(net::Topology& topology, const net::Network& network,
                     util::Rng& rng, int random_links) {
  PERIGEE_ASSERT(topology.size() == network.size());
  PERIGEE_ASSERT(random_links >= 0 &&
                 random_links < topology.limits().out_cap);
  const std::size_t n = network.size();
  std::vector<net::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::vector<net::NodeId> candidates;
  candidates.reserve(n);
  for (net::NodeId v : order) {
    candidates.clear();
    for (net::NodeId u = 0; u < n; ++u) {
      if (u != v) candidates.push_back(u);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](net::NodeId a, net::NodeId b) {
                return network.link_ms(v, a) < network.link_ms(v, b);
              });
    // A pure nearest-neighbor graph fragments into latency clusters (the
    // very failure Figure 1(a) illustrates for the opposite extreme), so a
    // few random long links keep the overlay connected — mirroring Perigee's
    // exploration slots.
    const int near_budget = topology.limits().out_cap - random_links;
    // Walk outward from the nearest peer; declines (full incoming slots)
    // push the node to slightly farther peers, as they would in practice.
    for (net::NodeId u : candidates) {
      if (topology.out_count(v) >= near_budget) break;
      topology.connect(v, u);
    }
    dial_random_peers(topology, v,
                      topology.limits().out_cap - topology.out_count(v), rng);
  }
}

}  // namespace perigee::topo
