#include <algorithm>
#include <bit>
#include <numeric>

#include "topo/builders.hpp"
#include "util/assert.hpp"

namespace perigee::topo {
namespace {

// Index of the highest set bit; bucket of a pair (u, v) is the bit length of
// id_u XOR id_v, so bucket b holds peers at XOR distance [2^b, 2^(b+1)).
int bucket_of(std::uint64_t x) {
  PERIGEE_ASSERT(x != 0);
  return 63 - std::countl_zero(x);
}

}  // namespace

void build_kademlia(net::Topology& topology, util::Rng& rng, int id_bits) {
  PERIGEE_ASSERT(id_bits >= 4 && id_bits <= 62);
  const std::size_t n = topology.size();

  // Random distinct ids. With id_bits >= 30 and n <= ~1e6 collisions are
  // vanishingly rare; we still re-draw on collision for correctness.
  std::vector<std::uint64_t> ids(n);
  {
    std::vector<std::uint64_t> seen;
    seen.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t id;
      do {
        id = rng.uniform_u64(0, (1ULL << id_bits) - 1);
      } while (std::find(seen.begin(), seen.end(), id) != seen.end());
      seen.push_back(id);
      ids[i] = id;
    }
  }

  // Per node: peers grouped by XOR bucket.
  std::vector<net::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::vector<std::vector<net::NodeId>> buckets(
      static_cast<std::size_t>(id_bits));
  for (net::NodeId v : order) {
    for (auto& b : buckets) b.clear();
    for (net::NodeId u = 0; u < n; ++u) {
      if (u == v) continue;
      const int b = bucket_of(ids[u] ^ ids[v]);
      buckets[static_cast<std::size_t>(b)].push_back(u);
    }
    // Dial one random member per bucket, widest (most distant) bucket first —
    // Kademlia's routing table induces exactly this neighbor profile. If
    // there are fewer non-empty buckets than slots, wrap around for a second
    // member per bucket, and fall back to random peers at the very end.
    const int want = topology.limits().out_cap - topology.out_count(v);
    int made = 0;
    for (int pass = 0; pass < 4 && made < want; ++pass) {
      for (auto it = buckets.rbegin(); it != buckets.rend() && made < want;
           ++it) {
        if (it->empty()) continue;
        for (int attempt = 0; attempt < 16; ++attempt) {
          const net::NodeId target = (*it)[rng.uniform_index(it->size())];
          if (topology.connect(v, target)) {
            ++made;
            break;
          }
        }
      }
    }
    if (made < want) dial_random_peers(topology, v, want - made, rng);
  }
}

}  // namespace perigee::topo
