#include <numeric>

#include "topo/builders.hpp"
#include "util/assert.hpp"

namespace perigee::topo {

int dial_random_peers(net::Topology& topology, net::NodeId dialer, int count,
                      util::Rng& rng, int max_attempts_per_peer) {
  const std::size_t n = topology.size();
  int made = 0;
  for (int i = 0; i < count; ++i) {
    bool ok = false;
    for (int attempt = 0; attempt < max_attempts_per_peer; ++attempt) {
      const auto target =
          static_cast<net::NodeId>(rng.uniform_index(n));
      if (topology.connect(dialer, target)) {
        ok = true;
        break;
      }
    }
    if (ok) ++made;
  }
  return made;
}

int dial_peers_from_book(net::Topology& topology, net::NodeId dialer,
                         int count, const net::AddrMan& addrman,
                         util::Rng& rng, int max_attempts_per_peer) {
  int made = 0;
  for (int i = 0; i < count; ++i) {
    bool ok = false;
    for (int attempt = 0; attempt < max_attempts_per_peer; ++attempt) {
      const net::NodeId target = addrman.sample(dialer, rng);
      if (target == net::kInvalidNode) break;  // empty book
      if (topology.connect(dialer, target)) {
        ok = true;
        break;
      }
    }
    if (ok) ++made;
  }
  return made;
}

void build_random(net::Topology& topology, util::Rng& rng) {
  std::vector<net::NodeId> order(topology.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (net::NodeId v : order) {
    dial_random_peers(topology, v,
                      topology.limits().out_cap - topology.out_count(v), rng);
  }
}

void build_erdos_renyi(net::Topology& topology, double p, util::Rng& rng) {
  PERIGEE_ASSERT(p >= 0.0 && p <= 1.0);
  const std::size_t n = topology.size();
  for (net::NodeId u = 0; u < n; ++u) {
    for (net::NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) topology.connect(u, v);
    }
  }
}

}  // namespace perigee::topo
