#include "topo/relay.hpp"

#include "util/assert.hpp"

namespace perigee::topo {

RelayNetwork install_relay_tree(net::Topology& topology, net::Network& network,
                                const RelayConfig& config, util::Rng& rng) {
  PERIGEE_ASSERT(topology.size() == network.size());
  PERIGEE_ASSERT(config.members >= 2);
  PERIGEE_ASSERT(config.members <= network.size());
  PERIGEE_ASSERT(config.fanout >= 1);

  RelayNetwork relay;
  for (std::size_t idx : rng.sample_indices(network.size(), config.members)) {
    relay.members.push_back(static_cast<net::NodeId>(idx));
  }

  auto& profiles = network.mutable_profiles();
  for (net::NodeId v : relay.members) {
    profiles[v].relay = true;
    profiles[v].validation_ms *= config.validation_scale;
  }

  // Balanced `fanout`-ary tree over the member list: child i hangs off
  // member (i-1)/fanout.
  for (std::size_t i = 1; i < relay.members.size(); ++i) {
    const std::size_t parent = (i - 1) / static_cast<std::size_t>(config.fanout);
    const bool ok = topology.add_infra_edge(relay.members[parent],
                                            relay.members[i], config.link_ms);
    PERIGEE_ASSERT_MSG(ok, "relay tree edge collided with existing edge");
  }
  return relay;
}

}  // namespace perigee::topo
