// Fast block-distribution overlay (paper §5.4, bloXroute/FIBRE-like).
//
// A subset of nodes is wired into a low-latency tree carried as infra links;
// members validate blocks faster (better hardware). The overlay exists in
// addition to whatever p2p topology the protocol builds, and every algorithm
// under comparison runs on top of it.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace perigee::topo {

struct RelayConfig {
  std::size_t members = 100;       // tree size (paper: 100 nodes)
  double link_ms = 5.0;            // per-hop latency inside the overlay
  double validation_scale = 0.1;   // members validate at 10% of default
  int fanout = 2;                  // tree arity
};

struct RelayNetwork {
  std::vector<net::NodeId> members;  // tree order: members[0] is the root
};

// Selects random members, marks their profiles (relay flag, scaled
// validation) and installs the tree's infra edges.
RelayNetwork install_relay_tree(net::Topology& topology, net::Network& network,
                                const RelayConfig& config, util::Rng& rng);

}  // namespace perigee::topo
