#include "topo/spanner.hpp"

#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace perigee::topo {

double cone_spanner_stretch_bound(int cones) {
  PERIGEE_ASSERT(cones >= 7);
  return 1.0 / (1.0 - 2.0 * std::sin(std::numbers::pi /
                                     static_cast<double>(cones)));
}

void build_cone_spanner(net::Topology& topology, const net::Network& network,
                        int cones, ConeGraphKind kind) {
  PERIGEE_ASSERT(topology.size() == network.size());
  PERIGEE_ASSERT(cones >= 3);
  PERIGEE_ASSERT(topology.limits().out_cap >= cones);
  const std::size_t n = network.size();
  const double cone_angle =
      2.0 * std::numbers::pi / static_cast<double>(cones);

  std::vector<net::NodeId> best_peer(static_cast<std::size_t>(cones));
  std::vector<double> best_key(static_cast<std::size_t>(cones));

  for (net::NodeId v = 0; v < n; ++v) {
    const auto& pv = network.profile(v).coords;
    std::fill(best_peer.begin(), best_peer.end(), net::kInvalidNode);
    std::fill(best_key.begin(), best_key.end(), 1e300);

    for (net::NodeId u = 0; u < n; ++u) {
      if (u == v) continue;
      const auto& pu = network.profile(u).coords;
      const double dx = pu[0] - pv[0];
      const double dy = pu[1] - pv[1];
      double angle = std::atan2(dy, dx);
      if (angle < 0) angle += 2.0 * std::numbers::pi;
      const auto cone = std::min<std::size_t>(
          static_cast<std::size_t>(angle / cone_angle),
          static_cast<std::size_t>(cones) - 1);

      double key;
      if (kind == ConeGraphKind::Yao) {
        key = std::hypot(dx, dy);  // nearest point in the cone
      } else {
        // Theta: distance of u's projection onto the cone's bisector.
        const double bisector =
            (static_cast<double>(cone) + 0.5) * cone_angle;
        key = dx * std::cos(bisector) + dy * std::sin(bisector);
      }
      if (key < best_key[cone]) {
        best_key[cone] = key;
        best_peer[cone] = u;
      }
    }

    for (std::size_t c = 0; c < static_cast<std::size_t>(cones); ++c) {
      if (best_peer[c] != net::kInvalidNode) {
        // connect() refuses duplicates when the reverse cone edge already
        // exists, which is fine — the undirected union is what relays.
        topology.connect(v, best_peer[c]);
      }
    }
  }
}

}  // namespace perigee::topo
