// Cone-based geometric spanners (Θ-graphs and Yao graphs).
//
// §3.3 of the paper notes the geometric threshold graph is not the only
// order-optimal construction and cites the spanner literature (Chan et al.'s
// doubling spanners). Θ/Yao graphs are the classic degree-bounded members of
// that family for points in the plane: each node splits the directions
// around it into k equal cones and keeps one outgoing edge per cone —
//   Yao:   to the Euclidean-nearest point in the cone,
//   Theta: to the point whose projection on the cone's bisector is shortest.
// For k >= 7 both are t-spanners with stretch t = 1 / (1 - 2 sin(pi/k)),
// with out-degree exactly k — unlike the threshold graph, whose degree grows
// as log n.
//
// Requires a 2-D Euclidean-embedded Network (NetworkOptions::LatencyKind::
// Euclidean with embed_dim == 2).
#pragma once

#include "net/network.hpp"
#include "net/topology.hpp"

namespace perigee::topo {

enum class ConeGraphKind { Theta, Yao };

// Adds one outgoing edge per non-empty cone per node. The Topology's
// out_cap must be at least `cones` (in_cap is typically uncapped for theory
// experiments).
void build_cone_spanner(net::Topology& topology, const net::Network& network,
                        int cones, ConeGraphKind kind);

// Worst-case stretch bound of a k-cone spanner, 1/(1 - 2 sin(pi/k));
// requires k >= 7 (below that the bound is vacuous).
double cone_spanner_stretch_bound(int cones);

}  // namespace perigee::topo
