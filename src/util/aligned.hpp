/// \file
/// \brief Minimal over-aligned allocator for cache-line-sensitive arenas.
///
/// `std::vector<double>` only guarantees `alignof(std::max_align_t)` (16 on
/// x86-64), so an arena whose *stripes* are padded to whole cache lines can
/// still start mid-line and leak false sharing across stripe boundaries.
/// Backing the vector with this allocator makes the base line-aligned, which
/// together with line-padded strides puts every stripe on its own lines
/// (tests/sim_batch_layout_test.cpp holds both halves of that contract).
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace perigee::util {

template <class T, std::size_t Align = 64>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering T");
  using value_type = T;
  // The non-type Align parameter defeats allocator_traits' default rebind
  // deduction, so spell it out.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

/// A cache-line-aligned double arena: the batched engines' stripe store.
using AlignedDoubles = std::vector<double, AlignedAllocator<double>>;

}  // namespace perigee::util
