// Lightweight always-on assertion macro.
//
// Simulation correctness depends on internal invariants (degree caps,
// monotone event times, ...). These checks are cheap relative to the
// simulation work, so they stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace perigee::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "PERIGEE_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace perigee::util

#define PERIGEE_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::perigee::util::assert_fail(#expr, __FILE__, __LINE__, nullptr);   \
  } while (0)

#define PERIGEE_ASSERT_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr))                                                          \
      ::perigee::util::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
  } while (0)
