/// \file
/// \brief Power-of-two fixed-point quantization of delay keys.
///
/// The delta-stepping engines place Dijkstra keys into uniform-width buckets.
/// Doing that with a double multiply (`key * inv_width`) rounds: an equal key
/// can land one bucket low, which the sequential `BucketQueue` papers over
/// with a clamp. Quantizing keys onto a fixed-point grid whose scale is a
/// power of two removes the problem at the root:
///
///  - `q(x) = floor(x * 2^e)` is computed *exactly* for any double in range —
///    multiplying by a power of two only shifts the exponent, so the cast
///    truncation is the true mathematical floor;
///  - exact floor is monotone: `x <= y  =>  q(x) <= q(y)`, so quantized keys
///    are order-preserving (ties may be introduced, never inversions);
///  - the bucket index is `q(key) >> width_shift` — pure integer math, no
///    double compare, and the bucket width `2^width_shift` quantized units is
///    *exactly* representable, so the delta-stepping correctness ceiling
///    (width <= min-delay / 2) can be checked as an integer inequality
///    instead of a floating-point one.
///
/// Quantization error is one-sided and bounded: `0 <= x - dequantize(q(x)) <
/// step()` with `step() == 2^-e`. `tests/sim_fixedpoint_test.cpp` holds all
/// three properties (order preservation, error bound, exact width ceiling)
/// over random delay distributions.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>

namespace perigee::util {

/// A fixed-point grid `x -> floor(x * 2^exponent)` for nonnegative keys.
struct FixedPointScale {
  double scale = 1.0;  ///< 2^exponent; multiplication by it is exact
  int exponent = 0;

  /// Exact floor of `x * 2^exponent`. Contract: `x` finite, >= 0, and
  /// `x * scale` below 2^63 (the deriving helpers guarantee headroom).
  std::uint64_t quantize(double x) const {
    return static_cast<std::uint64_t>(x * scale);
  }
  /// Lower edge of `q`'s grid cell; `dequantize(quantize(x)) <= x`.
  double dequantize(std::uint64_t q) const {
    return static_cast<double>(q) / scale;
  }
  /// Grid resolution 2^-exponent: the (exclusive) bound on one value's
  /// quantization error.
  double step() const { return 1.0 / scale; }

  /// The grid that quantizes `max_value` to `target_bits` bits with maximal
  /// resolution: `q(max_value)` lands in [2^(target_bits-1), 2^target_bits).
  /// For `max_value <= 0` returns the unit grid (nothing to resolve).
  static FixedPointScale fit(double max_value, int target_bits) {
    FixedPointScale s;
    if (!(max_value > 0.0) || !std::isfinite(max_value)) return s;
    int exp2 = 0;
    std::frexp(max_value, &exp2);  // max_value = m * 2^exp2, m in [0.5, 1)
    s.exponent = target_bits - exp2;
    s.scale = std::ldexp(1.0, s.exponent);
    return s;
  }
};

/// Largest bucket-width exponent `s` with `2^(s+1) <= min_delay_q`, i.e. the
/// widest power-of-two bucket that still respects the delta-stepping ceiling
/// width <= min-delay / 2 — checked in exact integer arithmetic, never
/// violated by rounding. `min_delay_q < 2` admits no such width (the grid is
/// too coarse for this graph): nullopt, callers fall back to the heap path.
inline std::optional<int> bucket_width_shift(std::uint64_t min_delay_q) {
  if (min_delay_q < 2) return std::nullopt;
  // min_delay_q in [2^k, 2^(k+1)) with k = bit_width - 1; width 2^(k-1)
  // satisfies 2^k <= min_delay_q.
  return std::bit_width(min_delay_q) - 2;
}

}  // namespace perigee::util
