#include "util/flags.hpp"

#include <cstdlib>
#include <iostream>

#include "util/assert.hpp"

namespace perigee::util {

void Flags::add_int(const std::string& name, std::int64_t def,
                    const std::string& help) {
  Entry e;
  e.kind = Kind::Int;
  e.help = help;
  e.i = def;
  entries_[name] = std::move(e);
}

void Flags::add_double(const std::string& name, double def,
                       const std::string& help) {
  Entry e;
  e.kind = Kind::Double;
  e.help = help;
  e.d = def;
  entries_[name] = std::move(e);
}

void Flags::add_string(const std::string& name, const std::string& def,
                       const std::string& help) {
  Entry e;
  e.kind = Kind::String;
  e.help = help;
  e.s = def;
  entries_[name] = std::move(e);
}

void Flags::add_bool(const std::string& name, bool def,
                     const std::string& help) {
  Entry e;
  e.kind = Kind::Bool;
  e.help = help;
  e.b = def;
  entries_[name] = std::move(e);
}

bool Flags::parse(int argc, const char* const* argv) {
  if (argc > 0) prog_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      unknown_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      unknown_.push_back(arg);
      continue;
    }
    Entry& e = it->second;
    if (!has_value && e.kind != Kind::Bool) {
      if (i + 1 >= argc) {
        std::cerr << "flag --" << name << " expects a value\n";
        return false;
      }
      value = argv[++i];
      has_value = true;
    }
    char* end = nullptr;
    switch (e.kind) {
      case Kind::Int:
        e.i = std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
          std::cerr << "flag --" << name << ": bad integer '" << value << "'\n";
          return false;
        }
        break;
      case Kind::Double:
        e.d = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
          std::cerr << "flag --" << name << ": bad number '" << value << "'\n";
          return false;
        }
        break;
      case Kind::String:
        e.s = value;
        break;
      case Kind::Bool:
        if (!has_value) {
          e.b = true;
        } else {
          e.b = (value == "1" || value == "true" || value == "yes");
        }
        break;
    }
  }
  return true;
}

const Flags::Entry& Flags::lookup(const std::string& name, Kind kind) const {
  auto it = entries_.find(name);
  PERIGEE_ASSERT_MSG(it != entries_.end(), "unregistered flag");
  PERIGEE_ASSERT_MSG(it->second.kind == kind, "flag type mismatch");
  return it->second;
}

std::int64_t Flags::get_int(const std::string& name) const {
  return lookup(name, Kind::Int).i;
}

double Flags::get_double(const std::string& name) const {
  return lookup(name, Kind::Double).d;
}

const std::string& Flags::get_string(const std::string& name) const {
  return lookup(name, Kind::String).s;
}

bool Flags::get_bool(const std::string& name) const {
  return lookup(name, Kind::Bool).b;
}

void Flags::print_usage(std::ostream& os) const {
  os << "usage: " << prog_ << " [flags]\n";
  for (const auto& [name, e] : entries_) {
    os << "  --" << name;
    switch (e.kind) {
      case Kind::Int:
        os << "=<int>      (default " << e.i << ")";
        break;
      case Kind::Double:
        os << "=<float>    (default " << e.d << ")";
        break;
      case Kind::String:
        os << "=<string>   (default '" << e.s << "')";
        break;
      case Kind::Bool:
        os << "             (default " << (e.b ? "true" : "false") << ")";
        break;
    }
    os << "  " << e.help << '\n';
  }
}

}  // namespace perigee::util
