// Minimal CLI flag parser for benches and examples.
//
// Flags are registered with defaults before parse(); "--name=value",
// "--name value" and bare boolean "--name" forms are accepted. Unknown flags
// are tolerated and reported (google-benchmark passes its own flags through
// the same argv).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace perigee::util {

class Flags {
 public:
  void add_int(const std::string& name, std::int64_t def,
               const std::string& help);
  void add_double(const std::string& name, double def, const std::string& help);
  void add_string(const std::string& name, const std::string& def,
                  const std::string& help);
  void add_bool(const std::string& name, bool def, const std::string& help);

  // Returns false (after printing usage) when --help was requested or a
  // registered flag had an unparseable value.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& unknown() const { return unknown_; }
  void print_usage(std::ostream& os) const;

 private:
  enum class Kind { Int, Double, String, Bool };
  struct Entry {
    Kind kind;
    std::string help;
    std::int64_t i = 0;
    double d = 0;
    std::string s;
    bool b = false;
  };
  const Entry& lookup(const std::string& name, Kind kind) const;

  std::map<std::string, Entry> entries_;
  std::vector<std::string> unknown_;
  std::string prog_ = "prog";
};

}  // namespace perigee::util
