/// \file
/// \brief Portable software-prefetch hint for the relaxation hot loops.
///
/// The Dijkstra relaxation's cache behavior is two-phased: the CSR row of
/// the node being relaxed streams sequentially (the hardware prefetcher
/// handles it), but the *next* pop's row metadata and the `arrival[]` slots
/// behind each `peers[e]` are data-dependent loads the prefetcher cannot
/// predict. `PERIGEE_PREFETCH` lets the engines overlap those misses with
/// the current row scan. It is strictly a hint: expanding to nothing on
/// compilers without `__builtin_prefetch` changes no behavior, and the
/// address does not need to be dereferenceable.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
/// Read-intent prefetch with moderate temporal locality (L2-ish). `addr`
/// may be any pointer-like expression; faulting addresses are safe.
#define PERIGEE_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define PERIGEE_PREFETCH(addr) ((void)0)
#endif

namespace perigee::util {

/// How far ahead of the edge cursor the engines prefetch `arrival[peer]`.
/// Eight edges ≈ one cache line of u32 peer ids: far enough to cover an
/// L2 hit, close enough that degree-8 rows (the Perigee dout default)
/// still prefetch their tail instead of a neighboring row's slots.
inline constexpr int kEdgePrefetchDistance = 8;

}  // namespace perigee::util
