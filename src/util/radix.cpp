#include "util/radix.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>

namespace perigee::util {
namespace {

std::uint64_t key_bits(const std::pair<double, double>& p) {
  return std::bit_cast<std::uint64_t>(p.first);
}

}  // namespace

void radix_sort_arrival_pairs(
    std::vector<std::pair<double, double>>& pairs,
    std::vector<std::pair<double, double>>& scratch) {
  const std::size_t n = pairs.size();
  // Comparison sort wins below this; the histogram setup is the overhead.
  if (n < 96) {
    std::sort(pairs.begin(), pairs.end());
    return;
  }
  scratch.resize(n);

  // One read pass fills all eight byte histograms.
  std::array<std::array<std::uint32_t, 256>, 8> hist{};
  for (const auto& p : pairs) {
    const std::uint64_t k = key_bits(p);
    for (std::size_t b = 0; b < 8; ++b) {
      ++hist[b][(k >> (8 * b)) & 0xFF];
    }
  }

  auto* src = &pairs;
  auto* dst = &scratch;
  for (std::size_t b = 0; b < 8; ++b) {
    // Skip bytes every key agrees on — they cannot affect the order.
    const std::uint64_t probe = key_bits((*src)[0]);
    if (hist[b][(probe >> (8 * b)) & 0xFF] == n) continue;
    std::array<std::uint32_t, 256> offset;
    std::uint32_t sum = 0;
    for (std::size_t bin = 0; bin < 256; ++bin) {
      offset[bin] = sum;
      sum += hist[b][bin];
    }
    for (const auto& p : *src) {
      (*dst)[offset[(key_bits(p) >> (8 * b)) & 0xFF]++] = p;
    }
    std::swap(src, dst);
  }
  if (src != &pairs) pairs.swap(scratch);

  // Stable LSD ordered by key only; equal-key runs still need their
  // payload order (std::pair semantics). Runs are rare and short in
  // continuous data — the exception, the +inf unreachable tail, is one run.
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && key_bits(pairs[j]) == key_bits(pairs[i])) ++j;
    if (j - i > 1) {
      std::sort(pairs.begin() + static_cast<std::ptrdiff_t>(i),
                pairs.begin() + static_cast<std::ptrdiff_t>(j),
                [](const auto& a, const auto& b) {
                  return a.second < b.second;
                });
    }
    i = j;
  }
}

}  // namespace perigee::util
