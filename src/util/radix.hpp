/// \file
/// \brief Pass-skipping LSD radix sort for (non-negative double, double)
/// pairs — the λ metric's (arrival, hash power) accumulation order.
///
/// Produces exactly the sequence `std::sort` produces on
/// `std::pair<double, double>` (ascending first, then second), so callers
/// switching from std::sort stay bit-identical: the coverage accumulation
/// that follows adds the same doubles in the same order. Keys must be
/// non-negative and non-NaN (+inf allowed) — for such doubles the IEEE-754
/// bit pattern orders like the value, so the sort runs on the raw 8 key
/// bytes, low to high, skipping any byte on which all keys agree (arrival
/// times share sign/exponent bytes, so typically only 3–5 of the 8 passes
/// survive). Equal-key runs are then ordered by payload; the only large run
/// in practice is the +inf tail of unreachable nodes.
#pragma once

#include <utility>
#include <vector>

namespace perigee::util {

/// Sorts `pairs` ascending by (first, second). `scratch` is the ping-pong
/// buffer, resized as needed and reusable across calls. Precondition: every
/// `first` is non-negative and not NaN.
void radix_sort_arrival_pairs(std::vector<std::pair<double, double>>& pairs,
                              std::vector<std::pair<double, double>>& scratch);

}  // namespace perigee::util
