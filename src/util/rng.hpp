// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the library (node placement, jitter, miner
// selection, exploration, ...) flows from a single experiment seed through
// instances of Rng. We ship our own xoshiro256** implementation rather than
// rely on std::mt19937 so that results are bit-identical across standard
// library implementations.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "util/assert.hpp"

namespace perigee::util {

// SplitMix64: used to expand a 64-bit seed into xoshiro state, and as a
// cheap stateless hash for deterministic per-pair jitter.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Mixes several values into one 64-bit hash (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
}

// xoshiro256** by Blackman & Vigna; public-domain reference algorithm.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x = splitmix64(x);
      s = x;
    }
    // xoshiro must not be seeded with the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  // Derives an independent generator; `stream` identifies the consumer so
  // adding a new consumer does not perturb the draws of existing ones.
  Rng split(std::uint64_t stream) const {
    return Rng(hash_combine(state_[0] ^ state_[3], stream));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    PERIGEE_ASSERT(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    PERIGEE_ASSERT(lo <= hi);
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) return next_u64();  // full 64-bit range
    // Lemire-style rejection sampling for unbiased bounded draws.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto lowbits = static_cast<std::uint64_t>(m);
    if (lowbits < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (lowbits < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * range;
        lowbits = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::uint64_t>(m >> 64);
  }

  int uniform_int(int lo, int hi) {
    return lo + static_cast<int>(uniform_u64(0, static_cast<std::uint64_t>(hi - lo)));
  }

  std::size_t uniform_index(std::size_t n) {
    PERIGEE_ASSERT(n > 0);
    return static_cast<std::size_t>(uniform_u64(0, n - 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  double exponential(double mean) {
    PERIGEE_ASSERT(mean > 0);
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  // Box-Muller; one value per call (the pair's twin is discarded to keep the
  // generator state a pure function of the number of calls).
  double normal(double mean, double stddev) {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * z;
  }

  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  // Log-uniform over [lo, hi]; used for bandwidth heterogeneity.
  double log_uniform(double lo, double hi) {
    PERIGEE_ASSERT(lo > 0 && hi >= lo);
    return std::exp(uniform(std::log(lo), std::log(hi)));
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  // k distinct indices from [0, n); Floyd's algorithm, O(k) expected.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    PERIGEE_ASSERT(k <= n);
    std::vector<std::size_t> out;
    out.reserve(k);
    for (std::size_t j = n - k; j < n; ++j) {
      const std::size_t t = static_cast<std::size_t>(uniform_u64(0, j));
      if (std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      } else {
        out.push_back(j);
      }
    }
    return out;
  }

  // Index draw proportional to non-negative weights (linear scan; use
  // mining::AliasSampler for repeated draws from the same distribution).
  std::size_t weighted_index(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) {
      PERIGEE_ASSERT(w >= 0);
      total += w;
    }
    PERIGEE_ASSERT(total > 0);
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.size() - 1;  // numerical edge: land on the last element
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace perigee::util
