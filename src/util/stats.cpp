#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace perigee::util {

double percentile_sorted(std::span<const double> sorted, double q) {
  PERIGEE_ASSERT(q >= 0.0 && q <= 1.0);
  if (sorted.empty()) return kInf;
  if (sorted.size() == 1) return sorted.front();
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  const double a = sorted[lo];
  const double b = sorted[hi];
  if (std::isinf(a) || std::isinf(b)) {
    // Interpolating with +inf poisons the result; return the dominating end.
    return frac > 0.0 ? b : a;
  }
  return a + (b - a) * frac;
}

double percentile(std::span<const double> sample, double q) {
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, q);
}

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double s = 0;
  for (double x : sample) s += x;
  return s / static_cast<double>(sample.size());
}

double stddev(std::span<const double> sample) {
  if (sample.size() < 2) return 0.0;
  const double m = mean(sample);
  double s2 = 0;
  for (double x : sample) s2 += (x - m) * (x - m);
  return std::sqrt(s2 / static_cast<double>(sample.size() - 1));
}

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  s.min = copy.front();
  s.max = copy.back();
  s.mean = mean(copy);
  s.stddev = stddev(copy);
  s.p10 = percentile_sorted(copy, 0.10);
  s.p50 = percentile_sorted(copy, 0.50);
  s.p90 = percentile_sorted(copy, 0.90);
  s.p99 = percentile_sorted(copy, 0.99);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PERIGEE_ASSERT(hi > lo);
  PERIGEE_ASSERT(bins > 0);
}

void Histogram::add(double x) {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<long>((x - lo_) / w);
  bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::fraction(std::size_t bin) const {
  return total_ == 0
             ? 0.0
             : static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t bar_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char range[64];
    std::snprintf(range, sizeof range, "%8.1f..%-8.1f %7zu  ", bin_lo(i),
                  bin_hi(i), counts_[i]);
    os << range;
    const auto len = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    os << std::string(len, '#') << '\n';
  }
  return os.str();
}

std::vector<std::size_t> Histogram::modes() const {
  // 3-bin moving average suppresses single-bin noise before peak-picking.
  const std::size_t n = counts_.size();
  std::vector<double> smooth(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = static_cast<double>(counts_[i]);
    double w = 1;
    if (i > 0) {
      s += static_cast<double>(counts_[i - 1]);
      ++w;
    }
    if (i + 1 < n) {
      s += static_cast<double>(counts_[i + 1]);
      ++w;
    }
    smooth[i] = s / w;
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    const double left = i == 0 ? -1.0 : smooth[i - 1];
    const double right = i + 1 == n ? -1.0 : smooth[i + 1];
    if (smooth[i] > left && smooth[i] >= right && counts_[i] > 0) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace perigee::util
