// Statistics toolkit: percentiles, online moments, histograms, summaries.
//
// The 90th-percentile operator defined here is the scoring primitive used by
// every Perigee variant (paper §4.2-4.3); it intentionally propagates +inf
// entries (a neighbor that never delivered a block) to the top of the order.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace perigee::util {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

// Percentile q in [0,1] of an unsorted sample, nearest-rank with linear
// interpolation between order statistics (the "linear" / type-7 estimator).
// An empty sample yields +inf (matches "no observations => worst score").
double percentile(std::span<const double> sample, double q);

// Same, but the caller guarantees `sorted` is ascending. +inf entries are
// permitted and sort last.
double percentile_sorted(std::span<const double> sorted, double q);

double mean(std::span<const double> sample);
double stddev(std::span<const double> sample);  // sample stddev (n-1)

// Welford online accumulator.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const;  // sample variance, 0 if n < 2
  double stddev() const;
  double min() const { return n_ == 0 ? kInf : min_; }
  double max() const { return n_ == 0 ? -kInf : max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = kInf;
  double max_ = -kInf;
};

struct Summary {
  std::size_t count = 0;
  double min = 0, max = 0, mean = 0, stddev = 0;
  double p10 = 0, p50 = 0, p90 = 0, p99 = 0;
};

// Summary of an unsorted sample (sorts a copy; finite and +inf entries ok).
Summary summarize(std::span<const double> sample);

// Fixed-width histogram over [lo, hi); values outside are clamped into the
// first/last bin. Used for the Figure-5 edge-latency histograms.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double fraction(std::size_t bin) const;

  // Render as rows of "lo..hi  count  bar" for console output.
  std::string render(std::size_t bar_width = 50) const;

  // Indices of local maxima of the (lightly smoothed) bin counts; used by
  // tests to check the bimodality claim of Figure 5.
  std::vector<std::size_t> modes() const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace perigee::util
