#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace perigee::util {

std::string fmt(double x, int prec) {
  if (std::isinf(x)) return x > 0 ? "inf" : "-inf";
  if (std::isnan(x)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, x);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PERIGEE_ASSERT(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PERIGEE_ASSERT_MSG(cells.size() == header_.size(),
                     "row width must match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << std::string(width[c] - row[c].size(), ' ') << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace perigee::util
