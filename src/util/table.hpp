// Console tables and CSV emission for bench/example output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace perigee::util {

// Formats a double with `prec` digits after the point; +inf renders as "inf".
std::string fmt(double x, int prec = 1);

// A right-aligned fixed-layout console table.
//
//   Table t({"node", "random", "perigee"});
//   t.add_row({"100", fmt(512.3), fmt(343.1)});
//   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  void print(std::ostream& os) const;
  // Comma-separated with the same header/rows (no quoting; cells must not
  // contain commas).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints "== title ==" section banners uniformly across benches.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace perigee::util
