// Adversarial and incentive scenarios from the paper's §1 and §6 discussion:
// withholding nodes get disconnected (incentive compatibility), and random
// exploration limits eclipse-style neighborhood capture.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/perigee.hpp"
#include "metrics/eval.hpp"
#include "sim/gossip.hpp"
#include "sim/rounds.hpp"
#include "topo/builders.hpp"
#include "util/stats.hpp"

namespace perigee {
namespace {

net::Network make_network(std::size_t n, std::uint64_t seed) {
  net::NetworkOptions options;
  options.n = n;
  options.seed = seed;
  return net::Network::build(options);
}

TEST(Withholding, BlocksDoNotFlowThroughWithholder) {
  auto network = make_network(5, 1);
  network.mutable_profiles()[1].forwards = false;
  net::Topology t(5);
  // Chain 0 - 1 - 2; plus honest path 0 - 3 - 4.
  t.connect(0, 1);
  t.connect(1, 2);
  t.connect(0, 3);
  t.connect(3, 4);
  const auto result = sim::simulate_broadcast(t, network, 0);
  EXPECT_TRUE(std::isfinite(result.arrival[1]));  // receives fine
  EXPECT_TRUE(std::isinf(result.arrival[2]));     // but never relays
  EXPECT_TRUE(std::isfinite(result.arrival[4]));
}

TEST(Withholding, MinedBlocksStillPropagate) {
  auto network = make_network(3, 2);
  network.mutable_profiles()[0].forwards = false;
  net::Topology t(3);
  t.connect(0, 1);
  t.connect(1, 2);
  const auto result = sim::simulate_broadcast(t, network, 0);
  EXPECT_TRUE(std::isfinite(result.arrival[1]));
  EXPECT_TRUE(std::isfinite(result.arrival[2]));
}

TEST(Withholding, GossipEngineAgrees) {
  auto network = make_network(4, 3);
  network.mutable_profiles()[1].forwards = false;
  net::Topology t(4);
  t.connect(0, 1);
  t.connect(1, 2);
  t.connect(2, 3);
  const auto result = sim::simulate_gossip(t, network, 0);
  EXPECT_TRUE(std::isfinite(result.arrival[1]));
  EXPECT_TRUE(std::isinf(result.arrival[2]));
  EXPECT_TRUE(std::isinf(result.arrival[3]));
}

TEST(Incentives, PerigeeDisconnectsWithholdingNeighbor) {
  // §1: "if a node deviates from protocol (e.g., stops relaying blocks) ...
  // its neighbors will penalize the node by disconnecting from it".
  const std::size_t n = 150;
  auto network = make_network(n, 4);
  const net::NodeId freeloader = 42;
  network.mutable_profiles()[freeloader].forwards = false;

  net::Topology t(n);
  util::Rng rng(4);
  topo::build_random(t, rng);
  const int dialers_before = t.in_count(freeloader);
  ASSERT_GT(dialers_before, 0);

  sim::RoundRunner runner(network, t,
                          core::make_selectors(n, core::Algorithm::PerigeeSubset),
                          50, 4);
  runner.run_rounds(6);

  // Every honest node that had the freeloader as an outgoing neighbor has
  // dropped it by now: its relative delivery times are all +inf, the worst
  // possible score. Only the current round's exploration dials (in
  // expectation n * ev / (n-1) ~ 2 network-wide, but seed-dependent) may
  // still point at it.
  int dialers_after = 0;
  for (net::NodeId v = 0; v < n; ++v) {
    if (t.has_out(v, freeloader)) ++dialers_after;
  }
  EXPECT_LE(dialers_after, 6);
  // And none of them are score-retained connections: one more round with no
  // further exploration would drop them too. Verify the freeloader's
  // connection count did not rebound to its initial level.
  EXPECT_LT(dialers_after, dialers_before);
}

TEST(Incentives, HonestNodesKeepFullService) {
  // The withholder hurts itself, not the network: honest nodes still reach
  // 90% coverage quickly because scoring routes around the dead end.
  const std::size_t n = 150;
  auto network = make_network(n, 5);
  for (net::NodeId v : {net::NodeId{10}, net::NodeId{20}, net::NodeId{30}}) {
    network.mutable_profiles()[v].forwards = false;
  }
  // Withholders also hold no hash power (they never broadcast anything
  // useful).
  for (net::NodeId v : {net::NodeId{10}, net::NodeId{20}, net::NodeId{30}}) {
    network.mutable_profiles()[v].hash_power = 0.0;
  }

  net::Topology t(n);
  util::Rng rng(5);
  topo::build_random(t, rng);
  sim::RoundRunner runner(network, t,
                          core::make_selectors(n, core::Algorithm::PerigeeSubset),
                          50, 5);
  runner.run_rounds(6);

  const auto lambda = metrics::eval_all_sources(t, network, 0.9);
  for (net::NodeId v = 0; v < n; ++v) {
    if (!network.profile(v).forwards) continue;
    EXPECT_TRUE(std::isfinite(lambda[v])) << "node " << v;
  }
}

TEST(Eclipse, ExplorationLimitsNeighborhoodCapture) {
  // An eclipse-style adversary with artificially perfect connectivity (zero
  // validation, pinned low latency) could capture a victim's entire
  // neighborhood under pure exploitation. Algorithm 1's ev random dials per
  // round keep re-introducing honest strangers, so with ev > 0 the victim's
  // outgoing set can never permanently consist of adversary nodes only.
  const std::size_t n = 100;
  auto network = make_network(n, 6);
  // Adversary nodes 0..4: instant validation, making them consistently the
  // fastest deliverers.
  for (net::NodeId v = 0; v < 5; ++v) {
    network.mutable_profiles()[v].validation_ms = 0.0;
  }

  net::Topology t(n);
  util::Rng rng(6);
  topo::build_random(t, rng);

  core::PerigeeParams params;  // keep = 6, explore = 2
  sim::RoundRunner runner(
      network, t,
      core::make_selectors(n, core::Algorithm::PerigeeSubset, params), 30, 6);

  const net::NodeId victim = 50;
  int rounds_with_honest_neighbor = 0;
  const int total_rounds = 10;
  for (int r = 0; r < total_rounds; ++r) {
    runner.run_round();
    int honest = 0;
    for (net::NodeId u : t.out(victim)) {
      if (u >= 5) ++honest;
    }
    if (honest > 0) ++rounds_with_honest_neighbor;
  }
  // Exploration keeps honest outgoing links present every single round.
  EXPECT_EQ(rounds_with_honest_neighbor, total_rounds);
}

TEST(Churn, DisconnectAllIsolatesNode) {
  net::Topology t(20);
  util::Rng rng(7);
  topo::build_random(t, rng);
  ASSERT_GT(t.out_count(3) + t.in_count(3), 0);
  t.disconnect_all(3);
  EXPECT_EQ(t.out_count(3), 0);
  EXPECT_EQ(t.in_count(3), 0);
  EXPECT_TRUE(t.adjacency(3).empty());
  t.validate();
}

TEST(Churn, DisconnectAllKeepsInfra) {
  net::Topology t(10);
  t.add_infra_edge(0, 1, 5.0);
  t.connect(0, 2);
  t.connect(3, 0);
  t.disconnect_all(0);
  EXPECT_TRUE(t.infra_latency(0, 1).has_value());
  EXPECT_EQ(t.out_count(0), 0);
  EXPECT_EQ(t.in_count(0), 0);
  t.validate();
}

}  // namespace
}  // namespace perigee
