// Node churn (paper §6 future work): nodes leave and join between rounds;
// Perigee must repair and re-learn.
#include <gtest/gtest.h>

#include <cmath>

#include "core/perigee.hpp"
#include "metrics/eval.hpp"
#include "mining/hashpower.hpp"
#include "sim/rounds.hpp"
#include "topo/builders.hpp"
#include "util/stats.hpp"

namespace perigee {
namespace {

net::Network make_network(std::size_t n, std::uint64_t seed) {
  net::NetworkOptions options;
  options.n = n;
  options.seed = seed;
  return net::Network::build(options);
}

TEST(Churn, NetworkSurvivesDepartures) {
  const std::size_t n = 200;
  auto network = make_network(n, 11);
  net::Topology t(n);
  util::Rng rng(11);
  topo::build_random(t, rng);
  sim::RoundRunner runner(network, t,
                          core::make_selectors(n, core::Algorithm::PerigeeSubset),
                          40, 11);
  runner.run_rounds(2);

  // 10% of nodes leave: edges torn down, hash power zeroed.
  util::Rng churn_rng(12);
  std::vector<net::NodeId> leavers;
  for (std::size_t idx : churn_rng.sample_indices(n, n / 10)) {
    const auto v = static_cast<net::NodeId>(idx);
    leavers.push_back(v);
    t.disconnect_all(v);
    network.mutable_profiles()[v].hash_power = 0.0;
  }
  runner.refresh_hash_power();
  runner.run_rounds(4);
  t.validate();

  // Every remaining node still reaches 90% of the (remaining) hash power.
  const auto lambda = metrics::eval_all_sources(t, network, 0.9);
  std::size_t finite = 0;
  for (net::NodeId v = 0; v < n; ++v) {
    const bool left =
        std::find(leavers.begin(), leavers.end(), v) != leavers.end();
    if (!left && std::isfinite(lambda[v])) ++finite;
  }
  EXPECT_EQ(finite, n - leavers.size());
}

TEST(Churn, IsolatedNodeSelfHealsThroughExploration) {
  // A node that loses every connection (e.g. its peers all left) is
  // re-integrated automatically: its own selector's exploration dials fresh
  // random peers the very next round, and other nodes' exploration finds it
  // again.
  const std::size_t n = 150;
  auto network = make_network(n, 13);
  net::Topology t(n);
  util::Rng rng(13);
  topo::build_random(t, rng);
  sim::RoundRunner runner(network, t,
                          core::make_selectors(n, core::Algorithm::PerigeeSubset),
                          40, 13);
  runner.run_rounds(1);

  const net::NodeId node = 77;
  t.disconnect_all(node);
  EXPECT_EQ(t.out_count(node) + t.in_count(node), 0);

  runner.run_rounds(3);
  t.validate();
  EXPECT_EQ(t.out_count(node), t.limits().out_cap);  // fully re-bootstrapped

  const auto lambda = metrics::eval_all_sources(t, network, 0.9);
  EXPECT_TRUE(std::isfinite(lambda[node]));
}

TEST(Churn, LearningStillImprovesUnderSteadyChurn) {
  // 2% of nodes swap out every round; Perigee should still beat the static
  // random topology evaluated on the same churn-free final state.
  const std::size_t n = 200;
  auto network = make_network(n, 15);
  net::Topology t(n);
  util::Rng rng(15);
  topo::build_random(t, rng);
  const auto lambda_start =
      util::mean(metrics::eval_all_sources(t, network, 0.9));

  sim::RoundRunner runner(network, t,
                          core::make_selectors(n, core::Algorithm::PerigeeSubset),
                          40, 15);
  util::Rng churn_rng(16);
  for (int r = 0; r < 12; ++r) {
    runner.run_round();
    // A couple of random nodes reset their connections (leave + instant
    // rejoin with fresh random neighbors).
    for (std::size_t idx : churn_rng.sample_indices(n, 4)) {
      const auto v = static_cast<net::NodeId>(idx);
      t.disconnect_all(v);
      topo::dial_random_peers(t, v, t.limits().out_cap, churn_rng);
    }
  }
  t.validate();
  const auto lambda_end =
      util::mean(metrics::eval_all_sources(t, network, 0.9));
  EXPECT_LT(lambda_end, lambda_start);
}

}  // namespace
}  // namespace perigee
