#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace perigee::core {
namespace {

ExperimentConfig small_config(Algorithm algorithm) {
  ExperimentConfig config;
  config.net.n = 120;
  config.algorithm = algorithm;
  config.rounds = 5;
  config.blocks_per_round = 20;
  config.seed = 77;
  return config;
}

TEST(Experiment, StaticBaselineProducesFiniteLambdas) {
  const auto result = run_experiment(small_config(Algorithm::Random));
  EXPECT_EQ(result.algorithm, "random");
  ASSERT_EQ(result.lambda.size(), 120u);
  for (double l : result.lambda) EXPECT_TRUE(std::isfinite(l));
  EXPECT_EQ(result.lambda50.size(), 120u);
  EXPECT_FALSE(result.edge_latencies.empty());
}

TEST(Experiment, Lambda50NeverExceedsLambda90) {
  const auto result = run_experiment(small_config(Algorithm::PerigeeSubset));
  for (std::size_t v = 0; v < result.lambda.size(); ++v) {
    EXPECT_LE(result.lambda50[v], result.lambda[v] + 1e-9);
  }
}

TEST(Experiment, DeterministicForFixedSeed) {
  const auto a = run_experiment(small_config(Algorithm::PerigeeSubset));
  const auto b = run_experiment(small_config(Algorithm::PerigeeSubset));
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.edge_latencies, b.edge_latencies);
}

TEST(Experiment, SeedChangesOutcome) {
  auto config = small_config(Algorithm::PerigeeSubset);
  const auto a = run_experiment(config);
  config.seed = 78;
  const auto b = run_experiment(config);
  EXPECT_NE(a.lambda, b.lambda);
}

TEST(Experiment, CheckpointsTrackLearning) {
  auto config = small_config(Algorithm::PerigeeSubset);
  config.rounds = 8;
  config.checkpoints = 4;
  const auto result = run_experiment(config);
  ASSERT_GE(result.checkpoints.size(), 4u);
  EXPECT_EQ(result.checkpoints.front().blocks_mined, 0u);
  EXPECT_EQ(result.checkpoints.back().blocks_mined, 8u * 20u);
  // Learning must not make things worse end-to-end.
  EXPECT_LE(result.checkpoints.back().mean_lambda,
            result.checkpoints.front().mean_lambda * 1.05);
}

TEST(Experiment, StaticAlgorithmsSkipLearning) {
  auto config = small_config(Algorithm::Geographic);
  config.checkpoints = 3;
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.checkpoints.empty());
}

TEST(Experiment, UcbRunsSingleBlockRounds) {
  // UCB must still produce a valid experiment via the expanded schedule.
  auto config = small_config(Algorithm::PerigeeUcb);
  config.rounds = 2;
  config.blocks_per_round = 30;  // -> 60 single-block rounds
  const auto result = run_experiment(config);
  EXPECT_EQ(result.algorithm, "perigee-ucb");
  for (double l : result.lambda) EXPECT_TRUE(std::isfinite(l));
}

TEST(Experiment, IdealLowerBoundsEverything) {
  const auto config = small_config(Algorithm::PerigeeSubset);
  const auto ideal = run_ideal(config);
  const auto result = run_experiment(config);
  // Compare distribution-wise (per-node pairing is meaningless after
  // sorting): the ideal mean must be below any topology's mean.
  EXPECT_LT(util::mean(ideal), util::mean(result.lambda));
}

TEST(Experiment, ScenarioHonorsPoolsAndLatencyScale) {
  ExperimentConfig config = small_config(Algorithm::Random);
  config.hash_model = mining::HashPowerModel::Pools;
  config.pools = {.pool_fraction = 0.1, .pool_share = 0.9};
  config.pool_latency_scale = 0.1;
  Scenario scenario = build_scenario(config);
  ASSERT_EQ(scenario.pool_members.size(), 12u);
  // Pool-to-pool links are scaled down ~10x relative to a fresh unscaled
  // network.
  const net::Network plain = net::Network::build([&] {
    auto o = config.net;
    o.seed = config.seed;
    return o;
  }());
  const net::NodeId a = scenario.pool_members[0];
  const net::NodeId b = scenario.pool_members[1];
  EXPECT_NEAR(scenario.network.link_ms(a, b), 0.1 * plain.link_ms(a, b),
              1e-9);
  // Mixed links untouched.
  net::NodeId outsider = 0;
  while (std::find(scenario.pool_members.begin(), scenario.pool_members.end(),
                   outsider) != scenario.pool_members.end()) {
    ++outsider;
  }
  EXPECT_NEAR(scenario.network.link_ms(a, outsider),
              plain.link_ms(a, outsider), 1e-9);
}

TEST(Experiment, RelayScenarioInstallsInfraEdges) {
  ExperimentConfig config = small_config(Algorithm::Random);
  config.relay = true;
  config.relay_config.members = 30;
  Scenario scenario = build_scenario(config);
  EXPECT_EQ(scenario.relay_members.size(), 30u);
  EXPECT_EQ(scenario.topology.infra_edges().size(), 29u);
}

TEST(Experiment, MultiSeedAggregatesSortedCurves) {
  auto config = small_config(Algorithm::Random);
  const auto multi = run_multi_seed(config, 3);
  ASSERT_EQ(multi.curve.mean.size(), 120u);
  for (std::size_t i = 1; i < multi.curve.mean.size(); ++i) {
    EXPECT_GE(multi.curve.mean[i], multi.curve.mean[i - 1]);
  }
  // Seeds differ, so index-wise spread is positive somewhere.
  double total_stddev = 0;
  for (double s : multi.curve.stddev) total_stddev += s;
  EXPECT_GT(total_stddev, 0.0);
}

TEST(Experiment, IncrementalAdoptersBeatHoldouts) {
  ExperimentConfig config = small_config(Algorithm::PerigeeSubset);
  config.net.n = 200;
  config.rounds = 12;
  config.blocks_per_round = 50;
  const auto result = run_incremental(config, 0.5);
  EXPECT_EQ(result.lambda_adopters.size(), 100u);
  EXPECT_EQ(result.lambda_others.size(), 100u);
  // §1.2: peers following Perigee see improvements over those that do not.
  EXPECT_LT(util::mean(result.lambda_adopters),
            util::mean(result.lambda_others));
}

TEST(Experiment, AlgorithmNamesRoundTrip) {
  EXPECT_EQ(algorithm_name(Algorithm::Random), "random");
  EXPECT_EQ(algorithm_name(Algorithm::PerigeeSubset), "perigee-subset");
  EXPECT_EQ(algorithm_name(Algorithm::Ideal), "ideal");
  EXPECT_TRUE(is_adaptive(Algorithm::PerigeeVanilla));
  EXPECT_TRUE(is_adaptive(Algorithm::PerigeeUcb));
  EXPECT_FALSE(is_adaptive(Algorithm::Kademlia));
}

}  // namespace
}  // namespace perigee::core
