#include "core/rewire.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace perigee::core {
namespace {

TEST(Rewire, KeepsExactlyTheRetainedSet) {
  net::Topology t(20, {.out_cap = 4, .in_cap = 20});
  ASSERT_TRUE(t.connect(0, 1));
  ASSERT_TRUE(t.connect(0, 2));
  ASSERT_TRUE(t.connect(0, 3));
  ASSERT_TRUE(t.connect(0, 4));
  util::Rng rng(1);
  const int made = retain_and_explore(t, 0, {1, 3}, rng);
  EXPECT_EQ(made, 2);
  EXPECT_TRUE(t.has_out(0, 1));
  EXPECT_TRUE(t.has_out(0, 3));
  EXPECT_FALSE(t.has_out(0, 2));
  EXPECT_FALSE(t.has_out(0, 4));
  EXPECT_EQ(t.out_count(0), 4);
  t.validate();
}

TEST(Rewire, EmptyKeepDropsEverything) {
  net::Topology t(20, {.out_cap = 3, .in_cap = 20});
  ASSERT_TRUE(t.connect(5, 1));
  ASSERT_TRUE(t.connect(5, 2));
  util::Rng rng(2);
  retain_and_explore(t, 5, {}, rng);
  EXPECT_FALSE(t.has_out(5, 1));
  EXPECT_FALSE(t.has_out(5, 2));
  EXPECT_EQ(t.out_count(5), 3);  // refilled to cap with random peers
  t.validate();
}

TEST(Rewire, NewPeersAreNeitherSelfNorDuplicates) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    net::Topology t(10, {.out_cap = 5, .in_cap = 20});
    ASSERT_TRUE(t.connect(0, 1));
    retain_and_explore(t, 0, {1}, rng);
    const auto& out = t.out(0);
    EXPECT_EQ(std::count(out.begin(), out.end(), net::NodeId{0}), 0);
    for (net::NodeId u : out) {
      EXPECT_EQ(std::count(out.begin(), out.end(), u), 1);
    }
    t.validate();
  }
}

TEST(Rewire, RetainingNonNeighborAborts) {
  net::Topology t(5);
  ASSERT_TRUE(t.connect(0, 1));
  util::Rng rng(4);
  EXPECT_DEATH(retain_and_explore(t, 0, {2}, rng), "retained peer");
}

TEST(Rewire, ExplorationRespectsDeclinedCapacity) {
  // Dropping an edge frees the target's incoming slot, so exploration may
  // re-dial it; node 3 stays full (its dialer is untouched) and can never
  // be reached.
  net::Topology t(4, {.out_cap = 2, .in_cap = 1});
  ASSERT_TRUE(t.connect(0, 1));  // 1's incoming full until 0 drops it
  ASSERT_TRUE(t.connect(2, 3));  // 3's incoming permanently full
  util::Rng rng(5);
  retain_and_explore(t, 0, {}, rng);
  // Reachable peers for node 0 are exactly {1, 2}.
  EXPECT_EQ(t.out_count(0), 2);
  EXPECT_TRUE(t.has_out(0, 2));
  EXPECT_TRUE(t.has_out(0, 1));
  EXPECT_FALSE(t.has_out(0, 3));
  t.validate();
}

}  // namespace
}  // namespace perigee::core
