#include "core/subset.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/vanilla.hpp"
#include "sim/rounds.hpp"
#include "topo/builders.hpp"

namespace perigee::core {
namespace {

// 2-D world for complementarity scenarios.
struct World {
  explicit World(const std::vector<std::pair<double, double>>& points) {
    net::NetworkOptions options;
    options.n = points.size();
    options.latency = net::NetworkOptions::LatencyKind::Euclidean;
    options.embed_dim = 2;
    options.embed_scale_ms = 1.0;
    options.handshake_factor = 1.0;
    options.validation_mean_ms = 0.0;
    options.validation_spread = 0.0;
    network.emplace(net::Network::build(options));
    auto& profiles = network->mutable_profiles();
    for (std::size_t i = 0; i < points.size(); ++i) {
      profiles[i].coords = {points[i].first, points[i].second, 0, 0, 0};
      profiles[i].hash_power = 0.0;
    }
  }
  std::optional<net::Network> network;
};

// The complementarity setup (§4.3's motivation): two block sources on
// opposite sides of node 0. Neighbor L is instant for left blocks, slow for
// right blocks; R is the mirror image; M1 and M2 are mediocre-everywhere
// middle nodes (M1 slightly better than M2). Individual 90th-percentile
// scores: M1 (~150) < M2 (~161) < L = R (200, their bad side dominates the
// percentile). With keep = 3:
//   Vanilla keeps the three best individuals  -> {M1, M2, L}.
//   Greedy subset picks M1, then L, and then — because {M1, L} already
//   covers the left side — R's complementary coverage beats M2's redundant
//   coverage -> {M1, L, R}.
//
// Delivery arithmetic (validation = 0, unit speed):
//   left block:   L delivers at 1000 (rel 0); M1 at ~1149.8 (rel 149.8);
//                 M2 at ~1161.3 (rel 161.3); R via node 0's echo at 1200
//                 (rel 200). Right block mirrors L <-> R.
TEST(SubsetVsVanilla, SubsetKeepsComplementaryCoverage) {
  World w({{0, 0},        // 0: node under test
           {-100, 0},     // 1: L
           {100, 0},      // 2: R
           {0, 140},      // 3: M1
           {0, 150},      // 4: M2
           {-1000, 0},    // 5: S_L
           {1000, 0}});   // 6: S_R
  w.network->mutable_profiles()[5].hash_power = 0.5;
  w.network->mutable_profiles()[6].hash_power = 0.5;

  auto build_world_topology = [&](net::Topology& t) {
    ASSERT_TRUE(t.connect(0, 1));
    ASSERT_TRUE(t.connect(0, 2));
    ASSERT_TRUE(t.connect(0, 3));
    ASSERT_TRUE(t.connect(0, 4));
    ASSERT_TRUE(t.connect(5, 1));  // S_L -> L
    ASSERT_TRUE(t.connect(6, 2));  // S_R -> R
    ASSERT_TRUE(t.connect(5, 3));  // both sources feed the middles
    ASSERT_TRUE(t.connect(6, 3));
    ASSERT_TRUE(t.connect(5, 4));
    ASSERT_TRUE(t.connect(6, 4));
  };

  PerigeeParams params;
  params.keep = 3;

  auto run_with = [&](std::unique_ptr<sim::NeighborSelector> zero_selector) {
    net::Topology t(7, {.out_cap = 4, .in_cap = 20});
    build_world_topology(t);
    std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
    selectors.push_back(std::move(zero_selector));
    for (int i = 1; i < 7; ++i) {
      selectors.push_back(std::make_unique<sim::StaticSelector>());
    }
    sim::RoundRunner runner(*w.network, t, std::move(selectors), 40, 11);
    runner.run_round();
    return t.out(0);
  };

  const auto subset_out = run_with(std::make_unique<SubsetSelector>(params));
  // Subset keeps the complementary trio {M1, L, R}; M2 is dropped.
  EXPECT_TRUE(std::find(subset_out.begin(), subset_out.end(), 1) !=
              subset_out.end());
  EXPECT_TRUE(std::find(subset_out.begin(), subset_out.end(), 2) !=
              subset_out.end());
  EXPECT_TRUE(std::find(subset_out.begin(), subset_out.end(), 3) !=
              subset_out.end());

  const auto vanilla_out = run_with(std::make_unique<VanillaSelector>(params));
  // Vanilla keeps both mediocre middles (individual scores beat L's and
  // R's), so its three retained slots cover only one side well. (The 4th
  // outgoing slot is a random exploration dial in both runs, so assertions
  // pin the score-determined part only.)
  EXPECT_TRUE(std::find(vanilla_out.begin(), vanilla_out.end(), 3) !=
              vanilla_out.end());
  EXPECT_TRUE(std::find(vanilla_out.begin(), vanilla_out.end(), 4) !=
              vanilla_out.end());
}

TEST(Subset, FirstPickIsBestIndividual) {
  // With keep = 1 the greedy subset choice reduces to the vanilla choice.
  World w({{0, 0}, {-100, 0}, {100, 0}, {0, 140}, {-1000, 0}, {1000, 0}});
  w.network->mutable_profiles()[4].hash_power = 1.0;  // only left source

  net::Topology t(6, {.out_cap = 3, .in_cap = 20});
  ASSERT_TRUE(t.connect(0, 1));
  ASSERT_TRUE(t.connect(0, 2));
  ASSERT_TRUE(t.connect(0, 3));
  ASSERT_TRUE(t.connect(4, 1));
  ASSERT_TRUE(t.connect(4, 3));

  PerigeeParams params;
  params.keep = 1;
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  selectors.push_back(std::make_unique<SubsetSelector>(params));
  for (int i = 1; i < 6; ++i) {
    selectors.push_back(std::make_unique<sim::StaticSelector>());
  }
  sim::RoundRunner runner(*w.network, t, std::move(selectors), 10, 12);
  runner.run_round();
  // All blocks come from the left: L (node 1) is the single best neighbor
  // and must be the retained one.
  EXPECT_TRUE(t.has_out(0, 1));
}

TEST(Subset, HandlesSingleNeighbor) {
  World w({{0, 0}, {10, 0}});
  w.network->mutable_profiles()[1].hash_power = 1.0;
  net::Topology t(2, {.out_cap = 4, .in_cap = 20});
  ASSERT_TRUE(t.connect(0, 1));
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  selectors.push_back(std::make_unique<SubsetSelector>());
  selectors.push_back(std::make_unique<sim::StaticSelector>());
  sim::RoundRunner runner(*w.network, t, std::move(selectors), 3, 13);
  runner.run_round();
  EXPECT_TRUE(t.has_out(0, 1));  // kept; nothing else to dial
}

TEST(Subset, NameIsStable) {
  SubsetSelector selector;
  EXPECT_STREQ(selector.name(), "perigee-subset");
}

}  // namespace
}  // namespace perigee::core
