#include "core/ucb.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rounds.hpp"
#include "topo/builders.hpp"
#include "util/stats.hpp"

namespace perigee::core {
namespace {

struct World {
  explicit World(const std::vector<double>& xs) {
    net::NetworkOptions options;
    options.n = xs.size();
    options.latency = net::NetworkOptions::LatencyKind::Euclidean;
    options.embed_dim = 1;
    options.embed_scale_ms = 1.0;
    options.handshake_factor = 1.0;
    options.validation_mean_ms = 0.0;
    options.validation_spread = 0.0;
    network.emplace(net::Network::build(options));
    auto& profiles = network->mutable_profiles();
    for (std::size_t i = 0; i < xs.size(); ++i) {
      profiles[i].coords = {xs[i], 0, 0, 0, 0};
      profiles[i].hash_power = 0.0;
    }
  }
  std::optional<net::Network> network;
};

TEST(UcbBounds, ShrinkWithMoreSamples) {
  PerigeeParams params;
  params.ucb_c = 100.0;
  UcbSelector selector(params);
  // Unknown neighbor: zero samples -> infinite pessimism.
  const auto none = selector.bounds_for(42);
  EXPECT_EQ(none.samples, 0u);
  EXPECT_TRUE(std::isinf(none.estimate));
  EXPECT_TRUE(std::isinf(none.lcb));
}

TEST(UcbBounds, HalfWidthFormula) {
  // Drive samples through a real round so the arm fills, then check the
  // bound width against Eq. (3)-(4).
  World w({0.0, 10.0, 50.0, 200.0});
  w.network->mutable_profiles()[3].hash_power = 1.0;

  net::Topology t(4, {.out_cap = 2, .in_cap = 20});
  ASSERT_TRUE(t.connect(0, 1));
  ASSERT_TRUE(t.connect(0, 2));
  ASSERT_TRUE(t.connect(3, 1));
  ASSERT_TRUE(t.connect(3, 2));

  PerigeeParams params;
  params.ucb_c = 100.0;
  auto* ucb = new UcbSelector(params);
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  selectors.emplace_back(ucb);
  for (int i = 1; i < 4; ++i) {
    selectors.push_back(std::make_unique<sim::StaticSelector>());
  }
  const int blocks = 16;
  sim::RoundRunner runner(*w.network, t, std::move(selectors), blocks, 5);
  runner.run_round();

  const auto b1 = ucb->bounds_for(1);
  ASSERT_EQ(b1.samples, static_cast<std::size_t>(blocks));
  const double expect_half =
      100.0 * std::sqrt(std::log(16.0) / (2.0 * 16.0));
  EXPECT_NEAR(b1.ucb - b1.estimate, expect_half, 1e-9);
  EXPECT_NEAR(b1.estimate - b1.lcb, expect_half, 1e-9);
  // Deterministic deliveries: rel times are constant, estimate == value.
  // Node 1 (x=10) always beats node 2 (x=50): rel(1)=0, rel(2)=40... but
  // echoes through 0 cap node 2's delivery at 10+0+50=60 vs direct 150+50.
  EXPECT_DOUBLE_EQ(b1.estimate, 0.0);
}

TEST(Ucb, DisconnectsStatisticallyWorseNeighbor) {
  // Node 0 dials two neighbors fed directly by the miner. On a line the
  // positional terms cancel, so the neighbors are separated by validation
  // delay: node 2 validates 80 ms slower and is the statistically worse
  // arm. With a small c the intervals separate after a handful of 1-block
  // rounds and the slow neighbor must be dropped.
  World w({0.0, 10.0, 800.0, 1000.0});
  w.network->mutable_profiles()[3].hash_power = 1.0;
  w.network->mutable_profiles()[2].validation_ms = 80.0;
  net::Topology t(4, {.out_cap = 2, .in_cap = 20});
  ASSERT_TRUE(t.connect(0, 1));
  ASSERT_TRUE(t.connect(0, 2));
  ASSERT_TRUE(t.connect(3, 1));
  ASSERT_TRUE(t.connect(3, 2));

  PerigeeParams params;
  params.ucb_c = 10.0;
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  selectors.push_back(std::make_unique<UcbSelector>(params));
  for (int i = 1; i < 4; ++i) {
    selectors.push_back(std::make_unique<sim::StaticSelector>());
  }
  sim::RoundRunner runner(*w.network, t, std::move(selectors), 1, 6);
  runner.run_rounds(10);

  EXPECT_TRUE(t.has_out(0, 1));   // fast neighbor kept
  EXPECT_FALSE(t.has_out(0, 2));  // slow neighbor evicted
  EXPECT_EQ(t.out_count(0), 2);   // replacement dialed
}

TEST(Ucb, LargeCPreventsHastyEviction) {
  // Same geometry, but with a huge confidence constant the intervals always
  // overlap: nothing may be disconnected.
  World w({0.0, 10.0, 800.0, 1000.0});
  w.network->mutable_profiles()[3].hash_power = 1.0;
  w.network->mutable_profiles()[2].validation_ms = 80.0;
  net::Topology t(4, {.out_cap = 2, .in_cap = 20});
  ASSERT_TRUE(t.connect(0, 1));
  ASSERT_TRUE(t.connect(0, 2));
  ASSERT_TRUE(t.connect(3, 1));
  ASSERT_TRUE(t.connect(3, 2));

  PerigeeParams params;
  params.ucb_c = 1e7;
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  selectors.push_back(std::make_unique<UcbSelector>(params));
  for (int i = 1; i < 4; ++i) {
    selectors.push_back(std::make_unique<sim::StaticSelector>());
  }
  sim::RoundRunner runner(*w.network, t, std::move(selectors), 1, 7);
  runner.run_rounds(10);
  EXPECT_TRUE(t.has_out(0, 1));
  EXPECT_TRUE(t.has_out(0, 2));
}

TEST(Ucb, WindowBoundsMemory) {
  World w({0.0, 10.0, 50.0, 200.0});
  w.network->mutable_profiles()[3].hash_power = 1.0;
  net::Topology t(4, {.out_cap = 2, .in_cap = 20});
  ASSERT_TRUE(t.connect(0, 1));
  ASSERT_TRUE(t.connect(0, 2));
  ASSERT_TRUE(t.connect(3, 1));
  ASSERT_TRUE(t.connect(3, 2));

  PerigeeParams params;
  params.ucb_c = 1e7;  // never evict, so arms only accumulate
  params.ucb_window = 8;
  auto* ucb = new UcbSelector(params);
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  selectors.emplace_back(ucb);
  for (int i = 1; i < 4; ++i) {
    selectors.push_back(std::make_unique<sim::StaticSelector>());
  }
  sim::RoundRunner runner(*w.network, t, std::move(selectors), 1, 8);
  runner.run_rounds(50);
  EXPECT_EQ(ucb->bounds_for(1).samples, 8u);  // capped at the window
}

TEST(Ucb, SingleNeighborNeverDisconnected) {
  World w({0.0, 10.0});
  w.network->mutable_profiles()[1].hash_power = 1.0;
  net::Topology t(2, {.out_cap = 1, .in_cap = 20});
  ASSERT_TRUE(t.connect(0, 1));
  PerigeeParams params;
  params.ucb_c = 0.0;  // maximally trigger-happy
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  selectors.push_back(std::make_unique<UcbSelector>(params));
  selectors.push_back(std::make_unique<sim::StaticSelector>());
  sim::RoundRunner runner(*w.network, t, std::move(selectors), 1, 9);
  runner.run_rounds(5);
  EXPECT_TRUE(t.has_out(0, 1));
}

TEST(UcbArmWindow, EvictsOldestAndStaysSorted) {
  // The c = 0 estimate equals the exact windowed percentile; feed values in
  // adversarial order through bounds_for's code path indirectly: here we
  // exercise the selector's public behavior only, so craft alternating
  // deliveries via two sources.
  PerigeeParams params;
  params.ucb_window = 4;
  params.ucb_c = 0.0;
  UcbSelector selector(params);
  // No samples -> inf; covered above. (Window mechanics are further covered
  // by the integration tests that run UCB for thousands of rounds.)
  EXPECT_TRUE(std::isinf(selector.bounds_for(0).estimate));
}

}  // namespace
}  // namespace perigee::core
