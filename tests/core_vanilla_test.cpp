#include "core/vanilla.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/rounds.hpp"
#include "topo/builders.hpp"

namespace perigee::core {
namespace {

// A controllable 1-D world: node 0 under test with neighbors at chosen
// positions; block sources pinned via hash power.
struct World {
  explicit World(const std::vector<double>& xs, double validation_ms = 0.0) {
    net::NetworkOptions options;
    options.n = xs.size();
    options.latency = net::NetworkOptions::LatencyKind::Euclidean;
    options.embed_dim = 1;
    options.embed_scale_ms = 1.0;
    options.handshake_factor = 1.0;
    options.validation_mean_ms = validation_ms;
    options.validation_spread = 0.0;
    network.emplace(net::Network::build(options));
    auto& profiles = network->mutable_profiles();
    for (std::size_t i = 0; i < xs.size(); ++i) {
      profiles[i].coords = {xs[i], 0, 0, 0, 0};
      profiles[i].hash_power = 0.0;
    }
  }

  std::optional<net::Network> network;
};

TEST(Vanilla, DropsSlowestNeighborsAndRefills) {
  // Node 0 dials 4 collinear neighbors all fed directly by the miner at
  // x=1000. On a line, (miner->u) + (u->0) is the same for every in-between
  // neighbor, so delivery order to node 0 is decided purely by each
  // neighbor's validation delay — which we pin: neighbors 1 and 2 validate
  // fast, 3 and 4 slowly. keep = 2 must retain exactly {1, 2}.
  World w({0.0, 100.0, 200.0, 300.0, 400.0, 1000.0});
  auto& profiles = w.network->mutable_profiles();
  profiles[5].hash_power = 1.0;  // node 5 mines all
  profiles[1].validation_ms = 5.0;
  profiles[2].validation_ms = 10.0;
  profiles[3].validation_ms = 100.0;
  profiles[4].validation_ms = 200.0;

  net::Topology t(6, {.out_cap = 4, .in_cap = 20});
  for (net::NodeId u : {1, 2, 3, 4}) ASSERT_TRUE(t.connect(0, u));
  for (net::NodeId u : {1, 2, 3, 4}) ASSERT_TRUE(t.connect(5, u));

  PerigeeParams params;
  params.keep = 2;
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  selectors.push_back(std::make_unique<VanillaSelector>(params));
  for (int i = 1; i < 6; ++i) {
    selectors.push_back(std::make_unique<sim::StaticSelector>());
  }
  sim::RoundRunner runner(*w.network, t, std::move(selectors), 10, 1);
  runner.run_round();

  // Deliveries to 0: (1000 - x_u) + Δu + x_u = 1000 + Δu, so the two
  // fast-validating neighbors win.
  auto out = t.out(0);
  EXPECT_EQ(out.size(), 4u);  // 2 kept + 2 explored
  EXPECT_TRUE(std::find(out.begin(), out.end(), 1) != out.end());
  EXPECT_TRUE(std::find(out.begin(), out.end(), 2) != out.end());
}

TEST(Vanilla, KeepsAllWhenFewerThanKeep) {
  World w({0.0, 10.0, 500.0});
  w.network->mutable_profiles()[1].hash_power = 1.0;
  net::Topology t(3, {.out_cap = 8, .in_cap = 20});
  ASSERT_TRUE(t.connect(0, 1));

  PerigeeParams params;
  params.keep = 6;
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  selectors.push_back(std::make_unique<VanillaSelector>(params));
  selectors.push_back(std::make_unique<sim::StaticSelector>());
  selectors.push_back(std::make_unique<sim::StaticSelector>());
  sim::RoundRunner runner(*w.network, t, std::move(selectors), 5, 2);
  runner.run_round();

  // Neighbor 1 kept; slots refilled toward out_cap by exploration — but the
  // 3-node world only offers node 2 as a fresh peer.
  EXPECT_TRUE(t.has_out(0, 1));
  EXPECT_EQ(t.out_count(0), 2);
}

TEST(Vanilla, ScoresOnlyOutgoingNeighbors) {
  // Node 0 has an incoming neighbor that delivers fastest; Vanilla must not
  // try to "retain" it (it is not v's outgoing connection).
  World w({0.0, 5.0, 50.0});
  w.network->mutable_profiles()[1].hash_power = 1.0;
  net::Topology t(3, {.out_cap = 1, .in_cap = 20});
  ASSERT_TRUE(t.connect(1, 0));  // incoming: fast
  ASSERT_TRUE(t.connect(0, 2));  // outgoing: slow

  PerigeeParams params;
  params.keep = 1;
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  selectors.push_back(std::make_unique<VanillaSelector>(params));
  selectors.push_back(std::make_unique<sim::StaticSelector>());
  selectors.push_back(std::make_unique<sim::StaticSelector>());
  sim::RoundRunner runner(*w.network, t, std::move(selectors), 5, 3);
  runner.run_round();

  // The sole outgoing neighbor (2) is retained; the incoming edge 1->0 is
  // untouched.
  EXPECT_TRUE(t.has_out(0, 2));
  EXPECT_TRUE(t.has_out(1, 0));
  EXPECT_EQ(t.out_count(0), 1);
}

TEST(Vanilla, NameIsStable) {
  VanillaSelector selector;
  EXPECT_STREQ(selector.name(), "perigee-vanilla");
}

}  // namespace
}  // namespace perigee::core
