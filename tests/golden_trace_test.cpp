// Golden-trace regression for the sweep-cell JSON schema.
//
// A tiny fig3a/churn-style sweep (2 learning algorithms + the ideal bound
// x churn {0, 0.1} x 2 seeds at n=60) is checked in under tests/fixtures/.
// The test re-runs the identical spec in-process and compares the emitted
// JSON *structurally* against the fixture: member names and their order,
// array shapes, config-echo values (label, nodes, rounds, churn, ...) exact,
// and curve entries finite exactly where the fixture's are. Schema drift —
// a renamed cell field, a dropped axis echo, a curve that silently changed
// shape or went infinite — fails loudly here instead of silently producing
// BENCH files downstream tools misread. λ magnitudes are deliberately NOT
// compared: they are pinned by the determinism checks on this platform, and
// last-ulp libm differences across toolchains must not fail the schema
// gate.
//
// Regenerate after an intentional schema change with:
//   PERIGEE_REGEN_FIXTURES=1 ./golden_trace_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "runner/json.hpp"
#include "runner/sweep.hpp"

namespace perigee {
namespace {

runner::SweepSpec golden_spec() {
  runner::SweepSpec spec;
  spec.name = "golden";
  spec.base.net.n = 60;
  spec.base.rounds = 5;
  spec.base.blocks_per_round = 20;
  spec.base.seed = 1;
  spec.base.coverage = 0.90;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::PerigeeSubset,
                     core::Algorithm::Ideal};
  spec.churn_rates = {0.0, 0.1};
  spec.seeds = 2;
  return spec;
}

std::string fixture_path() {
  return std::string(PERIGEE_FIXTURE_DIR) + "/golden_sweep.json";
}

std::string run_golden_sweep() {
  const runner::SweepSpec spec = golden_spec();
  const runner::SweepRunner sweep_runner(/*jobs=*/2);
  const runner::SweepResult result = sweep_runner.run(spec);
  std::ostringstream os;
  runner::write_json(os, spec, result);
  return os.str();
}

// Structural comparison. `in_curve` relaxes numbers to finiteness-only;
// everywhere else numbers, strings and bools must match exactly (they are
// the spec/config echo that downstream tooling keys on).
void expect_same_structure(const runner::JsonValue& fixture,
                           const runner::JsonValue& fresh,
                           const std::string& path, bool in_curve) {
  using Kind = runner::JsonValue::Kind;
  ASSERT_EQ(static_cast<int>(fixture.kind), static_cast<int>(fresh.kind))
      << "kind mismatch at " << path;
  switch (fixture.kind) {
    case Kind::Object: {
      ASSERT_EQ(fixture.members.size(), fresh.members.size())
          << "member count at " << path;
      for (std::size_t i = 0; i < fixture.members.size(); ++i) {
        const auto& [fixture_key, fixture_value] = fixture.members[i];
        const auto& [fresh_key, fresh_value] = fresh.members[i];
        // Order matters: deterministic JSON is diffed byte-wise elsewhere.
        ASSERT_EQ(fixture_key, fresh_key) << "member order at " << path;
        const bool curve_member =
            in_curve || fixture_key == "curve" || fixture_key == "curve50";
        expect_same_structure(fixture_value, fresh_value,
                              path + "." + fixture_key, curve_member);
      }
      break;
    }
    case Kind::Array: {
      ASSERT_EQ(fixture.items.size(), fresh.items.size())
          << "array length at " << path;
      for (std::size_t i = 0; i < fixture.items.size(); ++i) {
        expect_same_structure(fixture.items[i], fresh.items[i],
                              path + "[" + std::to_string(i) + "]", in_curve);
      }
      break;
    }
    case Kind::Number:
      if (in_curve) {
        // Curve magnitudes float with the toolchain; their shape and
        // finiteness must not. (+inf serializes as null, so Number here
        // already means finite — assert sanity instead of equality.)
        EXPECT_GE(fresh.number, 0.0) << "negative curve value at " << path;
      } else {
        EXPECT_EQ(fixture.number, fresh.number) << "value drift at " << path;
      }
      break;
    case Kind::String:
      EXPECT_EQ(fixture.string, fresh.string) << "value drift at " << path;
      break;
    case Kind::Bool:
      EXPECT_EQ(fixture.boolean, fresh.boolean) << "value drift at " << path;
      break;
    case Kind::Null:
      break;  // kinds already matched: fixture-inf == fresh-inf
  }
}

TEST(GoldenTrace, SweepCellSchemaMatchesFixture) {
  const std::string fresh_text = run_golden_sweep();

  if (std::getenv("PERIGEE_REGEN_FIXTURES") != nullptr) {
    std::ofstream out(fixture_path());
    ASSERT_TRUE(out) << "cannot write " << fixture_path();
    out << fresh_text;
    GTEST_SKIP() << "regenerated " << fixture_path();
  }

  std::ifstream in(fixture_path());
  ASSERT_TRUE(in) << "missing fixture " << fixture_path()
                  << " — run with PERIGEE_REGEN_FIXTURES=1 to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();

  const auto fixture = runner::JsonValue::parse(buffer.str());
  const auto fresh = runner::JsonValue::parse(fresh_text);
  expect_same_structure(fixture, fresh, "$", /*in_curve=*/false);
}

// The curves themselves are pinned on the platform the fixture was
// generated on: byte-identical emission across worker counts is what the
// determinism acceptance checks diff, so the golden run must agree with
// itself at any jobs value too.
TEST(GoldenTrace, GoldenSweepIsJobsInvariant) {
  const runner::SweepSpec spec = golden_spec();
  std::ostringstream sequential, parallel;
  runner::write_json(sequential, spec, runner::SweepRunner(1).run(spec));
  runner::write_json(parallel, spec, runner::SweepRunner(3).run(spec));
  EXPECT_EQ(sequential.str(), parallel.str());
}

// The congestion shape: transmission model as a real result axis (cells
// differ between delay and queue) with bandwidth-tiered profiles driving
// the queue engine's token buckets. The queuing DES is single-threaded per
// source and sources land in pre-assigned stripes, so the full sweep JSON
// must stay bit-identical at any worker count exactly like the delay-only
// grids the determinism CI diffs.
TEST(GoldenTrace, CongestionSweepIsJobsInvariant) {
  runner::SweepSpec spec;
  spec.name = "congestion-golden";
  spec.base.net.n = 60;
  spec.base.rounds = 4;
  spec.base.blocks_per_round = 20;
  spec.base.seed = 1;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::PerigeeSubset};
  spec.transmission_models = {scenario::TransmissionModel::Delay,
                              scenario::TransmissionModel::Queue};
  spec.hetero_profiles = {scenario::HeteroProfile::Off,
                          scenario::HeteroProfile::Bandwidth};
  spec.seeds = 2;
  std::ostringstream sequential, parallel;
  runner::write_json(sequential, spec, runner::SweepRunner(1).run(spec));
  runner::write_json(parallel, spec, runner::SweepRunner(3).run(spec));
  EXPECT_EQ(sequential.str(), parallel.str());
}

// Same contract with the parallel delta-stepping engine switched on
// (`--engine parallel-delta`): the sweep JSON stays bit-identical both
// across sweep worker counts and against the batched-engine run above —
// the engine knob is a wall-clock A/B switch, never a result axis.
TEST(GoldenTrace, GoldenSweepIsEngineAndJobsInvariant) {
  runner::SweepSpec spec = golden_spec();
  std::ostringstream batched;
  runner::write_json(batched, spec, runner::SweepRunner(1).run(spec));

  spec.base.relax_engine = sim::RelaxEngine::ParallelDelta;
  spec.base.engine_jobs = 2;  // worker teams inside each broadcast
  std::ostringstream delta_seq, delta_par;
  runner::write_json(delta_seq, spec, runner::SweepRunner(1).run(spec));
  runner::write_json(delta_par, spec, runner::SweepRunner(3).run(spec));
  EXPECT_EQ(delta_seq.str(), delta_par.str());
  // The engine echo lives nowhere in the JSON, so the whole document must
  // match the batched run byte for byte.
  EXPECT_EQ(batched.str(), delta_seq.str());
}

}  // namespace
}  // namespace perigee
