// End-to-end assertions of the paper's headline claims at test-friendly
// scale. These mirror the bench binaries (which run at full scale) and pin
// the qualitative results: who wins, and roughly by how much.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "metrics/edge_hist.hpp"
#include "metrics/eval.hpp"
#include "net/geo.hpp"
#include "sim/gossip.hpp"
#include "sim/rounds.hpp"
#include "util/stats.hpp"

namespace perigee {
namespace {

core::ExperimentConfig base_config() {
  core::ExperimentConfig config;
  config.net.n = 300;
  config.rounds = 25;
  config.blocks_per_round = 100;
  config.seed = 101;
  return config;
}

double mean_lambda(core::Algorithm algorithm,
                   core::ExperimentConfig config = base_config()) {
  config.algorithm = algorithm;
  return util::mean(core::run_experiment(config).lambda);
}

TEST(Figure3a, PerigeeSubsetBeatsRandomByDoubleDigits) {
  const double random = mean_lambda(core::Algorithm::Random);
  const double subset = mean_lambda(core::Algorithm::PerigeeSubset);
  const double improvement = 1.0 - subset / random;
  // Paper: 33% at n=1000 after convergence; at this reduced scale we pin a
  // conservative double-digit win.
  EXPECT_GT(improvement, 0.10) << "random " << random << " subset " << subset;
}

TEST(Figure3a, OrderingMatchesPaper) {
  const double random = mean_lambda(core::Algorithm::Random);
  const double geographic = mean_lambda(core::Algorithm::Geographic);
  const double subset = mean_lambda(core::Algorithm::PerigeeSubset);
  const double vanilla = mean_lambda(core::Algorithm::PerigeeVanilla);
  const auto config = base_config();
  const double ideal = util::mean(core::run_ideal(config));

  // Figure 3(a): subset < vanilla < geographic-ish < random; Kademlia is
  // within noise of random; ideal below everything.
  EXPECT_LT(subset, vanilla);
  EXPECT_LT(vanilla, random);
  EXPECT_LT(geographic, random);
  EXPECT_LT(subset, geographic);
  EXPECT_LT(ideal, subset);
  const double kademlia = mean_lambda(core::Algorithm::Kademlia);
  EXPECT_NEAR(kademlia / random, 1.0, 0.12);
}

TEST(Figure3b, ExponentialHashPowerPreservesTheWin) {
  auto config = base_config();
  config.hash_model = mining::HashPowerModel::Exponential;
  const double random = mean_lambda(core::Algorithm::Random, config);
  const double subset = mean_lambda(core::Algorithm::PerigeeSubset, config);
  EXPECT_GT(1.0 - subset / random, 0.10);
}

TEST(Figure4a, LargeValidationDelayErasesTheGap) {
  // §5.3: as node (validation) delay grows, hop count dominates and Perigee
  // approaches the random protocol; at small node delay the gap is largest.
  auto fast = base_config();
  fast.net.validation_scale = 0.1;
  const double gain_fast =
      1.0 - mean_lambda(core::Algorithm::PerigeeSubset, fast) /
                mean_lambda(core::Algorithm::Random, fast);

  auto slow = base_config();
  slow.net.validation_scale = 10.0;
  const double gain_slow =
      1.0 - mean_lambda(core::Algorithm::PerigeeSubset, slow) /
                mean_lambda(core::Algorithm::Random, slow);

  // The gap shrinks monotonically toward random as validation dominates.
  // (It does not vanish entirely here: per-node validation times vary, so
  // Perigee can still learn to prefer fast-validating relays.)
  EXPECT_GT(gain_fast, gain_slow + 0.05);
  EXPECT_GT(gain_fast, 0.15);
  EXPECT_LT(gain_slow, 0.20);
}

TEST(Figure4b, MiningPoolsFavorPerigee) {
  // §5.4: 10% of nodes hold 90% of hash power with fast pool-pool links;
  // Perigee learns to sit near the pools and closes much of the gap to
  // ideal.
  auto config = base_config();
  config.hash_model = mining::HashPowerModel::Pools;
  config.pool_latency_scale = 0.1;
  const double random = mean_lambda(core::Algorithm::Random, config);
  const double subset = mean_lambda(core::Algorithm::PerigeeSubset, config);
  const double ideal = util::mean(core::run_ideal(config));
  ASSERT_LT(ideal, random);
  const double closed = (random - subset) / (random - ideal);
  EXPECT_GT(closed, 0.5);  // closes over half the feasible range
}

TEST(Figure4c, RelayNetworkIsExploited) {
  // §5.4: with a fast relay overlay present for everyone, Perigee approaches
  // the fully-connected bound much closer than random does.
  auto config = base_config();
  config.relay = true;
  config.relay_config.members = 30;
  const double random = mean_lambda(core::Algorithm::Random, config);
  const double subset = mean_lambda(core::Algorithm::PerigeeSubset, config);
  const double ideal = util::mean(core::run_ideal(config));
  ASSERT_LT(ideal, random);
  const double closed = (random - subset) / (random - ideal);
  EXPECT_GT(closed, 0.4);
}

TEST(Figure5, SubsetConcentratesEdgesAtTheLowMode) {
  // §5.5: the edge-latency histogram is bimodal everywhere, and
  // Perigee-Subset shifts the bulk of edges to the intra-continent mode.
  auto config = base_config();
  config.algorithm = core::Algorithm::Random;
  const auto random_result = core::run_experiment(config);
  config.algorithm = core::Algorithm::PerigeeSubset;
  const auto subset_result = core::run_experiment(config);

  // Cut between the modes: above every intra-continent base latency, below
  // the inter-continent ones.
  const double cut_ms = 50.0;
  const double random_low =
      metrics::fraction_below(random_result.edge_latencies, cut_ms);
  const double subset_low =
      metrics::fraction_below(subset_result.edge_latencies, cut_ms);
  EXPECT_GT(subset_low, random_low + 0.15);
  EXPECT_GT(subset_low, 0.5);  // the bulk of subset's edges are local
}

TEST(Convergence, NinetyPercentileDelayImproves) {
  auto config = base_config();
  config.algorithm = core::Algorithm::PerigeeSubset;
  config.checkpoints = 5;
  const auto result = core::run_experiment(config);
  ASSERT_GE(result.checkpoints.size(), 3u);
  const double first = result.checkpoints.front().mean_lambda;
  const double last = result.checkpoints.back().mean_lambda;
  EXPECT_LT(last, first * 0.95);
  // And most of the improvement arrives early (learning converges).
  const double mid = result.checkpoints[result.checkpoints.size() / 2]
                         .mean_lambda;
  EXPECT_LT(mid, first - 0.5 * (first - last));
}

TEST(GossipVsFast, RankingRobustToEngine) {
  // The fast engine drives all benches; spot-check with the message-level
  // engine that subset's learned topology also wins under explicit
  // INV/GETDATA semantics.
  auto config = base_config();
  config.net.n = 200;
  config.rounds = 15;

  config.algorithm = core::Algorithm::Random;
  core::Scenario random_scenario = core::build_scenario(config);
  core::build_initial_topology(config, random_scenario);

  config.algorithm = core::Algorithm::PerigeeSubset;
  const auto subset_result = core::run_experiment(config);
  // Rebuild the subset scenario's final topology indirectly: rerun the
  // experiment pipeline but measure with the gossip engine on the shared
  // scenario. Simplest: compare mean first-arrival over a few miners using
  // gossip on random vs the subset-trained topology rebuilt via the runner.
  core::Scenario subset_scenario = core::build_scenario(config);
  core::build_initial_topology(config, subset_scenario);
  sim::RoundRunner runner(
      subset_scenario.network, subset_scenario.topology,
      core::make_selectors(subset_scenario.network.size(),
                           core::Algorithm::PerigeeSubset),
      config.blocks_per_round, config.seed);
  runner.run_rounds(config.rounds);

  auto gossip_mean = [](const core::Scenario& scenario) {
    double total = 0;
    int count = 0;
    for (net::NodeId miner : {net::NodeId{1}, net::NodeId{50}, net::NodeId{99}}) {
      const auto result =
          sim::simulate_gossip(scenario.topology, scenario.network, miner);
      for (double a : result.arrival) {
        total += a;
        ++count;
      }
    }
    return total / count;
  };
  EXPECT_LT(gossip_mean(subset_scenario), gossip_mean(random_scenario));
  (void)subset_result;
}

}  // namespace
}  // namespace perigee
