#include "metrics/curves.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace perigee::metrics {
namespace {

TEST(Curves, SingleRunIsSortedWithZeroStddev) {
  const auto curve = aggregate_sorted_curves({{3.0, 1.0, 2.0}});
  EXPECT_EQ(curve.mean, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(curve.stddev, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(Curves, IndexWiseMeanAcrossRuns) {
  const auto curve = aggregate_sorted_curves({{1.0, 3.0}, {3.0, 5.0}});
  // Sorted runs: {1,3} and {3,5}; index-wise means {2,4}.
  EXPECT_EQ(curve.mean, (std::vector<double>{2.0, 4.0}));
  EXPECT_NEAR(curve.stddev[0], std::sqrt(2.0), 1e-12);
}

TEST(Curves, MeanIsNonDecreasing) {
  const auto curve = aggregate_sorted_curves(
      {{9.0, 2.0, 5.0, 1.0}, {4.0, 8.0, 2.0, 6.0}, {7.0, 7.0, 7.0, 0.5}});
  for (std::size_t i = 1; i < curve.mean.size(); ++i) {
    EXPECT_GE(curve.mean[i], curve.mean[i - 1]);
  }
}

TEST(Curves, ErrorbarIndicesMatchPaperPositions) {
  const auto idx = errorbar_indices(1000);
  EXPECT_EQ(idx, (std::vector<std::size_t>{100, 300, 500, 700, 900}));
}

TEST(Curves, ErrorbarIndicesClampForTinyNetworks) {
  const auto idx = errorbar_indices(3);
  for (auto i : idx) EXPECT_LT(i, 3u);
}

TEST(Curves, ImprovementAt) {
  Curve ours{{50.0, 60.0}, {0, 0}};
  Curve base{{100.0, 120.0}, {0, 0}};
  EXPECT_DOUBLE_EQ(improvement_at(ours, base, 0), 0.5);
  EXPECT_DOUBLE_EQ(improvement_at(ours, base, 1), 0.5);
  // Negative when ours is slower.
  Curve slow{{150.0, 120.0}, {0, 0}};
  EXPECT_DOUBLE_EQ(improvement_at(slow, base, 0), -0.5);
}

TEST(Curves, CurveMean) {
  Curve c{{1.0, 2.0, 3.0}, {0, 0, 0}};
  EXPECT_DOUBLE_EQ(curve_mean(c), 2.0);
}

}  // namespace
}  // namespace perigee::metrics
