#include "metrics/edge_hist.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace perigee::metrics {
namespace {

net::Network make_network(std::size_t n, std::uint64_t seed = 31) {
  net::NetworkOptions options;
  options.n = n;
  options.seed = seed;
  return net::Network::build(options);
}

TEST(EdgeHist, OneLatencyPerP2pEdge) {
  const auto network = make_network(100);
  net::Topology t(100);
  util::Rng rng(31);
  topo::build_random(t, rng);
  const auto latencies = p2p_edge_latencies(t, network);
  EXPECT_EQ(latencies.size(), t.num_p2p_edges());
  for (double x : latencies) EXPECT_GT(x, 0.0);
}

TEST(EdgeHist, InfraEdgesExcluded) {
  const auto network = make_network(50);
  net::Topology t(50);
  t.add_infra_edge(0, 1, 5.0);
  t.connect(2, 3);
  const auto latencies = p2p_edge_latencies(t, network);
  EXPECT_EQ(latencies.size(), 1u);
}

TEST(EdgeHist, HistogramTotalsMatch) {
  const auto network = make_network(150);
  net::Topology t(150);
  util::Rng rng(32);
  topo::build_random(t, rng);
  const auto hist = edge_latency_histogram(t, network, 20);
  EXPECT_EQ(hist.total(), t.num_p2p_edges());
  EXPECT_EQ(hist.bins(), 20u);
}

TEST(EdgeHist, FractionBelow) {
  const std::vector<double> latencies = {10, 20, 30, 100, 200};
  EXPECT_DOUBLE_EQ(fraction_below(latencies, 50.0), 0.6);
  EXPECT_DOUBLE_EQ(fraction_below(latencies, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(latencies, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_below({}, 10.0), 0.0);
}

TEST(EdgeHist, RandomTopologyIsLatencyBimodal) {
  // Figure-5 precondition: on the geo network even a random edge set shows
  // the intra- vs inter-continent bimodality.
  const auto network = make_network(400, 33);
  net::Topology t(400);
  util::Rng rng(33);
  topo::build_random(t, rng);
  const auto hist = edge_latency_histogram(t, network, 24);
  EXPECT_GE(hist.modes().size(), 2u);
}

}  // namespace
}  // namespace perigee::metrics
