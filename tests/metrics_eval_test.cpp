#include "metrics/eval.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace perigee::metrics {
namespace {

net::Network make_line_network(const std::vector<double>& xs,
                               double validation_ms = 0.0) {
  net::NetworkOptions options;
  options.n = xs.size();
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 1;
  options.embed_scale_ms = 1.0;
  options.handshake_factor = 1.0;
  options.validation_mean_ms = validation_ms;
  options.validation_spread = 0.0;
  net::Network network = net::Network::build(options);
  auto& profiles = network.mutable_profiles();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    profiles[i].coords = {xs[i], 0, 0, 0, 0};
  }
  return network;
}

TEST(Lambda, CoverageAccumulatesHashPower) {
  // Chain 0-1-2-3 at x = 0, 10, 20, 30; uniform power (0.25 each).
  auto network = make_line_network({0.0, 10.0, 20.0, 30.0});
  net::Topology t(4);
  t.connect(0, 1);
  t.connect(1, 2);
  t.connect(2, 3);
  const auto result = sim::simulate_broadcast(t, network, 0);
  // Arrivals: 0, 10, 20, 30. Cumulative power 0.25/0.5/0.75/1.0.
  EXPECT_DOUBLE_EQ(lambda_for_broadcast(result, network, 0.25), 0.0);
  EXPECT_DOUBLE_EQ(lambda_for_broadcast(result, network, 0.50), 10.0);
  EXPECT_DOUBLE_EQ(lambda_for_broadcast(result, network, 0.75), 20.0);
  EXPECT_DOUBLE_EQ(lambda_for_broadcast(result, network, 0.90), 30.0);
  EXPECT_DOUBLE_EQ(lambda_for_broadcast(result, network, 1.00), 30.0);
}

TEST(Lambda, MinerPowerCountsImmediately) {
  auto network = make_line_network({0.0, 10.0});
  network.mutable_profiles()[0].hash_power = 0.9;
  network.mutable_profiles()[1].hash_power = 0.1;
  net::Topology t(2);
  t.connect(0, 1);
  const auto result = sim::simulate_broadcast(t, network, 0);
  // The miner alone already covers 90%.
  EXPECT_DOUBLE_EQ(lambda_for_broadcast(result, network, 0.90), 0.0);
  EXPECT_DOUBLE_EQ(lambda_for_broadcast(result, network, 0.95), 10.0);
}

TEST(Lambda, UnreachableCoverageIsInfinite) {
  auto network = make_line_network({0.0, 10.0, 20.0});
  net::Topology t(3);
  t.connect(0, 1);  // node 2 isolated
  const auto result = sim::simulate_broadcast(t, network, 0);
  EXPECT_TRUE(std::isfinite(lambda_for_broadcast(result, network, 0.66)));
  EXPECT_TRUE(std::isinf(lambda_for_broadcast(result, network, 0.90)));
}

TEST(EvalAllSources, MatchesPerSourceBroadcast) {
  net::NetworkOptions options;
  options.n = 60;
  options.seed = 21;
  const auto network = net::Network::build(options);
  net::Topology t(60);
  util::Rng rng(21);
  topo::build_random(t, rng);
  const auto lambda = eval_all_sources(t, network, 0.9);
  ASSERT_EQ(lambda.size(), 60u);
  for (net::NodeId v : {net::NodeId{0}, net::NodeId{30}, net::NodeId{59}}) {
    const auto result = sim::simulate_broadcast(t, network, v);
    EXPECT_DOUBLE_EQ(lambda[v], lambda_for_broadcast(result, network, 0.9));
  }
}

TEST(EvalIdeal, MatchesMaterializedClique) {
  // The analytic ideal must equal an actually materialized fully-connected
  // topology (the direct-delivery model has no multi-hop shortcuts when the
  // triangle inequality holds, which Euclidean latencies guarantee and the
  // +validation term only strengthens).
  net::NetworkOptions options;
  options.n = 40;
  options.seed = 22;
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 2;
  options.embed_scale_ms = 100.0;
  const auto network = net::Network::build(options);

  net::Topology clique(40, {.out_cap = 40, .in_cap = 40});
  for (net::NodeId u = 0; u < 40; ++u) {
    for (net::NodeId v = u + 1; v < 40; ++v) clique.connect(u, v);
  }
  const auto analytic = eval_ideal(network, 0.9);
  const auto simulated = eval_all_sources(clique, network, 0.9);
  for (net::NodeId v = 0; v < 40; ++v) {
    EXPECT_NEAR(analytic[v], simulated[v], 1e-9);
  }
}

TEST(EvalIdeal, LowerBoundsEveryTopology) {
  net::NetworkOptions options;
  options.n = 80;
  options.seed = 23;
  const auto network = net::Network::build(options);
  net::Topology t(80);
  util::Rng rng(23);
  topo::build_random(t, rng);
  const auto sparse = eval_all_sources(t, network, 0.9);
  const auto ideal = eval_ideal(network, 0.9);
  for (net::NodeId v = 0; v < 80; ++v) {
    EXPECT_LE(ideal[v], sparse[v] + 1e-9);
  }
}

TEST(EvalIdeal, HigherCoverageNeverFaster) {
  net::NetworkOptions options;
  options.n = 50;
  options.seed = 24;
  const auto network = net::Network::build(options);
  const auto l50 = eval_ideal(network, 0.5);
  const auto l90 = eval_ideal(network, 0.9);
  for (net::NodeId v = 0; v < 50; ++v) {
    EXPECT_LE(l50[v], l90[v] + 1e-9);
  }
}

TEST(Lambda, ExponentialPowerShiftsCoverage) {
  // Nodes: source plus two others, one with almost all remaining power far
  // away. λ at 90% must wait for the heavy node.
  auto network = make_line_network({0.0, 10.0, 500.0});
  network.mutable_profiles()[0].hash_power = 0.05;
  network.mutable_profiles()[1].hash_power = 0.05;
  network.mutable_profiles()[2].hash_power = 0.90;
  net::Topology t(3);
  t.connect(0, 1);
  t.connect(0, 2);
  const auto result = sim::simulate_broadcast(t, network, 0);
  EXPECT_DOUBLE_EQ(lambda_for_broadcast(result, network, 0.9), 500.0);
}

}  // namespace
}  // namespace perigee::metrics
