#include "metrics/stretch.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/embedding.hpp"
#include "topo/builders.hpp"

namespace perigee::metrics {
namespace {

net::Network make_square_network(std::size_t n, std::uint64_t seed) {
  net::NetworkOptions options;
  options.n = n;
  options.seed = seed;
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 2;
  options.embed_scale_ms = 1.0;
  options.handshake_factor = 1.0;
  return net::Network::build(options);
}

TEST(ShortestPaths, ChainDistances) {
  net::NetworkOptions options;
  options.n = 3;
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 1;
  options.embed_scale_ms = 1.0;
  auto network = net::Network::build(options);
  auto& profiles = network.mutable_profiles();
  profiles[0].coords = {0, 0, 0, 0, 0};
  profiles[1].coords = {10, 0, 0, 0, 0};
  profiles[2].coords = {25, 0, 0, 0, 0};
  net::Topology t(3);
  t.connect(0, 1);
  t.connect(1, 2);
  const auto dist = latency_shortest_paths(t, network, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 10.0);
  EXPECT_DOUBLE_EQ(dist[2], 25.0);
}

TEST(ShortestPaths, IgnoresValidationDelay) {
  // The §3.1 graph-distance model is pure link latency; validation plays no
  // role (contrast with sim::simulate_broadcast).
  net::NetworkOptions options;
  options.n = 3;
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 1;
  options.embed_scale_ms = 1.0;
  options.validation_mean_ms = 1000.0;
  auto network = net::Network::build(options);
  auto& profiles = network.mutable_profiles();
  profiles[0].coords = {0, 0, 0, 0, 0};
  profiles[1].coords = {10, 0, 0, 0, 0};
  profiles[2].coords = {20, 0, 0, 0, 0};
  net::Topology t(3);
  t.connect(0, 1);
  t.connect(1, 2);
  const auto dist = latency_shortest_paths(t, network, 0);
  EXPECT_DOUBLE_EQ(dist[2], 20.0);
}

TEST(ShortestPaths, UnreachableIsInf) {
  const auto network = make_square_network(5, 41);
  net::Topology t(5);
  t.connect(0, 1);
  const auto dist = latency_shortest_paths(t, network, 0);
  EXPECT_TRUE(std::isinf(dist[4]));
}

TEST(Stretch, AtLeastOneOnAnyTopology) {
  const auto network = make_square_network(200, 42);
  net::Topology t(200);
  util::Rng rng(42);
  topo::build_random(t, rng);
  util::Rng stretch_rng(43);
  const auto stats = measure_stretch(t, network, stretch_rng, 10, 0.05);
  EXPECT_GT(stats.pairs, 0u);
  EXPECT_GE(stats.p50, 1.0);
  EXPECT_GE(stats.mean, 1.0);
  EXPECT_GE(stats.max, stats.p90);
}

TEST(Stretch, GeometricBeatsRandomOnEmbeddedNetwork) {
  // The Figure-1 comparison: geometric graphs hug the geodesic, random
  // topologies wander.
  const std::size_t n = 500;
  const auto network = make_square_network(n, 44);

  net::Topology random_topo(n, {.out_cap = 3, .in_cap = 1000});
  util::Rng rng(44);
  topo::build_random(random_topo, rng);

  const double r = net::geometric_threshold(n, 2, 1.2);
  net::Topology geo_topo(n, {.out_cap = static_cast<int>(n),
                             .in_cap = static_cast<int>(n)});
  topo::build_geometric_threshold(geo_topo, network, r);

  util::Rng s1(45), s2(45);
  const auto random_stats = measure_stretch(random_topo, network, s1, 20, r);
  const auto geo_stats = measure_stretch(geo_topo, network, s2, 20, r);
  EXPECT_GT(random_stats.p50, geo_stats.p50);
  EXPECT_GT(random_stats.mean, 1.5 * geo_stats.mean);
}

TEST(Stretch, PairStretchCornerToCorner) {
  // Hand-placed corner nodes joined by a direct edge: stretch exactly 1.
  net::NetworkOptions options;
  options.n = 2;
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 2;
  options.embed_scale_ms = 1.0;
  auto network = net::Network::build(options);
  network.mutable_profiles()[0].coords = {0, 0, 0, 0, 0};
  network.mutable_profiles()[1].coords = {1, 1, 0, 0, 0};
  net::Topology t(2);
  t.connect(0, 1);
  EXPECT_DOUBLE_EQ(pair_stretch(t, network, 0, 1), 1.0);
}

TEST(Stretch, MinDirectFilterSkipsClosePairs) {
  const auto network = make_square_network(100, 46);
  net::Topology t(100, {.out_cap = 100, .in_cap = 100});
  topo::build_geometric_threshold(t, network, 2.0);  // complete graph
  util::Rng rng(47);
  const auto strict = measure_stretch(t, network, rng, 5, 0.5);
  util::Rng rng2(47);
  const auto loose = measure_stretch(t, network, rng2, 5, 0.0);
  EXPECT_LT(strict.pairs, loose.pairs);
}

}  // namespace
}  // namespace perigee::metrics
