#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mining/hashpower.hpp"
#include "mining/sampler.hpp"

namespace perigee::mining {
namespace {

net::Network make_network(std::size_t n) {
  net::NetworkOptions options;
  options.n = n;
  return net::Network::build(options);
}

TEST(HashPower, UniformSumsToOne) {
  auto network = make_network(64);
  util::Rng rng(1);
  assign_hash_power(network, HashPowerModel::Uniform, rng);
  EXPECT_NEAR(total_hash_power(network), 1.0, 1e-9);
  for (net::NodeId v = 0; v < network.size(); ++v) {
    EXPECT_DOUBLE_EQ(network.profile(v).hash_power, 1.0 / 64.0);
  }
}

TEST(HashPower, ExponentialNormalizedAndSkewed) {
  auto network = make_network(500);
  util::Rng rng(2);
  assign_hash_power(network, HashPowerModel::Exponential, rng);
  EXPECT_NEAR(total_hash_power(network), 1.0, 1e-9);
  std::vector<double> powers;
  for (net::NodeId v = 0; v < network.size(); ++v) {
    EXPECT_GT(network.profile(v).hash_power, 0.0);
    powers.push_back(network.profile(v).hash_power);
  }
  // Exponential draws are right-skewed: max well above the mean.
  const double max = *std::max_element(powers.begin(), powers.end());
  EXPECT_GT(max, 3.0 / 500.0);
}

TEST(HashPower, ExponentialDeterministicPerRng) {
  auto a = make_network(50);
  auto b = make_network(50);
  util::Rng rng_a(7), rng_b(7);
  assign_hash_power(a, HashPowerModel::Exponential, rng_a);
  assign_hash_power(b, HashPowerModel::Exponential, rng_b);
  for (net::NodeId v = 0; v < 50; ++v) {
    EXPECT_DOUBLE_EQ(a.profile(v).hash_power, b.profile(v).hash_power);
  }
}

TEST(HashPower, PoolsConcentratePower) {
  auto network = make_network(200);
  util::Rng rng(3);
  PoolsConfig pools;  // 10% of nodes hold 90%
  const auto members =
      assign_hash_power(network, HashPowerModel::Pools, rng, pools);
  EXPECT_EQ(members.size(), 20u);
  EXPECT_NEAR(total_hash_power(network), 1.0, 1e-9);
  double pool_total = 0;
  for (net::NodeId v : members) pool_total += network.profile(v).hash_power;
  EXPECT_NEAR(pool_total, 0.9, 1e-9);
  // Members are distinct.
  std::vector<net::NodeId> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(HashPower, PoolsCustomShares) {
  auto network = make_network(100);
  util::Rng rng(4);
  PoolsConfig pools{.pool_fraction = 0.05, .pool_share = 0.5};
  const auto members =
      assign_hash_power(network, HashPowerModel::Pools, rng, pools);
  EXPECT_EQ(members.size(), 5u);
  for (net::NodeId v : members) {
    EXPECT_NEAR(network.profile(v).hash_power, 0.1, 1e-9);
  }
}

TEST(AliasSampler, UniformWeights) {
  const std::vector<double> w(10, 1.0);
  AliasSampler sampler(w);
  util::Rng rng(5);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(AliasSampler, SkewedWeights) {
  const std::vector<double> w = {8.0, 1.0, 1.0};
  AliasSampler sampler(w);
  EXPECT_DOUBLE_EQ(sampler.probability(0), 0.8);
  EXPECT_DOUBLE_EQ(sampler.probability(1), 0.1);
  util::Rng rng(6);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.8, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.1, 0.01);
}

TEST(AliasSampler, ZeroWeightNeverSampled) {
  const std::vector<double> w = {1.0, 0.0, 1.0};
  AliasSampler sampler(w);
  util::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_NE(sampler.sample(rng), 1u);
  }
}

TEST(AliasSampler, SingleElement) {
  AliasSampler sampler({5.0});
  util::Rng rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(AliasSampler, FromHashPowerMatchesProfiles) {
  auto network = make_network(30);
  util::Rng rng(9);
  assign_hash_power(network, HashPowerModel::Exponential, rng);
  const auto sampler = AliasSampler::from_hash_power(network);
  for (net::NodeId v = 0; v < 30; ++v) {
    EXPECT_NEAR(sampler.probability(v), network.profile(v).hash_power, 1e-12);
  }
}

TEST(AliasSampler, MinerFrequencyTracksHashPower) {
  auto network = make_network(50);
  util::Rng rng(10);
  PoolsConfig pools{.pool_fraction = 0.1, .pool_share = 0.9};
  const auto members =
      assign_hash_power(network, HashPowerModel::Pools, rng, pools);
  const auto sampler = AliasSampler::from_hash_power(network);
  util::Rng draw_rng(11);
  int pool_hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto m = static_cast<net::NodeId>(sampler.sample(draw_rng));
    if (std::find(members.begin(), members.end(), m) != members.end()) {
      ++pool_hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(pool_hits) / n, 0.9, 0.01);
}

}  // namespace
}  // namespace perigee::mining
