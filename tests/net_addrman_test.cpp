#include "net/addrman.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hpp"
#include "topo/builders.hpp"
#include "util/stats.hpp"

namespace perigee::net {
namespace {

TEST(AddrMan, StartsEmpty) {
  AddrMan addrman(10, 5);
  util::Rng rng(1);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(addrman.known_count(v), 0u);
    EXPECT_EQ(addrman.sample(v, rng), kInvalidNode);
  }
}

TEST(AddrMan, LearnRejectsSelfAndDuplicates) {
  AddrMan addrman(5, 4);
  util::Rng rng(1);
  EXPECT_FALSE(addrman.learn(0, 0, rng));
  EXPECT_TRUE(addrman.learn(0, 1, rng));
  EXPECT_FALSE(addrman.learn(0, 1, rng));
  EXPECT_EQ(addrman.known_count(0), 1u);
  EXPECT_TRUE(addrman.knows(0, 1));
  EXPECT_FALSE(addrman.knows(0, 2));
}

TEST(AddrMan, CapacityEvictionKeepsBookBounded) {
  AddrMan addrman(50, 8);
  util::Rng rng(2);
  for (NodeId addr = 1; addr < 50; ++addr) addrman.learn(0, addr, rng);
  EXPECT_EQ(addrman.known_count(0), 8u);
}

TEST(AddrMan, BootstrapFillsBooks) {
  AddrMan addrman(100, 50);
  util::Rng rng(3);
  addrman.bootstrap(rng, 20);
  for (NodeId v = 0; v < 100; ++v) {
    // Random duplicates (and self-draws) push the count below 20.
    EXPECT_GE(addrman.known_count(v), 12u);
    EXPECT_LE(addrman.known_count(v), 20u);
    EXPECT_FALSE(addrman.knows(v, v));
  }
}

TEST(AddrMan, RebootstrapClearsAndRefillsOneBook) {
  AddrMan addrman(100, 50);
  util::Rng rng(3);
  addrman.bootstrap(rng, 20);
  // Stuff node 7's book so we can see it was actually dropped.
  for (NodeId addr = 50; addr < 90; ++addr) addrman.learn(7, addr, rng);
  ASSERT_EQ(addrman.known_count(7), 50u);

  addrman.rebootstrap(7, rng, 15);
  // Unlike bootstrap, rebootstrap retries duplicate draws: a rejoining node
  // gets exactly `count` fresh addresses from the bootstrap server.
  EXPECT_EQ(addrman.known_count(7), 15u);
  EXPECT_FALSE(addrman.knows(7, 7));
  // Other books are untouched.
  EXPECT_GE(addrman.known_count(8), 12u);
}

TEST(AddrMan, RebootstrapIsDeterministic) {
  AddrMan a(50, 30);
  AddrMan b(50, 30);
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  a.rebootstrap(4, rng_a, 10);
  b.rebootstrap(4, rng_b, 10);
  ASSERT_EQ(a.known_count(4), b.known_count(4));
  for (NodeId addr = 0; addr < 50; ++addr) {
    EXPECT_EQ(a.knows(4, addr), b.knows(4, addr)) << "addr " << addr;
  }
}

TEST(AddrMan, SampleReturnsKnownAddress) {
  AddrMan addrman(20, 10);
  util::Rng rng(4);
  addrman.learn(3, 7, rng);
  addrman.learn(3, 9, rng);
  for (int i = 0; i < 50; ++i) {
    const NodeId s = addrman.sample(3, rng);
    EXPECT_TRUE(s == 7 || s == 9);
  }
}

TEST(AddrMan, NeighborsAlwaysLearnable) {
  Topology t(10);
  t.connect(0, 1);
  t.connect(2, 0);
  AddrMan addrman(10, 4);
  addrman.add_neighbors_of(t);
  EXPECT_TRUE(addrman.knows(0, 1));
  EXPECT_TRUE(addrman.knows(0, 2));
  EXPECT_TRUE(addrman.knows(1, 0));
  EXPECT_TRUE(addrman.knows(2, 0));
}

TEST(AddrMan, GossipSpreadsAddresses) {
  // Chain topology: addresses held only by node 0 reach the far end after
  // enough gossip rounds.
  const std::size_t n = 12;
  Topology t(n);
  for (NodeId v = 0; v + 1 < n; ++v) ASSERT_TRUE(t.connect(v, v + 1));
  AddrMan addrman(n, 16);
  util::Rng rng(5);
  // Seed: everyone knows only their neighbors; node 0 additionally knows 11.
  addrman.add_neighbors_of(t);
  addrman.learn(0, 11, rng);

  int rounds = 0;
  while (!addrman.knows(5, 11) && rounds < 50) {
    addrman.gossip_round(t, rng);
    ++rounds;
  }
  EXPECT_TRUE(addrman.knows(5, 11));
  EXPECT_LT(rounds, 50);
}

TEST(AddrMan, DialFromBookOnlyReachesKnownPeers) {
  Topology t(30);
  AddrMan addrman(30, 10);
  util::Rng rng(6);
  addrman.learn(0, 5, rng);
  addrman.learn(0, 6, rng);
  const int made = topo::dial_peers_from_book(t, 0, 8, addrman, rng);
  EXPECT_EQ(made, 2);  // only two peers are known
  std::set<NodeId> out(t.out(0).begin(), t.out(0).end());
  EXPECT_EQ(out, (std::set<NodeId>{5, 6}));
}

TEST(AddrMan, EmptyBookDialsNothing) {
  Topology t(5);
  AddrMan addrman(5, 3);
  util::Rng rng(7);
  EXPECT_EQ(topo::dial_peers_from_book(t, 0, 4, addrman, rng), 0);
  EXPECT_EQ(t.out_count(0), 0);
}

TEST(AddrManIntegration, PerigeeStillLearnsUnderPartialView) {
  core::ExperimentConfig config;
  config.net.n = 250;
  config.rounds = 20;
  config.blocks_per_round = 60;
  config.seed = 9;
  config.partial_view = true;
  config.addrman_capacity = 40;
  config.addrman_bootstrap = 15;

  config.algorithm = core::Algorithm::Random;
  const double random = util::mean(core::run_experiment(config).lambda);
  config.algorithm = core::Algorithm::PerigeeSubset;
  const double subset = util::mean(core::run_experiment(config).lambda);
  // Partial views shrink the candidate pool but must not break learning.
  EXPECT_LT(subset, random * 0.92);
}

TEST(AddrManIntegration, TinyBooksDegradeGracefully) {
  core::ExperimentConfig config;
  config.net.n = 250;
  config.rounds = 15;
  config.blocks_per_round = 60;
  config.seed = 10;
  config.partial_view = true;
  config.addrman_capacity = 10;
  config.addrman_bootstrap = 5;
  config.algorithm = core::Algorithm::PerigeeSubset;
  const auto result = core::run_experiment(config);
  // Everyone still reaches coverage: the network never partitions.
  for (double l : result.lambda) EXPECT_TRUE(std::isfinite(l));
}

}  // namespace
}  // namespace perigee::net
