#include "net/embedding.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace perigee::net {
namespace {

TEST(Embedding, CoordinatesInUnitCube) {
  std::vector<NodeProfile> profiles(100);
  util::Rng rng(1);
  embed_uniform(profiles, 3, rng);
  for (const auto& p : profiles) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(p.coords[static_cast<std::size_t>(i)], 0.0);
      EXPECT_LT(p.coords[static_cast<std::size_t>(i)], 1.0);
    }
    // Unused tail dims are zero.
    EXPECT_DOUBLE_EQ(p.coords[3], 0.0);
    EXPECT_DOUBLE_EQ(p.coords[4], 0.0);
  }
}

TEST(Embedding, DistanceIsAMetric) {
  std::vector<NodeProfile> profiles(20);
  util::Rng rng(2);
  embed_uniform(profiles, 2, rng);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(embed_distance(profiles[i], profiles[i], 2), 0.0);
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(embed_distance(profiles[i], profiles[j], 2),
                       embed_distance(profiles[j], profiles[i], 2));
      for (std::size_t k = 0; k < 20; ++k) {
        EXPECT_LE(embed_distance(profiles[i], profiles[k], 2),
                  embed_distance(profiles[i], profiles[j], 2) +
                      embed_distance(profiles[j], profiles[k], 2) + 1e-12);
      }
    }
  }
}

TEST(Embedding, KnownDistance) {
  std::vector<NodeProfile> profiles(2);
  profiles[0].coords = {0.0, 0.0, 0, 0, 0};
  profiles[1].coords = {1.0, 1.0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(embed_distance(profiles[0], profiles[1], 2),
                   std::sqrt(2.0));
}

TEST(GeometricThreshold, ScalesAsTheoryPredicts) {
  // r = (log n / n)^(1/d): decreasing in n, increasing in factor.
  EXPECT_GT(geometric_threshold(100, 2), geometric_threshold(10000, 2));
  EXPECT_DOUBLE_EQ(geometric_threshold(100, 2, 2.0),
                   2.0 * geometric_threshold(100, 2, 1.0));
  const double expect =
      std::pow(std::log(1000.0) / 1000.0, 0.5);
  EXPECT_NEAR(geometric_threshold(1000, 2), expect, 1e-12);
}

TEST(RandomGraphProbability, MatchesFormulaAndClamps) {
  EXPECT_NEAR(random_graph_probability(1000, 1.0),
              std::log(1000.0) / 1000.0, 1e-12);
  EXPECT_DOUBLE_EQ(random_graph_probability(2, 100.0), 1.0);  // clamped
}

}  // namespace
}  // namespace perigee::net
