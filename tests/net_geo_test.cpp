#include "net/geo.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace perigee::net {
namespace {

TEST(Geo, MatrixIsSymmetric) {
  for (int i = 0; i < kNumRegions; ++i) {
    for (int j = 0; j < kNumRegions; ++j) {
      EXPECT_DOUBLE_EQ(
          region_base_latency_ms(static_cast<Region>(i), static_cast<Region>(j)),
          region_base_latency_ms(static_cast<Region>(j), static_cast<Region>(i)))
          << "asymmetric at (" << i << "," << j << ")";
    }
  }
}

TEST(Geo, IntraRegionIsCheapest) {
  // The diagonal must be strictly below every off-diagonal entry of its row:
  // intra-continent links are always faster than inter-continent ones.
  for (int i = 0; i < kNumRegions; ++i) {
    const auto ri = static_cast<Region>(i);
    const double diag = region_base_latency_ms(ri, ri);
    for (int j = 0; j < kNumRegions; ++j) {
      if (i == j) continue;
      EXPECT_LT(diag, region_base_latency_ms(ri, static_cast<Region>(j)));
    }
  }
}

TEST(Geo, LatenciesArePositiveAndRealistic) {
  for (int i = 0; i < kNumRegions; ++i) {
    for (int j = 0; j < kNumRegions; ++j) {
      const double d = region_base_latency_ms(static_cast<Region>(i),
                                              static_cast<Region>(j));
      EXPECT_GT(d, 0.0);
      EXPECT_LE(d, 200.0);  // one-way delays stay below 200 ms
    }
  }
}

TEST(Geo, WeightsFormDistribution) {
  double total = 0;
  for (double w : region_weights()) {
    EXPECT_GT(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Geo, NorthAmericaAndEuropeDominate) {
  const auto& w = region_weights();
  const double na = w[static_cast<std::size_t>(Region::NorthAmerica)];
  const double eu = w[static_cast<std::size_t>(Region::Europe)];
  EXPECT_GT(na + eu, 0.5);
}

TEST(Geo, MinMaxHelpers) {
  EXPECT_DOUBLE_EQ(min_region_latency_ms(), 12.0);
  EXPECT_DOUBLE_EQ(max_region_latency_ms(), 170.0);
  EXPECT_LT(min_region_latency_ms(), max_region_latency_ms());
}

TEST(Geo, RegionNamesDistinct) {
  for (int i = 0; i < kNumRegions; ++i) {
    for (int j = i + 1; j < kNumRegions; ++j) {
      EXPECT_NE(region_name(static_cast<Region>(i)),
                region_name(static_cast<Region>(j)));
    }
  }
}

}  // namespace
}  // namespace perigee::net
