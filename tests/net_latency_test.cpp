#include "net/latency.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "net/embedding.hpp"

namespace perigee::net {
namespace {

std::vector<NodeProfile> make_profiles(std::size_t n, Region region) {
  std::vector<NodeProfile> profiles(n);
  for (auto& p : profiles) {
    p.region = region;
    p.access_ms = 5.0;
  }
  return profiles;
}

TEST(GeoLatency, SymmetricAndDeterministic) {
  auto profiles = make_profiles(10, Region::Europe);
  GeoLatencyModel model(&profiles, 42);
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 0; v < 10; ++v) {
      if (u == v) continue;
      EXPECT_DOUBLE_EQ(model.link_ms(u, v), model.link_ms(v, u));
      EXPECT_DOUBLE_EQ(model.link_ms(u, v), model.link_ms(u, v));
    }
  }
}

TEST(GeoLatency, JitterStaysWithinBand) {
  auto profiles = make_profiles(50, Region::Asia);
  const double base = region_base_latency_ms(Region::Asia, Region::Asia);
  GeoLatencyModel model(&profiles, 7, 0.2);
  for (NodeId u = 0; u < 50; ++u) {
    for (NodeId v = u + 1; v < 50; ++v) {
      const double d = model.link_ms(u, v);
      // base*[0.8, 1.2] + 2 * 5ms access.
      EXPECT_GE(d, base * 0.8 + 10.0 - 1e-9);
      EXPECT_LE(d, base * 1.2 + 10.0 + 1e-9);
    }
  }
}

TEST(GeoLatency, JitterVariesAcrossPairs) {
  auto profiles = make_profiles(20, Region::Europe);
  GeoLatencyModel model(&profiles, 3, 0.2);
  double lo = 1e18, hi = -1e18;
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = u + 1; v < 20; ++v) {
      lo = std::min(lo, model.link_ms(u, v));
      hi = std::max(hi, model.link_ms(u, v));
    }
  }
  EXPECT_GT(hi - lo, 1.0);  // jitter actually spreads the values
}

TEST(GeoLatency, DifferentSeedsDifferentJitter) {
  auto profiles = make_profiles(5, Region::Europe);
  GeoLatencyModel a(&profiles, 1), b(&profiles, 2);
  EXPECT_NE(a.link_ms(0, 1), b.link_ms(0, 1));
}

TEST(GeoLatency, ZeroJitterIsExactBasePlusAccess) {
  auto profiles = make_profiles(4, Region::China);
  GeoLatencyModel model(&profiles, 9, 0.0);
  const double base = region_base_latency_ms(Region::China, Region::China);
  EXPECT_DOUBLE_EQ(model.link_ms(0, 1), base + 10.0);
}

TEST(GeoLatency, InterRegionUsesMatrix) {
  std::vector<NodeProfile> profiles(2);
  profiles[0].region = Region::NorthAmerica;
  profiles[1].region = Region::Oceania;
  profiles[0].access_ms = profiles[1].access_ms = 0.0;
  GeoLatencyModel model(&profiles, 5, 0.0);
  EXPECT_DOUBLE_EQ(model.link_ms(0, 1),
                   region_base_latency_ms(Region::NorthAmerica,
                                          Region::Oceania));
}

TEST(EuclideanLatency, MatchesDistanceTimesScale) {
  std::vector<NodeProfile> profiles(2);
  profiles[0].coords = {0.0, 0.0, 0, 0, 0};
  profiles[1].coords = {3.0, 4.0, 0, 0, 0};
  EuclideanLatencyModel model(&profiles, 2, 10.0);
  EXPECT_DOUBLE_EQ(model.link_ms(0, 1), 50.0);
  EXPECT_DOUBLE_EQ(model.link_ms(1, 0), 50.0);
}

TEST(EuclideanLatency, HigherDimsCount) {
  std::vector<NodeProfile> profiles(2);
  profiles[0].coords = {0, 0, 0, 0, 0};
  profiles[1].coords = {1, 1, 1, 1, 0};
  EuclideanLatencyModel model2(&profiles, 2, 1.0);
  EuclideanLatencyModel model4(&profiles, 4, 1.0);
  EXPECT_DOUBLE_EQ(model2.link_ms(0, 1), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(model4.link_ms(0, 1), 2.0);
}

TEST(PairClassScaled, ScalesOnlyInClassPairs) {
  auto profiles = make_profiles(4, Region::Europe);
  auto base = std::make_unique<GeoLatencyModel>(&profiles, 11, 0.0);
  const double unscaled = base->link_ms(0, 1);
  std::vector<bool> in_class = {true, true, false, false};
  PairClassScaledModel scaled(
      std::move(base), [&in_class](NodeId v) { return in_class[v]; }, 0.1);
  EXPECT_DOUBLE_EQ(scaled.link_ms(0, 1), unscaled * 0.1);  // both in class
  EXPECT_DOUBLE_EQ(scaled.link_ms(0, 2), unscaled);        // mixed
  EXPECT_DOUBLE_EQ(scaled.link_ms(2, 3), unscaled);        // both out
}

}  // namespace
}  // namespace perigee::net
