#include "net/network.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace perigee::net {
namespace {

TEST(Network, BuildRespectsSize) {
  NetworkOptions options;
  options.n = 123;
  const Network network = Network::build(options);
  EXPECT_EQ(network.size(), 123u);
}

TEST(Network, DeterministicInSeed) {
  NetworkOptions options;
  options.n = 50;
  options.seed = 99;
  const Network a = Network::build(options);
  const Network b = Network::build(options);
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(a.profile(v).region, b.profile(v).region);
    EXPECT_DOUBLE_EQ(a.profile(v).validation_ms, b.profile(v).validation_ms);
    EXPECT_DOUBLE_EQ(a.profile(v).access_ms, b.profile(v).access_ms);
  }
  EXPECT_DOUBLE_EQ(a.link_ms(0, 1), b.link_ms(0, 1));
}

TEST(Network, SeedsChangeDraws) {
  NetworkOptions options;
  options.n = 50;
  options.seed = 1;
  const Network a = Network::build(options);
  options.seed = 2;
  const Network b = Network::build(options);
  int diffs = 0;
  for (NodeId v = 0; v < 50; ++v) {
    if (a.profile(v).region != b.profile(v).region) ++diffs;
  }
  EXPECT_GT(diffs, 5);
}

TEST(Network, RegionMixRoughlyMatchesWeights) {
  NetworkOptions options;
  options.n = 5000;
  const Network network = Network::build(options);
  std::array<int, kNumRegions> counts{};
  for (NodeId v = 0; v < network.size(); ++v) {
    ++counts[static_cast<std::size_t>(network.profile(v).region)];
  }
  const auto& weights = region_weights();
  for (int r = 0; r < kNumRegions; ++r) {
    const double frac =
        static_cast<double>(counts[static_cast<std::size_t>(r)]) / 5000.0;
    EXPECT_NEAR(frac, weights[static_cast<std::size_t>(r)], 0.03);
  }
}

TEST(Network, ValidationWithinConfiguredBand) {
  NetworkOptions options;
  options.n = 500;
  options.validation_mean_ms = 50.0;
  options.validation_spread = 0.5;
  const Network network = Network::build(options);
  double sum = 0;
  for (NodeId v = 0; v < network.size(); ++v) {
    const double d = network.validation_ms(v);
    EXPECT_GE(d, 25.0);
    EXPECT_LE(d, 75.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 500.0, 50.0, 3.0);
}

TEST(Network, ValidationScaleApplies) {
  NetworkOptions options;
  options.n = 100;
  options.validation_scale = 0.1;
  const Network network = Network::build(options);
  for (NodeId v = 0; v < network.size(); ++v) {
    EXPECT_LE(network.validation_ms(v), 7.5 + 1e-9);
    EXPECT_GE(network.validation_ms(v), 2.5 - 1e-9);
  }
}

TEST(Network, HashPowerInitializedUniform) {
  NetworkOptions options;
  options.n = 40;
  const Network network = Network::build(options);
  for (NodeId v = 0; v < network.size(); ++v) {
    EXPECT_DOUBLE_EQ(network.profile(v).hash_power, 1.0 / 40.0);
  }
}

TEST(Network, EdgeDelayAppliesHandshakeFactor) {
  // Default δ = 3 one-way traversals (INV -> GETDATA -> BLOCK), no
  // transmission term.
  NetworkOptions options;
  options.n = 10;
  const Network network = Network::build(options);
  EXPECT_DOUBLE_EQ(network.edge_delay_ms(0, 1), 3.0 * network.link_ms(0, 1));
}

TEST(Network, HandshakeFactorConfigurable) {
  NetworkOptions options;
  options.n = 10;
  options.handshake_factor = 1.0;
  const Network network = Network::build(options);
  EXPECT_DOUBLE_EQ(network.edge_delay_ms(0, 1), network.link_ms(0, 1));
}

TEST(Network, TransmissionTermAddsBlockTime) {
  NetworkOptions options;
  options.n = 10;
  options.handshake_factor = 1.0;
  options.block_size_kb = 1000.0;  // 1 MB
  options.bandwidth_default_mbps = 8.0;
  const Network network = Network::build(options);
  // 1000 KB * 8 bits / 8 Mbps = 1000 ms on top of propagation.
  EXPECT_NEAR(network.edge_delay_ms(0, 1) - network.link_ms(0, 1), 1000.0,
              1e-9);
}

TEST(Network, HeterogeneousBandwidthWithinRange) {
  NetworkOptions options;
  options.n = 300;
  options.heterogeneous_bandwidth = true;
  const Network network = Network::build(options);
  double lo = 1e18, hi = 0;
  for (NodeId v = 0; v < network.size(); ++v) {
    const double bw = network.profile(v).bandwidth_mbps;
    EXPECT_GE(bw, 3.0);
    EXPECT_LE(bw, 186.0);
    lo = std::min(lo, bw);
    hi = std::max(hi, bw);
  }
  EXPECT_LT(lo, 10.0);   // the spread actually covers the range
  EXPECT_GT(hi, 80.0);
}

TEST(Network, EuclideanModeUsesEmbedding) {
  NetworkOptions options;
  options.n = 30;
  options.latency = NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 2;
  options.embed_scale_ms = 100.0;
  const Network network = Network::build(options);
  // Max distance in the unit square is sqrt(2) -> 141.4 ms.
  for (NodeId u = 0; u < 30; ++u) {
    for (NodeId v = u + 1; v < 30; ++v) {
      EXPECT_LE(network.link_ms(u, v), 142.0);
      EXPECT_GE(network.link_ms(u, v), 0.0);
    }
  }
}

TEST(Network, SetLatencyModelTakesEffect) {
  NetworkOptions options;
  options.n = 10;
  Network network = Network::build(options);
  const double before = network.link_ms(0, 1);
  network.set_latency_model(std::make_unique<PairClassScaledModel>(
      network.make_geo_model(), [](NodeId) { return true; }, 0.5));
  EXPECT_NEAR(network.link_ms(0, 1), before * 0.5, 1e-9);
}

TEST(Network, MoveKeepsLatencyModelValid) {
  NetworkOptions options;
  options.n = 10;
  Network a = Network::build(options);
  const double before = a.link_ms(2, 3);
  const Network b = std::move(a);
  EXPECT_DOUBLE_EQ(b.link_ms(2, 3), before);
}

TEST(Network, ProfileVersionBumpsOnEveryMutableAccess) {
  NetworkOptions options;
  options.n = 10;
  Network network = Network::build(options);
  const std::uint64_t v0 = network.profile_version();
  network.mutable_profiles()[0].hash_power = 0.5;
  EXPECT_EQ(network.profile_version(), v0 + 1);
  network.mutable_profiles()[1].forwards = false;
  EXPECT_EQ(network.profile_version(), v0 + 2);
  // Const access never bumps.
  (void)network.profiles();
  (void)network.profile(0);
  EXPECT_EQ(network.profile_version(), v0 + 2);
}

TEST(Network, LatencyVersionBumpsOnModelSwapOnly) {
  NetworkOptions options;
  options.n = 10;
  Network network = Network::build(options);
  const std::uint64_t v0 = network.latency_version();
  (void)network.link_ms(0, 1);
  (void)network.mutable_profiles();
  EXPECT_EQ(network.latency_version(), v0);
  network.set_latency_model(network.make_geo_model());
  EXPECT_EQ(network.latency_version(), v0 + 1);
}

TEST(Network, VersionCountersSurviveMove) {
  NetworkOptions options;
  options.n = 10;
  Network a = Network::build(options);
  a.mutable_profiles()[0].forwards = false;
  a.set_latency_model(a.make_geo_model());
  const std::uint64_t pv = a.profile_version();
  const std::uint64_t lv = a.latency_version();
  const Network b = std::move(a);
  EXPECT_EQ(b.profile_version(), pv);
  EXPECT_EQ(b.latency_version(), lv);
}

}  // namespace
}  // namespace perigee::net
