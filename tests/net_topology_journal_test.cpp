// Property tests for the Topology mutation journal: any recorded delta
// sequence, replayed onto a pristine copy of the starting graph, must
// reproduce the mutated original structurally — out-edge lists, full
// adjacency (order included, since CSR patching relies on it), in-counts and
// infra overlays. Mutation storms mix rewiring, churn-style join/leave,
// infra installs and no-op rejections; truncation and replay-window
// semantics are pinned separately.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/topology.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace perigee {
namespace {

using net::Topology;

// Structural equality through the public API, order-sensitive: the CSR patch
// path mirrors the adjacency-list order, so replay must reproduce it exactly,
// not just as a set.
void expect_structurally_equal(const Topology& a, const Topology& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.num_p2p_edges(), b.num_p2p_edges());
  for (net::NodeId v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a.out(v), b.out(v)) << "out list of node " << v;
    EXPECT_EQ(a.in_count(v), b.in_count(v)) << "in count of node " << v;
    const auto& aa = a.adjacency(v);
    const auto& ba = b.adjacency(v);
    ASSERT_EQ(aa.size(), ba.size()) << "adjacency size of node " << v;
    for (std::size_t i = 0; i < aa.size(); ++i) {
      EXPECT_EQ(aa[i].peer, ba[i].peer) << "node " << v << " slot " << i;
      EXPECT_EQ(aa[i].infra_ms, ba[i].infra_ms)
          << "node " << v << " slot " << i;
    }
  }
  EXPECT_EQ(a.infra_edges(), b.infra_edges());
}

// Replays the journal span of `mutated` since `since_version` onto `pristine`
// and asserts equality.
void expect_replay_matches(const Topology& pristine, const Topology& mutated,
                           std::uint64_t since_version) {
  const auto deltas = mutated.deltas_since(since_version);
  ASSERT_TRUE(deltas.has_value());
  Topology replayed = pristine;
  for (const auto& d : *deltas) {
    EXPECT_TRUE(replayed.apply_delta(d))
        << "delta did not apply cleanly during replay";
  }
  EXPECT_EQ(replayed.version(), mutated.version());
  expect_structurally_equal(replayed, mutated);
}

// Random mutation storm: rewiring (disconnect + redial), churn leave
// (disconnect_all) and rejoin, occasional infra installs, plus rejected
// operations (which must journal nothing).
void mutation_storm(Topology& topology, util::Rng& rng, int ops) {
  const auto n = static_cast<net::NodeId>(topology.size());
  for (int op = 0; op < ops; ++op) {
    const auto v = static_cast<net::NodeId>(rng.uniform_index(n));
    switch (rng.uniform_index(8)) {
      case 0:  // churn leave: tear down everything touching v
        topology.disconnect_all(v);
        break;
      case 1:  // churn rejoin / exploration: dial fresh random peers
        topo::dial_random_peers(topology, v, topology.limits().out_cap, rng);
        break;
      case 2: {  // infra install (usually rejected once adjacent)
        const auto u = static_cast<net::NodeId>(rng.uniform_index(n));
        if (u != v) topology.add_infra_edge(v, u, rng.uniform(0.0, 5.0));
        break;
      }
      default: {  // out-edge replace, the round loop's common delta
        const auto& out = topology.out(v);
        if (!out.empty()) {
          topology.disconnect(
              v, out[rng.uniform_index(out.size())]);
        }
        topo::dial_random_peers(topology, v, 1, rng);
        break;
      }
    }
  }
}

TEST(TopologyJournal, ReplayFromEmptyReproducesAnyMutationSequence) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const std::size_t n = 20 + 5 * (seed % 7);
    Topology topology(n);
    const Topology pristine = topology;  // version 0, empty journal
    util::Rng rng(seed);
    topo::build_random(topology, rng);
    mutation_storm(topology, rng, 120);
    topology.validate();
    expect_replay_matches(pristine, topology, 0);
  }
}

TEST(TopologyJournal, ReplayFromMidpointSnapshotReproducesSuffix) {
  for (std::uint64_t seed = 100; seed <= 110; ++seed) {
    Topology topology(40);
    util::Rng rng(seed);
    topo::build_random(topology, rng);
    mutation_storm(topology, rng, 60);
    // Snapshot mid-history: replay must only need the journal suffix.
    const Topology snapshot = topology;
    const std::uint64_t at = topology.version();
    mutation_storm(topology, rng, 90);
    topology.validate();
    expect_replay_matches(snapshot, topology, at);
  }
}

TEST(TopologyJournal, RejectedMutationsJournalNothing) {
  Topology topology(6);
  ASSERT_TRUE(topology.connect(0, 1));
  const std::uint64_t v1 = topology.version();
  // All rejected: self-loop, duplicate, reverse of existing, infra over p2p.
  EXPECT_FALSE(topology.connect(0, 0));
  EXPECT_FALSE(topology.connect(0, 1));
  EXPECT_FALSE(topology.connect(1, 0));
  EXPECT_FALSE(topology.add_infra_edge(0, 1, 2.0));
  EXPECT_EQ(topology.version(), v1);
  const auto deltas = topology.deltas_since(v1);
  ASSERT_TRUE(deltas.has_value());
  EXPECT_TRUE(deltas->empty());
}

TEST(TopologyJournal, DeltasSinceSemantics) {
  Topology topology(8);
  ASSERT_TRUE(topology.connect(0, 1));
  ASSERT_TRUE(topology.connect(1, 2));
  topology.disconnect(0, 1);
  ASSERT_TRUE(topology.add_infra_edge(3, 4, 1.5));
  ASSERT_EQ(topology.version(), 4u);

  const auto all = topology.deltas_since(0);
  ASSERT_TRUE(all.has_value());
  ASSERT_EQ(all->size(), 4u);
  using Kind = Topology::EdgeDelta::Kind;
  EXPECT_EQ((*all)[0].kind, Kind::Connect);
  EXPECT_EQ((*all)[0].u, 0u);
  EXPECT_EQ((*all)[0].v, 1u);
  EXPECT_EQ((*all)[2].kind, Kind::Disconnect);
  EXPECT_EQ((*all)[3].kind, Kind::InfraAdd);
  EXPECT_EQ((*all)[3].infra_ms, 1.5);

  const auto tail = topology.deltas_since(3);
  ASSERT_TRUE(tail.has_value());
  ASSERT_EQ(tail->size(), 1u);
  EXPECT_EQ((*tail)[0].kind, Kind::InfraAdd);

  const auto none = topology.deltas_since(4);
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->empty());

  // A version from the future cannot be served.
  EXPECT_FALSE(topology.deltas_since(5).has_value());
}

TEST(TopologyJournal, TruncationDropsOldWindowButKeepsRecentReplayable) {
  Topology topology(30);
  util::Rng rng(7);
  topo::build_random(topology, rng);
  const std::uint64_t early = topology.version();
  // Push well past capacity so the compaction (drop-oldest-half) runs.
  const auto target =
      static_cast<std::uint64_t>(Topology::journal_capacity()) + early + 512;
  while (topology.version() < target) {
    mutation_storm(topology, rng, 200);
  }
  // The pre-storm version fell out of the retained window...
  EXPECT_FALSE(topology.deltas_since(early).has_value());
  // ...but a recent snapshot still replays exactly.
  const Topology snapshot = topology;
  const std::uint64_t at = topology.version();
  mutation_storm(topology, rng, 50);
  expect_replay_matches(snapshot, topology, at);
}

}  // namespace
}  // namespace perigee
