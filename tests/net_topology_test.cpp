#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace perigee::net {
namespace {

TEST(Topology, ConnectEstablishesDirectedEdge) {
  Topology t(5);
  EXPECT_TRUE(t.connect(0, 1));
  EXPECT_TRUE(t.has_out(0, 1));
  EXPECT_FALSE(t.has_out(1, 0));
  EXPECT_TRUE(t.are_adjacent(0, 1));
  EXPECT_TRUE(t.are_adjacent(1, 0));
  EXPECT_EQ(t.out_count(0), 1);
  EXPECT_EQ(t.in_count(1), 1);
  t.validate();
}

TEST(Topology, SelfLoopRejected) {
  Topology t(3);
  EXPECT_FALSE(t.connect(1, 1));
  EXPECT_EQ(t.out_count(1), 0);
}

TEST(Topology, DuplicateRejectedBothDirections) {
  Topology t(3);
  EXPECT_TRUE(t.connect(0, 1));
  EXPECT_FALSE(t.connect(0, 1));  // same direction
  EXPECT_FALSE(t.connect(1, 0));  // reverse direction also refused
  t.validate();
}

TEST(Topology, OutgoingCapEnforced) {
  Topology t(10, {.out_cap = 3, .in_cap = 20});
  EXPECT_TRUE(t.connect(0, 1));
  EXPECT_TRUE(t.connect(0, 2));
  EXPECT_TRUE(t.connect(0, 3));
  EXPECT_FALSE(t.connect(0, 4));
  EXPECT_TRUE(t.out_full(0));
  t.validate();
}

TEST(Topology, IncomingCapDeclines) {
  Topology t(10, {.out_cap = 8, .in_cap = 2});
  EXPECT_TRUE(t.connect(1, 0));
  EXPECT_TRUE(t.connect(2, 0));
  EXPECT_FALSE(t.connect(3, 0));  // node 0 declines
  EXPECT_TRUE(t.in_full(0));
  EXPECT_TRUE(t.connect(3, 4));   // dialer can go elsewhere
  t.validate();
}

TEST(Topology, DisconnectFreesSlots) {
  Topology t(5, {.out_cap = 1, .in_cap = 1});
  EXPECT_TRUE(t.connect(0, 1));
  EXPECT_FALSE(t.connect(2, 1));
  t.disconnect(0, 1);
  EXPECT_EQ(t.out_count(0), 0);
  EXPECT_EQ(t.in_count(1), 0);
  EXPECT_FALSE(t.are_adjacent(0, 1));
  EXPECT_TRUE(t.connect(2, 1));
  t.validate();
}

TEST(Topology, DisconnectNonexistentAborts) {
  Topology t(3);
  EXPECT_DEATH(t.disconnect(0, 1), "disconnect");
}

TEST(Topology, AdjacencyIsUnionOfDirections) {
  Topology t(4);
  t.connect(0, 1);
  t.connect(2, 0);
  const auto& adj = t.adjacency(0);
  std::vector<NodeId> peers;
  for (const auto& l : adj) peers.push_back(l.peer);
  std::sort(peers.begin(), peers.end());
  EXPECT_EQ(peers, (std::vector<NodeId>{1, 2}));
}

TEST(Topology, InfraEdgeCarriesLatency) {
  Topology t(4);
  EXPECT_TRUE(t.add_infra_edge(0, 1, 5.0));
  ASSERT_TRUE(t.infra_latency(0, 1).has_value());
  EXPECT_DOUBLE_EQ(*t.infra_latency(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(*t.infra_latency(1, 0), 5.0);
  EXPECT_FALSE(t.infra_latency(0, 2).has_value());
  // Infra edges do not consume p2p degree budget.
  EXPECT_EQ(t.out_count(0), 0);
  EXPECT_EQ(t.in_count(1), 0);
  t.validate();
}

TEST(Topology, InfraMarkedInAdjacency) {
  Topology t(3);
  t.add_infra_edge(0, 1, 7.5);
  t.connect(0, 2);
  int infra = 0, p2p = 0;
  for (const auto& l : t.adjacency(0)) {
    if (l.is_infra()) {
      ++infra;
      EXPECT_DOUBLE_EQ(l.infra_ms, 7.5);
    } else {
      ++p2p;
    }
  }
  EXPECT_EQ(infra, 1);
  EXPECT_EQ(p2p, 1);
}

TEST(Topology, P2pConnectBlockedByInfraEdge) {
  Topology t(3);
  t.add_infra_edge(0, 1, 5.0);
  EXPECT_FALSE(t.connect(0, 1));
  EXPECT_FALSE(t.connect(1, 0));
}

TEST(Topology, EdgeEnumeration) {
  Topology t(5);
  t.connect(0, 1);
  t.connect(2, 3);
  t.add_infra_edge(1, 4, 2.0);
  EXPECT_EQ(t.num_p2p_edges(), 2u);
  const auto p2p = t.p2p_edges();
  EXPECT_EQ(p2p.size(), 2u);
  const auto infra = t.infra_edges();
  ASSERT_EQ(infra.size(), 1u);
  EXPECT_EQ(infra[0], (std::pair<NodeId, NodeId>{1, 4}));
}

TEST(Topology, RandomMutationStormPreservesInvariants) {
  // Property test: a long random sequence of connects/disconnects can never
  // break the structure invariants.
  util::Rng rng(2024);
  Topology t(40, {.out_cap = 4, .in_cap = 6});
  std::vector<std::pair<NodeId, NodeId>> alive;
  for (int step = 0; step < 5000; ++step) {
    if (!alive.empty() && rng.bernoulli(0.4)) {
      const std::size_t i = rng.uniform_index(alive.size());
      t.disconnect(alive[i].first, alive[i].second);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const auto u = static_cast<NodeId>(rng.uniform_index(40));
      const auto v = static_cast<NodeId>(rng.uniform_index(40));
      if (t.connect(u, v)) alive.emplace_back(u, v);
    }
    if (step % 500 == 0) t.validate();
  }
  t.validate();
  EXPECT_EQ(t.num_p2p_edges(), alive.size());
}

TEST(Topology, CapsAreReportedThroughLimits) {
  Topology t(3, {.out_cap = 5, .in_cap = 9});
  EXPECT_EQ(t.limits().out_cap, 5);
  EXPECT_EQ(t.limits().in_cap, 9);
}

}  // namespace
}  // namespace perigee::net
