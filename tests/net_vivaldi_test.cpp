#include "net/vivaldi.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "topo/coordinates.hpp"
#include "topo/builders.hpp"

namespace perigee::net {
namespace {

Network make_euclidean(std::size_t n, std::uint64_t seed) {
  NetworkOptions options;
  options.n = n;
  options.seed = seed;
  options.latency = NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 2;
  options.embed_scale_ms = 100.0;
  return Network::build(options);
}

TEST(Vivaldi, StartsAtOriginWithFullError) {
  VivaldiSystem vivaldi(10);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(vivaldi.error(v), 1.0);
    EXPECT_DOUBLE_EQ(vivaldi.estimated_distance(v, (v + 1) % 10), 0.0);
  }
}

TEST(Vivaldi, SingleObservationMovesTowardTruth) {
  VivaldiSystem vivaldi(2);
  // Peer sits at the origin with full error; true rtt 100.
  std::array<double, 8> origin{};
  vivaldi.observe(0, 1, 100.0, 1.0, origin);
  // Node 0 moved off the origin (coincident kick) by cc * w * rtt.
  const double moved = vivaldi.estimated_distance(0, 1);
  EXPECT_GT(moved, 0.0);
  EXPECT_LE(moved, 100.0);
}

TEST(Vivaldi, ConvergesOnEuclideanNetwork) {
  // True latencies come from a genuine 2-D embedding, so a 3-D Vivaldi must
  // recover them to within a small relative error.
  const auto network = make_euclidean(150, 5);
  VivaldiParams params;
  params.rounds = 60;
  VivaldiSystem vivaldi(network.size(), params);
  util::Rng rng(5);
  vivaldi.run(network, rng);
  util::Rng sample_rng(6);
  const double err = vivaldi.mean_relative_error(network, sample_rng);
  EXPECT_LT(err, 0.12);
  // Error estimates became confident too.
  double mean_conf = 0;
  for (NodeId v = 0; v < network.size(); ++v) mean_conf += vivaldi.error(v);
  EXPECT_LT(mean_conf / static_cast<double>(network.size()), 0.35);
}

TEST(Vivaldi, UsefulOnGeoNetworkDespiteNonMetricJitter) {
  // The geo model violates the triangle inequality (per-pair jitter), so
  // the embedding can't be exact — but it must still beat the "all
  // distances are equal" null model by a wide margin.
  NetworkOptions options;
  options.n = 200;
  options.seed = 7;
  const auto network = Network::build(options);
  VivaldiSystem vivaldi(network.size());
  util::Rng rng(7);
  vivaldi.run(network, rng);
  util::Rng sample_rng(8);
  EXPECT_LT(vivaldi.mean_relative_error(network, sample_rng), 0.45);
}

TEST(Vivaldi, EstimatedDistanceIsSymmetric) {
  const auto network = make_euclidean(50, 9);
  VivaldiSystem vivaldi(network.size());
  util::Rng rng(9);
  vivaldi.run(network, rng);
  for (NodeId u = 0; u < 50; u += 7) {
    for (NodeId v = 0; v < 50; v += 5) {
      EXPECT_DOUBLE_EQ(vivaldi.estimated_distance(u, v),
                       vivaldi.estimated_distance(v, u));
    }
  }
}

TEST(CoordinateGreedy, BuildsLowLatencyTopology) {
  const auto network = make_euclidean(200, 11);
  net::Topology t(200);
  util::Rng rng(11);
  topo::build_coordinate_greedy(t, network, rng);
  t.validate();

  // Outgoing links chosen by estimated coordinates must be much shorter on
  // average than random ones.
  net::Topology random_topo(200);
  util::Rng rng2(11);
  topo::build_random(random_topo, rng2);
  auto avg_out = [&](const net::Topology& topo) {
    double total = 0;
    int count = 0;
    for (NodeId v = 0; v < topo.size(); ++v) {
      for (NodeId u : topo.out(v)) {
        total += network.link_ms(v, u);
        ++count;
      }
    }
    return total / count;
  };
  EXPECT_LT(avg_out(t), 0.55 * avg_out(random_topo));
}

TEST(CoordinateGreedy, FillsSlots) {
  const auto network = make_euclidean(100, 12);
  net::Topology t(100);
  util::Rng rng(12);
  topo::build_coordinate_greedy(t, network, rng);
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_GE(t.out_count(v), t.limits().out_cap - 1);
  }
}

}  // namespace
}  // namespace perigee::net
