// Telemetry determinism contract (integration tier): the sweep curve bytes
// must be identical with telemetry recording enabled vs disabled, and at
// any --jobs value while a trace is being collected. Telemetry goes to
// sidecar files and the separate `meta` member only — never into curve
// cells — so observability can stay on in production runs without
// invalidating a single checked-in number.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/meta.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/json.hpp"
#include "runner/sweep.hpp"

namespace perigee {
namespace {

runner::SweepSpec small_spec() {
  runner::SweepSpec spec;
  spec.name = "obs-determinism";
  spec.base.net.n = 60;
  spec.base.rounds = 4;
  spec.base.blocks_per_round = 20;
  spec.base.seed = 7;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::PerigeeSubset};
  spec.churn_rates = {0.0, 0.1};
  spec.seeds = 2;
  return spec;
}

std::string run_sweep_json(int jobs) {
  const runner::SweepSpec spec = small_spec();
  const runner::SweepResult result = runner::SweepRunner(jobs).run(spec);
  std::ostringstream os;
  runner::write_json(os, spec, result);  // no meta: the byte-stable part
  return os.str();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ObsDeterminism, CurveBytesIdenticalTelemetryOnVsOff) {
  obs::Registry& registry = obs::Registry::instance();

  registry.set_enabled(true);
  const std::string with_telemetry = run_sweep_json(/*jobs=*/2);

  registry.set_enabled(false);
  const std::string without_telemetry = run_sweep_json(/*jobs=*/2);
  registry.set_enabled(true);

  EXPECT_EQ(with_telemetry, without_telemetry);
}

TEST(ObsDeterminism, JobsInvariantWhileTracing) {
  const std::string path = "obs_determinism_trace.json";
  const bool tracing = obs::Tracer::instance().start(path);
  EXPECT_EQ(tracing, obs::telemetry_compiled());

  const std::string sequential = run_sweep_json(/*jobs=*/1);
  const std::string parallel = run_sweep_json(/*jobs=*/4);
  EXPECT_EQ(sequential, parallel);

  if (!tracing) return;  // OFF build: nothing to flush or inspect

  ASSERT_TRUE(obs::Tracer::instance().finish());
  const auto doc = runner::JsonValue::parse(slurp(path));
  std::remove(path.c_str());

  // The trace must carry the sweep's phase structure: per-cell spans from
  // both runs (2 algorithms x 2 churn rates x 2 seeds x 2 runs = 16) plus
  // the nested experiment/round spans.
  const runner::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t cells = 0, rounds = 0;
  for (const auto& event : events->items) {
    const std::string& name = event.find("name")->string;
    if (name == "sweep_cell") ++cells;
    if (name == "round") ++rounds;
  }
  EXPECT_EQ(cells, 16u);
  EXPECT_GT(rounds, 0u);
}

TEST(ObsDeterminism, MetaMemberDoesNotDisturbCurveBytes) {
  // Emitting with a meta block and textually removing it must reproduce
  // the meta-less emission exactly — the guarantee strip_meta.py relies on.
  const runner::SweepSpec spec = small_spec();
  const runner::SweepResult result = runner::SweepRunner(2).run(spec);

  std::ostringstream bare, with_meta;
  runner::write_json(bare, spec, result);
  const obs::RunMeta meta = obs::capture_run_meta();
  runner::write_json(with_meta, spec, result, &meta);

  const std::string annotated = with_meta.str();
  const std::size_t begin = annotated.find("  \"meta\": {");
  ASSERT_NE(begin, std::string::npos);
  const std::size_t end = annotated.find("  },\n", begin);
  ASSERT_NE(end, std::string::npos);
  std::string stripped = annotated;
  stripped.erase(begin, end + 5 - begin);
  EXPECT_EQ(stripped, bare.str());
}

}  // namespace
}  // namespace perigee
