// Metrics registry unit tests: power-of-two bucket boundaries, per-thread
// shard merge under real ThreadPool contention, reset semantics (values
// clear, identities survive — the sweep-cell boundary contract), the
// runtime gate, and the compile-time gate (macros must not even register
// names in a PERIGEE_TELEMETRY=OFF build).
//
// The registry is process-global, so every test uses test-unique metric
// names and never assumes the snapshot is otherwise empty.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "runner/thread_pool.hpp"

namespace perigee {
namespace {

using obs::Registry;

TEST(ObsRegistry, HistogramBucketBoundaries) {
  // Bucket 0 holds 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Registry::bucket_index(0), 0u);
  EXPECT_EQ(Registry::bucket_index(1), 1u);
  EXPECT_EQ(Registry::bucket_index(2), 2u);
  EXPECT_EQ(Registry::bucket_index(3), 2u);
  EXPECT_EQ(Registry::bucket_index(4), 3u);
  EXPECT_EQ(Registry::bucket_index(7), 3u);
  EXPECT_EQ(Registry::bucket_index(8), 4u);
  EXPECT_EQ(Registry::bucket_index((std::uint64_t{1} << 62) - 1), 62u);
  EXPECT_EQ(Registry::bucket_index(std::uint64_t{1} << 62), 63u);
  EXPECT_EQ(Registry::bucket_index(~std::uint64_t{0}),
            Registry::kHistBuckets - 1);

  EXPECT_EQ(Registry::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Registry::bucket_lower_bound(1), 1u);
  EXPECT_EQ(Registry::bucket_lower_bound(2), 2u);
  EXPECT_EQ(Registry::bucket_lower_bound(3), 4u);
  // Every value lands in the bucket whose [lower, next-lower) range holds
  // it.
  for (std::uint64_t v : {1ull, 2ull, 3ull, 5ull, 100ull, 65536ull}) {
    const std::size_t b = Registry::bucket_index(v);
    EXPECT_GE(v, Registry::bucket_lower_bound(b)) << v;
    if (b + 1 < Registry::kHistBuckets) {
      EXPECT_LT(v, Registry::bucket_lower_bound(b + 1)) << v;
    }
  }
}

TEST(ObsRegistry, NameInterningIsStable) {
  Registry& reg = Registry::instance();
  const obs::MetricId a = reg.counter("test.intern.a");
  const obs::MetricId b = reg.counter("test.intern.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.counter("test.intern.a"), a);
  EXPECT_EQ(reg.counter("test.intern.b"), b);
}

TEST(ObsRegistry, ShardMergeUnderThreadPoolContention) {
  Registry& reg = Registry::instance();
  reg.set_enabled(true);
  const obs::Counter counter("test.contention.counter");
  const obs::Histogram hist("test.contention.hist");

  const std::uint64_t before = reg.scrape().counter("test.contention.counter");

  // Many small jobs across several workers: increments land on whichever
  // worker's shard runs the job, and the scrape must see every one of them
  // after wait() regardless of the split.
  constexpr std::size_t kJobs = 64;
  constexpr std::uint64_t kPerJob = 1000;
  runner::ThreadPool pool(4);
  runner::parallel_for(pool, kJobs, [&](std::size_t job) {
    for (std::uint64_t i = 0; i < kPerJob; ++i) counter.add(1);
    hist.observe(job);
  });

  const obs::MetricsSnapshot snap = reg.scrape();
  EXPECT_EQ(snap.counter("test.contention.counter"), before + kJobs * kPerJob);

  const obs::HistogramSnapshot* h = snap.histogram("test.contention.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->count, kJobs);
  // Observed values 0..63: bucket_index(63) == 6, so nothing may land
  // beyond bucket 6 from this test's observations.
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : h->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h->count);
}

TEST(ObsRegistry, ResetClearsValuesButKeepsIdentities) {
  Registry& reg = Registry::instance();
  reg.set_enabled(true);
  const obs::Counter counter("test.reset.counter");
  const obs::Histogram hist("test.reset.hist");
  counter.add(7);
  hist.observe(5);
  ASSERT_GE(reg.scrape().counter("test.reset.counter"), 7u);

  // The sweep-cell boundary contract: values go to zero, registered names
  // and ids survive so standing handles keep working.
  reg.reset();
  obs::MetricsSnapshot snap = reg.scrape();
  EXPECT_EQ(snap.counter("test.reset.counter"), 0u);
  const obs::HistogramSnapshot* h = snap.histogram("test.reset.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 0u);
  EXPECT_EQ(h->sum, 0u);

  counter.add(3);
  EXPECT_EQ(reg.scrape().counter("test.reset.counter"), 3u);
}

TEST(ObsRegistry, RuntimeGateDropsRecordings) {
  Registry& reg = Registry::instance();
  const obs::Counter counter("test.gate.counter");
  reg.set_enabled(true);
  counter.add(1);
  const std::uint64_t armed = reg.scrape().counter("test.gate.counter");
  reg.set_enabled(false);
  counter.add(100);
  EXPECT_EQ(reg.scrape().counter("test.gate.counter"), armed);
  reg.set_enabled(true);
  counter.add(1);
  EXPECT_EQ(reg.scrape().counter("test.gate.counter"), armed + 1);
}

TEST(ObsRegistry, GaugeSetAndHighWaterMark) {
  Registry& reg = Registry::instance();
  reg.set_enabled(true);
  const obs::Gauge gauge("test.gauge.hwm");
  gauge.set(10);
  gauge.max(5);  // below: no change
  gauge.max(42);
  for (const auto& [name, value] : reg.scrape().gauges) {
    if (name == "test.gauge.hwm") {
      EXPECT_EQ(value, 42);
      return;
    }
  }
  FAIL() << "gauge not scraped";
}

TEST(ObsRegistry, MacrosCompileToNoOpsWhenOff) {
  // In both build modes this compiles; in an OFF build the macro must not
  // even intern the name, so the scrape never sees it.
  PERIGEE_COUNTER_ADD("test.macro.compile_gate", 1);
  PERIGEE_HISTOGRAM_OBSERVE("test.macro.compile_gate_hist", 9);
  const obs::MetricsSnapshot snap = Registry::instance().scrape();
  if (obs::telemetry_compiled()) {
    EXPECT_GE(snap.counter("test.macro.compile_gate"), 1u);
    EXPECT_NE(snap.histogram("test.macro.compile_gate_hist"), nullptr);
  } else {
    EXPECT_EQ(snap.counter("test.macro.compile_gate"), 0u);
    EXPECT_EQ(snap.histogram("test.macro.compile_gate_hist"), nullptr);
  }
}

}  // namespace
}  // namespace perigee
