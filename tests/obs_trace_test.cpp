// Span tracer unit tests: spans recorded across threads land in the Chrome
// trace_event file, the file parses with the repo's own JSON parser and
// carries the metadata/metrics sections, TraceArgs escapes correctly, and
// run-metadata capture reports sane values on this platform.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/meta.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/json.hpp"
#include "runner/thread_pool.hpp"

namespace perigee {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ObsTraceArgs, BuildsEscapedJsonObjects) {
  const std::string json = obs::TraceArgs()
                               .arg("label", "a \"quoted\"\nvalue")
                               .arg("count", 42)
                               .arg("ratio", 0.5)
                               .json();
  const auto parsed = runner::JsonValue::parse(json);
  ASSERT_EQ(parsed.members.size(), 3u);
  EXPECT_EQ(parsed.find("label")->string, "a \"quoted\"\nvalue");
  EXPECT_EQ(parsed.find("count")->number, 42.0);
  EXPECT_EQ(parsed.find("ratio")->number, 0.5);
}

TEST(ObsTrace, DisarmedTracerRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  ASSERT_FALSE(tracer.enabled());
  const std::size_t before = tracer.events_recorded();
  {
    obs::Span span("never_recorded");
  }
  EXPECT_EQ(tracer.events_recorded(), before);
  EXPECT_FALSE(tracer.finish());
}

TEST(ObsTrace, SpansRoundTripThroughChromeTraceFile) {
  obs::Tracer& tracer = obs::Tracer::instance();
  const std::string path = "obs_trace_test_out.json";

  if (!obs::telemetry_compiled()) {
    // OFF builds must refuse to arm; nothing else to verify.
    EXPECT_FALSE(tracer.start(path));
    return;
  }

  ASSERT_TRUE(tracer.start(path));
  EXPECT_FALSE(tracer.start(path)) << "re-arming while armed must fail";
  {
    obs::Span outer("outer_span",
                    [] { return obs::TraceArgs().arg("k", "v").json(); });
    obs::Span inner("inner_span");
  }
  // Spans recorded on pool workers merge into the same trace.
  {
    runner::ThreadPool pool(3);
    runner::parallel_for(pool, 8, [](std::size_t i) {
      obs::Span span("worker_span", [i] {
        return obs::TraceArgs().arg("job", i).json();
      });
    });
  }
  EXPECT_GE(tracer.events_recorded(), 10u);
  ASSERT_TRUE(tracer.finish());
  EXPECT_FALSE(tracer.enabled());

  const auto doc = runner::JsonValue::parse(slurp(path));
  std::remove(path.c_str());

  const runner::JsonValue* metadata = doc.find("metadata");
  ASSERT_NE(metadata, nullptr);
  EXPECT_FALSE(metadata->find("build_type")->string.empty());
  EXPECT_TRUE(metadata->find("telemetry")->boolean);

  ASSERT_NE(doc.find("perigeeMetrics"), nullptr);
  ASSERT_NE(doc.find("perigeeMetrics")->find("counters"), nullptr);

  const runner::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GE(events->items.size(), 10u);
  std::size_t workers_seen = 0;
  bool outer_seen = false;
  for (const auto& event : events->items) {
    EXPECT_EQ(event.find("ph")->string, "X");
    EXPECT_GE(event.find("ts")->number, 0.0);
    EXPECT_GE(event.find("dur")->number, 0.0);
    const std::string& name = event.find("name")->string;
    if (name == "worker_span") ++workers_seen;
    if (name == "outer_span") {
      outer_seen = true;
      EXPECT_EQ(event.find("args")->find("k")->string, "v");
    }
  }
  EXPECT_EQ(workers_seen, 8u);
  EXPECT_TRUE(outer_seen);

  // finish() cleared the buffers: the next trace starts empty.
  EXPECT_EQ(tracer.events_recorded(), 0u);
}

TEST(ObsMeta, CaptureReportsSaneValues) {
  const obs::RunMeta meta = obs::capture_run_meta();
  EXPECT_FALSE(meta.build_type.empty());
  EXPECT_FALSE(meta.compiler.empty());
  EXPECT_FALSE(meta.git_sha.empty());
  EXPECT_EQ(meta.telemetry, obs::telemetry_compiled());
  EXPECT_GT(meta.num_cpus, 0);
  EXPECT_GT(meta.peak_rss_kb, 0) << "VmHWM should be readable on Linux";
  EXPECT_GE(meta.wall_clock_sec, 0.0);
}

TEST(ObsMeta, WritesAllFieldsAsJson) {
  const obs::RunMeta meta = obs::capture_run_meta();
  std::ostringstream os;
  {
    runner::JsonWriter writer(os);
    writer.begin_object();
    obs::write_run_meta_fields(writer, meta);
    writer.end_object();
  }
  const auto doc = runner::JsonValue::parse(os.str());
  ASSERT_EQ(doc.members.size(), 8u);
  EXPECT_EQ(doc.find("build_type")->string, meta.build_type);
  EXPECT_EQ(doc.find("git_sha")->string, meta.git_sha);
  EXPECT_EQ(doc.find("peak_rss_kb")->number,
            static_cast<double>(meta.peak_rss_kb));
}

}  // namespace
}  // namespace perigee
