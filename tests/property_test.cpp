// Parameterized property suites: invariants that must hold across network
// sizes, seeds, topology policies and scoring algorithms.
#include <gtest/gtest.h>

#include <cmath>
#include <queue>
#include <tuple>

#include "core/experiment.hpp"
#include "core/perigee.hpp"
#include "metrics/eval.hpp"
#include "sim/gossip.hpp"
#include "sim/rounds.hpp"
#include "topo/builders.hpp"
#include "util/stats.hpp"

namespace perigee {
namespace {

// ---------------------------------------------------------------------------
// Broadcast invariants across (n, seed).

class BroadcastProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  void SetUp() override {
    const auto [n, seed] = GetParam();
    net::NetworkOptions options;
    options.n = n;
    options.seed = seed;
    network_.emplace(net::Network::build(options));
    topology_.emplace(n);
    util::Rng rng(seed);
    topo::build_random(*topology_, rng);
  }

  std::optional<net::Network> network_;
  std::optional<net::Topology> topology_;
};

TEST_P(BroadcastProperty, ArrivalsNonNegativeAndMinerZero) {
  const auto miner = static_cast<net::NodeId>(network_->size() / 2);
  const auto result = sim::simulate_broadcast(*topology_, *network_, miner);
  EXPECT_DOUBLE_EQ(result.arrival[miner], 0.0);
  for (double a : result.arrival) EXPECT_GE(a, 0.0);
}

TEST_P(BroadcastProperty, ArrivalBoundedByLatencyDiameterPath) {
  // Any arrival must be at least the direct link's edge delay / at most the
  // sum over the heaviest possible path — sanity-band the extremes.
  const auto result = sim::simulate_broadcast(*topology_, *network_, 0);
  for (net::NodeId v = 1; v < network_->size(); ++v) {
    if (std::isinf(result.arrival[v])) continue;
    // Cannot beat the best single hop from the miner.
    EXPECT_GE(result.arrival[v] + 1e-9,
              std::min(network_->edge_delay_ms(0, v),
                       3.0 * net::min_region_latency_ms() * 0.8));
  }
}

TEST_P(BroadcastProperty, EverybodyReachedOnRandomTopology) {
  const auto result = sim::simulate_broadcast(*topology_, *network_, 1);
  for (net::NodeId v = 0; v < network_->size(); ++v) {
    EXPECT_TRUE(std::isfinite(result.arrival[v]));
  }
}

TEST_P(BroadcastProperty, GossipPushMatchesFastEngine) {
  net::NetworkOptions options = network_->options();
  options.handshake_factor = 1.0;
  const auto flat = net::Network::build(options);
  sim::GossipConfig push;
  push.mode = sim::GossipConfig::Mode::Push;
  const auto fast = sim::simulate_broadcast(*topology_, flat, 2);
  const auto gossip = sim::simulate_gossip(*topology_, flat, 2, push);
  for (net::NodeId v = 0; v < flat.size(); ++v) {
    EXPECT_NEAR(gossip.arrival[v], fast.arrival[v], 1e-6);
  }
}

TEST_P(BroadcastProperty, LambdaMonotoneInCoverage) {
  const auto result = sim::simulate_broadcast(*topology_, *network_, 3);
  double prev = 0;
  for (double coverage : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double l = metrics::lambda_for_broadcast(result, *network_, coverage);
    EXPECT_GE(l + 1e-9, prev);
    prev = l;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BroadcastProperty,
    ::testing::Combine(::testing::Values(64u, 200u, 500u),
                       ::testing::Values(1u, 7u, 1234u)));

// ---------------------------------------------------------------------------
// Topology-policy invariants: every builder yields a cap-respecting,
// connected-enough overlay.

class BuilderProperty
    : public ::testing::TestWithParam<std::tuple<core::Algorithm, std::uint64_t>> {};

TEST_P(BuilderProperty, InitialTopologyRespectsCapsAndConnectivity) {
  const auto [algorithm, seed] = GetParam();
  core::ExperimentConfig config;
  config.net.n = 300;
  config.seed = seed;
  config.algorithm = algorithm;
  core::Scenario scenario = core::build_scenario(config);
  core::build_initial_topology(config, scenario);
  scenario.topology.validate();

  // Connectivity via BFS on the union adjacency.
  std::vector<bool> seen(scenario.topology.size(), false);
  std::queue<net::NodeId> queue;
  queue.push(0);
  seen[0] = true;
  std::size_t reached = 0;
  while (!queue.empty()) {
    const net::NodeId u = queue.front();
    queue.pop();
    ++reached;
    for (const auto& link : scenario.topology.adjacency(u)) {
      if (!seen[link.peer]) {
        seen[link.peer] = true;
        queue.push(link.peer);
      }
    }
  }
  EXPECT_EQ(reached, scenario.topology.size());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, BuilderProperty,
    ::testing::Combine(::testing::Values(core::Algorithm::Random,
                                         core::Algorithm::Geographic,
                                         core::Algorithm::Kademlia,
                                         core::Algorithm::KNearestOracle),
                       ::testing::Values(11u, 22u)));

// ---------------------------------------------------------------------------
// Selector invariants: after many rounds of any adaptive policy the
// structure is intact, deterministic, and no worse than the random start.

class SelectorProperty
    : public ::testing::TestWithParam<std::tuple<core::Algorithm, std::uint64_t>> {};

TEST_P(SelectorProperty, LearningPreservesInvariantsAndHelps) {
  const auto [algorithm, seed] = GetParam();
  core::ExperimentConfig config;
  config.net.n = 250;
  config.rounds = 12;
  config.blocks_per_round = 50;
  config.seed = seed;
  config.algorithm = algorithm;

  core::Scenario scenario = core::build_scenario(config);
  core::build_initial_topology(config, scenario);
  const double before = util::mean(
      metrics::eval_all_sources(scenario.topology, scenario.network, 0.9));

  const bool ucb = algorithm == core::Algorithm::PerigeeUcb;
  sim::RoundRunner runner(
      scenario.network, scenario.topology,
      core::make_selectors(scenario.network.size(), algorithm, config.params),
      ucb ? 1 : config.blocks_per_round, config.seed);
  runner.run_rounds(ucb ? config.rounds * config.blocks_per_round
                        : config.rounds);

  scenario.topology.validate();
  for (net::NodeId v = 0; v < scenario.topology.size(); ++v) {
    EXPECT_LE(scenario.topology.out_count(v),
              scenario.topology.limits().out_cap);
    EXPECT_GE(scenario.topology.out_count(v), 1);  // never starves
    EXPECT_LE(scenario.topology.in_count(v), scenario.topology.limits().in_cap);
  }
  const double after = util::mean(
      metrics::eval_all_sources(scenario.topology, scenario.network, 0.9));
  EXPECT_LT(after, before * 1.03);  // never meaningfully worse
}

TEST_P(SelectorProperty, RunsAreDeterministic) {
  const auto [algorithm, seed] = GetParam();
  core::ExperimentConfig config;
  config.net.n = 150;
  config.rounds = 4;
  config.blocks_per_round = 30;
  config.seed = seed;
  config.algorithm = algorithm;
  const auto a = core::run_experiment(config);
  const auto b = core::run_experiment(config);
  EXPECT_EQ(a.lambda, b.lambda);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, SelectorProperty,
    ::testing::Combine(::testing::Values(core::Algorithm::PerigeeVanilla,
                                         core::Algorithm::PerigeeUcb,
                                         core::Algorithm::PerigeeSubset),
                       ::testing::Values(3u, 77u)));

// ---------------------------------------------------------------------------
// Percentile properties across quantiles and sizes.

class PercentileProperty
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(PercentileProperty, BoundedMonotoneAndTranslationInvariant) {
  const auto [q, n] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
  std::vector<double> sample;
  for (int i = 0; i < n; ++i) sample.push_back(rng.uniform(-50, 50));

  const double p = util::percentile(sample, q);
  const auto [lo, hi] = std::minmax_element(sample.begin(), sample.end());
  EXPECT_GE(p, *lo);
  EXPECT_LE(p, *hi);

  // Monotone in q.
  EXPECT_LE(util::percentile(sample, q * 0.5), p + 1e-9);

  // Translation equivariance.
  std::vector<double> shifted = sample;
  for (double& x : shifted) x += 123.0;
  EXPECT_NEAR(util::percentile(shifted, q), p + 123.0, 1e-9);

  // Scale equivariance.
  std::vector<double> scaled = sample;
  for (double& x : scaled) x *= 3.0;
  EXPECT_NEAR(util::percentile(scaled, q), p * 3.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Quantiles, PercentileProperty,
    ::testing::Combine(::testing::Values(0.1, 0.5, 0.9, 0.99),
                       ::testing::Values(1, 2, 10, 101, 1000)));

}  // namespace
}  // namespace perigee
