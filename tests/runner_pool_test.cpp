#include "runner/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace perigee::runner {
namespace {

TEST(ResolveJobs, PositivePassesThrough) {
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
}

TEST(ResolveJobs, ZeroMeansHardwareButNeverZero) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_GE(resolve_jobs(-3), 1u);
}

TEST(ThreadPool, ExecutesEverySubmittedJob) {
  ThreadPool pool(4);
  constexpr int kJobs = 200;
  std::atomic<int> count{0};
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), kJobs);
}

TEST(ThreadPool, SingleWorkerDrains) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  pool.submit([&count] { count.fetch_add(1); });
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, StealsAcrossWorkers) {
  // One long job pins a worker; the rest of the burst must still finish
  // because siblings steal the queued work.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&completed, i] {
      if (i == 4) throw std::runtime_error("job 4 failed");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The failure does not cancel other jobs.
  EXPECT_EQ(completed.load(), 9);
  // The error is consumed: the pool stays usable.
  pool.submit([&completed] { completed.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(completed.load(), 10);
}

TEST(ParallelFor, CoversEachIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ParallelFor, IndexedSlotsAreDeterministic) {
  // The scheduling is arbitrary but slot writes are not: any worker count
  // produces the same output vector.
  const auto run = [](unsigned workers) {
    ThreadPool pool(workers);
    std::vector<double> out(256);
    parallel_for(pool, out.size(), [&out](std::size_t i) {
      out[i] = static_cast<double>(i * i) * 0.25;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

}  // namespace
}  // namespace perigee::runner
