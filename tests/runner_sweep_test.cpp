#include "runner/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "runner/json.hpp"

namespace perigee::runner {
namespace {

// Small-but-real config: large enough for every algorithm to run, small
// enough that a grid finishes in well under a second per cell.
SweepSpec small_spec() {
  SweepSpec spec;
  spec.name = "test";
  spec.base.net.n = 60;
  spec.base.rounds = 2;
  spec.base.seed = 7;
  spec.seeds = 3;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::PerigeeSubset,
                     core::Algorithm::Ideal};
  return spec;
}

TEST(ExpandGrid, CartesianCountAndOrder) {
  SweepSpec spec = small_spec();
  spec.nodes = {40, 60};
  spec.rounds = {1, 2};
  const auto cells = expand_grid(spec);
  // 3 algorithms x 2 nodes x 2 rounds, algorithm outermost.
  ASSERT_EQ(cells.size(), 12u);
  EXPECT_EQ(cells[0].config.algorithm, core::Algorithm::Random);
  EXPECT_EQ(cells[0].config.net.n, 40u);
  EXPECT_EQ(cells[0].config.rounds, 1);
  EXPECT_EQ(cells[1].config.rounds, 2);
  EXPECT_EQ(cells[2].config.net.n, 60u);
  EXPECT_EQ(cells[4].config.algorithm, core::Algorithm::PerigeeSubset);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
}

TEST(ExpandGrid, LabelsNameOnlySweptAxes) {
  SweepSpec spec = small_spec();
  spec.nodes = {40, 60};
  const auto cells = expand_grid(spec);
  EXPECT_EQ(cells[0].label, "algorithm=random n=40");
  EXPECT_EQ(cells[3].label, "algorithm=perigee-subset n=60");
}

TEST(ExpandGrid, UnsweptSpecYieldsOneBaseCell) {
  SweepSpec spec;
  spec.base.net.n = 50;
  const auto cells = expand_grid(spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].label, "base");
  EXPECT_EQ(cells[0].config.net.n, 50u);
}

TEST(SweepRunner, JobCountDoesNotChangeResults) {
  const SweepSpec spec = small_spec();
  const SweepResult sequential = SweepRunner(1).run(spec);
  const SweepResult parallel = SweepRunner(8).run(spec);

  ASSERT_EQ(sequential.cells.size(), parallel.cells.size());
  for (std::size_t c = 0; c < sequential.cells.size(); ++c) {
    EXPECT_EQ(sequential.cells[c].cell.label, parallel.cells[c].cell.label);
    // Bit-for-bit: the parallel path must be the sequential path, reordered.
    EXPECT_EQ(sequential.cells[c].curve.mean, parallel.cells[c].curve.mean);
    EXPECT_EQ(sequential.cells[c].curve.stddev,
              parallel.cells[c].curve.stddev);
    EXPECT_EQ(sequential.cells[c].curve50.mean,
              parallel.cells[c].curve50.mean);
  }

  // And so must the serialized artifacts, byte for byte.
  std::ostringstream a, b;
  write_json(a, spec, sequential);
  write_json(b, spec, parallel);
  EXPECT_EQ(a.str(), b.str());
}

TEST(SweepRunner, MultiSeedMatchesCoreApi) {
  SweepSpec spec = small_spec();
  spec.algorithms = {core::Algorithm::PerigeeSubset};
  const SweepResult result = SweepRunner(4).run(spec);
  ASSERT_EQ(result.cells.size(), 1u);

  core::ExperimentConfig config = spec.base;
  config.algorithm = core::Algorithm::PerigeeSubset;
  const auto reference = core::run_multi_seed(config, spec.seeds, 1);
  EXPECT_EQ(result.cells[0].curve.mean, reference.curve.mean);
  EXPECT_EQ(result.cells[0].curve50.mean, reference.curve50.mean);
}

TEST(SweepRunner, ProgressReachesTotal) {
  SweepSpec spec = small_spec();
  spec.algorithms = {core::Algorithm::Random};
  std::atomic<std::size_t> last{0};
  std::atomic<std::size_t> calls{0};
  SweepRunner(2).run(spec, [&](std::size_t done, std::size_t total) {
    calls.fetch_add(1);
    if (done == total) last.store(done);
  });
  EXPECT_EQ(calls.load(), 3u);  // 1 cell x 3 seeds
  EXPECT_EQ(last.load(), 3u);
}

TEST(SweepJson, RoundTripsThroughParser) {
  const SweepSpec spec = small_spec();
  const SweepResult result = SweepRunner(2).run(spec);
  std::ostringstream os;
  write_json(os, spec, result);

  const JsonValue doc = JsonValue::parse(os.str());
  ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
  EXPECT_EQ(doc.find("name")->string, "test");
  EXPECT_DOUBLE_EQ(doc.find("spec")->find("seeds")->number, 3.0);
  EXPECT_DOUBLE_EQ(doc.find("spec")->find("base_seed")->number, 7.0);

  const JsonValue* cells = doc.find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->items.size(), result.cells.size());
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const JsonValue& cell = cells->items[c];
    EXPECT_EQ(cell.find("label")->string, result.cells[c].cell.label);
    const JsonValue* mean = cell.find("curve")->find("mean");
    ASSERT_NE(mean, nullptr);
    ASSERT_EQ(mean->items.size(), result.cells[c].curve.mean.size());
    for (std::size_t i = 0; i < mean->items.size(); ++i) {
      // to_chars shortest form parses back to the exact same double.
      EXPECT_EQ(mean->items[i].number, result.cells[c].curve.mean[i]);
    }
  }
}

TEST(JsonWriter, EscapesAndNesting) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.field("s", "a\"b\\c\nd");
  w.field("t", true);
  w.field("f", false);
  w.key("arr");
  w.begin_array();
  w.value(static_cast<std::int64_t>(-3));
  w.value(0.5);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(),
            R"({"s":"a\"b\\c\nd","t":true,"f":false,"arr":[-3,0.5,null]})");

  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.find("s")->string, "a\"b\\c\nd");
  EXPECT_TRUE(doc.find("t")->boolean);
  EXPECT_EQ(doc.find("arr")->items.size(), 3u);
  EXPECT_EQ(doc.find("arr")->items[2].kind, JsonValue::Kind::Null);
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]2"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("tru"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("1 2"), std::runtime_error);
}

TEST(JsonParser, DecodesUnicodeEscapesToUtf8) {
  // ASCII range.
  EXPECT_EQ(JsonValue::parse("\"\\u0041\\u007a\"").string, "Az");
  // Two-byte sequence (é, U+00E9) — the bytes JsonWriter would emit raw, so
  // an escaped spelling parses to the same std::string as the raw one.
  EXPECT_EQ(JsonValue::parse("\"caf\\u00e9\"").string, "caf\xc3\xa9");
  EXPECT_EQ(JsonValue::parse("\"caf\\u00e9\"").string,
            JsonValue::parse("\"caf\xc3\xa9\"").string);
  // Three-byte sequence (€, U+20AC).
  EXPECT_EQ(JsonValue::parse("\"\\u20AC\"").string, "\xe2\x82\xac");
  // Surrogate pair (😀, U+1F600) -> four-byte UTF-8.
  EXPECT_EQ(JsonValue::parse("\"\\ud83d\\ude00\"").string,
            "\xf0\x9f\x98\x80");
  // \u0000 is representable (NUL inside the string, not a terminator).
  const std::string nul = JsonValue::parse("\"a\\u0000b\"").string;
  ASSERT_EQ(nul.size(), 3u);
  EXPECT_EQ(nul[1], '\0');
}

TEST(JsonParser, RejectsMalformedUnicodeEscapes) {
  // Bad hex digit.
  EXPECT_THROW(JsonValue::parse("\"\\u12g4\""), std::runtime_error);
  // Truncated escape.
  EXPECT_THROW(JsonValue::parse("\"\\u12\""), std::runtime_error);
  // Lone low surrogate.
  EXPECT_THROW(JsonValue::parse("\"\\ude00\""), std::runtime_error);
  // High surrogate not followed by an escape at all.
  EXPECT_THROW(JsonValue::parse("\"\\ud83dx\""), std::runtime_error);
  // High surrogate followed by a non-surrogate escape.
  EXPECT_THROW(JsonValue::parse("\"\\ud83d\\u0041\""), std::runtime_error);
  // High surrogate at end of input.
  EXPECT_THROW(JsonValue::parse("\"\\ud83d\""), std::runtime_error);
}

TEST(JsonParser, ParsesNumbers) {
  const JsonValue doc = JsonValue::parse("[-1.5e3, 0, 42, 0.125]");
  ASSERT_EQ(doc.items.size(), 4u);
  EXPECT_DOUBLE_EQ(doc.items[0].number, -1500.0);
  EXPECT_DOUBLE_EQ(doc.items[1].number, 0.0);
  EXPECT_DOUBLE_EQ(doc.items[2].number, 42.0);
  EXPECT_DOUBLE_EQ(doc.items[3].number, 0.125);
}

TEST(AtomicWrite, WritesParseableFileAndLeavesNoTemp) {
  const std::string path =
      ::testing::TempDir() + "perigee_atomic_write_test.json";
  std::remove(path.c_str());
  EXPECT_TRUE(write_file_atomic(path, [](std::ostream& os) {
    os << "{\"ok\": true}\n";
  }));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_TRUE(JsonValue::parse(content.str()).find("ok")->boolean);
  // The staging file must be gone after the rename.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(AtomicWrite, KeepsPreviousFileIntactWhenProducerFails) {
  const std::string path =
      ::testing::TempDir() + "perigee_atomic_keep_test.json";
  ASSERT_TRUE(write_file_atomic(
      path, [](std::ostream& os) { os << "{\"generation\": 1}\n"; }));
  // A failing rewrite (stream pushed into an error state mid-production,
  // the moral equivalent of a full disk) must not touch the existing file.
  EXPECT_FALSE(write_file_atomic(path, [](std::ostream& os) {
    os << "{\"generation\": 2, truncated";
    os.setstate(std::ios::failbit);
  }));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(JsonValue::parse(content.str()).find("generation")->number, 1.0);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(AtomicWrite, FailsCleanlyOnUnwritablePath) {
  EXPECT_FALSE(write_file_atomic(
      "/nonexistent-perigee-dir/out.json",
      [](std::ostream& os) { os << "{}"; }));
}

TEST(AtomicWrite, SweepResultsLandAtomically) {
  SweepSpec spec;
  spec.name = "atomic";
  spec.base.net.n = 24;
  spec.base.rounds = 0;
  spec.base.algorithm = core::Algorithm::Random;
  spec.seeds = 1;
  const SweepRunner runner(1);
  const SweepResult result = runner.run(spec, nullptr);
  const std::string path =
      ::testing::TempDir() + "perigee_atomic_sweep_test.json";
  ASSERT_TRUE(write_json_file(path, spec, result));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const JsonValue doc = JsonValue::parse(content.str());
  EXPECT_EQ(doc.find("name")->string, "atomic");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace perigee::runner
