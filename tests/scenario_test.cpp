// Scenario layer (src/scenario): static regimes (heterogeneity tiers, geo
// clustering, adversarial withholding) must be deterministic and composable;
// the churn driver's join/leave schedule must keep the CSR engine bit-
// identical to the legacy oracle (extending the sim_csr_parity_test pattern
// to mutating topologies); and scenario sweeps must stay byte-identical at
// any --jobs value.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <sstream>

#include "core/experiment.hpp"
#include "core/perigee.hpp"
#include "metrics/eval.hpp"
#include "mining/hashpower.hpp"
#include "net/addrman.hpp"
#include "runner/sweep.hpp"
#include "scenario/driver.hpp"
#include "scenario/scenario.hpp"
#include "sim/broadcast.hpp"
#include "sim/rounds.hpp"
#include "topo/builders.hpp"
#include "util/stats.hpp"

namespace perigee {
namespace {

net::Network make_network(std::size_t n, std::uint64_t seed) {
  net::NetworkOptions options;
  options.n = n;
  options.seed = seed;
  return net::Network::build(options);
}

// Field-by-field profile comparison (memcmp would compare padding bytes).
::testing::AssertionResult profiles_equal(
    const std::vector<net::NodeProfile>& a,
    const std::vector<net::NodeProfile>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  for (std::size_t v = 0; v < a.size(); ++v) {
    const bool same = a[v].region == b[v].region &&
                      a[v].coords == b[v].coords &&
                      a[v].access_ms == b[v].access_ms &&
                      a[v].validation_ms == b[v].validation_ms &&
                      a[v].bandwidth_mbps == b[v].bandwidth_mbps &&
                      a[v].hash_power == b[v].hash_power &&
                      a[v].relay == b[v].relay &&
                      a[v].forwards == b[v].forwards;
    if (!same) {
      return ::testing::AssertionFailure() << "profiles differ at node " << v;
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(ScenarioSpec, DefaultIsInert) {
  const scenario::ScenarioSpec spec;
  EXPECT_FALSE(spec.any());
  EXPECT_FALSE(spec.has_static());

  // An inert spec must leave the network untouched.
  auto network = make_network(60, 3);
  const auto before = network.profiles();
  scenario::apply_static_regimes(network, spec, 3);
  EXPECT_TRUE(profiles_equal(before, network.profiles()));
}

TEST(ScenarioSpec, StaticRegimesAreDeterministic) {
  scenario::ScenarioSpec spec;
  spec.geo.concentration = 0.3;
  spec.hetero.profile = scenario::HeteroProfile::Datacenter;
  spec.adversary.withhold_fraction = 0.1;

  auto a = make_network(120, 5);
  auto b = make_network(120, 5);
  scenario::apply_static_regimes(a, spec, 5);
  scenario::apply_static_regimes(b, spec, 5);
  EXPECT_TRUE(profiles_equal(a.profiles(), b.profiles()));
}

TEST(ScenarioSpec, AdversaryMarksFractionAndRenormalizesHash) {
  scenario::ScenarioSpec spec;
  spec.adversary.withhold_fraction = 0.2;

  auto network = make_network(200, 7);
  util::Rng hash_rng(7);
  mining::assign_hash_power(network, mining::HashPowerModel::Exponential,
                            hash_rng);
  scenario::apply_static_regimes(network, spec, 7);

  std::size_t withholders = 0;
  for (const auto& p : network.profiles()) {
    if (!p.forwards) {
      ++withholders;
      EXPECT_EQ(p.hash_power, 0.0);
    }
  }
  EXPECT_EQ(withholders, 40u);  // 0.2 * 200
  EXPECT_NEAR(mining::total_hash_power(network), 1.0, 1e-9);
}

TEST(ScenarioSpec, HeteroTiersBandwidthValidationAndHash) {
  scenario::ScenarioSpec spec;
  spec.hetero.profile = scenario::HeteroProfile::Datacenter;
  spec.hetero.fast_fraction = 0.25;

  // Bandwidth tiers force a non-zero block size pre-build.
  net::NetworkOptions options;
  options.n = 160;
  ASSERT_EQ(options.block_size_kb, 0.0);
  scenario::adjust_network_options(options, spec);
  EXPECT_EQ(options.block_size_kb, spec.hetero.block_size_kb);

  auto network = net::Network::build(options);
  util::Rng hash_rng(9);
  mining::assign_hash_power(network, mining::HashPowerModel::Uniform,
                            hash_rng);
  scenario::apply_static_regimes(network, spec, 9);

  std::size_t fast = 0;
  double fast_hash = 0.0;
  for (const auto& p : network.profiles()) {
    if (p.bandwidth_mbps == spec.hetero.fast_bandwidth_mbps) {
      ++fast;
      fast_hash += p.hash_power;
    } else {
      EXPECT_EQ(p.bandwidth_mbps, spec.hetero.slow_bandwidth_mbps);
    }
  }
  EXPECT_EQ(fast, 40u);  // 0.25 * 160
  // Datacenter mix concentrates hash power on the fast tier.
  EXPECT_NEAR(fast_hash, spec.hetero.fast_hash_share, 1e-9);
  EXPECT_NEAR(mining::total_hash_power(network), 1.0, 1e-9);
}

TEST(ScenarioSpec, GeoClusterConcentratesHubRegion) {
  scenario::ScenarioSpec spec;
  spec.geo.concentration = 0.5;
  spec.geo.hub = net::Region::China;

  auto network = make_network(200, 11);
  scenario::apply_static_regimes(network, spec, 11);
  std::size_t in_hub = 0;
  for (const auto& p : network.profiles()) {
    in_hub += p.region == net::Region::China ? 1 : 0;
  }
  // At least the moved fraction (plus whoever the mix already placed there).
  EXPECT_GE(in_hub, 100u);
}

TEST(ChurnDriver, DowntimeScheduleStashesAndRestores) {
  const std::size_t n = 100;
  auto network = make_network(n, 13);
  util::Rng hash_rng(13);
  mining::assign_hash_power(network, mining::HashPowerModel::Uniform,
                            hash_rng);
  net::Topology topology(n);
  util::Rng rng(13);
  topo::build_random(topology, rng);
  net::AddrMan addrman(n, 50);
  util::Rng boot(13);
  addrman.bootstrap(boot, 20);

  scenario::ChurnRegime regime;
  regime.rate = 0.05;
  regime.start_round = 1;
  regime.downtime_rounds = 2;
  scenario::ChurnDriver driver(regime, topology, network, 13, &addrman, 20);

  // Round 0 is before start_round: nothing happens.
  EXPECT_FALSE(driver.before_round(0));
  EXPECT_EQ(driver.departures(), 0u);
  EXPECT_EQ(driver.currently_down(), 0u);

  // Round 1: 5 nodes leave and go dark; their hash power is stashed.
  EXPECT_TRUE(driver.before_round(1));
  EXPECT_EQ(driver.departures(), 5u);
  EXPECT_EQ(driver.currently_down(), 5u);
  std::vector<net::NodeId> dark;
  for (net::NodeId v = 0; v < n; ++v) {
    if (driver.is_down(v)) {
      dark.push_back(v);
      EXPECT_EQ(network.profile(v).hash_power, 0.0);
      EXPECT_EQ(topology.out_count(v) + topology.in_count(v), 0);
    }
  }
  ASSERT_EQ(dark.size(), 5u);

  // While dark, connections dialed at a dead address are torn down again.
  // Dial from a live node with a free outgoing slot (the departures just
  // freed slots at every former in-dialer of a dark node).
  const net::NodeId dead = dark.front();
  net::NodeId dialer = net::kInvalidNode;
  for (net::NodeId v = 0; v < n; ++v) {
    if (!driver.is_down(v) && !topology.out_full(v)) {
      dialer = v;
      break;
    }
  }
  ASSERT_NE(dialer, net::kInvalidNode);
  ASSERT_TRUE(topology.connect(dialer, dead));
  driver.before_round(2);
  EXPECT_EQ(topology.in_count(dead), 0);

  // Round 3 = 1 + downtime: the round-1 leavers rejoin with fresh dials,
  // restored hash power, and a re-bootstrapped address book.
  EXPECT_TRUE(driver.before_round(3));
  for (const net::NodeId v : dark) {
    if (driver.is_down(v)) continue;  // re-churned by round 3's departures
    EXPECT_GT(network.profile(v).hash_power, 0.0);
    // Full out_cap redial, minus edges lost to peers that departed in this
    // same round's churn phase (processed after the rejoins).
    EXPECT_GE(topology.out_count(v), topology.limits().out_cap - 5);
    EXPECT_GT(topology.out_count(v), 0);
    EXPECT_EQ(addrman.known_count(v), 20u);
  }
  topology.validate();
}

TEST(ChurnDriver, InstantRejoinKeepsHashAndResetsBook) {
  const std::size_t n = 80;
  auto network = make_network(n, 17);
  net::Topology topology(n);
  util::Rng rng(17);
  topo::build_random(topology, rng);
  net::AddrMan addrman(n, 40);
  util::Rng boot(17);
  addrman.bootstrap(boot, 10);

  scenario::ChurnRegime regime;
  regime.rate = 0.1;
  regime.start_round = 0;
  scenario::ChurnDriver driver(regime, topology, network, 17, &addrman, 10);

  // Instant rejoin never touches hash power (no sampler refresh needed).
  EXPECT_FALSE(driver.before_round(0));
  EXPECT_EQ(driver.departures(), 8u);
  EXPECT_EQ(driver.currently_down(), 0u);
  ASSERT_EQ(driver.last_rejoined().size(), 8u);
  for (const net::NodeId v : driver.last_rejoined()) {
    // A later leaver in the same round may have torn down an edge this node
    // just dialed; only the last rejoiner is guaranteed the full redial.
    EXPECT_GT(topology.out_count(v), 0);
    EXPECT_EQ(addrman.known_count(v), 10u);
  }
  EXPECT_EQ(topology.out_count(driver.last_rejoined().back()),
            topology.limits().out_cap);
  topology.validate();
}

// UCB maps one update epoch onto blocks_per_round single-block rounds.
// The schedule must land only on epoch boundaries, but a dark node's dead
// IP must shed connections on *every* round — UCB selectors rewire between
// boundaries and a "down" node must never relay.
TEST(ChurnDriver, EpochScalingKeepsScheduleButSweepsDeadIpsEveryRound) {
  const std::size_t n = 50;
  auto network = make_network(n, 41);
  net::Topology topology(n);
  util::Rng rng(41);
  topo::build_random(topology, rng);

  scenario::ChurnRegime regime;
  regime.rate = 0.1;
  regime.start_round = 0;
  regime.downtime_rounds = 1;
  const std::size_t epoch_rounds = 5;
  scenario::ChurnDriver driver(regime, topology, network, 41, nullptr, 0,
                               epoch_rounds);

  // Round 0 = epoch 0 boundary: 5 nodes go dark for one epoch.
  driver.before_round(0);
  ASSERT_EQ(driver.currently_down(), 5u);
  net::NodeId dead = 0;
  while (!driver.is_down(dead)) ++dead;

  // Mid-epoch: an exploration dial at the dead address is torn down on the
  // very next round, and the schedule itself stays untouched.
  net::NodeId dialer = 0;
  while (driver.is_down(dialer) || topology.out_full(dialer)) ++dialer;
  ASSERT_TRUE(topology.connect(dialer, dead));
  driver.before_round(1);
  EXPECT_EQ(topology.in_count(dead), 0);
  EXPECT_TRUE(driver.last_rejoined().empty());
  EXPECT_EQ(driver.currently_down(), 5u);
  EXPECT_EQ(driver.departures(), 5u);

  // Rounds 2..4 are still epoch 0: nobody rejoins or departs.
  driver.before_round(2);
  driver.before_round(3);
  driver.before_round(4);
  EXPECT_EQ(driver.currently_down(), 5u);
  EXPECT_EQ(driver.departures(), 5u);

  // Round 5 = epoch 1 boundary: downtime elapsed, the round-0 leavers
  // rejoin (minus any re-churned by epoch 1's own departures).
  EXPECT_TRUE(driver.before_round(5));
  EXPECT_FALSE(driver.last_rejoined().empty());
  topology.validate();
}

// A probe selector wired exactly the way core::run_experiment wires churn:
// every rejoined node's selector must be reset (fresh participant).
TEST(ChurnDriver, RejoinResetsSelectorState) {
  class ProbeSelector final : public sim::NeighborSelector {
   public:
    explicit ProbeSelector(int* resets) : resets_(resets) {}
    void on_round_end(net::NodeId, sim::RoundContext&) override {}
    void on_reset(net::NodeId) override { ++*resets_; }
    const char* name() const override { return "probe"; }

   private:
    int* resets_;
  };

  const std::size_t n = 60;
  auto network = make_network(n, 19);
  net::Topology topology(n);
  util::Rng rng(19);
  topo::build_random(topology, rng);

  int resets = 0;
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  for (std::size_t i = 0; i < n; ++i) {
    selectors.push_back(std::make_unique<ProbeSelector>(&resets));
  }
  sim::RoundRunner runner(network, topology, std::move(selectors), 5, 19);

  scenario::ChurnRegime regime;
  regime.rate = 0.1;
  regime.start_round = 0;
  scenario::ChurnDriver driver(regime, topology, network, 19);
  std::size_t rejoins = 0;
  runner.set_pre_round_hook([&](std::size_t round) {
    if (driver.before_round(round)) runner.refresh_hash_power();
    for (const net::NodeId v : driver.last_rejoined()) {
      runner.reset_selector(v);
      ++rejoins;
    }
  });
  runner.run_rounds(4);
  EXPECT_GT(rejoins, 0u);
  EXPECT_EQ(static_cast<std::size_t>(resets), rejoins);
}

// The tentpole parity guarantee: under churn the topology mutates between
// rounds, the CsrCache recompiles, and every block of every round must still
// match the legacy Topology-walking oracle byte for byte.
TEST(ScenarioParity, ChurnMutatedTopologyKeepsCsrLegacyParity) {
  const std::size_t n = 120;
  auto network = make_network(n, 23);
  net::Topology topology(n);
  util::Rng rng(23);
  topo::build_random(topology, rng);

  sim::RoundRunner runner(
      network, topology,
      core::make_selectors(n, core::Algorithm::PerigeeSubset), 10, 23);
  scenario::ChurnRegime regime;
  regime.rate = 0.05;
  regime.start_round = 0;
  regime.downtime_rounds = 1;  // exercise dark nodes + dead-IP sweeps too
  scenario::ChurnDriver driver(regime, topology, network, 23);
  runner.set_pre_round_hook([&](std::size_t round) {
    if (driver.before_round(round)) runner.refresh_hash_power();
    for (const net::NodeId v : driver.last_rejoined()) {
      runner.reset_selector(v);
    }
  });

  std::size_t blocks_checked = 0;
  runner.set_block_hook([&](const sim::BroadcastResult& fast) {
    // The topology is static within a round; the oracle reads it live.
    const auto oracle = sim::simulate_broadcast(topology, network, fast.miner);
    ASSERT_EQ(fast.arrival.size(), oracle.arrival.size());
    EXPECT_TRUE(std::memcmp(fast.arrival.data(), oracle.arrival.data(),
                            oracle.arrival.size() * sizeof(double)) == 0)
        << "miner " << fast.miner;
    EXPECT_TRUE(std::memcmp(fast.ready.data(), oracle.ready.data(),
                            oracle.ready.size() * sizeof(double)) == 0)
        << "miner " << fast.miner;
    ++blocks_checked;
  });
  runner.run_rounds(6);
  EXPECT_EQ(blocks_checked, 60u);
  EXPECT_GT(driver.departures(), 0u);
  topology.validate();
}

// Same oracle check for an adversary scenario built through the full
// config path (core::build_scenario applies the withholding regime).
TEST(ScenarioParity, AdversaryScenarioKeepsCsrLegacyParity) {
  core::ExperimentConfig config;
  config.net.n = 100;
  config.seed = 29;
  config.scenario.adversary.withhold_fraction = 0.15;
  core::Scenario scenario = core::build_scenario(config);
  build_initial_topology(config, scenario);

  std::size_t withholders = 0;
  for (const auto& p : scenario.network.profiles()) {
    withholders += p.forwards ? 0 : 1;
  }
  EXPECT_EQ(withholders, 15u);

  sim::RoundRunner runner(
      scenario.network, scenario.topology,
      core::make_selectors(config.net.n, core::Algorithm::PerigeeSubset), 10,
      config.seed);
  std::size_t blocks_checked = 0;
  runner.set_block_hook([&](const sim::BroadcastResult& fast) {
    const auto oracle = sim::simulate_broadcast(scenario.topology,
                                                scenario.network, fast.miner);
    EXPECT_TRUE(std::memcmp(fast.arrival.data(), oracle.arrival.data(),
                            oracle.arrival.size() * sizeof(double)) == 0)
        << "miner " << fast.miner;
    ++blocks_checked;
  });
  runner.run_rounds(4);
  EXPECT_EQ(blocks_checked, 40u);
}

TEST(ScenarioExperiment, ChurnExperimentSelfHeals) {
  core::ExperimentConfig config;
  config.net.n = 120;
  config.rounds = 8;
  config.blocks_per_round = 20;
  config.algorithm = core::Algorithm::PerigeeSubset;
  config.seed = 31;
  config.scenario.churn.rate = 0.05;  // instant-rejoin reset churn

  const auto result = core::run_experiment(config);
  ASSERT_EQ(result.lambda.size(), config.net.n);
  // Reset churn keeps every node connected: λ stays finite everywhere.
  for (const double l : result.lambda) EXPECT_TRUE(std::isfinite(l));
}

TEST(ScenarioExperiment, ChurnRunsRoundsForStaticBaselines) {
  // Static algorithms normally skip the round loop; under churn they must
  // live through the schedule (and end up worse than churn-free).
  core::ExperimentConfig config;
  config.net.n = 120;
  config.rounds = 10;
  config.blocks_per_round = 5;
  config.algorithm = core::Algorithm::Random;
  config.seed = 37;

  const auto baseline = core::run_experiment(config);
  config.scenario.churn.rate = 0.05;
  const auto churned = core::run_experiment(config);
  EXPECT_GT(util::mean(churned.lambda), util::mean(baseline.lambda));
}

TEST(ScenarioSweep, AxesExpandIntoLabeledCells) {
  runner::SweepSpec spec;
  spec.base.net.n = 40;
  spec.algorithms = {core::Algorithm::PerigeeSubset};
  spec.churn_rates = {0.0, 0.05};
  spec.withhold_fractions = {0.0, 0.1};
  spec.hetero_profiles = {scenario::HeteroProfile::Off,
                          scenario::HeteroProfile::Datacenter};

  const auto cells = runner::expand_grid(spec);
  ASSERT_EQ(cells.size(), 8u);
  EXPECT_EQ(cells[0].label,
            "algorithm=perigee-subset churn=0 hetero=off withhold=0");
  EXPECT_EQ(cells[7].label,
            "algorithm=perigee-subset churn=0.05 hetero=datacenter "
            "withhold=0.1");
  EXPECT_EQ(cells[7].config.scenario.churn.rate, 0.05);
  EXPECT_EQ(cells[7].config.scenario.hetero.profile,
            scenario::HeteroProfile::Datacenter);
  EXPECT_EQ(cells[7].config.scenario.adversary.withhold_fraction, 0.1);
  // Unswept specs leave the base scenario alone.
  EXPECT_FALSE(cells[0].config.scenario.any());
}

TEST(ScenarioSweep, JobsCountIsInvisibleByteForByte) {
  runner::SweepSpec spec;
  spec.name = "scenario-determinism";
  spec.base.net.n = 60;
  spec.base.rounds = 3;
  spec.base.blocks_per_round = 10;
  spec.algorithms = {core::Algorithm::PerigeeSubset};
  spec.churn_rates = {0.0, 0.05};
  spec.withhold_fractions = {0.0, 0.1};
  spec.seeds = 2;

  const auto sequential = runner::SweepRunner(1).run(spec);
  const auto parallel = runner::SweepRunner(3).run(spec);
  std::ostringstream a, b;
  runner::write_json(a, spec, sequential);
  runner::write_json(b, spec, parallel);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ScenarioNames, HeteroProfileRoundTrips) {
  for (const auto profile :
       {scenario::HeteroProfile::Off, scenario::HeteroProfile::Bandwidth,
        scenario::HeteroProfile::Validation,
        scenario::HeteroProfile::Datacenter}) {
    const auto name = scenario::hetero_profile_name(profile);
    const auto back = scenario::hetero_profile_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, profile);
  }
  EXPECT_FALSE(scenario::hetero_profile_from_name("warp-drive").has_value());
}

}  // namespace
}  // namespace perigee
