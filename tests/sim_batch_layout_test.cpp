// False-sharing regression guards for the batched engine's SoA layout
// (ISSUE 10 micro-pass): per-source result stripes must be padded to whole
// cache lines so adjacent pool workers never write the same line, and
// per-worker scratch lanes must start cache-line aligned. These are layout
// contracts — cheap to assert, expensive to rediscover with a profiler.
#include <gtest/gtest.h>

#include <cstdint>

#include "net/csr.hpp"
#include "sim/batch.hpp"
#include "sim/parallel.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace perigee {
namespace {

constexpr std::size_t kLine = 64;

// The compile-time halves of the guard (duplicated from the engine TU so a
// header regression fails this test even if the TU asserts were dropped;
// ParallelScratch::Lane is TU-private, its static_assert lives in
// parallel.cpp and its runtime alignment is checked below).
static_assert(alignof(sim::MultiSourceScratch::Lane) >= kLine,
              "MultiSourceScratch lanes must be cache-line aligned");
static_assert(sizeof(sim::BucketQueue::Entry) == 16,
              "bucket entries are packed to two per load pair");

TEST(BatchLayout, StripeStrideIsCacheLinePadded) {
  // Stride rounds nodes up to a whole line of doubles and never down.
  for (const std::size_t nodes :
       {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{9},
        std::size_t{200}, std::size_t{1000}, std::size_t{1001}}) {
    const std::size_t stride = sim::MultiSourceResult::stride_for(nodes);
    EXPECT_GE(stride, nodes);
    EXPECT_EQ(stride % sim::MultiSourceResult::kLineDoubles, 0u)
        << "nodes=" << nodes;
    EXPECT_LT(stride - nodes, sim::MultiSourceResult::kLineDoubles);
  }
}

TEST(BatchLayout, AdjacentStripesNeverShareACacheLine) {
  // An unpadded n (not a multiple of 8 doubles) is the regression shape:
  // stripe s's last element and stripe s+1's first must sit on different
  // lines once the engine has laid the arena out.
  net::NetworkOptions options;
  options.n = 101;  // deliberately line-misaligned
  options.seed = 5;
  const net::Network network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(5);
  topo::build_random(topology, rng);
  const net::CsrTopology csr = net::CsrTopology::build(topology, network);

  const std::vector<net::NodeId> sources{0, 1, 2, 3};
  sim::MultiSourceScratch scratch;
  sim::MultiSourceResult result;
  sim::simulate_broadcast_batch(csr, sources, scratch, result);

  ASSERT_EQ(result.nodes, options.n);
  for (std::size_t s = 0; s + 1 < sources.size(); ++s) {
    const auto last =
        reinterpret_cast<std::uintptr_t>(&result.arrival_of(s).back());
    const auto next =
        reinterpret_cast<std::uintptr_t>(&result.arrival_of(s + 1).front());
    EXPECT_NE(last / kLine, next / kLine) << "stripe " << s;
    const auto rlast =
        reinterpret_cast<std::uintptr_t>(&result.ready_of(s).back());
    const auto rnext =
        reinterpret_cast<std::uintptr_t>(&result.ready_of(s + 1).front());
    EXPECT_NE(rlast / kLine, rnext / kLine) << "ready stripe " << s;
  }
  // The pad tail is invisible to consumers: spans are exactly nodes long.
  EXPECT_EQ(result.arrival_of(0).size(), result.nodes);
  EXPECT_EQ(result.arrival.size(), sources.size() * result.stride());
}

TEST(BatchLayout, ScratchLanesStartOnTheirOwnCacheLine) {
  sim::MultiSourceScratch scratch;
  scratch.ensure_lanes(4);
  for (std::size_t i = 0; i < scratch.lanes(); ++i) {
    const auto addr = reinterpret_cast<std::uintptr_t>(&scratch.lane(i));
    EXPECT_EQ(addr % kLine, 0u) << "lane " << i;
  }
  sim::ParallelScratch pscratch;
  pscratch.ensure_lanes(4);
  for (std::size_t i = 0; i < pscratch.lanes(); ++i) {
    const auto addr = reinterpret_cast<std::uintptr_t>(&pscratch.lane(i));
    EXPECT_EQ(addr % kLine, 0u) << "parallel lane " << i;
  }
}

}  // namespace
}  // namespace perigee
