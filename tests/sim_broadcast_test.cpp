#include "sim/broadcast.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace perigee::sim {
namespace {

// A network whose link delays and validation times are fully controlled:
// Euclidean latency over hand-placed coordinates, fixed validation.
net::Network make_line_network(const std::vector<double>& xs,
                               double validation_ms) {
  net::NetworkOptions options;
  options.n = xs.size();
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 1;
  options.embed_scale_ms = 1.0;
  options.handshake_factor = 1.0;  // tests reason about raw link delays
  options.validation_spread = 0.0;
  options.validation_mean_ms = validation_ms;
  net::Network network = net::Network::build(options);
  auto& profiles = network.mutable_profiles();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    profiles[i].coords = {xs[i], 0, 0, 0, 0};
  }
  return network;
}

TEST(Broadcast, ChainArrivalTimes) {
  // Nodes at x = 0, 10, 30: chain 0-1-2. Validation 5 ms.
  auto network = make_line_network({0.0, 10.0, 30.0}, 5.0);
  net::Topology t(3);
  ASSERT_TRUE(t.connect(0, 1));
  ASSERT_TRUE(t.connect(1, 2));

  const auto result = simulate_broadcast(t, network, 0);
  EXPECT_DOUBLE_EQ(result.arrival[0], 0.0);
  EXPECT_DOUBLE_EQ(result.ready[0], 0.0);  // miner skips validation
  EXPECT_DOUBLE_EQ(result.arrival[1], 10.0);
  EXPECT_DOUBLE_EQ(result.ready[1], 15.0);
  EXPECT_DOUBLE_EQ(result.arrival[2], 35.0);  // 15 + |30-10|
  EXPECT_DOUBLE_EQ(result.ready[2], 40.0);
}

TEST(Broadcast, MinerInMiddleOfChain) {
  auto network = make_line_network({0.0, 10.0, 30.0}, 5.0);
  net::Topology t(3);
  ASSERT_TRUE(t.connect(0, 1));
  ASSERT_TRUE(t.connect(1, 2));
  const auto result = simulate_broadcast(t, network, 1);
  EXPECT_DOUBLE_EQ(result.arrival[1], 0.0);
  EXPECT_DOUBLE_EQ(result.arrival[0], 10.0);
  EXPECT_DOUBLE_EQ(result.arrival[2], 20.0);
}

TEST(Broadcast, PicksFasterOfTwoPaths) {
  // Square: 0 at x=0, 1 at x=100, 2 at x=40. Edges 0-1 direct, 0-2, 2-1.
  // Direct: 100. Via 2: 40 + validation 5 + 60 = 105 -> direct wins.
  auto network = make_line_network({0.0, 100.0, 40.0}, 5.0);
  net::Topology t(3);
  ASSERT_TRUE(t.connect(0, 1));
  ASSERT_TRUE(t.connect(0, 2));
  ASSERT_TRUE(t.connect(2, 1));
  const auto result = simulate_broadcast(t, network, 0);
  EXPECT_DOUBLE_EQ(result.arrival[1], 100.0);

  // Larger validation makes the indirect path even worse; smaller validation
  // (0 ms) makes it the winner: 40 + 0 + 60 = 100 ties direct.
  auto fast_net = make_line_network({0.0, 100.0, 40.0}, 0.0);
  const auto result2 = simulate_broadcast(t, fast_net, 0);
  EXPECT_DOUBLE_EQ(result2.arrival[1], 100.0);
}

TEST(Broadcast, ValidationDelaysRelayNotReception) {
  auto network = make_line_network({0.0, 10.0, 20.0}, 100.0);
  net::Topology t(3);
  ASSERT_TRUE(t.connect(0, 1));
  ASSERT_TRUE(t.connect(1, 2));
  const auto result = simulate_broadcast(t, network, 0);
  // Node 1 receives at 10 (no validation on receive), relays at 110.
  EXPECT_DOUBLE_EQ(result.arrival[1], 10.0);
  EXPECT_DOUBLE_EQ(result.arrival[2], 120.0);
}

TEST(Broadcast, UnreachableNodesAreInfinite) {
  auto network = make_line_network({0.0, 1.0, 2.0, 50.0}, 1.0);
  net::Topology t(4);
  ASSERT_TRUE(t.connect(0, 1));
  ASSERT_TRUE(t.connect(1, 2));
  // Node 3 is isolated.
  const auto result = simulate_broadcast(t, network, 0);
  EXPECT_TRUE(std::isinf(result.arrival[3]));
  EXPECT_TRUE(std::isinf(result.ready[3]));
}

TEST(Broadcast, InfraEdgeUsesOverrideLatency) {
  auto network = make_line_network({0.0, 1000.0}, 0.0);
  net::Topology t(2);
  ASSERT_TRUE(t.add_infra_edge(0, 1, 5.0));
  const auto result = simulate_broadcast(t, network, 0);
  EXPECT_DOUBLE_EQ(result.arrival[1], 5.0);  // not the 1000 ms geo distance
}

TEST(Broadcast, CommunicationIsBidirectional) {
  // Edge dialed 0 -> 1, but a block mined at 1 must still reach 0.
  auto network = make_line_network({0.0, 10.0}, 2.0);
  net::Topology t(2);
  ASSERT_TRUE(t.connect(0, 1));
  const auto result = simulate_broadcast(t, network, 1);
  EXPECT_DOUBLE_EQ(result.arrival[0], 10.0);
}

TEST(Broadcast, DeliveryTimeMatchesReadyPlusDelta) {
  auto network = make_line_network({0.0, 10.0, 30.0}, 5.0);
  net::Topology t(3);
  ASSERT_TRUE(t.connect(0, 1));
  ASSERT_TRUE(t.connect(1, 2));
  ASSERT_TRUE(t.connect(0, 2));  // also a direct slow link 0-2
  const auto result = simulate_broadcast(t, network, 0);
  // From node 2's perspective: neighbor 1's copy arrives at ready(1)+20=35,
  // neighbor 0's copy at 0+30=30.
  for (const auto& link : t.adjacency(2)) {
    const double dt = delivery_time(result, link, 2, network);
    if (link.peer == 1) { EXPECT_DOUBLE_EQ(dt, 35.0); }
    if (link.peer == 0) { EXPECT_DOUBLE_EQ(dt, 30.0); }
  }
  // arrival(2) is the min over neighbor deliveries.
  EXPECT_DOUBLE_EQ(result.arrival[2], 30.0);
}

TEST(Broadcast, ArrivalIsMinOverNeighborDeliveries) {
  // Property: on a random topology, arrival(v) == min_u delivery(u -> v) for
  // every non-miner v; the miner's arrival is 0.
  net::NetworkOptions options;
  options.n = 120;
  options.seed = 5;
  auto network = net::Network::build(options);
  net::Topology t(120);
  util::Rng rng(5);
  topo::build_random(t, rng);
  const auto result = simulate_broadcast(t, network, 7);
  for (net::NodeId v = 0; v < t.size(); ++v) {
    if (v == 7) {
      EXPECT_DOUBLE_EQ(result.arrival[v], 0.0);
      continue;
    }
    double min_delivery = util::kInf;
    for (const auto& link : t.adjacency(v)) {
      min_delivery =
          std::min(min_delivery, delivery_time(result, link, v, network));
    }
    EXPECT_NEAR(result.arrival[v], min_delivery, 1e-9);
  }
}

TEST(Broadcast, ReadyEqualsArrivalPlusValidation) {
  net::NetworkOptions options;
  options.n = 80;
  options.seed = 6;
  auto network = net::Network::build(options);
  net::Topology t(80);
  util::Rng rng(6);
  topo::build_random(t, rng);
  const auto result = simulate_broadcast(t, network, 0);
  for (net::NodeId v = 1; v < t.size(); ++v) {
    EXPECT_NEAR(result.ready[v],
                result.arrival[v] + network.validation_ms(v), 1e-9);
  }
}

TEST(Broadcast, TransmissionTermSlowsRelay) {
  net::NetworkOptions options;
  options.n = 40;
  options.seed = 7;
  auto base_net = net::Network::build(options);
  options.block_size_kb = 1000.0;
  options.bandwidth_default_mbps = 10.0;
  auto slow_net = net::Network::build(options);

  net::Topology t(40);
  util::Rng rng(7);
  topo::build_random(t, rng);
  const auto fast = simulate_broadcast(t, base_net, 0);
  const auto slow = simulate_broadcast(t, slow_net, 0);
  for (net::NodeId v = 1; v < t.size(); ++v) {
    EXPECT_GT(slow.arrival[v], fast.arrival[v]);
  }
}

}  // namespace
}  // namespace perigee::sim
