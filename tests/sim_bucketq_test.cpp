// Property tests for the batched engine's monotone bucket queue: pops are
// globally non-decreasing in (key, node), nothing is lost or duplicated,
// and — the property the engines' byte-parity rests on — the pop sequence
// is *exactly* std::priority_queue<pair, greater<>> order for any monotone
// push/pop interleaving, including boundary keys, duplicates, and spans
// that force the bucket ring to grow and remap.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "sim/bucket_queue.hpp"
#include "util/rng.hpp"

namespace perigee {
namespace {

using Item = std::pair<double, net::NodeId>;
using MinHeap = std::priority_queue<Item, std::vector<Item>, std::greater<>>;

// Drives the queue and the reference heap through one random monotone
// workload: pushes stay >= the last popped key, interleaving is random.
// Fills `popped` with the popped sequence; asserts pq equivalence along the
// way (void so gtest fatal assertions are usable).
void run_mirrored(sim::BucketQueue& queue, util::Rng& rng, double width,
                  int ops, double max_step, std::vector<Item>& popped) {
  queue.reset(width);
  popped.clear();
  MinHeap reference;
  double last_pop = 0.0;
  for (int i = 0; i < ops; ++i) {
    const bool do_push = reference.empty() || rng.uniform() < 0.55;
    if (do_push) {
      // Keys cluster near the monotone frontier, with occasional exact
      // bucket-boundary keys and exact duplicates of the last pop.
      double key = last_pop + rng.uniform() * max_step;
      const double r = rng.uniform();
      if (r < 0.1) key = last_pop;  // duplicate frontier key
      if (r >= 0.1 && r < 0.2) {
        // Exact bucket boundary: multiples of width are the fp edge case.
        key = width * static_cast<double>(static_cast<int>(key / width) + 1);
      }
      const auto node = static_cast<net::NodeId>(rng.uniform_index(64));
      queue.push(key, node);
      reference.emplace(key, node);
    } else {
      const auto [key, node] = reference.top();
      reference.pop();
      const sim::BucketQueue::Entry got = queue.pop();
      ASSERT_EQ(got.key, key) << "op " << i;
      ASSERT_EQ(got.node, node) << "op " << i;
      popped.emplace_back(got.key, got.node);
      last_pop = key;
    }
    ASSERT_EQ(queue.size(), reference.size()) << "op " << i;
  }
  while (!reference.empty()) {
    const auto [key, node] = reference.top();
    reference.pop();
    const sim::BucketQueue::Entry got = queue.pop();
    ASSERT_EQ(got.key, key);
    ASSERT_EQ(got.node, node);
    popped.emplace_back(got.key, got.node);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(BucketQueue, EquivalentToPriorityQueueOnRandomMonotoneWorkloads) {
  util::Rng rng(1);
  sim::BucketQueue queue;  // deliberately reused across widths and seeds
  std::vector<Item> popped;
  for (const double width : {0.5, 1.0, 3.0, 0.01}) {
    for (int round = 0; round < 8; ++round) {
      run_mirrored(queue, rng, width, 400, width * 40.0, popped);
    }
  }
}

TEST(BucketQueue, PopsAreMonotoneNonDecreasing) {
  util::Rng rng(2);
  sim::BucketQueue queue;
  std::vector<Item> popped;
  run_mirrored(queue, rng, 2.0, 1200, 25.0, popped);
  ASSERT_FALSE(popped.empty());
  for (std::size_t i = 1; i < popped.size(); ++i) {
    // Keys never decrease: the monotone contract. (Node ids may — a push
    // at the frontier key with a smaller node id legally pops next.)
    EXPECT_LE(popped[i - 1].first, popped[i].first) << "pop " << i;
  }
}

TEST(BucketQueue, NoEntryLostOrDuplicated) {
  util::Rng rng(3);
  sim::BucketQueue queue;
  queue.reset(1.0);
  std::map<std::pair<double, net::NodeId>, int> pushed;
  double frontier = 0.0;
  for (int i = 0; i < 3000; ++i) {
    const double key = frontier + rng.uniform() * 10.0;
    const auto node = static_cast<net::NodeId>(rng.uniform_index(16));
    queue.push(key, node);
    ++pushed[{key, node}];
    // Drain a little so the frontier moves and buckets recycle.
    if (rng.uniform() < 0.3 && !queue.empty()) {
      const auto e = queue.pop();
      frontier = e.key;
      --pushed[{e.key, e.node}];
    }
  }
  while (!queue.empty()) {
    const auto e = queue.pop();
    --pushed[{e.key, e.node}];
  }
  for (const auto& [entry, count] : pushed) {
    EXPECT_EQ(count, 0) << "key " << entry.first << " node " << entry.second;
  }
}

TEST(BucketQueue, RingGrowthPreservesOrder) {
  // Push a burst, then a key far enough ahead to force several doublings of
  // the ring while earlier entries are still pending.
  sim::BucketQueue queue;
  queue.reset(1.0);
  util::Rng rng(4);
  MinHeap reference;
  for (int i = 0; i < 50; ++i) {
    const double key = rng.uniform() * 30.0;
    queue.push(key, static_cast<net::NodeId>(i));
    reference.emplace(key, static_cast<net::NodeId>(i));
  }
  for (const double far : {5000.0, 80000.0, 500000.0}) {
    queue.push(far, 999);
    reference.emplace(far, 999);
  }
  while (!reference.empty()) {
    const auto [key, node] = reference.top();
    reference.pop();
    const auto got = queue.pop();
    EXPECT_EQ(got.key, key);
    EXPECT_EQ(got.node, node);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(BucketQueue, ResetDiscardsPendingEntries) {
  sim::BucketQueue queue;
  queue.reset(1.0);
  for (int i = 0; i < 100; ++i) {
    queue.push(static_cast<double>(i) * 0.7, static_cast<net::NodeId>(i));
  }
  EXPECT_EQ(queue.size(), 100u);
  queue.reset(0.25);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.width(), 0.25);
  queue.push(3.0, 7);
  const auto e = queue.pop();
  EXPECT_EQ(e.key, 3.0);
  EXPECT_EQ(e.node, 7u);
}

// ---- fixed-point mode (ISSUE 10 micro-pass) ------------------------------
//
// The engines run the queue with u32 quantized keys when plan_fixed admits
// the delay range. The bar is identical to double mode: the pop sequence is
// *exactly* std::priority_queue<pair<double, NodeId>, greater<>> order —
// quantization may only coarsen the bucket index, never reorder pops,
// because qkey ties fall through to the exact double key.

// Same harness as run_mirrored but with tie and 1-ulp-apart keys mixed in:
// those collide to one qkey, so ordering must come from the exact double
// compare behind it. With `plan` non-null the queue runs in fixed-point
// mode; with null it runs double-keyed at `gen_width` — the workload stream
// is a pure function of `rng` and `gen_width` either way, so one seed
// replays byte-identically through both modes.
void run_mirrored_fixed(sim::BucketQueue& queue, util::Rng& rng,
                        const sim::BucketQueue::FixedPlan* plan,
                        double gen_width, int ops, double max_step,
                        std::vector<Item>& popped) {
  if (plan != nullptr) {
    queue.reset(*plan);
    ASSERT_TRUE(queue.fixed_point());
  } else {
    queue.reset(gen_width);
    ASSERT_FALSE(queue.fixed_point());
  }
  popped.clear();
  MinHeap reference;
  double last_pop = 0.0;
  const auto push_both = [&](double key, net::NodeId node) {
    queue.push(key, node);
    reference.emplace(key, node);
  };
  for (int i = 0; i < ops; ++i) {
    const bool do_push = reference.empty() || rng.uniform() < 0.55;
    if (do_push) {
      double key = last_pop + rng.uniform() * max_step;
      const double r = rng.uniform();
      if (r < 0.1) key = last_pop;  // exact duplicate of the frontier
      if (r >= 0.1 && r < 0.2) {
        // Exact quantization-grid boundary: multiples of the bucket width.
        key = gen_width *
              static_cast<double>(static_cast<int>(key / gen_width) + 1);
      }
      const auto node = static_cast<net::NodeId>(rng.uniform_index(64));
      push_both(key, node);
      if (r >= 0.2 && r < 0.35) {
        // A 1-ulp neighbor: same qkey, strictly greater double key. Must
        // pop after `key` regardless of node id or push order.
        push_both(std::nextafter(key, std::numeric_limits<double>::infinity()),
                  static_cast<net::NodeId>(rng.uniform_index(64)));
      }
      if (r >= 0.35 && r < 0.45) {
        // Exact key tie with a different node: pops in node order.
        push_both(key, static_cast<net::NodeId>(rng.uniform_index(64)));
      }
    } else {
      const auto [key, node] = reference.top();
      reference.pop();
      const sim::BucketQueue::Entry got = queue.pop();
      ASSERT_EQ(got.key, key) << "op " << i;
      ASSERT_EQ(got.node, node) << "op " << i;
      popped.emplace_back(got.key, got.node);
      last_pop = key;
    }
    ASSERT_EQ(queue.size(), reference.size()) << "op " << i;
  }
  while (!reference.empty()) {
    const auto [key, node] = reference.top();
    reference.pop();
    const sim::BucketQueue::Entry got = queue.pop();
    ASSERT_EQ(got.key, key);
    ASSERT_EQ(got.node, node);
    popped.emplace_back(got.key, got.node);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(BucketQueueFixed, MatchesPriorityQueueOnRandomMonotoneWorkloads) {
  util::Rng rng(21);
  sim::BucketQueue queue;  // reused across plans: reset must fully rewind
  std::vector<Item> popped;
  // (min_delay, max_reach) pairs spanning fine and coarse grids; max_key
  // mirrors the engines' slack bound (2x reach).
  const std::pair<double, double> ranges[] = {
      {0.5, 20000.0}, {6.0, 9000.0}, {0.03, 800.0}};
  for (const auto& [min_delay, reach] : ranges) {
    const auto plan =
        sim::BucketQueue::plan_fixed(min_delay, reach, reach * 2.0);
    ASSERT_TRUE(plan.has_value()) << "min_delay " << min_delay;
    for (int round = 0; round < 6; ++round) {
      run_mirrored_fixed(queue, rng, &*plan, plan->width(), 500,
                         min_delay * 30.0, popped);
      ASSERT_FALSE(popped.empty());
    }
  }
}

TEST(BucketQueueFixed, PopOrderIdenticalToDoubleModeOnSameWorkload) {
  // The strongest parity statement at the queue level: replay one recorded
  // workload through both modes and require the identical pop sequence.
  util::Rng rng_a(22);
  sim::BucketQueue queue;
  const auto plan = sim::BucketQueue::plan_fixed(0.5, 20000.0, 40000.0);
  ASSERT_TRUE(plan.has_value());
  std::vector<Item> popped_fixed;
  run_mirrored_fixed(queue, rng_a, &*plan, plan->width(), 800, 15.0,
                     popped_fixed);
  // Identical rng seed => identical workload; double mode at the plan's own
  // bucket width must pop the same (key, node) sequence byte for byte.
  util::Rng rng_b(22);
  std::vector<Item> popped_double;
  run_mirrored_fixed(queue, rng_b, nullptr, plan->width(), 800, 15.0,
                     popped_double);
  ASSERT_EQ(popped_fixed.size(), popped_double.size());
  for (std::size_t i = 0; i < popped_fixed.size(); ++i) {
    EXPECT_EQ(popped_fixed[i], popped_double[i]) << "pop " << i;
  }
}

TEST(BucketQueueFixed, PlanRejectsDegenerateRanges) {
  // min-δ = 0 quantizes to 0 -> no power-of-two bucket width exists -> the
  // engine must fall back to the d-ary heap (batch.cpp's three-tier plan).
  EXPECT_FALSE(sim::BucketQueue::plan_fixed(0.0, 100.0, 200.0).has_value());
  EXPECT_FALSE(sim::BucketQueue::plan_fixed(-1.0, 100.0, 200.0).has_value());
  EXPECT_FALSE(
      sim::BucketQueue::plan_fixed(std::numeric_limits<double>::infinity(),
                                   100.0, 200.0)
          .has_value());
  // A key span over ~2^31x the min delay cannot both hold max_key in the
  // u32 image and resolve min_delay to the >= 2 grid units a power-of-two
  // width needs.
  EXPECT_FALSE(sim::BucketQueue::plan_fixed(1e-6, 5e6, 1e7).has_value());
  // A huge reach/min-delay ratio alone is fine: the plan widens buckets to
  // fit the ring budget (order still exact via the sorted active bucket).
  EXPECT_TRUE(sim::BucketQueue::plan_fixed(1e-6, 1e3, 2e3).has_value());
  // Ordinary simulation scales are in, and when no widening is needed the
  // derived width brackets min_delay into [16*width, 32*width) — the
  // occupancy sweet spot (kOccupancyDivisor) double mode's preferred
  // width also targets, well under the delta-stepping ceiling, so thin
  // buckets keep the active-bucket sort near-free.
  const auto plan = sim::BucketQueue::plan_fixed(6.0, 2000.0, 4000.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_LE(plan->width() * 16.0, 6.0);
  EXPECT_GT(plan->width() * 32.0, 6.0);
}

TEST(BucketQueueFixed, ResetSwitchesModesCleanly) {
  sim::BucketQueue queue;
  const auto plan = sim::BucketQueue::plan_fixed(1.0, 1000.0, 2000.0);
  ASSERT_TRUE(plan.has_value());
  queue.reset(*plan);
  EXPECT_TRUE(queue.fixed_point());
  for (int i = 0; i < 50; ++i) {
    queue.push(static_cast<double>(i) * 1.3, static_cast<net::NodeId>(i));
  }
  EXPECT_EQ(queue.size(), 50u);
  queue.reset(0.5);  // back to double-keyed oracle mode, pending work gone
  EXPECT_FALSE(queue.fixed_point());
  EXPECT_TRUE(queue.empty());
  queue.push(3.0, 7);
  const auto e = queue.pop();
  EXPECT_EQ(e.key, 3.0);
  EXPECT_EQ(e.node, 7u);
}

TEST(BucketQueue, ViabilityGuard) {
  // Degenerate widths must be rejected so the engine falls back to the heap.
  EXPECT_FALSE(sim::BucketQueue::viable(0.0, 100.0));
  EXPECT_FALSE(sim::BucketQueue::viable(-1.0, 100.0));
  EXPECT_FALSE(
      sim::BucketQueue::viable(std::numeric_limits<double>::infinity(), 1.0));
  EXPECT_FALSE(sim::BucketQueue::viable(
      1.0, std::numeric_limits<double>::infinity()));
  // A span needing more than kMaxBuckets buckets is out.
  EXPECT_FALSE(sim::BucketQueue::viable(1e-9, 1e6));
  // Ordinary simulation scales are comfortably in.
  EXPECT_TRUE(sim::BucketQueue::viable(0.5, 5000.0));
  EXPECT_TRUE(sim::BucketQueue::viable(6.0, 2000.0));
}

}  // namespace
}  // namespace perigee
