// Property tests for the batched engine's monotone bucket queue: pops are
// globally non-decreasing in (key, node), nothing is lost or duplicated,
// and — the property the engines' byte-parity rests on — the pop sequence
// is *exactly* std::priority_queue<pair, greater<>> order for any monotone
// push/pop interleaving, including boundary keys, duplicates, and spans
// that force the bucket ring to grow and remap.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "sim/bucket_queue.hpp"
#include "util/rng.hpp"

namespace perigee {
namespace {

using Item = std::pair<double, net::NodeId>;
using MinHeap = std::priority_queue<Item, std::vector<Item>, std::greater<>>;

// Drives the queue and the reference heap through one random monotone
// workload: pushes stay >= the last popped key, interleaving is random.
// Fills `popped` with the popped sequence; asserts pq equivalence along the
// way (void so gtest fatal assertions are usable).
void run_mirrored(sim::BucketQueue& queue, util::Rng& rng, double width,
                  int ops, double max_step, std::vector<Item>& popped) {
  queue.reset(width);
  popped.clear();
  MinHeap reference;
  double last_pop = 0.0;
  for (int i = 0; i < ops; ++i) {
    const bool do_push = reference.empty() || rng.uniform() < 0.55;
    if (do_push) {
      // Keys cluster near the monotone frontier, with occasional exact
      // bucket-boundary keys and exact duplicates of the last pop.
      double key = last_pop + rng.uniform() * max_step;
      const double r = rng.uniform();
      if (r < 0.1) key = last_pop;  // duplicate frontier key
      if (r >= 0.1 && r < 0.2) {
        // Exact bucket boundary: multiples of width are the fp edge case.
        key = width * static_cast<double>(static_cast<int>(key / width) + 1);
      }
      const auto node = static_cast<net::NodeId>(rng.uniform_index(64));
      queue.push(key, node);
      reference.emplace(key, node);
    } else {
      const auto [key, node] = reference.top();
      reference.pop();
      const sim::BucketQueue::Entry got = queue.pop();
      ASSERT_EQ(got.key, key) << "op " << i;
      ASSERT_EQ(got.node, node) << "op " << i;
      popped.emplace_back(got.key, got.node);
      last_pop = key;
    }
    ASSERT_EQ(queue.size(), reference.size()) << "op " << i;
  }
  while (!reference.empty()) {
    const auto [key, node] = reference.top();
    reference.pop();
    const sim::BucketQueue::Entry got = queue.pop();
    ASSERT_EQ(got.key, key);
    ASSERT_EQ(got.node, node);
    popped.emplace_back(got.key, got.node);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(BucketQueue, EquivalentToPriorityQueueOnRandomMonotoneWorkloads) {
  util::Rng rng(1);
  sim::BucketQueue queue;  // deliberately reused across widths and seeds
  std::vector<Item> popped;
  for (const double width : {0.5, 1.0, 3.0, 0.01}) {
    for (int round = 0; round < 8; ++round) {
      run_mirrored(queue, rng, width, 400, width * 40.0, popped);
    }
  }
}

TEST(BucketQueue, PopsAreMonotoneNonDecreasing) {
  util::Rng rng(2);
  sim::BucketQueue queue;
  std::vector<Item> popped;
  run_mirrored(queue, rng, 2.0, 1200, 25.0, popped);
  ASSERT_FALSE(popped.empty());
  for (std::size_t i = 1; i < popped.size(); ++i) {
    // Keys never decrease: the monotone contract. (Node ids may — a push
    // at the frontier key with a smaller node id legally pops next.)
    EXPECT_LE(popped[i - 1].first, popped[i].first) << "pop " << i;
  }
}

TEST(BucketQueue, NoEntryLostOrDuplicated) {
  util::Rng rng(3);
  sim::BucketQueue queue;
  queue.reset(1.0);
  std::map<std::pair<double, net::NodeId>, int> pushed;
  double frontier = 0.0;
  for (int i = 0; i < 3000; ++i) {
    const double key = frontier + rng.uniform() * 10.0;
    const auto node = static_cast<net::NodeId>(rng.uniform_index(16));
    queue.push(key, node);
    ++pushed[{key, node}];
    // Drain a little so the frontier moves and buckets recycle.
    if (rng.uniform() < 0.3 && !queue.empty()) {
      const auto e = queue.pop();
      frontier = e.key;
      --pushed[{e.key, e.node}];
    }
  }
  while (!queue.empty()) {
    const auto e = queue.pop();
    --pushed[{e.key, e.node}];
  }
  for (const auto& [entry, count] : pushed) {
    EXPECT_EQ(count, 0) << "key " << entry.first << " node " << entry.second;
  }
}

TEST(BucketQueue, RingGrowthPreservesOrder) {
  // Push a burst, then a key far enough ahead to force several doublings of
  // the ring while earlier entries are still pending.
  sim::BucketQueue queue;
  queue.reset(1.0);
  util::Rng rng(4);
  MinHeap reference;
  for (int i = 0; i < 50; ++i) {
    const double key = rng.uniform() * 30.0;
    queue.push(key, static_cast<net::NodeId>(i));
    reference.emplace(key, static_cast<net::NodeId>(i));
  }
  for (const double far : {5000.0, 80000.0, 500000.0}) {
    queue.push(far, 999);
    reference.emplace(far, 999);
  }
  while (!reference.empty()) {
    const auto [key, node] = reference.top();
    reference.pop();
    const auto got = queue.pop();
    EXPECT_EQ(got.key, key);
    EXPECT_EQ(got.node, node);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(BucketQueue, ResetDiscardsPendingEntries) {
  sim::BucketQueue queue;
  queue.reset(1.0);
  for (int i = 0; i < 100; ++i) {
    queue.push(static_cast<double>(i) * 0.7, static_cast<net::NodeId>(i));
  }
  EXPECT_EQ(queue.size(), 100u);
  queue.reset(0.25);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.width(), 0.25);
  queue.push(3.0, 7);
  const auto e = queue.pop();
  EXPECT_EQ(e.key, 3.0);
  EXPECT_EQ(e.node, 7u);
}

TEST(BucketQueue, ViabilityGuard) {
  // Degenerate widths must be rejected so the engine falls back to the heap.
  EXPECT_FALSE(sim::BucketQueue::viable(0.0, 100.0));
  EXPECT_FALSE(sim::BucketQueue::viable(-1.0, 100.0));
  EXPECT_FALSE(
      sim::BucketQueue::viable(std::numeric_limits<double>::infinity(), 1.0));
  EXPECT_FALSE(sim::BucketQueue::viable(
      1.0, std::numeric_limits<double>::infinity()));
  // A span needing more than kMaxBuckets buckets is out.
  EXPECT_FALSE(sim::BucketQueue::viable(1e-9, 1e6));
  // Ordinary simulation scales are comfortably in.
  EXPECT_TRUE(sim::BucketQueue::viable(0.5, 5000.0));
  EXPECT_TRUE(sim::BucketQueue::viable(6.0, 2000.0));
}

}  // namespace
}  // namespace perigee
