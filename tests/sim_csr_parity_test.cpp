// CSR fast-path parity: the compiled-flat-graph engine must reproduce the
// legacy Topology-walking engine *byte for byte* — same arrival and ready
// vectors, down to the bit pattern of every double — across random
// topologies, infra-override links, unreachable nodes, withholding nodes,
// and both observation-recording paths. The legacy engine is the oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "metrics/eval.hpp"
#include "net/csr.hpp"
#include "sim/broadcast.hpp"
#include "sim/gossip.hpp"
#include "sim/observations.hpp"
#include "sim/rounds.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace perigee {
namespace {

// Bitwise equality of double vectors: catches even -0.0 vs 0.0 or differing
// NaN payloads, which EXPECT_DOUBLE_EQ would miss.
::testing::AssertionResult bytes_equal(const std::vector<double>& a,
                                       const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "first mismatch at index " << i << ": " << a[i] << " vs "
               << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

void expect_parity(const net::Topology& topology, const net::Network& network,
                   sim::BroadcastScratch& scratch) {
  const net::CsrTopology csr = net::CsrTopology::build(topology, network);
  sim::BroadcastResult fast;
  for (net::NodeId miner = 0; miner < topology.size();
       miner += std::max<std::size_t>(1, topology.size() / 16)) {
    const sim::BroadcastResult legacy =
        sim::simulate_broadcast(topology, network, miner);
    sim::simulate_broadcast(csr, miner, scratch, fast);
    EXPECT_EQ(fast.miner, legacy.miner);
    EXPECT_TRUE(bytes_equal(fast.arrival, legacy.arrival)) << "miner " << miner;
    EXPECT_TRUE(bytes_equal(fast.ready, legacy.ready)) << "miner " << miner;
  }
}

TEST(CsrParity, RandomTopologiesAcrossSeeds) {
  sim::BroadcastScratch scratch;  // deliberately shared across all cases
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    net::NetworkOptions options;
    options.n = 120 + 30 * seed;
    options.seed = seed;
    const auto network = net::Network::build(options);
    net::Topology topology(options.n);
    util::Rng rng(seed);
    topo::build_random(topology, rng);
    expect_parity(topology, network, scratch);
  }
}

TEST(CsrParity, InfraOverrideLinks) {
  net::NetworkOptions options;
  options.n = 150;
  options.seed = 9;
  const auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(9);
  topo::build_random(topology, rng);
  // A fast star overlay: infra links with sub-propagation latency must win
  // identically in both engines.
  for (net::NodeId v = 10; v < 60; v += 7) {
    ASSERT_TRUE(topology.add_infra_edge(0, v, 0.5));
  }
  sim::BroadcastScratch scratch;
  expect_parity(topology, network, scratch);
}

TEST(CsrParity, UnreachableNodesStayInfinite) {
  net::NetworkOptions options;
  options.n = 100;
  options.seed = 11;
  const auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(11);
  topo::build_random(topology, rng);
  // Isolate a handful of nodes entirely.
  for (net::NodeId v = 90; v < 100; ++v) topology.disconnect_all(v);

  const net::CsrTopology csr = net::CsrTopology::build(topology, network);
  const auto legacy = sim::simulate_broadcast(topology, network, 0);
  const auto fast = sim::simulate_broadcast(csr, 0);
  EXPECT_TRUE(bytes_equal(fast.arrival, legacy.arrival));
  EXPECT_TRUE(bytes_equal(fast.ready, legacy.ready));
  for (net::NodeId v = 90; v < 100; ++v) {
    EXPECT_TRUE(std::isinf(fast.arrival[v]));
    EXPECT_TRUE(std::isinf(fast.ready[v]));
  }
  // Broadcasting *from* an isolated node: everyone else unreachable.
  const auto legacy95 = sim::simulate_broadcast(topology, network, 95);
  const auto fast95 = sim::simulate_broadcast(csr, 95);
  EXPECT_TRUE(bytes_equal(fast95.arrival, legacy95.arrival));
  EXPECT_DOUBLE_EQ(fast95.arrival[95], 0.0);
  EXPECT_TRUE(std::isinf(fast95.arrival[0]));
}

TEST(CsrParity, WithholdingNodesMatchOracle) {
  net::NetworkOptions options;
  options.n = 130;
  options.seed = 13;
  auto network = net::Network::build(options);
  for (net::NodeId v = 0; v < 130; v += 9) {
    network.mutable_profiles()[v].forwards = false;
  }
  net::Topology topology(options.n);
  util::Rng rng(13);
  topo::build_random(topology, rng);
  sim::BroadcastScratch scratch;
  expect_parity(topology, network, scratch);
}

TEST(CsrParity, ObservationRecordingMatchesLegacyPath) {
  net::NetworkOptions options;
  options.n = 90;
  options.seed = 17;
  const auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(17);
  topo::build_random(topology, rng);
  const net::CsrTopology csr = net::CsrTopology::build(topology, network);

  sim::ObservationTable legacy_obs, csr_obs;
  legacy_obs.begin_round(topology, 3);
  csr_obs.begin_round(topology, 3);
  sim::BroadcastScratch scratch;
  sim::BroadcastResult result;
  for (net::NodeId miner : {net::NodeId{3}, net::NodeId{40}, net::NodeId{77}}) {
    sim::simulate_broadcast(csr, miner, scratch, result);
    legacy_obs.record_block(topology, network, result);
    csr_obs.record_block(csr, result);
  }
  for (net::NodeId v = 0; v < topology.size(); ++v) {
    ASSERT_EQ(csr_obs.neighbor_count(v), legacy_obs.neighbor_count(v));
    for (std::size_t i = 0; i < csr_obs.neighbor_count(v); ++i) {
      const auto a = csr_obs.rel_times(v, i);
      const auto b = legacy_obs.rel_times(v, i);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t k = 0; k < a.size(); ++k) {
        EXPECT_TRUE(std::memcmp(&a[k], &b[k], sizeof(double)) == 0)
            << "node " << v << " neighbor " << i << " block " << k;
      }
    }
  }
}

// First-principles check of the compile itself: every CSR entry must equal
// the delay the reference helpers resolve through the Topology/Network pair.
// This is what keeps the gossip delegation test below meaningful — the
// event loop runs on arrays this test pins to the ground truth.
TEST(CsrParity, CompiledDelaysMatchNetworkResolution) {
  net::NetworkOptions options;
  options.n = 100;
  options.seed = 31;
  // Exercise the transmission term too, so edge_delay != handshake * link.
  options.block_size_kb = 200.0;
  options.heterogeneous_bandwidth = true;
  const auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(31);
  topo::build_random(topology, rng);
  topology.add_infra_edge(2, 50, 0.75);

  const net::CsrTopology csr = net::CsrTopology::build(topology, network);
  EXPECT_EQ(csr.size(), topology.size());
  for (net::NodeId v = 0; v < topology.size(); ++v) {
    const auto& adj = topology.adjacency(v);
    const auto peers = csr.peers(v);
    const auto delays = csr.delays(v);
    const auto controls = csr.control_delays(v);
    ASSERT_EQ(peers.size(), adj.size());
    for (std::size_t i = 0; i < adj.size(); ++i) {
      EXPECT_EQ(peers[i], adj[i].peer);
      // Block delay: exactly what the broadcast oracle resolves per link.
      const double want_block = sim::link_delay_ms(adj[i], v, network);
      EXPECT_TRUE(std::memcmp(&delays[i], &want_block, sizeof(double)) == 0)
          << "node " << v << " link " << i;
      // Control delay: infra override or pure propagation latency.
      const auto infra = topology.infra_latency(v, adj[i].peer);
      const double want_control =
          infra ? *infra : network.link_ms(v, adj[i].peer);
      EXPECT_TRUE(std::memcmp(&controls[i], &want_control, sizeof(double)) ==
                  0)
          << "node " << v << " link " << i;
    }
    EXPECT_EQ(csr.forwards(v), network.profile(v).forwards);
    EXPECT_DOUBLE_EQ(csr.validation_ms(v), network.validation_ms(v));
  }
}

// Mid-run profile mutation with a never-rewiring selector: the round loop's
// cache must pick up a node turning withholding even though the topology
// version never moves (the eclipse_attack example's flip).
TEST(CsrParity, RoundRunnerSeesMidRunForwardsFlip) {
  net::NetworkOptions options;
  options.n = 50;
  options.seed = 37;
  auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(37);
  topo::build_random(topology, rng);

  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  for (std::size_t i = 0; i < topology.size(); ++i) {
    selectors.push_back(std::make_unique<sim::StaticSelector>());
  }
  sim::RoundRunner runner(network, topology, std::move(selectors), 4, 37);
  sim::BroadcastResult last;
  runner.set_block_hook([&](const sim::BroadcastResult& r) { last = r; });

  runner.run_round();
  const std::uint64_t version_before = topology.version();

  // Flip a hub to withholding between rounds; StaticSelector never rewires,
  // so only the profile recheck can trigger the rebuild.
  net::NodeId hub = 0;
  for (net::NodeId v = 1; v < topology.size(); ++v) {
    if (topology.adjacency(v).size() > topology.adjacency(hub).size()) hub = v;
  }
  network.mutable_profiles()[hub].forwards = false;
  runner.run_round();
  EXPECT_EQ(topology.version(), version_before);

  // Every block of the new round must match the legacy engine, which reads
  // the live Network: the flipped node received but never relayed.
  const auto oracle = sim::simulate_broadcast(topology, network, last.miner);
  ASSERT_EQ(last.arrival.size(), oracle.arrival.size());
  for (std::size_t v = 0; v < oracle.arrival.size(); ++v) {
    EXPECT_TRUE(
        std::memcmp(&last.arrival[v], &oracle.arrival[v], sizeof(double)) == 0)
        << "node " << v;
  }
}

TEST(CsrParity, GossipOverCsrMatchesLegacySignature) {
  net::NetworkOptions options;
  options.n = 80;
  options.seed = 19;
  const auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(19);
  topo::build_random(topology, rng);
  topology.add_infra_edge(1, 70, 0.25);
  const net::CsrTopology csr = net::CsrTopology::build(topology, network);

  for (auto mode :
       {sim::GossipConfig::Mode::Push, sim::GossipConfig::Mode::InvGetdata}) {
    sim::GossipConfig config;
    config.mode = mode;
    config.record_edge_times = true;
    const auto via_topology = sim::simulate_gossip(topology, network, 5,
                                                   config);
    const auto via_csr = sim::simulate_gossip(csr, 5, config);
    EXPECT_TRUE(bytes_equal(via_csr.arrival, via_topology.arrival));
    EXPECT_TRUE(
        bytes_equal(via_csr.first_announce, via_topology.first_announce));
    EXPECT_EQ(via_csr.messages_processed, via_topology.messages_processed);
    ASSERT_EQ(via_csr.edge_times.size(), via_topology.edge_times.size());
    for (std::size_t i = 0; i < via_csr.edge_times.size(); ++i) {
      EXPECT_EQ(via_csr.edge_times[i].to, via_topology.edge_times[i].to);
      EXPECT_EQ(via_csr.edge_times[i].from, via_topology.edge_times[i].from);
      EXPECT_TRUE(std::memcmp(&via_csr.edge_times[i].time_ms,
                              &via_topology.edge_times[i].time_ms,
                              sizeof(double)) == 0);
    }
  }
}

TEST(CsrParity, CacheRebuildsOnRewireOnly) {
  net::NetworkOptions options;
  options.n = 60;
  options.seed = 23;
  const auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(23);
  topo::build_random(topology, rng);

  net::CsrCache cache;
  const net::CsrTopology* first = &cache.get(topology, network);
  const std::uint64_t v0 = topology.version();
  EXPECT_EQ(first->built_from_version(), v0);
  // No mutation: same snapshot object, no rebuild.
  EXPECT_EQ(&cache.get(topology, network), first);

  // A rewire bumps the version and forces a refresh (journal patch or
  // rebuild) that reflects the new adjacency.
  const net::NodeId dialer = 0;
  ASSERT_FALSE(topology.out(dialer).empty());
  const net::NodeId old_peer = topology.out(dialer).front();
  topology.disconnect(dialer, old_peer);
  EXPECT_GT(topology.version(), v0);
  const net::CsrTopology& rebuilt = cache.get(topology, network);
  EXPECT_EQ(rebuilt.built_from_version(), topology.version());
  for (const net::NodeId peer : rebuilt.peers(dialer)) {
    EXPECT_NE(peer, old_peer);
  }
  // The rebuilt snapshot again tracks the oracle exactly.
  const auto legacy = sim::simulate_broadcast(topology, network, 7);
  const auto fast = sim::simulate_broadcast(rebuilt, 7);
  EXPECT_TRUE(bytes_equal(fast.arrival, legacy.arrival));
  EXPECT_TRUE(bytes_equal(fast.ready, legacy.ready));
}

// Regression for the old staleness footgun: a latency-model swap under an
// unchanged topology used to require a manual cache.invalidate() call; the
// network's latency version counter now invalidates automatically.
TEST(CsrParity, CacheRebuildsAutomaticallyOnLatencyModelSwap) {
  net::NetworkOptions options;
  options.n = 50;
  options.seed = 43;
  auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(43);
  topo::build_random(topology, rng);

  net::CsrCache cache;
  cache.get(topology, network);
  network.set_latency_model(std::make_unique<net::PairClassScaledModel>(
      network.make_geo_model(), [](net::NodeId) { return true; }, 2.0));
  // No topology mutation, no manual invalidate: get() must still hand back a
  // snapshot compiled under the new model, matching the live oracle.
  const net::CsrTopology& refreshed = cache.get(topology, network);
  EXPECT_EQ(cache.rebuilds(), 2u);
  const auto legacy = sim::simulate_broadcast(topology, network, 3);
  const auto fast = sim::simulate_broadcast(refreshed, 3);
  EXPECT_TRUE(bytes_equal(fast.arrival, legacy.arrival));
  EXPECT_TRUE(bytes_equal(fast.ready, legacy.ready));
}

// Bandwidth edits feed the per-edge transmission term: with a non-zero block
// size the cache must rebuild on its own (the other half of the footgun).
TEST(CsrParity, CacheRebuildsAutomaticallyOnBandwidthEdit) {
  net::NetworkOptions options;
  options.n = 50;
  options.seed = 47;
  options.block_size_kb = 200.0;
  options.heterogeneous_bandwidth = true;
  auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(47);
  topo::build_random(topology, rng);

  net::CsrCache cache;
  cache.get(topology, network);
  network.mutable_profiles()[5].bandwidth_mbps = 1.0;  // new bottleneck tier
  const net::CsrTopology& refreshed = cache.get(topology, network);
  EXPECT_EQ(cache.rebuilds(), 2u);
  const auto legacy = sim::simulate_broadcast(topology, network, 5);
  const auto fast = sim::simulate_broadcast(refreshed, 5);
  EXPECT_TRUE(bytes_equal(fast.arrival, legacy.arrival));
  EXPECT_TRUE(bytes_equal(fast.ready, legacy.ready));
}

// Profile edits that do not touch per-edge delays must NOT force a rebuild:
// forwards / validation flips patch the per-node arrays in place, and hash
// power (mined-block weighting only) costs nothing at all.
TEST(CsrParity, ProfileOnlyEditsPatchWithoutRebuild) {
  net::NetworkOptions options;
  options.n = 50;
  options.seed = 53;
  auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(53);
  topo::build_random(topology, rng);

  net::CsrCache cache;
  cache.get(topology, network);
  network.mutable_profiles()[7].forwards = false;
  network.mutable_profiles()[9].validation_ms = 123.0;
  network.mutable_profiles()[11].hash_power = 0.5;
  const net::CsrTopology& refreshed = cache.get(topology, network);
  EXPECT_EQ(cache.rebuilds(), 1u);  // patched, not recompiled
  EXPECT_FALSE(refreshed.forwards(7));
  EXPECT_EQ(refreshed.validation_ms(9), 123.0);
  const auto legacy = sim::simulate_broadcast(topology, network, 7);
  const auto fast = sim::simulate_broadcast(refreshed, 7);
  EXPECT_TRUE(bytes_equal(fast.arrival, legacy.arrival));
  EXPECT_TRUE(bytes_equal(fast.ready, legacy.ready));
}

TEST(CsrParity, EvalAllSourcesMatchesPerSourceOracle) {
  net::NetworkOptions options;
  options.n = 70;
  options.seed = 29;
  const auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(29);
  topo::build_random(topology, rng);

  const auto batched = metrics::eval_all_sources(topology, network, 0.90);
  std::vector<double> oracle(network.size());
  for (net::NodeId v = 0; v < network.size(); ++v) {
    const auto result = sim::simulate_broadcast(topology, network, v);
    oracle[v] = metrics::lambda_for_broadcast(result, network, 0.90);
  }
  EXPECT_TRUE(bytes_equal(batched, oracle));
}

}  // namespace
}  // namespace perigee
