// Unit properties of the egress queuing engine (sim/egress.hpp): analytic
// serialization times on a hand-built star, strict priority-band drain
// order (controls before payloads, reversible via band_map), token-bucket
// burst absorption, the ∞-rate ≡ delay-only parity corner, zero-rate
// starvation safety, worker-count invariance under finite rates, and λ
// consistency through metrics::eval_all_sources_egress. The cross-engine
// byte-parity sweep over ~200 random topologies lives in
// tests/sim_engine_diff_test.cpp; this file pins the arithmetic the model
// documentation (docs/TRANSMISSION_MODEL.md) promises.
#include "sim/egress.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "metrics/eval.hpp"
#include "net/csr.hpp"
#include "runner/thread_pool.hpp"
#include "sim/broadcast.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace perigee::sim {
namespace {

::testing::AssertionResult bytes_equal(std::span<const double> a,
                                       std::span<const double> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "first mismatch at index " << i << ": " << a[i] << " vs "
             << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// Hub-and-spokes star with every quantity pinned: infra edges carry an
// exact 5 ms δ, validation is zero, and the hub's uplink is 8 Mbit/s
// = 1000 bytes/ms, so a 10000-byte block serializes for exactly 10 ms.
struct Star {
  net::Network network;
  net::Topology topology;
  net::CsrTopology csr;

  static Star build(std::size_t spokes, double hub_mbps) {
    net::NetworkOptions options;
    options.n = spokes + 1;
    options.latency = net::NetworkOptions::LatencyKind::Euclidean;
    options.embed_dim = 1;
    options.handshake_factor = 1.0;
    options.validation_spread = 0.0;
    options.validation_mean_ms = 0.0;
    net::Network network = net::Network::build(options);
    auto& profiles = network.mutable_profiles();
    for (auto& profile : profiles) profile.coords = {};
    profiles[0].bandwidth_mbps = hub_mbps;
    net::Topology topology(options.n);
    for (net::NodeId v = 1; v < options.n; ++v) {
      EXPECT_TRUE(topology.add_infra_edge(0, v, 5.0));
    }
    net::CsrTopology csr = net::CsrTopology::build(topology, network);
    return {std::move(network), std::move(topology), std::move(csr)};
  }
};

std::vector<double> sorted(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(Egress, SerializationQueuesSuccessivePayloads) {
  const Star star = Star::build(3, 8.0);  // 1000 bytes/ms uplink
  EgressConfig config;
  config.block_bytes = 10000.0;  // 10 ms on the wire each
  config.control_bytes = 0.0;
  const EgressPlan plan = EgressPlan::build(star.network, config);
  EXPECT_DOUBLE_EQ(plan.rate(0), 1000.0);

  EgressScratch scratch;
  BroadcastResult result;
  simulate_broadcast_egress(star.csr, config, plan, 0, scratch, result);
  // Payload k finishes serializing at (k+1)*10 ms and lands 5 ms later:
  // the spokes arrive at 15, 25, 35 instead of the delay-only 5, 5, 5.
  EXPECT_EQ(sorted(result.arrival),
            (std::vector<double>{0.0, 15.0, 25.0, 35.0}));
  // Zero validation: ready == arrival everywhere (miner included).
  EXPECT_TRUE(bytes_equal(result.ready, result.arrival));
}

TEST(Egress, ControlBandDrainsBeforePayloadBand) {
  const Star star = Star::build(3, 8.0);
  EgressConfig config;
  config.block_bytes = 10000.0;
  config.control_bytes = 1000.0;  // 1 ms of INV chatter per neighbor
  const EgressPlan plan = EgressPlan::build(star.network, config);

  EgressScratch scratch;
  BroadcastResult result;
  simulate_broadcast_egress(star.csr, config, plan, 0, scratch, result);
  // All three controls serialize first (3 ms, band 0 strictly before
  // band 2), then the payloads: finishes at 13/23/33, arrivals +5.
  EXPECT_EQ(sorted(result.arrival),
            (std::vector<double>{0.0, 18.0, 28.0, 38.0}));
}

TEST(Egress, BandMapReversalPutsPayloadsFirst) {
  const Star star = Star::build(3, 8.0);
  EgressConfig config;
  config.block_bytes = 10000.0;
  config.control_bytes = 1000.0;
  config.band_map = {2, 1, 0};  // full blocks on band 0, controls on band 2
  const EgressPlan plan = EgressPlan::build(star.network, config);

  EgressScratch scratch;
  BroadcastResult result;
  simulate_broadcast_egress(star.csr, config, plan, 0, scratch, result);
  // Payloads now outrank controls: the INV chatter no longer delays any
  // delivery, so arrivals match the control-free schedule exactly.
  EXPECT_EQ(sorted(result.arrival),
            (std::vector<double>{0.0, 15.0, 25.0, 35.0}));
}

TEST(Egress, BurstBucketCoveringBacklogMatchesDelayOnly) {
  const Star star = Star::build(3, 8.0);
  EgressConfig config;
  config.block_bytes = 10000.0;
  config.control_bytes = 1000.0;
  config.burst_bytes = 50000.0;  // deeper than the hub's whole backlog
  const EgressPlan plan = EgressPlan::build(star.network, config);

  EgressScratch scratch;
  BroadcastResult result;
  simulate_broadcast_egress(star.csr, config, plan, 0, scratch, result);
  // Every send is absorbed by the bucket and completes at its dequeue
  // instant — byte-identical to the delay-only oracle.
  const BroadcastResult oracle =
      simulate_broadcast(star.topology, star.network, 0);
  EXPECT_TRUE(bytes_equal(result.arrival, oracle.arrival));
  EXPECT_TRUE(bytes_equal(result.ready, oracle.ready));
}

TEST(Egress, RateScaleStretchesSerialization) {
  const Star star = Star::build(2, 8.0);
  EgressConfig config;
  config.block_bytes = 10000.0;
  config.rate_scale = 0.5;  // 500 bytes/ms: 20 ms per payload
  const EgressPlan plan = EgressPlan::build(star.network, config);
  EXPECT_DOUBLE_EQ(plan.rate(0), 500.0);

  EgressScratch scratch;
  BroadcastResult result;
  simulate_broadcast_egress(star.csr, config, plan, 0, scratch, result);
  EXPECT_EQ(sorted(result.arrival), (std::vector<double>{0.0, 25.0, 45.0}));
}

TEST(Egress, ZeroRateSenderStarvesButTerminates) {
  const Star star = Star::build(3, 0.0);
  EgressConfig config;
  config.block_bytes = 10000.0;
  const EgressPlan plan = EgressPlan::build(star.network, config);
  EXPECT_DOUBLE_EQ(plan.rate(0), 0.0);

  EgressScratch scratch;
  BroadcastResult result;
  simulate_broadcast_egress(star.csr, config, plan, 0, scratch, result);
  EXPECT_DOUBLE_EQ(result.arrival[0], 0.0);
  for (net::NodeId v = 1; v < star.csr.size(); ++v) {
    EXPECT_TRUE(std::isinf(result.arrival[v])) << "node " << v;
  }
}

TEST(Egress, UnlimitedRateMatchesLegacyOracleByteForByte) {
  net::NetworkOptions options;
  options.n = 120;
  options.seed = 9;
  const auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(9);
  topo::build_random(topology, rng);
  const auto csr = net::CsrTopology::build(topology, network);

  EgressConfig config;
  config.unlimited_rate = true;
  config.block_bytes = 0.0;
  config.control_bytes = 0.0;
  const EgressPlan plan = EgressPlan::build(network, config);
  EgressScratch scratch;
  BroadcastResult result;
  for (const net::NodeId miner : {net::NodeId{0}, net::NodeId{37}}) {
    const BroadcastResult oracle =
        simulate_broadcast(topology, network, miner);
    simulate_broadcast_egress(csr, config, plan, miner, scratch, result);
    EXPECT_TRUE(bytes_equal(result.arrival, oracle.arrival));
    EXPECT_TRUE(bytes_equal(result.ready, oracle.ready));
  }
}

TEST(Egress, BatchIsWorkerCountInvariantUnderFiniteRates) {
  net::NetworkOptions options;
  options.n = 90;
  options.seed = 11;
  options.heterogeneous_bandwidth = true;  // per-node log-uniform rates
  const auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(11);
  topo::build_random(topology, rng);
  const auto csr = net::CsrTopology::build(topology, network);

  EgressConfig config;
  config.block_bytes = 200'000.0;
  config.control_bytes = 1000.0;
  const EgressPlan plan = EgressPlan::build(network, config);

  std::vector<net::NodeId> sources;
  for (net::NodeId v = 0; v < options.n; v += 7) sources.push_back(v);

  EgressScratch scratch;
  MultiSourceResult inline_run, pooled_run, repeat_run;
  simulate_broadcast_egress_batch(csr, config, plan, sources, scratch,
                                  inline_run);
  {
    runner::ThreadPool pool(4);
    simulate_broadcast_egress_batch(csr, config, plan, sources, scratch,
                                    pooled_run, &pool);
  }
  simulate_broadcast_egress_batch(csr, config, plan, sources, scratch,
                                  repeat_run);
  EXPECT_TRUE(bytes_equal(pooled_run.arrival, inline_run.arrival));
  EXPECT_TRUE(bytes_equal(pooled_run.ready, inline_run.ready));
  EXPECT_TRUE(bytes_equal(repeat_run.arrival, inline_run.arrival));
  EXPECT_TRUE(bytes_equal(repeat_run.ready, inline_run.ready));

  // Queuing must never beat pure propagation: the delay-only result is a
  // per-node lower bound on every finite-rate arrival.
  MultiSourceScratch delay_scratch;
  MultiSourceResult delay_run;
  simulate_broadcast_batch(csr, sources, delay_scratch, delay_run);
  for (std::size_t i = 0; i < inline_run.arrival.size(); ++i) {
    EXPECT_GE(inline_run.arrival[i], delay_run.arrival[i]) << "slot " << i;
  }
}

TEST(Egress, EvalAllSourcesEgressMatchesPerSourceLambda) {
  net::NetworkOptions options;
  options.n = 60;
  options.seed = 13;
  options.heterogeneous_bandwidth = true;
  const auto network = net::Network::build(options);
  net::Topology topology(options.n);
  util::Rng rng(13);
  topo::build_random(topology, rng);
  const auto csr = net::CsrTopology::build(topology, network);

  EgressConfig config;
  config.block_bytes = 200'000.0;
  const EgressPlan plan = EgressPlan::build(network, config);

  std::vector<double> oracle(options.n);
  EgressScratch scratch;
  BroadcastResult result;
  for (net::NodeId v = 0; v < options.n; ++v) {
    simulate_broadcast_egress(csr, config, plan, v, scratch, result);
    oracle[v] = metrics::lambda_for_broadcast(result, network, 0.90);
  }

  const auto inline_eval =
      metrics::eval_all_sources_egress(csr, network, config, plan, 0.90);
  EXPECT_TRUE(bytes_equal(inline_eval, oracle));

  runner::ThreadPool pool(3);
  const auto pooled_eval = metrics::eval_all_sources_egress(
      csr, network, config, plan, 0.90, &scratch, &pool);
  EXPECT_TRUE(bytes_equal(pooled_eval, oracle));
}

TEST(Egress, PlanCacheRebuildsOnlyWhenProfilesChange) {
  net::NetworkOptions options;
  options.n = 20;
  options.seed = 17;
  auto network = net::Network::build(options);
  EgressConfig config;

  EgressPlanCache cache;
  const EgressPlan& first = cache.get(network, config);
  EXPECT_EQ(first.profile_version(), network.profile_version());
  const double before = first.rate(3);
  // No profile movement: the cached plan is reused verbatim.
  EXPECT_EQ(&cache.get(network, config), &first);

  network.mutable_profiles()[3].bandwidth_mbps *= 2.0;
  const EgressPlan& rebuilt = cache.get(network, config);
  EXPECT_EQ(rebuilt.profile_version(), network.profile_version());
  EXPECT_DOUBLE_EQ(rebuilt.rate(3), 2.0 * before);
}

}  // namespace
}  // namespace perigee::sim
