// Randomized differential harness over the three broadcast engines.
//
// ~200 seeded random topologies spanning every scenario regime the sweep
// axes can produce — uniform (geo) and exponential-ish (euclidean) latency
// substrates, heterogeneous bandwidth/validation tiers, geographically
// clustered networks, adversarial withholding, churn-mutated graphs, infra
// overlays, disconnected fragments — each asserting that
//
//      legacy Topology walk  ≡  single-source CSR  ≡  batched engine
//                            ≡  parallel delta-stepping engine
//
// byte-for-byte on the arrival AND ready vectors (memcmp of the doubles, so
// even a one-ulp divergence or a -0.0 fails). The legacy engine is the
// oracle; the batched engine additionally runs both its bucket-queue fast
// path and (where the graph forces it) the heap fallback, and once more
// through a ThreadPool to pin the any-worker-count determinism contract.
// The parallel delta-stepping engine runs at worker counts 1, 2, and 4 in
// every regime (including the zero-δ heap-fallback, disconnected, and
// churn-patched shapes), and the compact fixed-point engine is held to its
// own oracle: exact u64 arrival equality across the same worker counts.
// The egress queuing engine (sim/egress.hpp) joins at infinite rate and
// zero message size, where docs/TRANSMISSION_MODEL.md claims it IS the
// delay-only model: single-source and batched (inline + pooled), both held
// byte-equal to the legacy oracle across all regimes.
//
// Each regime additionally drives the incremental compile path: a CsrCache
// snapshot is patched from the topology's mutation journal after a rewiring
// storm and held entry-for-entry AND byte-for-byte (batched engine + λ)
// equal to a from-scratch compile — plus a dedicated rewire-heavy regime and
// a full round-loop A/B against forced recompiles.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/perigee.hpp"
#include "metrics/eval.hpp"
#include "net/csr.hpp"
#include "runner/thread_pool.hpp"
#include "sim/rounds.hpp"
#include "scenario/driver.hpp"
#include "scenario/scenario.hpp"
#include "sim/batch.hpp"
#include "sim/broadcast.hpp"
#include "sim/egress.hpp"
#include "sim/parallel.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace perigee {
namespace {

::testing::AssertionResult bytes_equal(std::span<const double> a,
                                       std::span<const double> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "first mismatch at index " << i << ": " << a[i] << " vs "
             << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// One differential case: all engines from a spread of miners, batched
// engine both inline and across a 3-worker pool, the parallel
// delta-stepping engine at worker counts 1/2/4, and the compact
// fixed-point engine held jobs-invariant on exact u64 keys.
void expect_three_engine_parity(const net::Topology& topology,
                                const net::Network& network,
                                const char* regime, std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "regime=" << regime
                                    << " seed=" << seed);
  const net::CsrTopology csr = net::CsrTopology::build(topology, network);

  // Miners: a handful spread over the id range (every node would be O(n^2)
  // per case; the λ-parity test below still covers all-sources batches).
  std::vector<net::NodeId> miners;
  const auto n = static_cast<net::NodeId>(topology.size());
  for (net::NodeId m = 0; m < n; m += std::max<net::NodeId>(1, n / 5)) {
    miners.push_back(m);
  }

  sim::MultiSourceScratch scratch;
  sim::MultiSourceResult batched;
  sim::simulate_broadcast_batch(csr, miners, scratch, batched);

  sim::MultiSourceResult pooled;
  runner::ThreadPool pool2(2);
  runner::ThreadPool pool4(4);
  {
    runner::ThreadPool pool(3);
    sim::simulate_broadcast_batch(csr, miners, scratch, pooled, &pool);
  }

  const net::CompactCsr compact = net::CompactCsr::build(csr);
  sim::ParallelScratch parallel_scratch;
  sim::BroadcastResult par1, par2, par4;
  std::vector<std::uint64_t> q1(n), q2(n), q4(n);

  // Egress queuing engine in its delay-only corner: unlimited rate + zero
  // message size. The documented contract (docs/TRANSMISSION_MODEL.md) is
  // that this configuration takes the float-op-free inline path and
  // reproduces the delay-only arrivals byte for byte.
  sim::EgressConfig egress_config;
  egress_config.unlimited_rate = true;
  egress_config.block_bytes = 0.0;
  egress_config.control_bytes = 0.0;
  const sim::EgressPlan egress_plan =
      sim::EgressPlan::build(network, egress_config);
  sim::EgressScratch egress_scratch;
  sim::BroadcastResult via_egress;
  sim::MultiSourceResult egress_batched, egress_pooled;
  sim::simulate_broadcast_egress_batch(csr, egress_config, egress_plan,
                                       miners, egress_scratch, egress_batched);
  {
    runner::ThreadPool pool(3);
    sim::simulate_broadcast_egress_batch(csr, egress_config, egress_plan,
                                         miners, egress_scratch, egress_pooled,
                                         &pool);
  }

  sim::BroadcastScratch csr_scratch;
  sim::BroadcastResult via_csr;
  for (std::size_t s = 0; s < miners.size(); ++s) {
    const sim::BroadcastResult legacy =
        sim::simulate_broadcast(topology, network, miners[s]);
    sim::simulate_broadcast(csr, miners[s], csr_scratch, via_csr);
    SCOPED_TRACE(::testing::Message() << "miner=" << miners[s]);
    EXPECT_TRUE(bytes_equal(via_csr.arrival, legacy.arrival));
    EXPECT_TRUE(bytes_equal(via_csr.ready, legacy.ready));
    EXPECT_TRUE(bytes_equal(batched.arrival_of(s), legacy.arrival));
    EXPECT_TRUE(bytes_equal(batched.ready_of(s), legacy.ready));
    EXPECT_TRUE(bytes_equal(pooled.arrival_of(s), batched.arrival_of(s)));
    EXPECT_TRUE(bytes_equal(pooled.ready_of(s), batched.ready_of(s)));

    // Egress engine, ∞-rate corner ≡ delay-only oracle: single-source,
    // batched, and pooled all byte-equal to the legacy walk.
    sim::simulate_broadcast_egress(csr, egress_config, egress_plan, miners[s],
                                   egress_scratch, via_egress);
    EXPECT_TRUE(bytes_equal(via_egress.arrival, legacy.arrival));
    EXPECT_TRUE(bytes_equal(via_egress.ready, legacy.ready));
    EXPECT_TRUE(bytes_equal(egress_batched.arrival_of(s), legacy.arrival));
    EXPECT_TRUE(bytes_equal(egress_batched.ready_of(s), legacy.ready));
    EXPECT_TRUE(bytes_equal(egress_pooled.arrival_of(s), legacy.arrival));
    EXPECT_TRUE(bytes_equal(egress_pooled.ready_of(s), legacy.ready));

    // Parallel delta-stepping: byte-identical to the legacy oracle at any
    // worker count (1 = inline, 2 and 4 = barrier teams).
    sim::simulate_broadcast_parallel(csr, miners[s], parallel_scratch, par1);
    sim::simulate_broadcast_parallel(csr, miners[s], parallel_scratch, par2,
                                     &pool2);
    sim::simulate_broadcast_parallel(csr, miners[s], parallel_scratch, par4,
                                     &pool4);
    EXPECT_TRUE(bytes_equal(par1.arrival, legacy.arrival));
    EXPECT_TRUE(bytes_equal(par1.ready, legacy.ready));
    EXPECT_TRUE(bytes_equal(par2.arrival, legacy.arrival));
    EXPECT_TRUE(bytes_equal(par2.ready, legacy.ready));
    EXPECT_TRUE(bytes_equal(par4.arrival, legacy.arrival));
    EXPECT_TRUE(bytes_equal(par4.ready, legacy.ready));

    // Compact fixed-point world: its own oracle is itself at one worker —
    // exact u64 equality across worker counts (integer math end to end).
    sim::simulate_broadcast_compact(compact, miners[s], parallel_scratch,
                                    q1.data());
    sim::simulate_broadcast_compact(compact, miners[s], parallel_scratch,
                                    q2.data(), &pool2);
    sim::simulate_broadcast_compact(compact, miners[s], parallel_scratch,
                                    q4.data(), &pool4);
    EXPECT_EQ(q1, q2);
    EXPECT_EQ(q1, q4);
    // And it must agree with the double world on reachability exactly.
    for (net::NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(q1[v] == sim::kUnreachedQ, !std::isfinite(legacy.arrival[v]))
          << "node " << v;
    }
  }
}

net::Topology random_topology(std::size_t n, std::uint64_t seed) {
  net::Topology topology(n);
  util::Rng rng(seed);
  topo::build_random(topology, rng);
  return topology;
}

// A round's worth of learning-loop rewiring: every node replaces a couple of
// out-edges (disconnect + random redial), the exact delta shape the subset
// selector journals each round.
void rewire_round(net::Topology& topology, util::Rng& rng,
                  int replacements_per_node = 2) {
  const auto n = static_cast<net::NodeId>(topology.size());
  for (net::NodeId v = 0; v < n; ++v) {
    for (int r = 0; r < replacements_per_node; ++r) {
      const auto& out = topology.out(v);
      if (out.empty()) break;
      topology.disconnect(v, out[rng.uniform_index(out.size())]);
    }
    topo::dial_random_peers(topology, v, replacements_per_node, rng);
  }
}

// Patched-vs-fresh contract: a cache-patched snapshot must be entry-for-entry
// identical to a from-scratch compile of the mutated topology (rows, delays,
// per-node attributes), and behaviorally byte-identical on the batched
// engine's arrival/ready stripes and the all-sources λ evaluation. The δ
// bounds may differ — patching keeps them conservative — but only in the
// safe direction.
void expect_patched_equals_fresh(const net::CsrTopology& patched,
                                 const net::Topology& topology,
                                 const net::Network& network) {
  const net::CsrTopology fresh = net::CsrTopology::build(topology, network);
  ASSERT_EQ(patched.size(), fresh.size());
  EXPECT_EQ(patched.built_from_version(), topology.version());
  ASSERT_EQ(patched.num_links(), fresh.num_links());
  const auto n = static_cast<net::NodeId>(fresh.size());
  for (net::NodeId v = 0; v < n; ++v) {
    const auto pp = patched.peers(v);
    const auto fp = fresh.peers(v);
    ASSERT_EQ(pp.size(), fp.size()) << "row size of node " << v;
    for (std::size_t i = 0; i < pp.size(); ++i) {
      EXPECT_EQ(pp[i], fp[i]) << "peer of node " << v << " slot " << i;
    }
    EXPECT_TRUE(bytes_equal(patched.delays(v), fresh.delays(v)))
        << "delays of node " << v;
    EXPECT_TRUE(bytes_equal(patched.control_delays(v),
                            fresh.control_delays(v)))
        << "control delays of node " << v;
    EXPECT_EQ(patched.forwards(v), fresh.forwards(v)) << "node " << v;
    EXPECT_EQ(patched.validation_ms(v), fresh.validation_ms(v))
        << "node " << v;
  }
  // Conservative bounds: never tighter than the truth.
  EXPECT_LE(patched.min_delay_ms(), fresh.min_delay_ms());
  EXPECT_GE(patched.max_delay_ms(), fresh.max_delay_ms());
  EXPECT_GE(patched.max_validation_ms(), fresh.max_validation_ms());

  // Behavioral parity: every source, batched engine, plus λ end to end.
  std::vector<net::NodeId> all(fresh.size());
  for (net::NodeId v = 0; v < n; ++v) all[v] = v;
  sim::MultiSourceScratch scratch;
  sim::MultiSourceResult from_patched, from_fresh;
  sim::simulate_broadcast_batch(patched, all, scratch, from_patched);
  sim::simulate_broadcast_batch(fresh, all, scratch, from_fresh);
  EXPECT_TRUE(bytes_equal(from_patched.arrival, from_fresh.arrival));
  EXPECT_TRUE(bytes_equal(from_patched.ready, from_fresh.ready));
  EXPECT_TRUE(bytes_equal(metrics::eval_all_sources(patched, network, 0.90),
                          metrics::eval_all_sources(fresh, network, 0.90)));
}

// Drives a CsrCache through compile -> mutation -> patched refresh and holds
// the patched snapshot to the fresh-compile contract plus full three-engine
// parity on the mutated graph. Asserts the patch path actually ran.
void expect_patched_parity_after_rewire(net::Topology& topology,
                                        const net::Network& network,
                                        const char* regime,
                                        std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "patched regime=" << regime << " seed=" << seed);
  net::CsrCache cache;
  cache.get(topology, network);
  util::Rng rng(seed ^ 0xC54);
  rewire_round(topology, rng);
  const net::CsrTopology& patched = cache.get(topology, network);
  EXPECT_EQ(cache.patches(), 1u);
  EXPECT_EQ(cache.rebuilds(), 1u);
  expect_patched_equals_fresh(patched, topology, network);
  expect_three_engine_parity(topology, network, regime, seed);
}

// 40 seeds x 5 regime families = 200 random topologies.
constexpr std::uint64_t kSeeds = 40;

TEST(EngineDiff, UniformGeoSubstrate) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    net::NetworkOptions options;
    options.n = 40 + 7 * (seed % 11);
    options.seed = seed;
    const auto network = net::Network::build(options);
    auto topology = random_topology(options.n, seed);
    expect_three_engine_parity(topology, network, "uniform-geo", seed);
    if (seed % 4 == 1) {
      expect_patched_parity_after_rewire(topology, network, "uniform-geo",
                                         seed);
    }
  }
}

TEST(EngineDiff, ExponentialEuclideanSubstrate) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    net::NetworkOptions options;
    options.n = 40 + 5 * (seed % 13);
    options.seed = seed * 31;
    // Euclidean embedding: near-colocated pairs produce the tiny edge
    // delays that stress the bucket width derivation; the validation draw
    // spread plays the role of the exponential tail.
    options.latency = net::NetworkOptions::LatencyKind::Euclidean;
    options.validation_scale = seed % 3 == 0 ? 5.0 : 0.5;
    const auto network = net::Network::build(options);
    auto topology = random_topology(options.n, seed * 31);
    expect_three_engine_parity(topology, network, "exponential-euclidean",
                               seed);
    if (seed % 4 == 1) {
      expect_patched_parity_after_rewire(topology, network,
                                         "exponential-euclidean", seed);
    }
  }
}

TEST(EngineDiff, ClusteredAndHeterogeneousScenarios) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    scenario::ScenarioSpec spec;
    spec.geo.concentration = 0.5;
    spec.hetero.profile = seed % 2 == 0 ? scenario::HeteroProfile::Bandwidth
                                        : scenario::HeteroProfile::Datacenter;
    net::NetworkOptions options;
    options.n = 40 + 9 * (seed % 7);
    options.seed = seed * 101;
    scenario::adjust_network_options(options, spec);
    auto network = net::Network::build(options);
    scenario::apply_static_regimes(network, spec, seed * 101);
    auto topology = random_topology(options.n, seed * 101);
    expect_three_engine_parity(topology, network, "clustered-hetero", seed);
    if (seed % 4 == 1) {
      expect_patched_parity_after_rewire(topology, network,
                                         "clustered-hetero", seed);
    }
  }
}

TEST(EngineDiff, WithholdingAdversaries) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    scenario::ScenarioSpec spec;
    spec.adversary.withhold_fraction = 0.25;
    net::NetworkOptions options;
    options.n = 40 + 6 * (seed % 9);
    options.seed = seed * 7;
    auto network = net::Network::build(options);
    scenario::apply_static_regimes(network, spec, seed * 7);
    auto topology = random_topology(options.n, seed * 7);
    expect_three_engine_parity(topology, network, "withholding", seed);
    if (seed % 4 == 1) {
      expect_patched_parity_after_rewire(topology, network, "withholding",
                                         seed);
    }
  }
}

TEST(EngineDiff, ChurnMutatedTopologies) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    net::NetworkOptions options;
    options.n = 50 + 4 * (seed % 8);
    options.seed = seed * 13;
    auto network = net::Network::build(options);
    auto topology = random_topology(options.n, seed * 13);
    scenario::ChurnRegime regime;
    regime.rate = 0.1;
    regime.start_round = 0;
    regime.downtime_rounds = seed % 2 == 0 ? 0 : 2;
    scenario::ChurnDriver driver(regime, topology, network, seed * 13);
    for (std::size_t round = 0; round < 4; ++round) {
      driver.before_round(round);
    }
    expect_three_engine_parity(topology, network, "churn-mutated", seed);
    if (seed % 4 == 1) {
      // Patch across further churn epochs: join/leave deltas (and the hash
      // stash's profile-version bumps) flow through the same refresh.
      net::CsrCache cache;
      cache.get(topology, network);
      for (std::size_t round = 4; round < 7; ++round) {
        driver.before_round(round);
      }
      const net::CsrTopology& patched = cache.get(topology, network);
      expect_patched_equals_fresh(patched, topology, network);
      expect_three_engine_parity(topology, network, "churn-patched", seed);
    }
  }
}

// The new rewire-heavy regime: consecutive full-network rewiring rounds,
// each absorbed by the journal patch path, every round held byte-equal to a
// forced fresh compile — the exact shape of the learning loop's topology
// refresh, isolated from selector logic.
TEST(EngineDiff, RewireHeavyPatchedCsrMatchesFreshCompileEveryRound) {
  for (std::uint64_t seed : {2u, 9u, 21u, 33u}) {
    net::NetworkOptions options;
    options.n = 60 + 8 * (seed % 5);
    options.seed = seed * 17;
    const auto network = net::Network::build(options);
    auto topology = random_topology(options.n, seed * 17);
    net::CsrCache cache;
    cache.get(topology, network);
    util::Rng rng(seed * 17 + 1);
    for (int round = 0; round < 6; ++round) {
      SCOPED_TRACE(::testing::Message()
                   << "rewire-heavy seed=" << seed << " round=" << round);
      rewire_round(topology, rng);
      const net::CsrTopology& patched = cache.get(topology, network);
      expect_patched_equals_fresh(patched, topology, network);
    }
    EXPECT_EQ(cache.rebuilds(), 1u);
    EXPECT_EQ(cache.patches(), 6u);
    expect_three_engine_parity(topology, network, "rewire-heavy", seed);
  }
}

// Round-loop A/B: the full adaptive learning loop (subset selectors, real
// rewiring every round) with journal patching against a twin run forced to
// recompile each round — every block's arrival/ready and the final λ must be
// byte-identical.
TEST(EngineDiff, PatchedRoundLoopMatchesForcedRecompileByteForByte) {
  const std::size_t n = 70;
  const int rounds = 5;
  const auto run = [&](bool patching, std::vector<double>& blocks_out) {
    net::NetworkOptions options;
    options.n = n;
    options.seed = 41;
    auto network = net::Network::build(options);
    auto topology = random_topology(n, 41);
    sim::RoundRunner runner(
        network, topology,
        core::make_selectors(n, core::Algorithm::PerigeeSubset), 8, 41);
    runner.set_csr_patching(patching);
    runner.set_block_hook([&](const sim::BroadcastResult& r) {
      blocks_out.insert(blocks_out.end(), r.arrival.begin(), r.arrival.end());
      blocks_out.insert(blocks_out.end(), r.ready.begin(), r.ready.end());
    });
    runner.run_rounds(rounds);
    return metrics::eval_all_sources(runner.current_csr(), network, 0.90);
  };
  std::vector<double> patched_blocks, rebuilt_blocks;
  const auto patched_lambda = run(true, patched_blocks);
  const auto rebuilt_lambda = run(false, rebuilt_blocks);
  ASSERT_EQ(patched_blocks.size(),
            static_cast<std::size_t>(rounds) * 8 * 2 * n);
  EXPECT_TRUE(bytes_equal(patched_blocks, rebuilt_blocks));
  EXPECT_TRUE(bytes_equal(patched_lambda, rebuilt_lambda));
}

// Degenerate graphs: the shapes most likely to break an engine swap.
TEST(EngineDiff, EdgeCases) {
  net::NetworkOptions options;
  options.n = 60;
  options.seed = 5;
  const auto network = net::Network::build(options);

  // Zero-latency infra edge: min edge delay 0 forces the heap fallback.
  {
    auto topology = random_topology(60, 5);
    // First pair not already wired by the random build.
    net::NodeId other = 1;
    while (!topology.add_infra_edge(0, other, 0.0)) ++other;
    const auto csr = net::CsrTopology::build(topology, network);
    EXPECT_EQ(csr.min_delay_ms(), 0.0);
    expect_three_engine_parity(topology, network, "zero-infra", 5);
  }
  // Sub-propagation infra overlay (the relay-tree shape). Some spokes may
  // already be p2p-adjacent to the hub; enough must attach to matter.
  {
    auto topology = random_topology(60, 5);
    int added = 0;
    for (net::NodeId v = 5; v < 50; v += 9) {
      if (topology.add_infra_edge(1, v, 0.25)) ++added;
    }
    ASSERT_GE(added, 2);
    expect_three_engine_parity(topology, network, "fast-infra", 5);
  }
  // Disconnected fragments: isolated nodes must stay +inf in all engines.
  {
    auto topology = random_topology(60, 5);
    for (net::NodeId v = 52; v < 60; ++v) topology.disconnect_all(v);
    expect_three_engine_parity(topology, network, "disconnected", 5);
  }
  // Edgeless graph: every engine degenerates to "miner only".
  {
    net::Topology topology(60);
    expect_three_engine_parity(topology, network, "edgeless", 5);
  }
}

// λ parity through the metrics batch entry point: the all-sources
// evaluation (batched, inline and pooled) must equal the per-source
// lambda_for_broadcast oracle bit for bit.
TEST(EngineDiff, EvalAllSourcesMatchesPerSourceOracleAtAnyWorkerCount) {
  for (std::uint64_t seed : {3u, 11u, 27u}) {
    net::NetworkOptions options;
    options.n = 80;
    options.seed = seed;
    const auto network = net::Network::build(options);
    const auto topology = random_topology(options.n, seed);
    const auto csr = net::CsrTopology::build(topology, network);

    std::vector<double> oracle(network.size());
    for (net::NodeId v = 0; v < network.size(); ++v) {
      const auto result = sim::simulate_broadcast(topology, network, v);
      oracle[v] = metrics::lambda_for_broadcast(result, network, 0.90);
    }

    const auto inline_eval = metrics::eval_all_sources(csr, network, 0.90);
    EXPECT_TRUE(bytes_equal(inline_eval, oracle));

    sim::MultiSourceScratch scratch;
    runner::ThreadPool pool(3);
    const auto pooled_eval =
        metrics::eval_all_sources(csr, network, 0.90, &scratch, &pool);
    EXPECT_TRUE(bytes_equal(pooled_eval, oracle));
  }
}

}  // namespace
}  // namespace perigee
